"""Batch engine: one vectorized lockstep fleet for a seed sweep.

Runs a 16-seed Monte Carlo sweep twice — once on the scalar engine,
once through ``Sweep(batch=...)``, which groups the bare-core cells
into lockstep fleets stepped by :class:`repro.sim.batch.BatchEngine`
(numpy arrays holding every lane's registers, scoreboards and
timelines; one vectorized step advances the whole fleet).  The records
are byte-identical — the batch engine only changes throughput — which
this script checks on the spot.

Run with::

    python examples/batch_sweep.py [--lanes N]
"""

import argparse
import json
import time

from repro.api import Sweep, Workload

KERNEL = "pi_xoshiro128p"
N = 1024
SEEDS = range(16)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--lanes", type=int, default=16,
                        help="lockstep lanes per batch group "
                             "(output is identical for every value)")
    # parse_known_args: stay runnable under test harnesses that leave
    # their own flags in sys.argv.
    args, _ = parser.parse_known_args()

    workloads = [Workload(KERNEL, "baseline", n=N, seed=seed)
                 for seed in SEEDS]
    sweep = Sweep(workloads, batch=args.lanes)

    start = time.perf_counter()
    scalar = Sweep(workloads).run(cache=False)
    scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    batched = sweep.run(cache=False)
    batch_s = time.perf_counter() - start

    print(f"{KERNEL}: {len(workloads)} seeds x n={N}, "
          f"batch lanes = {args.lanes}")
    print(f"{'seed':>4} {'cycles':>9} {'IPC':>6}")
    for workload, record in zip(workloads, batched):
        print(f"{workload.seed:>4} {record.cycles:>9} "
              f"{record.ipc:>6.2f}")

    identical = all(
        json.dumps(s.to_json(), sort_keys=True)
        == json.dumps(b.to_json(), sort_keys=True)
        for s, b in zip(scalar, batched))
    print(f"\nrecords byte-identical to scalar engine: {identical}")
    instrs = sum(r.cycles * r.ipc for r in batched)
    print(f"scalar {instrs / scalar_s / 1e3:.0f}k instr/s, "
          f"batch {instrs / batch_s / 1e3:.0f}k instr/s "
          f"({scalar_s / batch_s:.1f}x)")


if __name__ == "__main__":
    main()
