"""Applying the COPIFT methodology to your own kernel, step by step.

This walks the paper's §II-A pipeline over the actual Figure 1b
assembly listing, using the analysis API directly:

* Step 1 — build the data-flow graph and classify every integer<->FP
  dependency (Type 1/2/3);
* Step 2 — partition into ordered single-thread phases with a minimal
  cut (recovering the paper's Figure 1c exactly);
* Step 3 — reorder instructions by phase;
* Steps 4-5 — plan spill buffers, replication and the software
  pipelined block schedule;
* Step 6 — plan the SSR streams, fusing them down to the three
  architectural SSRs;
* Eqs. 1-3 — estimate the speedup before writing a line of code.

Run with::

    python examples/custom_kernel_copift.py
"""

from repro.copift import (
    AffineStream,
    InstructionMix,
    assign_ssrs,
    build_dfg,
    expected_ipc_gain,
    expected_speedup,
    fuse_streams,
    partition_dfg,
    phase_slices,
    pipelined_schedule,
    plan_from_partition,
    reorder,
)
from repro.isa import parse

FIG1B = """
    fld     fa3, 0(a3)
    fmul.d  fa3, ft3, fa3
    fadd.d  fa1, fa3, ft4
    fsd     fa1, 0(a6)
    lw      a0, 0(a6)
    andi    a1, a0, 31
    slli    a1, a1, 3
    add     a1, a5, a1
    lw      a2, 0(a1)
    lw      a1, 4(a1)
    slli    a0, a0, 15
    sw      a2, 0(a7)
    add     a0, a0, a1
    sw      a0, 4(a7)
    fsub.d  fa2, fa1, ft4
    fsub.d  fa3, fa3, fa2
    fmadd.d fa2, ft5, fa3, ft6
    fld     fa0, 0(a7)
    fmadd.d fa4, ft7, fa3, ft8
    fmul.d  fa1, fa3, fa3
    fmadd.d fa4, fa2, fa1, fa4
    fmul.d  fa4, fa4, fa0
    fsd     fa4, 0(a4)
"""


def main() -> None:
    program = parse(FIG1B, name="expf-block")

    # --- Step 1: DFG + dependency classification -----------------------
    dfg = build_dfg(program.instructions)
    print(f"Step 1: {len(dfg.deps)} dependencies, of which "
          f"{len(dfg.cross_thread_deps)} cross the int/FP boundary:")
    for dep in dfg.cross_thread_deps:
        src = program[dep.src].render()
        dst = program[dep.dst].render()
        print(f"  [{dep.kind.value}] ({dep.src + 1}) {src}  ->  "
              f"({dep.dst + 1}) {dst}")
    print()

    # --- Step 2: phase partition ---------------------------------------
    partition = partition_dfg(dfg)
    print(f"Step 2: {len(partition.phases)} phases, "
          f"{partition.n_cut_edges} cut edges (spilled values):")
    for phase in partition.phases:
        nodes = ", ".join(str(n + 1) for n in phase.nodes)
        print(f"  phase {phase.index} [{phase.thread.value:>3}]: {nodes}")
    print()

    # --- Step 3: reorder -------------------------------------------------
    ordered = reorder(partition)
    slices = phase_slices(partition)
    print("Step 3: reordered block (phase boundaries marked):")
    for index, instr in enumerate(ordered):
        boundary = any(index == start for start, _ in slices[1:])
        if boundary:
            print("  " + "-" * 40)
        print(f"  {instr.render()}")
    print()

    # --- Steps 4-5: tiling, buffers, software pipeline ------------------
    plan = plan_from_partition(partition, input_buffers={"x": 8},
                               output_buffers={"y": 8})
    print(f"Step 4: {plan.buffers_step4} spill/staging buffers; "
          f"Step 5 replication brings them to {plan.buffers_step5} "
          f"instances:")
    for buf in plan.buffers:
        print(f"  {buf.name:<8} phase {buf.producer} -> "
              f"{buf.consumer}: {buf.replicas} replicas")
    block = plan.max_block(16 * 1024, multiple_of=4)
    print(f"  max block size in a 16 KiB budget: {block} elements")
    schedule = pipelined_schedule(len(partition.phases), n_blocks=4)
    print("  pipelined schedule (phase:block per macro-iteration):")
    for macro_index, work in enumerate(schedule):
        cells = " ".join(f"P{w.phase}:B{w.block}" for w in work)
        print(f"    j'={macro_index}: {cells}")
    print()

    # --- Step 6: SSR planning with stream fusion -------------------------
    reads = [AffineStream(n, "read", (block,), (8,))
             for n in ("x", "t")]
    writes = [AffineStream(n, "write", (block,), (8,))
              for n in ("ki", "w", "y")]
    w_read = AffineStream("w", "read", (block,), (8,))
    fused_read = fuse_streams(reads, pitch=8 * block, name="x+t")
    fused_write = fuse_streams(writes, pitch=8 * block, name="ki+w+y")
    assignment = assign_ssrs([fused_read, fused_write, w_read])
    print("Step 6: six streams fused onto the three SSRs "
          "(as in the paper):")
    for slot, stream in sorted(assignment.slots.items()):
        kind = "read" if getattr(stream, "direction", "read") == "read" \
            else "write"
        print(f"  ssr{slot} (ft{slot}): {stream.name:<8} {kind}, "
              f"bounds {stream.bounds}")
    print()

    # --- Eqs. 1-3: what is this worth? -----------------------------------
    base = InstructionMix(43, 52)       # measured on the baseline
    copift = InstructionMix(43, 40)     # measured on the COPIFT variant
    print("Analytical model (Eqs. 1-3):")
    print(f"  thread imbalance TI = {base.thread_imbalance:.2f}")
    print(f"  expected speedup S' = "
          f"{expected_speedup(base, copift):.2f}x")
    print(f"  expected dual-issue IPC I' = "
          f"{expected_ipc_gain(copift):.2f}")


if __name__ == "__main__":
    main()
