"""Softmax acceleration: the paper's LLM motivation, end to end.

The paper motivates the ``expf`` kernel as "the main component of
softmax operations, which consume a considerable fraction of cycles in
modern Large Language Models".  This example builds a full softmax over
a row of attention logits:

1. the exponential stage runs on the simulated core, baseline vs
   COPIFT (this is where virtually all the cycles go);
2. the outputs are drained from the simulated scratchpad and the
   normalization is checked against a NumPy softmax oracle;
3. the cycle/energy split demonstrates what COPIFT buys an
   attention-layer inner loop.

Run with::

    python examples/softmax_llm.py
"""

import numpy as np

from repro.energy import EnergyModel
from repro.kernels.expf import build_baseline, build_copift
from repro.kernels.common import MAIN_REGION

SEQUENCE_LENGTH = 1024   # one attention row
BLOCK = 64


def run_exp_stage(variant: str):
    if variant == "baseline":
        instance = build_baseline(SEQUENCE_LENGTH, seed=3)
    else:
        instance = build_copift(SEQUENCE_LENGTH, block=BLOCK, seed=3)
    result, machine = instance.run()
    region = result.region(MAIN_REGION)
    # The y array is the last 8*n-byte allocation before the table; we
    # recover it through the kernel's own verifier inputs instead:
    # reread x and recompute addresses via the allocator-free contract
    # (x at the first allocation, y right after).
    return instance, result, region, machine


def softmax_reference(x: np.ndarray) -> np.ndarray:
    e = np.exp(x)
    return e / e.sum()


def main() -> None:
    model = EnergyModel()
    rows = {}
    outputs = {}
    for variant in ("baseline", "copift"):
        instance, result, region, machine = run_exp_stage(variant)
        power = model.report(region.counters, region.cycles,
                             dma_active=instance.dma_active,
                             dma_bytes=instance.dma_bytes)
        rows[variant] = (region, power)
        # Drain exp(x) from the simulated scratchpad.
        x = instance.notes["inputs"]
        y = machine.memory.read_array(instance.notes["y_addr"],
                                      np.float64, SEQUENCE_LENGTH)
        denominator = y.sum()
        outputs[variant] = y / denominator
        np.testing.assert_allclose(outputs[variant],
                                   softmax_reference(x), rtol=1e-7)

    base_region, base_power = rows["baseline"]
    cop_region, cop_power = rows["copift"]
    n = SEQUENCE_LENGTH
    print(f"softmax over a {n}-logit attention row "
          f"(exp stage on the core)\n")
    print(f"{'':>28} {'baseline':>10} {'COPIFT':>10}")
    print(f"{'exp-stage cycles':>28} {base_region.cycles:>10} "
          f"{cop_region.cycles:>10}")
    print(f"{'cycles / logit':>28} {base_region.cycles / n:>10.1f} "
          f"{cop_region.cycles / n:>10.1f}")
    print(f"{'IPC':>28} {base_region.ipc:>10.2f} "
          f"{cop_region.ipc:>10.2f}")
    print(f"{'exp-stage energy [uJ]':>28} "
          f"{base_power.energy_uj:>10.3f} {cop_power.energy_uj:>10.3f}")
    speedup = base_region.cycles / cop_region.cycles
    print(f"\nCOPIFT speeds up the softmax exponential stage by "
          f"{speedup:.2f}x")
    print("softmax outputs verified against NumPy for both variants.")


if __name__ == "__main__":
    main()
