"""Quickstart: measure one kernel, baseline vs COPIFT.

Runs the paper's flagship ``expf`` kernel (vector exponential) in both
variants on the simulated Snitch-like core and prints the headline
metrics: steady-state IPC, speedup, power and energy improvement.

Run with::

    python examples/quickstart.py
"""

from repro import kernel, measure_kernel


def main() -> None:
    kernel_def = kernel("expf")
    measurement = measure_kernel(kernel_def, n=2048, block=64)

    base = measurement.baseline
    cop = measurement.copift
    print(f"expf over {measurement.n} elements "
          f"(COPIFT block size {measurement.block})\n")
    print(f"{'':>24}  {'baseline':>10} {'COPIFT':>10}")
    print(f"{'cycles':>24}  {base.cycles:>10} {cop.cycles:>10}")
    print(f"{'IPC':>24}  {base.ipc:>10.3f} {cop.ipc:>10.3f}")
    print(f"{'power [mW]':>24}  {base.power_mw:>10.1f} "
          f"{cop.power_mw:>10.1f}")
    print(f"{'energy [uJ]':>24}  {base.power.energy_uj:>10.3f} "
          f"{cop.power.energy_uj:>10.3f}")
    print()
    print(f"speedup:            {measurement.speedup:.2f}x")
    print(f"IPC gain:           {measurement.ipc_gain:.2f}x")
    print(f"power increase:     {measurement.power_increase:.2f}x")
    print(f"energy improvement: {measurement.energy_improvement:.2f}x")
    print()
    print("(paper, Fig. 2: speedup 2.05x, IPC 0.92 -> 1.63, "
          "power 43.6 -> 46.2 mW, energy improvement 1.93x)")


if __name__ == "__main__":
    main()
