"""Quickstart: the unified experiment API in five lines.

Runs the paper's flagship ``expf`` kernel (vector exponential) in both
variants on the simulated Snitch-like core and prints the headline
metrics: steady-state IPC, speedup, power and energy improvement.

The core of it::

    from repro.api import Workload, parse_backend

    backend = parse_backend("core")          # or "cluster:4"
    record = backend.run(Workload("expf", "copift", n=2048))
    print(record.cycles, record.ipc, record.power_mw)

Run with::

    python examples/quickstart.py
"""

from repro.api import Workload, parse_backend


def main() -> None:
    backend = parse_backend("core")
    base = backend.run(Workload("expf", "baseline", n=2048))
    cop = backend.run(Workload("expf", "copift", n=2048, block=64))

    print(f"expf over {cop.n} elements "
          f"(COPIFT block size {cop.block})\n")
    print(f"{'':>24}  {'baseline':>10} {'COPIFT':>10}")
    print(f"{'cycles':>24}  {base.cycles:>10} {cop.cycles:>10}")
    print(f"{'IPC':>24}  {base.ipc:>10.3f} {cop.ipc:>10.3f}")
    print(f"{'power [mW]':>24}  {base.power_mw:>10.1f} "
          f"{cop.power_mw:>10.1f}")
    print(f"{'energy [uJ]':>24}  {base.energy_uj:>10.3f} "
          f"{cop.energy_uj:>10.3f}")
    print()
    print(f"speedup:            {base.cycles / cop.cycles:.2f}x")
    print(f"IPC gain:           {cop.ipc / base.ipc:.2f}x")
    print(f"power increase:     {cop.power_mw / base.power_mw:.2f}x")
    print(f"energy improvement: "
          f"{base.energy_pj / cop.energy_pj:.2f}x")
    print()
    print("(paper, Fig. 2: speedup 2.05x, IPC 0.92 -> 1.63, "
          "power 43.6 -> 46.2 mW, energy improvement 1.93x)")
    print()
    print("every record serializes to a stable, versioned schema:")
    payload = cop.to_json()
    print(f"  RunRecord.to_json() schema v{payload['schema']}: "
          f"{sorted(payload)}")


if __name__ == "__main__":
    main()
