"""Streaming QoS: what beat-arbitration weights buy the tail latency.

Runs the shipped two-class scenario (``hi``: small latency-critical
COPIFT ``expf`` requests; ``lo``: larger bulk baseline ``logf``
requests) through the open-loop traffic layer at a saturating offered
load, once per policy:

* ``fifo`` — arrival-order dispatch, beats served first-come-first-
  served: the bulk class's long bursts sit in front of the critical
  class on the shared link, and both classes' tails blur together.
* ``priority+qos`` — priority dispatch plus the weighted-TDM
  :class:`~repro.traffic.QosArbiter` (weights 3:1): the critical
  class owns three quarters of the link's beat slots, so its p99
  stays near its uncontended service time while the bulk class
  absorbs the queueing.

The arrival stream is identical in both runs (same seed, same
classes), so the p99 movement is purely the policy.

Run with::

    python examples/stream_qos.py
"""

from repro.traffic import build_profiles, default_scenario, simulate

#: Offered load as a fraction of the scenario's rough capacity --
#: deliberately past the knee, where arbitration policy decides who
#: eats the queueing.
LOAD = 1.1

DURATION = 60_000
SEED = 1


def main() -> None:
    scenario = default_scenario()
    profiles = build_profiles(scenario)
    capacity = scenario.clusters / sum(
        cls.share * p.cycles
        for cls, p in zip(scenario.classes, profiles))
    rate = LOAD * capacity

    print(f"Two-class open-loop stream on a {scenario.clusters}x"
          f"{scenario.cores} SoC, {LOAD:.0%} of estimated capacity "
          f"({rate * 1e6:.0f} req/Mcycle) for {DURATION} cycles:")
    for cls, profile in zip(scenario.classes, profiles):
        print(f"  {cls.name}: {cls.kernel}/{cls.variant} n={cls.n}, "
              f"share {cls.share:.0%}, QoS weight {cls.weight}, "
              f"uncontended service {profile.cycles} cycles")
    print()

    results = {}
    for policy in ("fifo", "priority+qos"):
        # Profiles are uncontended per-class measurements: they do not
        # depend on the policy, so both runs share one build.
        run = simulate(default_scenario(policy=policy), profiles,
                       rate, DURATION, SEED)
        results[policy] = run
        header = (f"policy {policy}: {run.completed}/{run.requests} "
                  f"served, sustained {run.throughput * 1e6:.0f} "
                  f"req/Mcycle, peak queue {run.peak_queue_depth}")
        print(header)
        for cres in run.classes:
            stats = cres.stats()
            print(f"  {stats.name}: p50 {stats.p50:>7} cycles, "
                  f"p99 {stats.p99:>7} cycles "
                  f"(queue {stats.mean_queue_cycles:.0f} + service "
                  f"{stats.mean_service_cycles:.0f} on average)")
        hi, lo = run.classes[0].stats(), run.classes[-1].stats()
        print(f"  p99 separation: {lo.p99 / max(hi.p99, 1):.1f}x\n")

    fifo_hi = results["fifo"].classes[0].stats()
    qos_hi = results["priority+qos"].classes[0].stats()
    qos_lo = results["priority+qos"].classes[-1].stats()
    print(f"QoS moves the critical class's p99 from {fifo_hi.p99} to "
          f"{qos_hi.p99} cycles on the same arrival stream; the bulk "
          f"class absorbs the wait (p99 {qos_lo.p99}).")

    # The claims the prose makes, checked live: QoS lowers the
    # critical tail and separates the classes.
    assert qos_hi.p99 < fifo_hi.p99
    assert qos_lo.p99 > 2 * qos_hi.p99
    print("hi p99 under priority+qos beats fifo; classes separated")


if __name__ == "__main__":
    main()
