"""Sweep API: one declarative grid over kernels AND backends.

Builds the cross-product of two kernels (baseline + COPIFT) over a
bare core and 2-/4-core clusters, executes it through the unified
:class:`repro.api.Sweep` executor (the same machinery behind every
``python -m repro.eval`` artifact, including its ``--jobs`` process
sharding), and prints a cycles/IPC/power matrix.

Run with::

    python examples/sweep_backends.py [--jobs N]
"""

import argparse

from repro.api import Sweep, Workload

KERNELS = ("poly_lcg", "expf")
BACKENDS = ("core", "cluster:2", "cluster:4")
N = 1024


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1,
                        help="host processes for the sweep "
                             "(output is identical for every value)")
    # parse_known_args: stay runnable under test harnesses that leave
    # their own flags in sys.argv.
    args, _ = parser.parse_known_args()

    workloads = [Workload(name, variant, n=N)
                 for name in KERNELS
                 for variant in ("baseline", "copift")]
    sweep = Sweep(workloads, backends=BACKENDS)
    records = sweep.run(jobs=args.jobs)

    print(f"sweep: {len(workloads)} workloads x {len(BACKENDS)} "
          f"backends = {len(records)} cells (n = {N})\n")
    header = (f"{'kernel':<10} {'variant':<9} {'backend':<10} "
              f"{'cycles':>9} {'IPC':>6} {'mW':>7} {'conflicts':>10}")
    print(header)
    print("-" * len(header))
    for (workload, backend), record in zip(sweep.cells(), records):
        conflicts = record.cluster.tcdm_conflict_cycles \
            if record.cluster else 0
        print(f"{workload.kernel:<10} {workload.variant:<9} "
              f"{backend.spec:<10} {record.cycles:>9} "
              f"{record.ipc:>6.2f} {record.power_mw:>7.1f} "
              f"{conflicts:>10}")

    # Cluster speedup vs the bare core, per workload.
    indexed = sweep.index(records)
    print()
    for workload in workloads:
        core = indexed[(workload, "core")]
        scaled = indexed[(workload, "cluster:4")]
        print(f"{workload.kernel}/{workload.variant}: "
              f"4-core speedup {core.cycles / scaled.cycles:.2f}x")


if __name__ == "__main__":
    main()
