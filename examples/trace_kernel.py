"""End-to-end observability tour on the dither kernel.

Runs the audio-dither COPIFT kernel (a kernel the paper's tables do
not sweep, so everything here is exercised fresh) with the full
observability stack attached:

* an :class:`repro.obs.ObsSink` collecting structured events from the
  issue lanes and the DMA model,
* the legacy per-instruction trace feeding the issue-timeline view,
* a cycle-attribution profile derived from the main region, and
* a Chrome/Perfetto trace-event file written to disk and validated.

Open the emitted JSON in https://ui.perfetto.dev or chrome://tracing
to scrub through the run cycle by cycle.

Run with::

    python examples/trace_kernel.py [--out=dither-trace.json]

Without ``--out=`` the trace lands in a temporary directory.
"""

import os
import sys
import tempfile

from repro.kernels.dither import build_copift
from repro.sim import Machine
from repro.obs import (
    ObsSink,
    ProfileNode,
    core_profile,
    dual_issue_cycles,
    render_profile,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)


def trace_path() -> str:
    # Manual flag parse: this script also runs under the test
    # harness, whose argv belongs to pytest.
    for arg in sys.argv[1:]:
        if arg.startswith("--out="):
            return arg[len("--out="):]
    return os.path.join(tempfile.mkdtemp(prefix="repro-obs-"),
                        "dither-trace.json")


def main() -> None:
    instance = build_copift(256, block=32)
    sink = ObsSink()
    machine = Machine(memory=instance.memory)
    events = machine.enable_trace()  # per-instruction issue trace
    machine.attach_obs(sink, "core")
    result = machine.run(instance.program)
    instance.verify(instance.memory, machine)

    mid = result.cycles // 2
    print("dither COPIFT, steady-state issue timeline "
          f"(cycles {mid}..{mid + 24}):\n")
    print(render_timeline(events, start=mid, end=mid + 24,
                          show_pc=True))
    dual = dual_issue_cycles(events)
    print(f"\ndual-issue cycles: {dual} "
          f"({100 * dual / result.cycles:.0f}% of the run)\n")

    profile = core_profile("core", result.region("main"))
    print(render_profile(profile))
    assert profile.bucket_sum() == profile.cycles

    path = trace_path()
    write_chrome_trace(sink, path)
    import json
    with open(path) as handle:
        count = validate_chrome_trace(json.load(handle))
    print(f"\nwrote {path}: {count} Chrome trace events "
          f"from {len(sink)} collected ({', '.join(sink.scopes())} / "
          f"lanes {', '.join(sink.lanes('core'))})")
    print("open it in https://ui.perfetto.dev or chrome://tracing")

    # The profile block round-trips through RunRecord JSON untouched.
    back = ProfileNode.from_json(profile.to_json())
    assert back == profile
    print("profile JSON round-trip: ok "
          f"({profile.cycles} cycles attributed exactly)")


if __name__ == "__main__":
    main()
