"""Monte Carlo π estimation: the paper's integration workload.

Estimates π by hit-and-miss sampling of the unit circle on the
simulated core, comparing the two PRNGs the paper evaluates (64-bit LCG
and xoshiro128+) in both baseline and COPIFT variants, and showing

* the estimate converging with sample count (bit-exact against the
  Python mirror of the RV32 PRNG code),
* the throughput and energy gap between the variants,
* the LCG's writeback-port stalls — the microarchitectural detail the
  paper calls out in §III-A.

Run with::

    python examples/montecarlo_pi.py
"""

import math

from repro.energy import EnergyModel
from repro.kernels.common import MAIN_REGION
from repro.kernels.montecarlo import (
    LCG_SPEC,
    PI_SPEC,
    XOSHIRO_SPEC,
    build_baseline,
    build_copift,
    reference_hits,
)


def convergence_table() -> None:
    print("convergence of the pi estimate (xoshiro128+, exact hit "
          "counts from the Python PRNG mirror):")
    for n in (256, 1024, 4096, 16384):
        hits = reference_hits(XOSHIRO_SPEC, PI_SPEC, n, seed=42)
        estimate = 4.0 * hits / n
        print(f"  N={n:>6}: pi ~ {estimate:.4f} "
              f"(error {abs(estimate - math.pi):.4f})")
    print()


def simulate(prng, label: str, n: int = 4096) -> None:
    model = EnergyModel()
    base = build_baseline(prng, PI_SPEC, n)
    cop = build_copift(prng, PI_SPEC, n, block=64)
    base_result, _ = base.run()
    cop_result, _ = cop.run()
    base_region = base_result.region(MAIN_REGION)
    cop_region = cop_result.region(MAIN_REGION)
    base_power = model.report(base_region.counters, base_region.cycles)
    cop_power = model.report(cop_region.counters, cop_region.cycles)

    print(f"pi_{label}, N={n} samples (both variants verified "
          f"against the exact hit count):")
    print(f"  baseline: {base_region.cycles:>7} cycles "
          f"(IPC {base_region.ipc:.2f}, "
          f"{base_power.energy_uj:.2f} uJ, "
          f"{base_region.counters.stall_wb_port} WB-port stalls)")
    print(f"  COPIFT:   {cop_region.cycles:>7} cycles "
          f"(IPC {cop_region.ipc:.2f}, "
          f"{cop_power.energy_uj:.2f} uJ)")
    speedup = base_region.cycles / cop_region.cycles
    energy = base_power.total_energy_pj / cop_power.total_energy_pj
    print(f"  -> speedup {speedup:.2f}x, energy improvement "
          f"{energy:.2f}x")
    print()


def main() -> None:
    convergence_table()
    simulate(LCG_SPEC, "lcg")
    simulate(XOSHIRO_SPEC, "xoshiro128p")
    print("Note the LCG baseline's writeback-port stalls: the 64-bit "
          "multiply chain collides with single-cycle ALU results on "
          "the integer register file's single write port — the stall "
          "source the paper identifies in §III-A.")


if __name__ == "__main__":
    main()
