"""SoC backends: scale one kernel across multi-cluster shapes.

Runs a DMA-bound vector kernel (``expf``) on a bare core, a 4-core
cluster and three SoC shapes through the unified
:class:`repro.api.Sweep` executor, then shows where the shared-L2
interconnect starts to bite: the 4x4 SoC demands twice the link's
bandwidth, so beat-arbitration stalls appear in ``record.soc`` while
the compute-bound Monte Carlo kernel scales on regardless.

The final ``soc:4x4+wb`` backend turns on simulated output
write-back: every core drains its results back to the shared L2
through the same DMA/interconnect path the inputs staged in on, so
drain traffic contends with staging reads — L2 write bytes and extra
link stalls appear in ``record.soc``.

Run with::

    python examples/soc_sweep.py [--jobs N]
"""

import argparse

from repro.api import Sweep, Workload

KERNELS = ("expf", "pi_lcg")
BACKENDS = ("core", "cluster:4", "soc:1x4", "soc:2x4", "soc:4x4",
            "soc:4x4+wb")
N = 4096


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1,
                        help="host processes for the sweep "
                             "(output is identical for every value)")
    # parse_known_args: stay runnable under test harnesses that leave
    # their own flags in sys.argv.
    args, _ = parser.parse_known_args()

    workloads = [Workload(name, "copift", n=N) for name in KERNELS]
    sweep = Sweep(workloads, backends=BACKENDS)
    records = sweep.run(jobs=args.jobs)

    print(f"SoC sweep: {len(workloads)} workloads x {len(BACKENDS)} "
          f"backends (n = {N})\n")
    header = (f"{'kernel':<8} {'backend':<11} {'cycles':>8} "
              f"{'mW':>7} {'link stalls':>12} {'DMA fence':>10}")
    print(header)
    print("-" * len(header))
    for (workload, backend), record in zip(sweep.cells(), records):
        link_stalls = sum(record.soc.link_stall_cycles) \
            if record.soc else 0
        dma_stalls = sum(record.soc.cluster_dma_stall_cycles) \
            if record.soc else record.counters.get("stall_dma", 0)
        print(f"{workload.kernel:<8} {backend.spec:<11} "
              f"{record.cycles:>8} {record.power_mw:>7.1f} "
              f"{link_stalls:>12} {dma_stalls:>10}")

    indexed = sweep.index(records)
    print()
    for workload in workloads:
        base = indexed[(workload, "soc:1x4")]
        big = indexed[(workload, "soc:4x4")]
        stalls = sum(big.soc.link_stall_cycles)
        print(f"{workload.kernel}: 4x4 vs 1x4 aggregate speedup "
              f"{base.cycles / big.cycles:.2f}x (ideal 4.00x), "
              f"{stalls} beat-stall cycles on the shared L2 link")

    # Drain-traffic contention: write-back doubles the DMA-bound
    # kernel's link traffic (outputs travel back over the same link
    # the inputs staged in on), so the shared L2 sees writes and the
    # link sees more beat-arbitration stalls.
    expf = workloads[0]
    plain = indexed[(expf, "soc:4x4")]
    wb = indexed[(expf, "soc:4x4+wb")]
    print(f"\n{expf.kernel} on soc:4x4 with output write-back: "
          f"{wb.soc.l2_bytes_written} B drained to L2, link stalls "
          f"{sum(plain.soc.link_stall_cycles)} -> "
          f"{sum(wb.soc.link_stall_cycles)}, whole-program makespan "
          f"{plain.total_cycles} -> {wb.total_cycles} cycles")
    assert wb.soc.l2_bytes_written > 0
    assert sum(wb.soc.link_beats) == 2 * sum(plain.soc.link_beats)

    # The layering invariant, demonstrated live: one cluster over an
    # uncontended interconnect is the cluster, cycle for cycle.
    assert indexed[(expf, "soc:1x4")].cycles \
        == indexed[(expf, "cluster:4")].cycles
    print("\nsoc:1x4 is cycle-identical to cluster:4 "
          "(the SoC layer adds nothing until clusters contend)")


if __name__ == "__main__":
    main()
