"""Visualizing pseudo dual-issue: the two issue lanes, cycle by cycle.

Runs a small COPIFT block with instruction tracing enabled and prints
the integer-core and FPSS issue lanes side by side.  Sequencer-issued
FP instructions (marked ``<seq``) never occupy an integer issue slot —
watching them stream next to the integer phase is the clearest way to
see what the paper's "pseudo dual-issue" means.

Run with::

    python examples/pipeline_timeline.py
"""

from repro.kernels.expf import build_copift
from repro.sim import (
    Machine,
    dual_issue_cycles,
    lane_utilization,
    render_timeline,
)


def main() -> None:
    instance = build_copift(96, block=32)
    machine = Machine(memory=instance.memory)
    events = machine.enable_trace()
    result = machine.run(instance.program)
    instance.verify(instance.memory, machine)

    # Show a steady-state window: pick cycles in the middle of the run.
    mid = result.cycles // 2
    print("expf COPIFT, steady-state issue timeline "
          f"(cycles {mid}..{mid + 40}):\n")
    print(render_timeline(events, start=mid, end=mid + 40))

    dual = dual_issue_cycles(events)
    int_util, fp_util = lane_utilization(events, result.cycles)
    print()
    print(f"total cycles:        {result.cycles}")
    print(f"dual-issue cycles:   {dual} "
          f"({100 * dual / result.cycles:.0f}% of the run)")
    print(f"lane utilization:    int {int_util:.2f}, fp {fp_util:.2f} "
          f"(sum = IPC {result.ipc:.2f})")
    print(f"sequencer replays:   {result.counters.sequencer_issued} "
          f"of {result.counters.fp_issued} FP instructions")


if __name__ == "__main__":
    main()
