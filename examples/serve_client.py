"""Talk to the persistent evaluation service over JSON-lines.

Spawns ``python -m repro.eval --serve`` as a subprocess with a
temporary cache directory, then plays a full client session against
its stdin/stdout:

1. ``ping`` — liveness check;
2. a **cold** ``run`` request (``pi_lcg`` copift on ``cluster:2``) —
   the service simulates it and persists the RunRecord in the
   content-addressed store;
3. the **same** request again — answered from the store (``hit``),
   no simulation, byte-identical record;
4. ``stats`` — the serve-layer counters through the metrics registry;
5. ``shutdown``.

Run with::

    python examples/serve_client.py
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def request(proc, payload: dict) -> dict:
    """One pipelined exchange: write a request line, read a response."""
    proc.stdin.write(json.dumps(payload) + "\n")
    proc.stdin.flush()
    return json.loads(proc.stdout.readline())


def main() -> None:
    cell = {"kernel": "pi_lcg", "variant": "copift", "n": 1024}
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as cache:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (SRC_DIR, env.get("PYTHONPATH")) if p)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.eval", "--serve",
             "--cache-dir", cache],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, env=env)
        try:
            pong = request(proc, {"id": 0, "op": "ping"})
            assert pong["pong"] is True
            print("service is up (ping -> pong)")

            cold = request(proc, {"id": 1, "op": "run",
                                  "workload": cell,
                                  "backend": "cluster:2"})
            assert cold["ok"], cold
            record = cold["record"]
            print(f"cold request: status={cold['status']} "
                  f"({record['kernel']}/{record['variant']} "
                  f"n={record['n']} on {record['backend']}, "
                  f"{record['cycles']} cycles)")

            warm = request(proc, {"id": 2, "op": "run",
                                  "workload": cell,
                                  "backend": "cluster:2"})
            assert warm["ok"], warm
            print(f"warm request: status={warm['status']}")
            assert warm["status"] == "hit", warm["status"]
            identical = (json.dumps(warm["record"], sort_keys=True)
                         == json.dumps(record, sort_keys=True))
            assert identical
            print("warm record is byte-identical to the cold one")

            stats = request(proc, {"id": 3, "op": "stats"})["stats"]
            print(f"stats: {stats['serve.requests']} requests, "
                  f"{stats['serve.hits']} hit / "
                  f"{stats['serve.misses']} miss; store at "
                  f"{stats['store']['dir']}")

            bye = request(proc, {"id": 4, "op": "shutdown"})
            assert bye["shutdown"] is True
            print("shutdown acknowledged")
        finally:
            proc.stdin.close()
            proc.wait(timeout=60)


if __name__ == "__main__":
    main()
