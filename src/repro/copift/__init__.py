"""The COPIFT methodology: analysis, planning and codegen helpers.

The seven steps of the paper's §II-A map onto this package as:

========  =======================================  =====================
Step      What it does                             Module
========  =======================================  =====================
Step 1    DFG construction + dependency typing     :mod:`.dfg`
Step 2    Phase partitioning (min-cut heuristic)   :mod:`.partition`
Step 3    Instruction reordering by phase          :mod:`.reorder`
Step 4    Loop tiling/fission + spill buffers      :mod:`.tiling`
Step 5    Software pipelining + replication        :mod:`.pipeline`,
                                                   :mod:`.tiling`
Step 6    SSR mapping + stream fusion + ISSR       :mod:`.ssr_mapping`
Step 7    FREP wrapping and loop ordering          :mod:`.frep_mapping`
Eqs. 1-3  Analytical speedup/IPC model             :mod:`.model`
========  =======================================  =====================
"""

from .analyze import CopiftAnalysis, analyze
from .dfg import DataFlowGraph, DepKind, Dependency, build_dfg
from .frep_mapping import FrepBodyError, emit_frep
from .model import (
    InstructionMix,
    KernelModel,
    expected_ipc_gain,
    expected_speedup,
    expected_speedup_from_baseline,
)
from .partition import Partition, Phase, partition_dfg
from .pipeline import (
    PhaseWork,
    buffer_rotation,
    pipelined_schedule,
    steady_state_range,
)
from .reorder import phase_slices, reorder
from .ssr_mapping import (
    AffineStream,
    IndirectStream,
    SSRAssignment,
    assign_ssrs,
    emit_indirect_base,
    emit_stream_base,
    emit_stream_shape,
    fuse_streams,
)
from .tiling import BufferSpec, TilingPlan, plan_from_partition
from .transform import TwoPhaseBuild, TwoPhaseSpec, generate_two_phase

__all__ = [
    "AffineStream",
    "CopiftAnalysis",
    "analyze",
    "BufferSpec",
    "DataFlowGraph",
    "DepKind",
    "Dependency",
    "FrepBodyError",
    "IndirectStream",
    "InstructionMix",
    "KernelModel",
    "Partition",
    "Phase",
    "PhaseWork",
    "SSRAssignment",
    "TilingPlan",
    "TwoPhaseBuild",
    "TwoPhaseSpec",
    "assign_ssrs",
    "generate_two_phase",
    "buffer_rotation",
    "build_dfg",
    "emit_frep",
    "emit_indirect_base",
    "emit_stream_base",
    "emit_stream_shape",
    "expected_ipc_gain",
    "expected_speedup",
    "expected_speedup_from_baseline",
    "fuse_streams",
    "partition_dfg",
    "phase_slices",
    "pipelined_schedule",
    "plan_from_partition",
    "reorder",
    "steady_state_range",
]
