"""COPIFT Step 2: partition the DFG into ordered single-thread phases.

The goal (paper §II-A): split the loop body into subgraphs ("phases")
such that

* every phase contains instructions of a single thread (integer or FP),
* an acyclic precedence relation exists among phases — i.e. every DFG
  edge goes from a phase to the same or a later phase,
* the number of edges *between* phases is minimized (each cut edge
  becomes a value spilled to a memory buffer in Step 4).

Finding the minimum cut under these constraints is NP-hard in general;
like the paper (which partitions by hand), we use an exact-enough
heuristic: ASAP/ALAP phase ranges from alternation depth, followed by
greedy hill-climbing on cut count.  On the paper's Figure 1 expf block it
recovers the published 3-phase partition with 4 cut edges (verified in
tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import Thread
from .dfg import DataFlowGraph, Dependency


@dataclass
class Phase:
    """One partition subgraph: a set of same-thread instructions."""

    index: int
    thread: Thread
    nodes: list[int]


@dataclass
class Partition:
    """Result of Step 2.

    Attributes:
        phases: Ordered phases; edges only go to equal-or-later phases.
        phase_of: node index -> phase index.
        cut_edges: DFG edges crossing phase boundaries (future spills).
    """

    dfg: DataFlowGraph
    phases: list[Phase]
    phase_of: dict[int, int]
    cut_edges: list[Dependency]

    @property
    def n_cut_edges(self) -> int:
        return len(self.cut_edges)

    def validate(self) -> None:
        """Check the partition invariants; raise ValueError on violation."""
        for phase in self.phases:
            for node in phase.nodes:
                if self.dfg.thread_of(node) is not phase.thread:
                    raise ValueError(
                        f"node {node} of thread "
                        f"{self.dfg.thread_of(node)} in "
                        f"{phase.thread} phase {phase.index}"
                    )
        for dep in self.dfg.deps:
            if self.phase_of[dep.src] > self.phase_of[dep.dst]:
                raise ValueError(
                    f"edge {dep.src}->{dep.dst} goes backwards "
                    f"({self.phase_of[dep.src]} -> "
                    f"{self.phase_of[dep.dst]})"
                )


def _thread_for_parity(phase0: Thread, index: int) -> Thread:
    if index % 2 == 0:
        return phase0
    return Thread.FP if phase0 is Thread.INT else Thread.INT


def _partition_with_parity(dfg: DataFlowGraph,
                           phase0: Thread,
                           analysable: list[int],
                           sweeps: int) -> Partition | None:
    """Partition with phase 0 fixed to *phase0*'s thread type."""
    threads = {i: dfg.thread_of(i) for i in analysable}
    preds: dict[int, list[int]] = {i: [] for i in analysable}
    succs: dict[int, list[int]] = {i: [] for i in analysable}
    for dep in dfg.deps:
        preds[dep.dst].append(dep.src)
        succs[dep.src].append(dep.dst)

    def parity_floor(level: int, thread: Thread) -> int:
        """Smallest phase ≥ level whose parity matches *thread*."""
        if _thread_for_parity(phase0, level) is thread:
            return level
        return level + 1

    # ASAP pass (analysable is already in topological/program order).
    asap: dict[int, int] = {}
    for i in analysable:
        level = 0
        for p in preds[i]:
            step = 0 if threads[p] is threads[i] else 1
            level = max(level, asap[p] + step)
        asap[i] = parity_floor(level, threads[i])

    n_phases = max(asap.values(), default=0) + 1

    # ALAP pass.
    alap: dict[int, int] = {}
    for i in reversed(analysable):
        level = n_phases - 1
        for s in succs[i]:
            step = 0 if threads[s] is threads[i] else 1
            level = min(level, alap[s] - step)
        # Largest phase ≤ level with the right parity.
        if _thread_for_parity(phase0, level) is not threads[i]:
            level -= 1
        if level < asap[i]:
            return None  # parity infeasible for this phase0 choice
        alap[i] = level

    assignment = dict(asap)

    def cut_cost(node: int, phase: int) -> int:
        cost = 0
        for p in preds[node]:
            if assignment[p] != phase:
                cost += 1
        for s in succs[node]:
            if assignment[s] != phase:
                cost += 1
        return cost

    # Greedy improvement sweeps: slide each node within its feasible
    # window to the position minimizing incident cut edges.
    for _ in range(sweeps):
        changed = False
        for i in analysable:
            lo = asap[i]
            hi = alap[i]
            for p in preds[i]:
                step = 0 if threads[p] is threads[i] else 1
                lo = max(lo, assignment[p] + step)
            for s in succs[i]:
                step = 0 if threads[s] is threads[i] else 1
                hi = min(hi, assignment[s] - step)
            best = assignment[i]
            best_cost = cut_cost(i, best)
            for candidate in range(lo, hi + 1):
                if _thread_for_parity(phase0, candidate) \
                        is not threads[i]:
                    continue
                cost = cut_cost(i, candidate)
                if cost < best_cost or (cost == best_cost
                                        and candidate < best):
                    best, best_cost = candidate, cost
            if best != assignment[i]:
                assignment[i] = best
                changed = True
        if not changed:
            break

    # Compact away empty phases while keeping relative order and
    # alternation (an empty middle phase collapses its neighbours only
    # if they have different threads... they cannot: parity guarantees
    # alternation, so an empty phase means its neighbours share a
    # boundary of opposite threads and renumbering is safe only at the
    # ends).  We renumber defensively and rebuild threads per phase.
    used = sorted(set(assignment.values()))
    renumber = {old: new for new, old in enumerate(used)}
    phase_of = {i: renumber[assignment[i]] for i in analysable}

    phases: list[Phase] = []
    for new_index, old_index in enumerate(used):
        nodes = sorted(i for i in analysable
                       if assignment[i] == old_index)
        phases.append(Phase(new_index,
                            _thread_for_parity(phase0, old_index),
                            nodes))
    cut_edges = [d for d in dfg.deps
                 if phase_of[d.src] != phase_of[d.dst]]
    result = Partition(dfg, phases, phase_of, cut_edges)
    result.validate()
    return result


def partition_dfg(dfg: DataFlowGraph,
                  phase0_thread: Thread | None = None,
                  sweeps: int = 4) -> Partition:
    """Partition *dfg* into ordered single-thread phases (Step 2).

    Args:
        dfg: The Step-1 data-flow graph.
        phase0_thread: Force the thread type of the first phase; by
            default both options are tried and the better partition
            (fewer phases, then fewer cut edges) is returned.
        sweeps: Hill-climbing improvement sweeps.
    """
    analysable = [i for i in range(len(dfg.instructions))
                  if i in dfg.graph]
    # Exclude control-flow/meta nodes that carry no dependencies and no
    # thread-specific work (they were skipped by the DFG builder).
    from ..isa.instructions import OpClass
    analysable = [
        i for i in analysable
        if dfg.instructions[i].spec.opclass not in (
            OpClass.BRANCH, OpClass.JUMP, OpClass.META, OpClass.FREP)
    ]

    candidates = []
    options = ([phase0_thread] if phase0_thread is not None
               else [Thread.FP, Thread.INT])
    for option in options:
        result = _partition_with_parity(dfg, option, analysable, sweeps)
        if result is not None:
            candidates.append(result)
    if not candidates:
        raise ValueError("no feasible phase partition found")
    return min(candidates,
               key=lambda r: (len(r.phases), r.n_cut_edges))
