"""COPIFT Step 3: reorder instructions by phase.

Given a Step-2 partition, emit the block's instructions as consecutive
groups of integer-only / FP-only instructions, respecting every
dependency inside each loop iteration.  Within a phase the original
program order is kept (it is a valid topological order of the phase's
subgraph, because DFG edges always point forward in program order).
"""

from __future__ import annotations

from ..isa.program import Instruction
from .partition import Partition


def reorder(partition: Partition) -> list[Instruction]:
    """Return the block's instructions grouped by phase (Step 3)."""
    ordered: list[Instruction] = []
    for phase in partition.phases:
        for node in phase.nodes:
            ordered.append(partition.dfg.instructions[node])
    return ordered


def phase_slices(partition: Partition) -> list[tuple[int, int]]:
    """(start, end) index ranges of each phase in the reordered list."""
    slices = []
    position = 0
    for phase in partition.phases:
        slices.append((position, position + len(phase.nodes)))
        position += len(phase.nodes)
    return slices
