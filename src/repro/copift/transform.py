"""Automated COPIFT code generation for two-phase (INT→FP) kernels.

The paper presents COPIFT as a methodology "followed by developers";
this module automates the common case end to end.  A kernel described
by a :class:`TwoPhaseSpec` — an integer phase producing values and an
FP phase consuming them — is compiled into the full COPIFT program:

* Step 4: the element loop is tiled into blocks; the integer phase
  writes its per-element values into 8-byte stream slots of a column;
* Step 5: two columns rotate (producer/consumer distance 1 → double
  buffering, per the replication rule);
* Step 6: the FP phase's reads are a single 1-D SSR stream over the
  consumer column; an optional output stream writes results straight
  to the destination array;
* Step 7: the FP body runs under one ``frep`` spanning the block,
  emitted *before* the integer phase of each macro-iteration.

The six paper kernels are hand-scheduled for count fidelity (see
``repro.kernels``); this generator trades a little polish for zero
hand-written pipeline code, and is exercised by the ``dither`` demo
kernel and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..isa.instructions import Thread
from ..isa.program import Program, ProgramBuilder
from ..sim import Allocator
from ..sim.ssr import (
    F_BOUND0, F_RPTR, F_STATUS, F_STRIDE0, F_WPTR, encode_cfg_imm,
)
from .frep_mapping import FrepBodyError


@dataclass(frozen=True)
class TwoPhaseSpec:
    """A kernel with one integer phase feeding one FP phase.

    Attributes:
        name: Kernel name (for the program and reports).
        emit_setup: Emits one-time setup (constants, PRNG state...).
        emit_int_element: Emits the integer phase for unroll-element
            *u* of one loop iteration.  Contract: values for element
            ``u`` are stored through register ``a7`` at byte offsets
            ``(u * pops_per_element + k) * 8`` for slot ``k``; the
            generator owns ``a7``, ``t2`` and the loop control.
        emit_fp_body: Emits the FP phase for ONE element: it must pop
            ``ft0`` exactly ``pops_per_element`` times and push ``ft2``
            exactly ``pushes_per_element`` times, touch no integer
            registers, and fit the FREP buffer.
        pops_per_element: 8-byte stream slots consumed per element.
        pushes_per_element: 8-byte results produced per element.
        unroll: Integer-phase unroll factor.
        emit_finalize: Optional epilogue (e.g. spilling an FP
            accumulator) emitted after the pipeline drains, with SSRs
            disabled.
    """

    name: str
    emit_setup: Callable[[ProgramBuilder], None]
    emit_int_element: Callable[[ProgramBuilder, int], None]
    emit_fp_body: Callable[[ProgramBuilder], None]
    pops_per_element: int = 1
    pushes_per_element: int = 1
    unroll: int = 4
    emit_finalize: Callable[[ProgramBuilder], None] | None = None


@dataclass
class TwoPhaseBuild:
    """Result of :func:`generate_two_phase`: program + layout facts."""

    program: Program
    arena_addr: int
    output_addr: int | None
    column_bytes: int
    fp_body_length: int


def _validate_body(spec: TwoPhaseSpec,
                   frep_buffer_size: int = 16) -> int:
    scratch = ProgramBuilder()
    spec.emit_fp_body(scratch)
    body = scratch._instructions
    if not body:
        raise FrepBodyError(f"{spec.name}: FP body is empty")
    if len(body) > frep_buffer_size:
        raise FrepBodyError(
            f"{spec.name}: FP body of {len(body)} instructions "
            f"exceeds the {frep_buffer_size}-entry FREP buffer"
        )
    pops = sum(
        1 for instr in body for reg in instr.fp_reads
        if reg.index == 0
    )
    pushes = sum(
        1 for instr in body for reg in instr.fp_writes
        if reg.index == 2
    )
    if pops != spec.pops_per_element:
        raise FrepBodyError(
            f"{spec.name}: FP body pops ft0 {pops} times, spec "
            f"declares {spec.pops_per_element}"
        )
    if pushes != spec.pushes_per_element:
        raise FrepBodyError(
            f"{spec.name}: FP body pushes ft2 {pushes} times, spec "
            f"declares {spec.pushes_per_element}"
        )
    for instr in body:
        if instr.thread is not Thread.FP or instr.int_reads \
                or instr.int_writes:
            raise FrepBodyError(
                f"{spec.name}: illegal FREP body instruction "
                f"{instr.render()!r}"
            )
    return len(body)


def generate_two_phase(spec: TwoPhaseSpec, n: int, block: int,
                       alloc: Allocator) -> TwoPhaseBuild:
    """Compile *spec* into a complete COPIFT program for *n* elements.

    The ``main`` region wraps the software-pipelined computation, as in
    the hand-written kernels.

    Raises:
        ValueError: for inconsistent n/block/unroll.
        FrepBodyError: if the FP body violates its contract.
    """
    if block % spec.unroll != 0:
        raise ValueError("block must be a multiple of the unroll factor")
    if n % block != 0:
        raise ValueError("n must be a multiple of block")
    nb = n // block
    if nb < 2:
        raise ValueError("need at least 2 blocks for double buffering")
    body_len = _validate_body(spec)

    slot = 8 * spec.pops_per_element
    column_bytes = slot * block
    arena = alloc.alloc(f"{spec.name}_arena", 2 * column_bytes)
    output_addr = None
    if spec.pushes_per_element:
        output_addr = alloc.alloc(
            f"{spec.name}_out", 8 * spec.pushes_per_element * n)

    b = ProgramBuilder(f"{spec.name}_copift")
    spec.emit_setup(b)
    b.li("s2", arena)                       # cw
    b.li("s3", arena + column_bytes)        # cr
    b.li("s5", block - 1)                   # FREP reps - 1

    def cfg_imm(value: int, field_code: int, ssr: int) -> None:
        b.li("t0", value)
        b.scfgwi("t0", encode_cfg_imm(field_code, ssr))

    # SSR0: the value stream (1-D, pops_per_element * block slots).
    cfg_imm(1, F_STATUS, 0)
    cfg_imm(spec.pops_per_element * block - 1, F_BOUND0, 0)
    cfg_imm(8, F_STRIDE0, 0)
    if spec.pushes_per_element:
        cfg_imm(1, F_STATUS, 2)
        cfg_imm(spec.pushes_per_element * block - 1, F_BOUND0, 2)
        cfg_imm(8, F_STRIDE0, 2)
        b.li("a1", output_addr)             # output cursor

    def int_phase() -> None:
        b.mv("a7", "s2")
        b.addi("t2", "s2", column_bytes)
        loop = b.fresh_label(f"{spec.name}_int")
        b.label(loop)
        for u in range(spec.unroll):
            spec.emit_int_element(b, u)
        b.addi("a7", "a7", slot * spec.unroll)
        b.bne("a7", "t2", loop)

    def fp_phase() -> None:
        b.scfgwi("s3", encode_cfg_imm(F_RPTR, 0))
        if spec.pushes_per_element:
            b.scfgwi("a1", encode_cfg_imm(F_WPTR, 2))
        scratch = ProgramBuilder()
        spec.emit_fp_body(scratch)
        b.frep_o("s5", len(scratch._instructions))
        b.extend(scratch._instructions)
        if spec.pushes_per_element:
            b.addi("a1", "a1", 8 * spec.pushes_per_element * block)

    def swap_columns() -> None:
        b.mv("t6", "s2")
        b.mv("s2", "s3")
        b.mv("s3", "t6")

    b.ssr_enable()
    b.mark("main_start")
    int_phase()                             # prologue: block 0
    swap_columns()
    if nb > 1:
        b.li("s7", nb - 1)
        steady = b.fresh_label(f"{spec.name}_steady")
        b.label(steady)
        fp_phase()
        int_phase()
        swap_columns()
        b.addi("s7", "s7", -1)
        b.bnez("s7", steady)
    fp_phase()                              # epilogue: final block
    b.mark("main_end")
    b.ssr_disable()
    if spec.emit_finalize is not None:
        spec.emit_finalize(b)

    return TwoPhaseBuild(
        program=b.build(),
        arena_addr=arena,
        output_addr=output_addr,
        column_bytes=column_bytes,
        fp_body_length=body_len,
    )
