"""COPIFT Step 7: wrapping FP phase bodies in FREP loops.

FP block computations become hardware loops issued by the FPSS
sequencer.  Because the first iteration is dispatched by the integer
core, the FREP loop must *precede* the integer loop in program order so
the remaining iterations overlap with the integer thread; when a block
iteration runs two FP phases (e.g. phase 0 of block j and phase 2 of
block j-2), they are fused into a single FREP body so both overlap with
the integer phase (paper Fig. 1j).

:func:`emit_frep` validates the paper's hardware constraints at build
time: the body must fit the sequencer buffer and must not touch the
integer register file (that is exactly what SSRs and the COPIFT custom
ISA extension are for).
"""

from __future__ import annotations

from typing import Callable

from ..isa.instructions import Thread
from ..isa.program import ProgramBuilder


class FrepBodyError(ValueError):
    """The emitted body violates FREP hardware constraints."""


def emit_frep(builder: ProgramBuilder, reps_reg: str,
              body: Callable[[ProgramBuilder], None],
              buffer_size: int = 16) -> int:
    """Emit ``frep.o reps_reg, n`` followed by the *body* instructions.

    *reps_reg* must hold (iterations - 1) at runtime.  Returns the body
    length n.

    Raises:
        FrepBodyError: empty body, body too large for the sequencer
            buffer, or body instructions that are not pure-FP.
    """
    # Emit the body first into a scratch builder to learn its length,
    # then splice: frep.o needs the instruction count immediate.
    scratch = ProgramBuilder()
    body(scratch)
    instructions = scratch._instructions
    n = len(instructions)
    if n == 0:
        raise FrepBodyError("FREP body is empty")
    if n > buffer_size:
        raise FrepBodyError(
            f"FREP body of {n} instructions exceeds the "
            f"{buffer_size}-entry sequencer buffer; split the phase or "
            f"reduce unrolling"
        )
    for instr in instructions:
        if instr.thread is not Thread.FP:
            raise FrepBodyError(
                f"non-FP instruction in FREP body: {instr.render()!r}"
            )
        if instr.int_reads or instr.int_writes:
            raise FrepBodyError(
                f"FREP body instruction touches the integer RF: "
                f"{instr.render()!r} — map the access to an SSR or use "
                f"the COPIFT custom-1 re-encoding"
            )
    builder.frep_o(reps_reg, n)
    builder.extend(instructions)
    return n
