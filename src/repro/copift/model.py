"""COPIFT analytical performance model (paper Equations 1-3).

From easily measurable kernel characteristics — the number of integer
and FP instructions in the baseline and COPIFT variants — the paper
derives first-order estimates of speedup and IPC gain:

* ``S'  = (n_int_base + n_fp_base) / max(n_int_copift, n_fp_copift)``
  (Eq. 1) — expected speedup, assuming similar per-thread IPC.
* ``I'  = (n_int_copift + n_fp_copift) / max(n_int_copift, n_fp_copift)``
  (Eq. 2) — expected dual-issue IPC (relative to 1.0 single-issue).
* ``S'' = 1 + TI``  with thread imbalance
  ``TI = min(n_int_base, n_fp_base) / max(n_int_base, n_fp_base)``
  (Eq. 3) — speedup estimated from the baseline mix alone, exact when
  the instruction count is unchanged by the transformation.

These drive Table I and the dashed expectation lines in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstructionMix:
    """Integer/FP instruction counts of one steady-state loop iteration."""

    n_int: int
    n_fp: int

    @property
    def total(self) -> int:
        return self.n_int + self.n_fp

    @property
    def thread_imbalance(self) -> float:
        """TI = min/max of the two thread populations (Eq. 3)."""
        hi = max(self.n_int, self.n_fp)
        if hi == 0:
            return 0.0
        return min(self.n_int, self.n_fp) / hi


def expected_speedup(base: InstructionMix,
                     copift: InstructionMix) -> float:
    """S' (Eq. 1): speedup assuming both threads sustain similar IPC."""
    bottleneck = max(copift.n_int, copift.n_fp)
    if bottleneck == 0:
        raise ValueError("COPIFT variant has no instructions")
    return base.total / bottleneck


def expected_ipc_gain(copift: InstructionMix) -> float:
    """I' (Eq. 2): dual-issue IPC of the COPIFT variant."""
    bottleneck = max(copift.n_int, copift.n_fp)
    if bottleneck == 0:
        raise ValueError("COPIFT variant has no instructions")
    return copift.total / bottleneck


def expected_speedup_from_baseline(base: InstructionMix) -> float:
    """S'' = I'' = 1 + TI (Eq. 3): estimate from the baseline mix alone.

    Uses the identity ``a + b = max(a, b) + min(a, b)``, valid when the
    transformation leaves instruction counts roughly unchanged.
    """
    return 1.0 + base.thread_imbalance


@dataclass(frozen=True)
class KernelModel:
    """Table-I row: characteristics + analytical expectations."""

    name: str
    base: InstructionMix
    copift: InstructionMix
    #: Integer load/stores added by spilling in Step 4 (per iteration).
    int_ldst_delta: int = 0
    #: Distinct inter-phase buffers after Step 4 (before replication).
    buffers_step4: int = 0
    #: FP load/stores eliminated by SSR mapping in Step 6.
    fp_ldst_delta: int = 0
    #: Total buffers after software-pipelining replication (Step 5).
    buffers_step5: int = 0
    #: Largest block size fitting the L1 budget.
    max_block: int = 0

    @property
    def thread_imbalance(self) -> float:
        return self.base.thread_imbalance

    @property
    def s_prime(self) -> float:
        return expected_speedup(self.base, self.copift)

    @property
    def s_double_prime(self) -> float:
        return expected_speedup_from_baseline(self.base)

    @property
    def i_prime(self) -> float:
        return expected_ipc_gain(self.copift)
