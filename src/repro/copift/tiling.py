"""COPIFT Steps 4-5: loop tiling, fission and software pipelining plans.

Step 4 tiles the element loop into blocks of ``B`` elements and fissions
it into one loop per phase; every value crossing a phase boundary (a cut
edge from Step 2) is spilled to a block-sized buffer.  Step 5 software-
pipelines the block schedule so that, in macro-iteration ``j'``, phase
``p`` processes block ``j' - p``; a buffer communicating from phase ``p``
to phase ``q`` must then be replicated ``(q - p) + 1`` times (the
distance between the phases in the total order, plus one — paper §II-A).

This module computes those plans: which buffers exist, how many replicas
each needs, how much scratchpad they consume, and the largest block size
that fits a given L1 budget (Table I's "Max Block" column).
"""

from __future__ import annotations

from dataclasses import dataclass

from .partition import Partition


@dataclass(frozen=True)
class BufferSpec:
    """One inter-phase communication buffer.

    Attributes:
        name: Buffer name (derived from the value it carries).
        producer: Phase index producing the value (``-1`` for DMA-staged
            kernel inputs).
        consumer: Phase index consuming it (``n_phases`` for outputs).
        elem_bytes: Bytes per element.
        replicas: Copies required by the software-pipelined schedule.
    """

    name: str
    producer: int
    consumer: int
    elem_bytes: int = 8

    @property
    def distance(self) -> int:
        return self.consumer - self.producer

    @property
    def replicas(self) -> int:
        return self.distance + 1

    def bytes_for_block(self, block: int) -> int:
        return self.replicas * self.elem_bytes * block


@dataclass
class TilingPlan:
    """Steps 4-5 output: buffers, replication, block-size limits."""

    buffers: list[BufferSpec]
    n_phases: int
    #: Fixed per-kernel scratchpad overhead (lookup tables, constants).
    fixed_bytes: int = 0

    @property
    def buffers_step4(self) -> int:
        """Distinct buffers before replication (Table I Step-4 column)."""
        return len(self.buffers)

    @property
    def buffers_step5(self) -> int:
        """Total buffer instances after replication (Step-5 column)."""
        return sum(b.replicas for b in self.buffers)

    def bytes_for_block(self, block: int) -> int:
        return self.fixed_bytes + sum(
            b.bytes_for_block(block) for b in self.buffers
        )

    def max_block(self, l1_budget: int, multiple_of: int = 1) -> int:
        """Largest block size whose buffers fit in *l1_budget* bytes."""
        per_element = sum(
            b.replicas * b.elem_bytes for b in self.buffers
        )
        if per_element == 0:
            raise ValueError("plan has no per-element buffers")
        block = (l1_budget - self.fixed_bytes) // per_element
        if multiple_of > 1:
            block -= block % multiple_of
        if block <= 0:
            raise ValueError(
                f"L1 budget of {l1_budget} bytes cannot fit even one "
                f"block element ({per_element} B/element + "
                f"{self.fixed_bytes} B fixed)"
            )
        return block


def plan_from_partition(partition: Partition,
                        input_buffers: dict[str, int] | None = None,
                        output_buffers: dict[str, int] | None = None,
                        elem_bytes: int = 8,
                        fixed_bytes: int = 0) -> TilingPlan:
    """Derive a tiling plan from a Step-2 partition.

    Cut edges carrying the same value (same source instruction) share
    one buffer; 8-byte values assembled from two 4-byte stores (the
    ``t`` buffer in the paper's example) are merged by their destination
    token.

    Args:
        partition: Step-2 result.
        input_buffers: name -> elem_bytes of DMA-staged kernel inputs
            (producer stage ``-1``).
        output_buffers: name -> elem_bytes of kernel outputs
            (consumer stage ``n_phases``).
        elem_bytes: Default element size of spill buffers.
        fixed_bytes: Constant scratchpad overhead (lookup tables...).
    """
    n_phases = len(partition.phases)
    buffers: list[BufferSpec] = []
    seen: set[tuple] = set()
    for dep in partition.cut_edges:
        producer = partition.phase_of[dep.src]
        consumer = partition.phase_of[dep.dst]
        # One buffer per produced value: dedupe by source instruction,
        # merging multi-word assemblies by their memory destination.
        instr = partition.dfg.instructions[dep.src]
        if instr.spec.is_store and instr.mem_base is not None:
            key = ("mem", instr.mem_base, producer, consumer)
        else:
            key = ("val", dep.src, consumer)
        if key in seen:
            continue
        seen.add(key)
        buffers.append(BufferSpec(
            name=f"spill{len(buffers)}",
            producer=producer,
            consumer=consumer,
            elem_bytes=elem_bytes,
        ))
    for name, size in (input_buffers or {}).items():
        buffers.append(BufferSpec(name, -1, 0, size))
    for name, size in (output_buffers or {}).items():
        buffers.append(BufferSpec(name, n_phases - 1, n_phases, size))
    return TilingPlan(buffers, n_phases, fixed_bytes)
