"""COPIFT Step 6: mapping FP load/stores to SSR streams, with fusion.

After tiling, every FP memory access reads or writes a contiguous
block-sized buffer — a one-dimensional affine stream.  Snitch has three
SSRs, so when a kernel needs more streams than that, *stream fusion*
merges several lower-dimensional affine streams into one
higher-dimensional stream (paper Fig. 1i): consecutive buffers laid out
at a constant pitch become an extra dimension whose stride is the pitch.

This module provides the stream descriptors, the fusion algorithm, the
assignment onto the three architectural SSRs, and the ``scfgwi``
configuration-code emission used by the kernel generators.

Type 1 (dynamically addressed) streams either get converted to Type 2 by
integer-side prefetching (paper Fig. 1h) or are mapped onto an ISSR with
an index buffer (:class:`IndirectStream`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.program import ProgramBuilder
from ..sim import ssr as ssrdef


@dataclass(frozen=True)
class AffineStream:
    """An n-dimensional affine stream (bounds are iteration *counts*).

    ``bounds[0]``/``strides[0]`` is the innermost dimension.  The
    element sequence visits
    ``base + sum_d i_d * strides[d]`` for ``i_d in range(bounds[d])``,
    innermost first.
    """

    name: str
    direction: str                      # "read" | "write"
    bounds: tuple[int, ...]
    strides: tuple[int, ...]
    #: Symbolic base: resolved to an address by the kernel at runtime.
    base_symbol: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("read", "write"):
            raise ValueError(f"bad direction {self.direction!r}")
        if len(self.bounds) != len(self.strides):
            raise ValueError("bounds/strides rank mismatch")
        if not 1 <= len(self.bounds) <= 4:
            raise ValueError("streams must have 1-4 dimensions")
        if any(b < 1 for b in self.bounds):
            raise ValueError("all bounds must be ≥ 1")

    @property
    def rank(self) -> int:
        return len(self.bounds)

    @property
    def elements(self) -> int:
        n = 1
        for b in self.bounds:
            n *= b
        return n


@dataclass(frozen=True)
class IndirectStream:
    """An ISSR stream: gathers ``base[index[i] << shift]``.

    The index pattern itself is affine (usually a contiguous index
    buffer filled by the integer thread or prepared ahead of time).
    """

    name: str
    bounds: tuple[int, ...]
    strides: tuple[int, ...]
    index_symbol: str
    base_symbol: str
    index_bytes: int = 4
    shift: int = 3                     # << 3: 8-byte elements

    @property
    def elements(self) -> int:
        n = 1
        for b in self.bounds:
            n *= b
        return n


def fuse_streams(streams: list[AffineStream], pitch: int,
                 name: str = "") -> AffineStream:
    """Fuse same-shaped streams laid out *pitch* bytes apart (Fig. 1i).

    The fused stream iterates the original pattern, then hops ``pitch``
    bytes to the next buffer: one extra outer dimension of bound
    ``len(streams)``.

    Raises:
        ValueError: if shapes or directions differ, or the fused stream
            would exceed 4 dimensions.
    """
    if len(streams) < 2:
        raise ValueError("fusion needs at least two streams")
    first = streams[0]
    for other in streams[1:]:
        if other.bounds != first.bounds or other.strides != first.strides:
            raise ValueError(
                f"cannot fuse {other.name}: shape differs from "
                f"{first.name}"
            )
        if other.direction != first.direction:
            raise ValueError("cannot fuse streams of mixed direction")
    if first.rank + 1 > 4:
        raise ValueError("fused stream would exceed 4 dimensions")
    return AffineStream(
        name=name or "+".join(s.name for s in streams),
        direction=first.direction,
        bounds=first.bounds + (len(streams),),
        strides=first.strides + (pitch,),
        base_symbol=first.base_symbol,
    )


@dataclass
class SSRAssignment:
    """Streams assigned to architectural SSR indices."""

    slots: dict[int, AffineStream | IndirectStream] = field(
        default_factory=dict
    )

    def slot_of(self, stream_name: str) -> int:
        for index, stream in self.slots.items():
            if stream.name == stream_name:
                return index
        raise KeyError(f"stream {stream_name!r} not assigned")


def assign_ssrs(
    streams: list[AffineStream | IndirectStream],
    n_ssrs: int = 3,
) -> SSRAssignment:
    """Assign *streams* to SSR slots, reads first (ft0 is conventionally
    the primary read stream).

    Raises:
        ValueError: if there are more streams than SSRs — the caller
            should fuse further or fall back to explicit load/stores.
    """
    if len(streams) > n_ssrs:
        raise ValueError(
            f"{len(streams)} streams exceed the {n_ssrs} available "
            f"SSRs; apply stream fusion first"
        )
    reads = [s for s in streams
             if isinstance(s, IndirectStream) or s.direction == "read"]
    writes = [s for s in streams if s not in reads]
    assignment = SSRAssignment()
    for index, stream in enumerate(reads + writes):
        assignment.slots[index] = stream
    return assignment


# ---------------------------------------------------------------------------
# Configuration code emission
# ---------------------------------------------------------------------------

def emit_stream_shape(builder: ProgramBuilder, ssr_index: int,
                      stream: AffineStream | IndirectStream,
                      scratch: str = "t0") -> None:
    """Emit the loop-invariant ``scfgwi`` writes for *stream*'s shape.

    Shape configuration (dims, bounds, strides, index setup) is hoisted
    out of the block loop; only the base pointer write (see
    :func:`emit_stream_base`) recurs per block.
    """
    def write(field_code: int, value: int) -> None:
        builder.li(scratch, value)
        builder.scfgwi(scratch, ssrdef.encode_cfg_imm(field_code,
                                                      ssr_index))

    bounds = stream.bounds
    strides = stream.strides
    write(ssrdef.F_STATUS, len(bounds))
    for dim, (bound, stride) in enumerate(zip(bounds, strides)):
        write(ssrdef.F_BOUND0 + dim, bound - 1)
        write(ssrdef.F_STRIDE0 + dim, stride & 0xFFFFFFFF)
    if isinstance(stream, IndirectStream):
        write(ssrdef.F_IDX_CFG, stream.index_bytes | (stream.shift << 3))


def emit_stream_base(builder: ProgramBuilder, ssr_index: int,
                     stream: AffineStream | IndirectStream,
                     base_reg: str,
                     index_reg: str | None = None) -> None:
    """Arm *stream* with the base address held in *base_reg*.

    For indirect streams, *index_reg* holds the index-buffer address and
    must be written first (arming happens on the RPTR/WPTR write).
    """
    if isinstance(stream, IndirectStream):
        if index_reg is None:
            raise ValueError("indirect streams need index_reg")
        emit_indirect_base(builder, ssr_index, index_reg, base_reg)
        return
    field_code = (ssrdef.F_RPTR if stream.direction == "read"
                  else ssrdef.F_WPTR)
    builder.scfgwi(base_reg, ssrdef.encode_cfg_imm(field_code, ssr_index))


def emit_indirect_base(builder: ProgramBuilder, ssr_index: int,
                       index_reg: str, base_reg: str) -> None:
    """Arm an ISSR: index-buffer pointer first, then the data base."""
    builder.scfgwi(index_reg, ssrdef.encode_cfg_imm(
        ssrdef.F_IDX_BASE, ssr_index))
    builder.scfgwi(base_reg, ssrdef.encode_cfg_imm(
        ssrdef.F_RPTR, ssr_index))
