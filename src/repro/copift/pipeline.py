"""COPIFT Step 5: software-pipelined block schedule (paper Fig. 1f/1g/1j).

In the tiled schedule of Step 4, macro-iteration ``j`` runs every phase
on block ``j``.  Software pipelining skews the schedule so that in
macro-iteration ``j'`` phase ``p`` processes block ``j' - p``; dependent
phases are then one macro-iteration apart and can be overlapped (the FP
phases by the FREP sequencer, the integer phases by the core).

The schedule has a prologue (macro-iterations where late phases have no
block yet), a steady state, and an epilogue (early phases exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhaseWork:
    """Phase *phase* processes block *block* in one macro-iteration."""

    phase: int
    block: int


def pipelined_schedule(n_phases: int,
                       n_blocks: int) -> list[list[PhaseWork]]:
    """The full skewed schedule: one list of work items per ``j'``.

    Macro-iteration ``j'`` ranges over ``0 .. n_blocks + n_phases - 2``;
    phase ``p`` is active when ``0 <= j' - p < n_blocks``.
    """
    if n_phases < 1 or n_blocks < 1:
        raise ValueError("need at least one phase and one block")
    schedule = []
    for macro in range(n_blocks + n_phases - 1):
        work = [
            PhaseWork(phase, macro - phase)
            for phase in range(n_phases)
            if 0 <= macro - phase < n_blocks
        ]
        schedule.append(work)
    return schedule


def steady_state_range(n_phases: int,
                       n_blocks: int) -> tuple[int, int]:
    """Macro-iteration interval [start, end) where all phases are active."""
    start = n_phases - 1
    end = n_blocks
    if end < start:
        # Too few blocks for a steady state; the schedule is all
        # prologue/epilogue.
        return (start, start)
    return (start, end)


def buffer_rotation(replicas: int, macro: int) -> int:
    """Index of the buffer replica a producer uses in macro-iteration
    *macro* (consumers at distance ``d`` read replica
    ``(macro - d) % replicas``)."""
    return macro % replicas
