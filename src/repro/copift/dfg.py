"""COPIFT Step 1: data-flow graph construction and dependency typing.

Builds a DFG over one loop body (a basic block of RISC-V instructions)
and classifies every dependency crossing the integer/FP thread boundary
into the paper's three types (§II-A):

* **Type 1** — dynamic memory dependencies: FP loads/stores whose address
  register is computed inside the block (loop-varying address).
* **Type 2** — static memory dependencies: FP loads/stores with a
  loop-invariant (statically determined) address, communicating with the
  integer thread through memory.
* **Type 3** — register dependencies: FP conversion, move and comparison
  instructions reading or writing the integer register file directly.

Memory disambiguation uses base-register versioning: two accesses alias
iff they use the same base register *version* (no intervening write to
the base) and the same offset.  This is exact for the paper's kernels and
examples, where inter-thread memory traffic goes through named buffers;
a ``conservative_memory`` switch treats every store→load pair as
potentially aliasing instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx

from ..isa.instructions import OpClass, Thread
from ..isa.program import Instruction
from ..isa.registers import Register


class DepKind(enum.Enum):
    """Dependency edge classification."""

    INT_REG = "int_reg"        # through an integer register (same thread)
    FP_REG = "fp_reg"          # through an FP register (same thread)
    TYPE1 = "type1"            # dynamic memory dependency (cross-thread)
    TYPE2 = "type2"            # static memory dependency (cross-thread)
    TYPE3 = "type3"            # cross-RF register dependency
    MEM = "mem"                # same-thread memory dependency


@dataclass(frozen=True)
class Dependency:
    """One DFG edge: *src* produces a value consumed by *dst*."""

    src: int
    dst: int
    kind: DepKind
    #: The register or (base, version, offset) token carrying the value.
    token: object = None

    @property
    def is_cross_thread(self) -> bool:
        return self.kind in (DepKind.TYPE1, DepKind.TYPE2, DepKind.TYPE3)


@dataclass
class DataFlowGraph:
    """DFG of one loop body.

    Attributes:
        instructions: The analysed block, in program order.
        deps: All dependency edges.
        graph: networkx DiGraph view (nodes = instruction indices).
    """

    instructions: list[Instruction]
    deps: list[Dependency]
    graph: nx.DiGraph = field(repr=False)

    def thread_of(self, node: int) -> Thread:
        return self.instructions[node].thread

    @property
    def cross_thread_deps(self) -> list[Dependency]:
        return [d for d in self.deps if d.is_cross_thread]

    def deps_of_kind(self, kind: DepKind) -> list[Dependency]:
        return [d for d in self.deps if d.kind is kind]


def _classify_reg_dep(producer: Instruction, consumer: Instruction,
                      register: Register) -> DepKind:
    if producer.thread is consumer.thread:
        if producer.thread is Thread.INT:
            return DepKind.INT_REG
        return DepKind.FP_REG
    # Cross-thread register edges.  An integer register feeding the
    # *address* of an FP load/store is a memory-addressing dependency,
    # refined to Type 1 by the caller; a value operand of a conversion /
    # move / comparison is Type 3.
    fp_side = consumer if consumer.thread is Thread.FP else producer
    if fp_side.spec.opclass in (OpClass.FP_LOAD, OpClass.FP_STORE):
        if register.cls.value == "int":
            return DepKind.TYPE1
    return DepKind.TYPE3


def build_dfg(instructions: list[Instruction],
              conservative_memory: bool = False) -> DataFlowGraph:
    """Construct the DFG of a straight-line block.

    Branches/jumps and META directives are excluded from the analysis
    (the paper analyses the loop body as a basic block); passing them in
    is allowed and they become isolated nodes.

    Args:
        instructions: Block instructions, in program order.
        conservative_memory: Treat every store as potentially aliasing
            every later load (no base-register disambiguation).
    """
    deps: list[Dependency] = []
    #: last writer index per register
    reg_writer: dict[Register, int] = {}
    #: register version (write count), for memory disambiguation
    reg_version: dict[Register, int] = {}
    #: (base, version, word_offset) -> last store index
    mem_writer: dict[tuple, int] = {}
    all_stores: list[int] = []

    _WIDE = {"fld", "fsd"}

    def mem_tokens(instr: Instruction) -> list[tuple]:
        """Word-granule alias tokens covered by a memory access.

        An 8-byte access covers two 4-byte words, so e.g. an ``fld``
        aliases both ``sw`` instructions that assembled its halves
        (the paper's 12→18 and 14→18 edges in Figure 1c).
        """
        base = instr.mem_base
        if base is None:
            return []
        width = 8 if instr.mnemonic in _WIDE else 4
        version = reg_version.get(base, 0)
        return [
            (base, version, instr.imm + word * 4)
            for word in range(width // 4)
        ]

    for i, instr in enumerate(instructions):
        opclass = instr.spec.opclass
        if opclass in (OpClass.BRANCH, OpClass.JUMP, OpClass.META,
                       OpClass.FREP):
            continue

        # Register RAW edges.
        for register in (*instr.int_reads, *instr.fp_reads):
            writer = reg_writer.get(register)
            if writer is not None:
                kind = _classify_reg_dep(instructions[writer], instr,
                                         register)
                deps.append(Dependency(writer, i, kind, register))

        # Memory RAW edges.
        if instr.spec.is_load:
            if conservative_memory:
                for store in all_stores:
                    deps.append(_mem_dep(instructions, store, i, None))
            else:
                sources = {
                    mem_writer[token]
                    for token in mem_tokens(instr)
                    if token in mem_writer
                }
                for store in sorted(sources):
                    deps.append(_mem_dep(instructions, store, i,
                                         instr.mem_base))

        if instr.spec.is_store:
            for token in mem_tokens(instr):
                mem_writer[token] = i
            all_stores.append(i)

        # Record writes last (an instruction cannot feed itself).
        for register in (*instr.int_writes, *instr.fp_writes):
            reg_writer[register] = i
            reg_version[register] = reg_version.get(register, 0) + 1

    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(instructions)))
    for dep in deps:
        graph.add_edge(dep.src, dep.dst, kind=dep.kind)
    return DataFlowGraph(list(instructions), deps, graph)


def _address_is_dynamic(instructions: list[Instruction],
                        node: int) -> bool:
    """True when the memory instruction's base register is written
    anywhere inside the block (loop-varying address → Type 1)."""
    base = instructions[node].mem_base
    if base is None:
        return False
    return any(
        base in other.int_writes
        for j, other in enumerate(instructions) if j != node
    )


def _mem_dep(instructions: list[Instruction], src: int, dst: int,
             token: tuple | None) -> Dependency:
    producer = instructions[src]
    consumer = instructions[dst]
    if producer.thread is consumer.thread:
        return Dependency(src, dst, DepKind.MEM, token)
    fp_node = src if producer.thread is Thread.FP else dst
    if _address_is_dynamic(instructions, fp_node):
        return Dependency(src, dst, DepKind.TYPE1, token)
    return Dependency(src, dst, DepKind.TYPE2, token)
