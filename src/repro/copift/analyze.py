"""One-shot COPIFT analysis: assembly in, transformation plan out.

:func:`analyze` runs Steps 1-5 of the methodology over a loop body
(given as assembly text or a :class:`~repro.isa.program.Program`) and
returns everything a developer needs before writing the transformed
kernel: the typed cross-thread dependencies, the phase partition, the
buffer/replication plan, the maximum block size, and the Eqs. 1-3
estimates.  This is the programmatic form of the walkthrough in
``examples/custom_kernel_copift.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.asm import parse
from ..isa.instructions import Thread
from ..isa.program import Program
from .dfg import DataFlowGraph, DepKind, build_dfg
from .model import InstructionMix, expected_speedup_from_baseline
from .partition import Partition, partition_dfg
from .tiling import TilingPlan, plan_from_partition


@dataclass(frozen=True)
class CopiftAnalysis:
    """Everything Steps 1-5 derive from one loop body."""

    program: Program
    dfg: DataFlowGraph
    partition: Partition
    plan: TilingPlan
    baseline_mix: InstructionMix

    @property
    def n_phases(self) -> int:
        return len(self.partition.phases)

    @property
    def cross_dependency_counts(self) -> dict[DepKind, int]:
        """How many Type 1/2/3 dependencies the block contains."""
        counts = {DepKind.TYPE1: 0, DepKind.TYPE2: 0, DepKind.TYPE3: 0}
        for dep in self.dfg.cross_thread_deps:
            counts[dep.kind] += 1
        return counts

    @property
    def expected_speedup(self) -> float:
        """S'' (Eq. 3) from the baseline mix alone."""
        return expected_speedup_from_baseline(self.baseline_mix)

    @property
    def needs_issr(self) -> bool:
        """True when Type 1 dependencies exist: map them to ISSRs or
        convert to Type 2 by integer-side prefetching (paper Fig. 1h)."""
        return self.cross_dependency_counts[DepKind.TYPE1] > 0

    @property
    def needs_custom_extension(self) -> bool:
        """True when Type 3 dependencies exist: the FREP body will need
        the custom-1 re-encodings (paper §II-B)."""
        return self.cross_dependency_counts[DepKind.TYPE3] > 0

    def max_block(self, l1_budget: int = 16 * 1024,
                  multiple_of: int = 4) -> int:
        return self.plan.max_block(l1_budget, multiple_of=multiple_of)

    def summary(self) -> str:
        """Human-readable digest of the analysis."""
        counts = self.cross_dependency_counts
        mix = self.baseline_mix
        lines = [
            f"block: {len(self.dfg.instructions)} instructions "
            f"({mix.n_int} int, {mix.n_fp} fp, TI "
            f"{mix.thread_imbalance:.2f})",
            f"cross-thread deps: {counts[DepKind.TYPE1]} type-1, "
            f"{counts[DepKind.TYPE2]} type-2, "
            f"{counts[DepKind.TYPE3]} type-3",
            f"phases: {self.n_phases} "
            f"({', '.join(p.thread.value for p in self.partition.phases)})"
            f", {self.partition.n_cut_edges} cut edges",
            f"buffers: {self.plan.buffers_step4} "
            f"(-> {self.plan.buffers_step5} after replication)",
            f"expected speedup S'': {self.expected_speedup:.2f}x",
        ]
        if self.needs_issr:
            lines.append("note: type-1 deps -> use ISSRs or prefetch")
        if self.needs_custom_extension:
            lines.append("note: type-3 deps -> use the custom-1 "
                         "extension in FREP bodies")
        return "\n".join(lines)


def analyze(source: str | Program,
            input_buffers: dict[str, int] | None = None,
            output_buffers: dict[str, int] | None = None) -> CopiftAnalysis:
    """Run COPIFT Steps 1-5 over a loop body.

    Args:
        source: Assembly text or an already-built program (one basic
            block; control flow is ignored, as in the paper's analysis).
        input_buffers: name -> element bytes of DMA-staged inputs.
        output_buffers: name -> element bytes of outputs.
    """
    program = parse(source) if isinstance(source, str) else source
    dfg = build_dfg(program.instructions)
    partition = partition_dfg(dfg)
    plan = plan_from_partition(
        partition,
        input_buffers=input_buffers,
        output_buffers=output_buffers,
    )
    counts = program.count_by_thread()
    mix = InstructionMix(counts[Thread.INT], counts[Thread.FP])
    return CopiftAnalysis(program, dfg, partition, plan, mix)
