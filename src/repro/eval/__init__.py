"""Evaluation harness: the paper's Table I and Figures 2-3, plus the
cluster-scaling artifact (``clusterscale``) and the process-parallel
sweep sharding behind ``--jobs`` (:mod:`repro.eval.parallel`)."""

from .parallel import default_jobs, run_sharded
from .runner import (
    KernelMeasurement,
    VariantMeasurement,
    geomean,
    measure_instance,
    measure_kernel,
)

__all__ = [
    "KernelMeasurement",
    "VariantMeasurement",
    "default_jobs",
    "geomean",
    "measure_instance",
    "measure_kernel",
    "run_sharded",
]
