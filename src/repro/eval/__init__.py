"""Evaluation harness: the paper's Table I and Figures 2-3, plus the
scaling artifacts (``clusterscale``, ``socscale``).

Artifacts are built on the unified experiment API (:mod:`repro.api`):
each module registers itself with ``@artifact(...)`` and runs its
measurements through ``Workload``/``Backend``/``Sweep``.  The legacy
``measure_instance``/``measure_kernel`` helpers remain as thin shims
over :class:`repro.api.RunRecord`.
"""

from .parallel import default_jobs, run_sharded

# Importing the artifact modules populates the ``repro.api`` artifact
# registry, so library users see the same registry the CLI dispatches
# from (not just after a ``python -m repro.eval`` run).
from . import (  # noqa: F401
    clusterscale,
    composite,
    fig2,
    fig3,
    report,
    socscale,
    streamscale,
    table1,
)
from .runner import (
    KernelMeasurement,
    VariantMeasurement,
    geomean,
    measure_instance,
    measure_kernel,
)

__all__ = [
    "KernelMeasurement",
    "VariantMeasurement",
    "default_jobs",
    "geomean",
    "measure_instance",
    "measure_kernel",
    "run_sharded",
]
