"""Evaluation harness: the paper's Table I and Figures 2-3, plus the
cluster-scaling artifact (``clusterscale``)."""

from .runner import (
    KernelMeasurement,
    VariantMeasurement,
    geomean,
    measure_instance,
    measure_kernel,
)

__all__ = [
    "KernelMeasurement",
    "VariantMeasurement",
    "geomean",
    "measure_instance",
    "measure_kernel",
]
