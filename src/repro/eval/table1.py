"""Table I regeneration: kernel characteristics and model expectations.

For each kernel we measure the dynamic instruction mix of the main
region (normalized to the paper's 4-element loop iterations), derive
the analytical columns (TI, I′, S″, S′ — Eqs. 1-3) and the maximum
block size from the buffer plan, and print them next to the paper's
values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..copift.model import InstructionMix, KernelModel
from ..kernels.registry import KERNELS, KernelDef
from ..sim import CoreConfig
from .runner import measure_kernel

#: Scratchpad budget for COPIFT buffers, matching the scale implied by
#: the paper's Max-Block column (341 blocks × 6 buffers × 8 B ≈ 16 KiB).
L1_BUFFER_BUDGET = 16 * 1024

#: Bytes of rotated buffer arena per block element for each kernel
#: (from the kernels' column layouts; see each kernel module).
ARENA_BYTES_PER_ELEMENT = {
    "expf": 3 * 4 * 8,            # 3 columns x [ki|w|y|t]
    "logf": 2 * 3 * 8,            # 2 columns x [z|ki|idx]
    "pi_lcg": 2 * 16,             # 2 columns x (x,y) pairs
    "poly_lcg": 2 * 16,
    "pi_xoshiro128p": 2 * 16,
    "poly_xoshiro128p": 2 * 16,
}


@dataclass(frozen=True)
class Table1Row:
    """Measured + derived Table-I row, with the paper's row alongside."""

    measured: KernelModel
    paper: KernelModel

    @property
    def name(self) -> str:
        return self.measured.name


def measured_model(kernel_def: KernelDef, n: int = 2048,
                   config: CoreConfig | None = None) -> KernelModel:
    """Build a Table-I row from dynamic measurements of our kernels."""
    result = measure_kernel(kernel_def, n=n, config=config, check=False)
    unroll = 4

    def mix(variant) -> InstructionMix:
        return InstructionMix(
            round(variant.int_instructions * unroll / n),
            round(variant.fp_instructions * unroll / n),
        )

    per_element = ARENA_BYTES_PER_ELEMENT[kernel_def.name]
    max_block = (L1_BUFFER_BUDGET // per_element) & ~3
    return KernelModel(
        name=kernel_def.name,
        base=mix(result.baseline),
        copift=mix(result.copift),
        max_block=max_block,
    )


def generate(n: int = 2048,
             config: CoreConfig | None = None) -> list[Table1Row]:
    """All Table-I rows, in the paper's order."""
    rows = []
    for kernel_def in KERNELS.values():
        rows.append(Table1Row(
            measured=measured_model(kernel_def, n=n, config=config),
            paper=kernel_def.paper_model(),
        ))
    return rows


def render(rows: list[Table1Row]) -> str:
    """Text rendering, ours vs the paper's values."""
    header = (
        f"{'Kernel':<18} {'#Int':>9} {'#FP':>9} {'TI':>11} "
        f"{'CP#Int':>11} {'CP#FP':>11} {'I_':>11} {'S__':>11} "
        f"{'S_':>11} {'MaxBlk':>13}"
    )
    lines = ["Table I: kernel characteristics (measured | paper)",
             header, "-" * len(header)]

    def pair(mine, theirs, fmt="{:.0f}") -> str:
        return f"{fmt.format(mine)}|{fmt.format(theirs)}"

    for row in rows:
        m, p = row.measured, row.paper
        lines.append(
            f"{row.name:<18} "
            f"{pair(m.base.n_int, p.base.n_int):>9} "
            f"{pair(m.base.n_fp, p.base.n_fp):>9} "
            f"{pair(m.thread_imbalance, p.thread_imbalance, '{:.2f}'):>11} "
            f"{pair(m.copift.n_int, p.copift.n_int):>11} "
            f"{pair(m.copift.n_fp, p.copift.n_fp):>11} "
            f"{pair(m.i_prime, p.i_prime, '{:.2f}'):>11} "
            f"{pair(m.s_double_prime, p.s_double_prime, '{:.2f}'):>11} "
            f"{pair(m.s_prime, p.s_prime, '{:.2f}'):>11} "
            f"{pair(m.max_block, p.max_block):>13}"
        )
    return "\n".join(lines)
