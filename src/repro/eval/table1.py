"""Table I regeneration: kernel characteristics and model expectations.

For each kernel we measure the dynamic instruction mix of the main
region (normalized to the paper's 4-element loop iterations), derive
the analytical columns (TI, I′, S″, S′ — Eqs. 1-3) and the maximum
block size from the buffer plan, and print them next to the paper's
values.  Measurements flow through the unified experiment API: one
:class:`~repro.api.Sweep` of every kernel pair on the ``core`` backend.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from ..api import (
    ArtifactRequest,
    ArtifactResult,
    CoreBackend,
    RunRecord,
    Sweep,
    Workload,
    artifact,
)
from ..copift.model import InstructionMix, KernelModel
from ..kernels.registry import KERNELS, KernelDef
from ..sim import CoreConfig

#: Scratchpad budget for COPIFT buffers, matching the scale implied by
#: the paper's Max-Block column (341 blocks × 6 buffers × 8 B ≈ 16 KiB).
L1_BUFFER_BUDGET = 16 * 1024

#: Largest problem size the instruction-mix measurement needs; beyond
#: this the normalized per-iteration counts are already converged, so
#: the CLI clamps (with a warning) instead of burning simulation time.
MAX_MEASURE_N = 2048

#: Bytes of rotated buffer arena per block element for each kernel
#: (from the kernels' column layouts; see each kernel module).
ARENA_BYTES_PER_ELEMENT = {
    "expf": 3 * 4 * 8,            # 3 columns x [ki|w|y|t]
    "logf": 2 * 3 * 8,            # 2 columns x [z|ki|idx]
    "pi_lcg": 2 * 16,             # 2 columns x (x,y) pairs
    "poly_lcg": 2 * 16,
    "pi_xoshiro128p": 2 * 16,
    "poly_xoshiro128p": 2 * 16,
}


@dataclass(frozen=True)
class Table1Row:
    """Measured + derived Table-I row, with the paper's row alongside."""

    measured: KernelModel
    paper: KernelModel

    @property
    def name(self) -> str:
        return self.measured.name


def model_from_records(kernel_def: KernelDef, baseline: RunRecord,
                       copift: RunRecord, n: int) -> KernelModel:
    """Derive the measured Table-I row from one kernel's run records."""
    unroll = 4

    def mix(record: RunRecord) -> InstructionMix:
        return InstructionMix(
            round(record.int_instructions * unroll / n),
            round(record.fp_instructions * unroll / n),
        )

    per_element = ARENA_BYTES_PER_ELEMENT[kernel_def.name]
    max_block = (L1_BUFFER_BUDGET // per_element) & ~3
    return KernelModel(
        name=kernel_def.name,
        base=mix(baseline),
        copift=mix(copift),
        max_block=max_block,
    )


def measured_model(kernel_def: KernelDef, n: int = 2048,
                   config: CoreConfig | None = None) -> KernelModel:
    """Build a Table-I row from dynamic measurements of one kernel."""
    backend = CoreBackend(config=config)
    baseline = backend.run(Workload(kernel_def.name, "baseline", n=n))
    copift = backend.run(Workload(kernel_def.name, "copift", n=n))
    return model_from_records(kernel_def, baseline, copift, n)


def generate(n: int = 2048,
             config: CoreConfig | None = None,
             batch: int | str | None = None) -> list[Table1Row]:
    """All Table-I rows, in the paper's order."""
    workloads = [Workload(name, variant, n=n)
                 for name in KERNELS
                 for variant in ("baseline", "copift")]
    sweep = Sweep(workloads, backends=(CoreBackend(config=config),),
                  batch=batch)
    records = iter(sweep.run())
    rows = []
    for kernel_def in KERNELS.values():
        baseline, copift = next(records), next(records)
        rows.append(Table1Row(
            measured=model_from_records(kernel_def, baseline, copift, n),
            paper=kernel_def.paper_model(),
        ))
    return rows


def render(rows: list[Table1Row]) -> str:
    """Text rendering, ours vs the paper's values."""
    header = (
        f"{'Kernel':<18} {'#Int':>9} {'#FP':>9} {'TI':>11} "
        f"{'CP#Int':>11} {'CP#FP':>11} {'I_':>11} {'S__':>11} "
        f"{'S_':>11} {'MaxBlk':>13}"
    )
    lines = ["Table I: kernel characteristics (measured | paper)",
             header, "-" * len(header)]

    def pair(mine, theirs, fmt="{:.0f}") -> str:
        return f"{fmt.format(mine)}|{fmt.format(theirs)}"

    for row in rows:
        m, p = row.measured, row.paper
        lines.append(
            f"{row.name:<18} "
            f"{pair(m.base.n_int, p.base.n_int):>9} "
            f"{pair(m.base.n_fp, p.base.n_fp):>9} "
            f"{pair(m.thread_imbalance, p.thread_imbalance, '{:.2f}'):>11} "
            f"{pair(m.copift.n_int, p.copift.n_int):>11} "
            f"{pair(m.copift.n_fp, p.copift.n_fp):>11} "
            f"{pair(m.i_prime, p.i_prime, '{:.2f}'):>11} "
            f"{pair(m.s_double_prime, p.s_double_prime, '{:.2f}'):>11} "
            f"{pair(m.s_prime, p.s_prime, '{:.2f}'):>11} "
            f"{pair(m.max_block, p.max_block):>13}"
        )
    return "\n".join(lines)


def table1_payload(rows: list[Table1Row]) -> dict:
    def mix(model) -> dict:
        return {
            "n_int": model.base.n_int, "n_fp": model.base.n_fp,
            "copift_n_int": model.copift.n_int,
            "copift_n_fp": model.copift.n_fp,
            "thread_imbalance": model.thread_imbalance,
            "i_prime": model.i_prime,
            "s_double_prime": model.s_double_prime,
            "s_prime": model.s_prime,
            "max_block": model.max_block,
        }

    return {"rows": [
        {"kernel": row.name, "measured": mix(row.measured),
         "paper": mix(row.paper)}
        for row in rows
    ]}


def clamp_n(n: int) -> int:
    """Clamp an explicitly requested size to :data:`MAX_MEASURE_N`,
    loudly.

    The per-iteration instruction mix is converged well before
    n = 2048; larger sizes only cost simulation time.  The clamp used
    to be silent — now it warns on stderr and the payload carries the
    effective size.  (Default runs use ``MAX_MEASURE_N`` directly and
    never warn.)
    """
    if n > MAX_MEASURE_N:
        print(
            f"table1: clamping n={n} to {MAX_MEASURE_N} (instruction "
            f"mixes are converged; larger n only adds runtime)",
            file=sys.stderr,
        )
        return MAX_MEASURE_N
    return n


def observe_table1(request: ArtifactRequest) -> tuple:
    """Representative cell for ``--trace``/``--profile``: expf/copift
    at the table's measurement size on a bare core."""
    n = clamp_n(request.n) if request.n is not None else MAX_MEASURE_N
    return Workload("expf", "copift", n=n), CoreBackend()


@artifact("table1", order=10, batched=True,
          help="Table I kernel characteristics (mixes, TI, I', S')",
          observe=observe_table1)
def table1_artifact(request: ArtifactRequest) -> ArtifactResult:
    n = clamp_n(request.n) if request.n is not None else MAX_MEASURE_N
    rows = generate(n=n, batch=request.batch)
    payload = {"n": n, **table1_payload(rows)}
    return ArtifactResult("table1", render(rows), payload)
