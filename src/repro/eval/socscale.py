"""SoC-scaling artifact: multi-cluster sweep of every kernel.

For each registered kernel and both variants the sweep chunks a fixed
total problem over several C-cluster x M-core SoC shapes (default
1x4 / 2x4 / 4x4 / 2x8), runs the SoC simulation (shared-L2 interconnect
with beat arbitration, per-cluster DMA channels, globally unique seeds)
and reports the ``main``-region makespan, speedup and parallel
efficiency versus the first swept shape, link contention (beat-stall
cycles), per-cluster DMA fence stalls and SoC power from the layered
energy model.  The 1x4 column reproduces the standalone 4-core cluster
measurement exactly (one cluster, uncontended link).

The sweep is one :class:`~repro.api.Sweep` of every (kernel, variant)
workload over one :class:`~repro.api.SocBackend` per shape;
cross-cell derived values (speedup, efficiency) are computed by the
merger, which is what keeps the ``--jobs N`` payload bit-identical to
the sequential one.  The shape list is overridable per invocation with
the artifact-specific ``--clusters`` flag (e.g. ``--clusters
1x4,2x8``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..api import (
    ArtifactRequest,
    ArtifactResult,
    ExtraFlag,
    RunRecord,
    SocBackend,
    Sweep,
    Workload,
    artifact,
)
from ..kernels.registry import KERNELS
from ..sim import CoreConfig
from ..soc import SocConfig
from .clusterscale import WRITEBACK_FLAG

#: Swept (clusters, cores-per-cluster) shapes.
DEFAULT_SHAPES = ((1, 4), (2, 4), (4, 4), (2, 8))


def parse_shapes(text: str) -> tuple[tuple[int, int], ...]:
    """Parse a ``--clusters`` value like ``1x4,2x4,4x4``."""
    shapes = []
    for part in text.split(","):
        pieces = part.strip().split("x")
        try:
            clusters, cores = (int(p) for p in pieces)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--clusters expects comma-separated CxM shapes "
                f"(e.g. 1x4,2x4), got {part.strip()!r}"
            ) from None
        if clusters < 1 or cores < 1:
            raise argparse.ArgumentTypeError(
                f"--clusters shapes must be >= 1x1, got "
                f"{part.strip()!r}"
            )
        shapes.append((clusters, cores))
    if not shapes:
        raise argparse.ArgumentTypeError("--clusters needs a shape")
    return tuple(shapes)


@dataclass(frozen=True)
class SocScalePoint:
    """One (kernel, variant, SoC-shape) measurement."""

    clusters: int
    cores: int
    cycles: int
    speedup: float        # vs the first swept shape, same variant
    efficiency: float     # speedup normalized by the total-core ratio
    link_stall_cycles: int
    dma_stall_cycles: int
    l2_bytes: int
    power_mw: float
    #: Per-direction engine traffic (populated in write-back mode;
    #: kept out of the default payload so pre-write-back goldens stay
    #: byte-identical).
    dma_bytes_read: int = 0
    dma_bytes_written: int = 0

    @property
    def total_cores(self) -> int:
        return self.clusters * self.cores

    @property
    def shape(self) -> str:
        return f"{self.clusters}x{self.cores}"


@dataclass(frozen=True)
class SocScaleRow:
    """One kernel x variant across every swept SoC shape."""

    name: str
    variant: str
    points: tuple[SocScalePoint, ...]

    def point(self, clusters: int, cores: int) -> SocScalePoint:
        for p in self.points:
            if p.clusters == clusters and p.cores == cores:
                return p
        raise KeyError(
            f"no {clusters}x{cores} point for {self.name}")


@dataclass(frozen=True)
class SocScaleData:
    rows: tuple[SocScaleRow, ...]
    n: int
    shapes: tuple[tuple[int, int], ...]
    writeback: bool = False

    def row(self, name: str, variant: str) -> SocScaleRow:
        for r in self.rows:
            if r.name == name and r.variant == variant:
                return r
        raise KeyError(f"no row {name}/{variant}")


def generate(n: int = 4096,
             shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
             config: SocConfig | None = None,
             core_config: CoreConfig | None = None,
             check: bool = False, jobs: int = 1,
             writeback: bool = False) -> SocScaleData:
    """Run the full SoC scaling sweep.

    Speedups are relative to the first swept shape.  With ``jobs > 1``
    the (kernel x variant x shape) cells are sharded over host
    processes; results are merged in sweep order, so the output is
    identical to a sequential run.  With ``writeback`` the vector
    kernels drain their outputs to the shared L2, the drain beats
    contending on the interconnect and in the TCDM bank arbiters.
    """
    shapes = tuple(shapes)
    workloads = [
        Workload(kernel_def.name, variant, n=n)
        for kernel_def in KERNELS.values()
        for variant in ("baseline", "copift")
    ]
    backends = [
        SocBackend(clusters=clusters, cores=cores, config=config,
                   core_config=core_config, writeback=writeback)
        for clusters, cores in shapes
    ]
    sweep = Sweep(workloads, backends=backends)
    measured = iter(sweep.run(jobs=jobs, check=check))

    base_cores = shapes[0][0] * shapes[0][1]
    rows = []
    for kernel_def in KERNELS.values():
        for variant in ("baseline", "copift"):
            points = []
            base_cycles = None
            for clusters, cores in shapes:
                record: RunRecord = next(measured)
                cycles = record.cycles
                if base_cycles is None:
                    base_cycles = cycles
                speedup = base_cycles / cycles
                detail = record.soc
                points.append(SocScalePoint(
                    clusters=clusters,
                    cores=cores,
                    cycles=cycles,
                    speedup=speedup,
                    efficiency=speedup * base_cores
                    / (clusters * cores),
                    link_stall_cycles=sum(detail.link_stall_cycles),
                    dma_stall_cycles=sum(
                        detail.cluster_dma_stall_cycles),
                    l2_bytes=detail.l2_bytes_read
                    + detail.l2_bytes_written,
                    power_mw=record.power_mw,
                    dma_bytes_read=detail.dma_bytes_read,
                    dma_bytes_written=detail.dma_bytes_written,
                ))
            rows.append(SocScaleRow(kernel_def.name, variant,
                                    tuple(points)))
    return SocScaleData(tuple(rows), n=n, shapes=shapes,
                        writeback=writeback)


def render(data: SocScaleData) -> str:
    """Text table: cycles, speedup and link stalls per SoC shape."""
    base = data.shapes[0]
    mode = " with simulated output write-back" if data.writeback else ""
    lines = [
        f"SoC scaling: {data.n} elements/samples over "
        f"{'/'.join(f'{c}x{m}' for c, m in data.shapes)} "
        f"(clusters x cores){mode}",
        f"(speedup vs the {base[0]}x{base[1]} run of the same "
        "variant; S = speedup, E = efficiency)",
    ]
    shape_cols = "".join(
        f" {'S@' + f'{c}x{m}':>8} {'E@' + f'{c}x{m}':>6}"
        for c, m in data.shapes[1:]
    )
    base_label = f"{base[0]}x{base[1]} cyc"
    header = (f"{'Kernel':<18} {'variant':<9} {base_label:>11}"
              f"{shape_cols} {'lnkstl@max':>11} {'mW@max':>7}")
    lines += [header, "-" * len(header)]
    for row in data.rows:
        first = row.points[0]
        cells = "".join(
            f" {p.speedup:>7.2f}x {p.efficiency:>6.2f}"
            for p in row.points[1:]
        )
        last = row.points[-1]
        lines.append(
            f"{row.name:<18} {row.variant:<9} {first.cycles:>11}"
            f"{cells} {last.link_stall_cycles:>11} "
            f"{last.power_mw:>7.1f}"
        )
    max_shape = data.shapes[-1]
    speedups = [r.points[-1].speedup for r in data.rows]
    ideal = max_shape[0] * max_shape[1] / (base[0] * base[1])
    lines.append(
        f"speedup at {max_shape[0]}x{max_shape[1]}: "
        f"min {min(speedups):.2f}x, max {max(speedups):.2f}x "
        f"(ideal {ideal:.2f}x)"
    )
    return "\n".join(lines)


def socscale_payload(data: SocScaleData) -> dict:
    # The write-back fields ride along only when the mode is on, so a
    # default sweep's payload stays byte-identical to pre-write-back
    # goldens.
    def point_json(p: SocScalePoint) -> dict:
        entry = {
            "clusters": p.clusters,
            "cores": p.cores,
            "cycles": p.cycles,
            "speedup": p.speedup,
            "efficiency": p.efficiency,
            "link_stall_cycles": p.link_stall_cycles,
            "dma_stall_cycles": p.dma_stall_cycles,
            "l2_bytes": p.l2_bytes,
            "power_mw": p.power_mw,
        }
        if data.writeback:
            entry["dma_bytes_read"] = p.dma_bytes_read
            entry["dma_bytes_written"] = p.dma_bytes_written
        return entry

    payload = {
        "n": data.n,
        "shapes": [list(s) for s in data.shapes],
        "rows": [
            {
                "kernel": row.name,
                "variant": row.variant,
                "points": [point_json(p) for p in row.points],
            }
            for row in data.rows
        ],
    }
    if data.writeback:
        payload["writeback"] = True
    return payload


def observe_socscale(request: ArtifactRequest) -> tuple:
    """Representative cell for ``--trace``/``--profile``: expf/copift
    on the last swept shape (interconnect, L2 and every cluster)."""
    clusters, cores = request.extra("clusters", DEFAULT_SHAPES)[-1]
    return (Workload("expf", "copift", n=request.effective_n(4096)),
            SocBackend(clusters=clusters, cores=cores,
                       writeback=request.extra("writeback", False)))


@artifact("socscale", sharded=True, order=45,
          help="multi-cluster SoC scaling of every kernel",
          flags=(ExtraFlag(
              "--clusters",
              help="SoC shapes to sweep, comma-separated CxM "
                   "(clusters x cores; default 1x4,2x4,4x4,2x8)",
              parse=parse_shapes, metavar="C1xM1,C2xM2,..."),
              WRITEBACK_FLAG), observe=observe_socscale)
def socscale_artifact(request: ArtifactRequest) -> ArtifactResult:
    data = generate(n=request.effective_n(4096),
                    shapes=request.extra("clusters", DEFAULT_SHAPES),
                    jobs=request.jobs,
                    writeback=request.extra("writeback", False))
    return ArtifactResult("socscale", render(data),
                          socscale_payload(data))
