"""The ``all`` composite artifact: every bundle artifact, in order.

Lives in its own module (not ``__main__``) so importing
:mod:`repro.eval` fully populates the artifact registry for library
users, not just for CLI runs.
"""

from __future__ import annotations

from ..api import artifacts
from ..api.artifacts import ArtifactRequest, ArtifactResult, artifact, combine


@artifact("all", sharded=True, batched=True, composite=True, order=50,
          help="every non-composite artifact, concatenated in order")
def all_artifact(request: ArtifactRequest) -> ArtifactResult:
    results = [artifacts.get(name).run(request)
               for name in artifacts.bundle_names()]
    text, payload = combine(results)
    return ArtifactResult("all", text, payload)
