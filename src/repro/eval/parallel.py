"""Process-parallel sweep sharding for the evaluation harness.

The big sweeps (``clusterscale`` over 4 core counts x 12 kernel
variants, ``fig3 --full`` over a 7x8 block/problem grid) are
embarrassingly parallel: every cell is an independent, deterministic
simulation.  :func:`run_sharded` fans a list of picklable *cells* out
over a :class:`~concurrent.futures.ProcessPoolExecutor` and returns the
per-cell results **in input order**, so callers merge them exactly as
they would have consumed sequential results.

Determinism guarantee: a cell's result depends only on the cell payload
(kernel name, sizes, seeds, config dataclasses) — never on scheduling,
worker identity or host parallelism — so ``jobs=N`` produces the same
payload as ``jobs=1`` bit for bit.  ``jobs=1`` (the default) runs
inline in the calling process with no pool at all, which keeps
single-cell runs, debuggers and coverage tools simple.

Worker callables must be module-level functions (the pool pickles them
by reference) taking exactly one cell argument.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

Cell = TypeVar("Cell")
Result = TypeVar("Result")


def default_jobs() -> int:
    """Host CPU count (the useful upper bound for ``--jobs``)."""
    return max(1, os.cpu_count() or 1)


def validate_jobs(jobs: int) -> int:
    """Clamp-free validation: jobs must be a positive integer."""
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError(f"jobs must be an integer >= 1, got {jobs!r}")
    return jobs


def run_sharded(worker: Callable[[Cell], Result],
                cells: Sequence[Cell],
                jobs: int = 1) -> list[Result]:
    """Evaluate ``worker(cell)`` for every cell, preserving order.

    Args:
        worker: Module-level function of one picklable argument.
        cells: The sweep cells, in the order results are wanted.
        jobs: Host processes to spread the cells over.  ``1`` runs
            inline (no subprocesses); higher values use a process pool
            sized ``min(jobs, len(cells))``.

    Returns:
        ``[worker(c) for c in cells]`` — same values, same order,
        regardless of *jobs*.
    """
    validate_jobs(jobs)
    cells = list(cells)
    if jobs == 1 or len(cells) <= 1:
        return [worker(cell) for cell in cells]
    workers = min(jobs, len(cells))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, cells))


def run_cell(cell):
    """Pool worker: simulate one ``(workload, backend)`` cell.

    Module-level (picklable by reference) so the long-lived serve-layer
    pool (:class:`repro.serve.EvalService`) can ship cells to warm
    worker processes the same way sweep sharding does.
    """
    workload, backend = cell
    return backend.run(workload, check=False)


def shard_evenly(cells: Iterable[Cell], shards: int) -> list[list[Cell]]:
    """Round-robin split of *cells* into *shards* non-empty-ish lists.

    Convenience for callers that batch several cells per task to
    amortize process startup; cell order within a shard follows input
    order.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    buckets: list[list[Cell]] = [[] for _ in range(shards)]
    for i, cell in enumerate(cells):
        buckets[i % shards].append(cell)
    return [b for b in buckets if b]


def shard_hinted(cells: Sequence[Cell], jobs: int,
                 per_job: int = 4) -> list[list[Cell]]:
    """Shard with an explicit tasks-per-worker hint from the caller.

    ``shard_evenly`` needs the caller to pick a shard count;
    historically every caller hard-coded ~4 batches per job.  The hint
    makes that choice explicit and per-call: fine-grained scalar cells
    want several shards per worker for load balance (``per_job > 1``),
    while coarse tasks (e.g. one lockstep batch group) are already
    their own unit and pass ``per_job=1``.  For any hint the result
    partitions *cells* in input order, so downstream merges stay
    byte-identical.
    """
    if per_job < 1:
        raise ValueError(f"per_job must be >= 1, got {per_job}")
    cells = list(cells)
    if not cells:
        return []
    return shard_evenly(cells, min(len(cells), jobs * per_job))
