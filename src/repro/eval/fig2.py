"""Figure 2 regeneration: IPC, power, speedup and energy improvement.

Produces the three panels of the paper's Figure 2 for all six kernels
(in the paper's x-axis order) together with the expectation lines:
panel (a) compares steady-state IPC against the I′-derived expectation,
panel (b) compares average power, panel (c) speedup against S′ and the
energy improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy import EnergyModel
from ..kernels.registry import KERNELS
from ..sim import CoreConfig
from .runner import KernelMeasurement, geomean, measure_kernel
from .table1 import measured_model


@dataclass(frozen=True)
class Fig2Row:
    """One kernel's Figure-2 data point (all three panels)."""

    name: str
    measurement: KernelMeasurement
    #: Dashed expectation lines: IPC from I′ (panel a), speedup S′ (c).
    expected_ipc: float
    expected_speedup: float
    #: Paper's values for side-by-side reporting.
    paper_ipc: tuple[float, float]
    paper_power_mw: tuple[float, float]
    paper_speedup: float
    paper_energy_improvement: float


@dataclass(frozen=True)
class Fig2Data:
    rows: list[Fig2Row]

    @property
    def geomean_ipc_gain(self) -> float:
        return geomean([r.measurement.ipc_gain for r in self.rows])

    @property
    def geomean_speedup(self) -> float:
        return geomean([r.measurement.speedup for r in self.rows])

    @property
    def geomean_power_increase(self) -> float:
        return geomean([r.measurement.power_increase for r in self.rows])

    @property
    def geomean_energy_improvement(self) -> float:
        return geomean(
            [r.measurement.energy_improvement for r in self.rows]
        )

    @property
    def peak_ipc(self) -> float:
        return max(r.measurement.copift.ipc for r in self.rows)

    @property
    def peak_speedup(self) -> float:
        return max(r.measurement.speedup for r in self.rows)


def generate(n: int = 4096, config: CoreConfig | None = None,
             energy_model: EnergyModel | None = None,
             check: bool = False) -> Fig2Data:
    """Measure all kernels and assemble the Figure-2 dataset."""
    rows = []
    for kernel_def in KERNELS.values():
        measurement = measure_kernel(
            kernel_def, n=n, config=config, energy_model=energy_model,
            check=check,
        )
        model = measured_model(kernel_def, n=min(n, 2048), config=config)
        # Expected IPC (dashed line in Fig. 2a) = baseline IPC x I'.
        expected_ipc = measurement.baseline.ipc * model.i_prime
        rows.append(Fig2Row(
            name=kernel_def.name,
            measurement=measurement,
            expected_ipc=expected_ipc,
            expected_speedup=model.s_prime,
            paper_ipc=kernel_def.paper_ipc,
            paper_power_mw=kernel_def.paper_power_mw,
            paper_speedup=kernel_def.paper_speedup,
            paper_energy_improvement=kernel_def.paper_energy_improvement,
        ))
    return Fig2Data(rows)


def render(data: Fig2Data) -> str:
    lines = []
    lines.append("Figure 2a: steady-state IPC (measured | paper)")
    header = (f"{'Kernel':<18} {'base':>12} {'COPIFT':>12} "
              f"{'gain':>12} {'expected':>9}")
    lines += [header, "-" * len(header)]
    for r in data.rows:
        m = r.measurement
        lines.append(
            f"{r.name:<18} "
            f"{m.baseline.ipc:.2f}|{r.paper_ipc[0]:.2f}"
            f"{'':>2} "
            f"{m.copift.ipc:.2f}|{r.paper_ipc[1]:.2f}"
            f"{'':>2} "
            f"{m.ipc_gain:.2f}x|{r.paper_ipc[1] / r.paper_ipc[0]:.2f}x "
            f"{r.expected_ipc:>8.2f}"
        )
    lines.append(f"geomean IPC gain: {data.geomean_ipc_gain:.2f}x "
                 f"(paper: 1.62x); peak IPC {data.peak_ipc:.2f} "
                 f"(paper: 1.75)")
    lines.append("")

    lines.append("Figure 2b: power [mW] (measured | paper)")
    header = f"{'Kernel':<18} {'base':>14} {'COPIFT':>14} {'ratio':>14}"
    lines += [header, "-" * len(header)]
    for r in data.rows:
        m = r.measurement
        lines.append(
            f"{r.name:<18} "
            f"{m.baseline.power_mw:5.1f}|{r.paper_power_mw[0]:5.1f}   "
            f"{m.copift.power_mw:5.1f}|{r.paper_power_mw[1]:5.1f}   "
            f"{m.power_increase:.2f}x|"
            f"{r.paper_power_mw[1] / r.paper_power_mw[0]:.2f}x"
        )
    lines.append(
        f"geomean power increase: {data.geomean_power_increase:.2f}x "
        f"(paper: 1.07x)"
    )
    lines.append("")

    lines.append("Figure 2c: speedup / energy improvement "
                 "(measured | paper)")
    header = (f"{'Kernel':<18} {'speedup':>14} {'expected S_':>11} "
              f"{'energy impr.':>14}")
    lines += [header, "-" * len(header)]
    for r in data.rows:
        m = r.measurement
        lines.append(
            f"{r.name:<18} "
            f"{m.speedup:5.2f}|{r.paper_speedup:5.2f}   "
            f"{r.expected_speedup:>10.2f} "
            f"{m.energy_improvement:8.2f}|"
            f"{r.paper_energy_improvement:.2f}"
        )
    lines.append(
        f"geomean speedup: {data.geomean_speedup:.2f}x (paper: 1.47x); "
        f"geomean energy improvement: "
        f"{data.geomean_energy_improvement:.2f}x (paper: 1.37x)"
    )
    return "\n".join(lines)
