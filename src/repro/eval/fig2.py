"""Figure 2 regeneration: IPC, power, speedup and energy improvement.

Produces the three panels of the paper's Figure 2 for all six kernels
(in the paper's x-axis order) together with the expectation lines:
panel (a) compares steady-state IPC against the I′-derived expectation,
panel (b) compares average power, panel (c) speedup against S′ and the
energy improvement.  All measurements flow through one
:class:`~repro.api.Sweep` of every kernel pair on the ``core`` backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import (
    ArtifactRequest,
    ArtifactResult,
    CoreBackend,
    Sweep,
    Workload,
    artifact,
)
from ..energy import EnergyModel
from ..kernels.registry import KERNELS
from ..sim import CoreConfig
from . import table1
from .runner import KernelMeasurement, geomean


@dataclass(frozen=True)
class Fig2Row:
    """One kernel's Figure-2 data point (all three panels)."""

    name: str
    measurement: KernelMeasurement
    #: Dashed expectation lines: IPC from I′ (panel a), speedup S′ (c).
    expected_ipc: float
    expected_speedup: float
    #: Paper's values for side-by-side reporting.
    paper_ipc: tuple[float, float]
    paper_power_mw: tuple[float, float]
    paper_speedup: float
    paper_energy_improvement: float


@dataclass(frozen=True)
class Fig2Data:
    rows: list[Fig2Row]

    @property
    def geomean_ipc_gain(self) -> float:
        return geomean([r.measurement.ipc_gain for r in self.rows])

    @property
    def geomean_speedup(self) -> float:
        return geomean([r.measurement.speedup for r in self.rows])

    @property
    def geomean_power_increase(self) -> float:
        return geomean([r.measurement.power_increase for r in self.rows])

    @property
    def geomean_energy_improvement(self) -> float:
        return geomean(
            [r.measurement.energy_improvement for r in self.rows]
        )

    @property
    def peak_ipc(self) -> float:
        return max(r.measurement.copift.ipc for r in self.rows)

    @property
    def peak_speedup(self) -> float:
        return max(r.measurement.speedup for r in self.rows)


def generate(n: int = 4096, config: CoreConfig | None = None,
             energy_model: EnergyModel | None = None,
             check: bool = False,
             batch: int | str | None = None) -> Fig2Data:
    """Measure all kernels and assemble the Figure-2 dataset.

    ``batch`` is forwarded to :class:`Sweep` — lockstep vectorized
    execution of the 12 bare-core cells, byte-identical records.
    """
    backend = CoreBackend(config=config, energy_model=energy_model)
    workloads = [Workload(name, variant, n=n)
                 for name in KERNELS
                 for variant in ("baseline", "copift")]
    records = Sweep(workloads, backends=(backend,),
                    batch=batch).run(check=check)
    pairs = {w.kernel: records[i:i + 2]
             for i, w in enumerate(workloads)
             if w.variant == "baseline"}
    # The Table-I models need mixes at (converged) n <= MAX_MEASURE_N;
    # when the sweep already ran at such an n, derive them from the
    # same records instead of re-simulating all 12 cells.
    model_n = min(n, table1.MAX_MEASURE_N)
    models = {
        kernel_def.name:
            table1.model_from_records(kernel_def,
                                      *pairs[kernel_def.name], n)
            if model_n == n
            else table1.measured_model(kernel_def, n=model_n,
                                       config=config)
        for kernel_def in KERNELS.values()
    }
    rows = []
    for kernel_def in KERNELS.values():
        baseline, copift = pairs[kernel_def.name]
        measurement = KernelMeasurement.from_records(baseline, copift)
        model = models[kernel_def.name]
        # Expected IPC (dashed line in Fig. 2a) = baseline IPC x I'.
        expected_ipc = measurement.baseline.ipc * model.i_prime
        rows.append(Fig2Row(
            name=kernel_def.name,
            measurement=measurement,
            expected_ipc=expected_ipc,
            expected_speedup=model.s_prime,
            paper_ipc=kernel_def.paper_ipc,
            paper_power_mw=kernel_def.paper_power_mw,
            paper_speedup=kernel_def.paper_speedup,
            paper_energy_improvement=kernel_def.paper_energy_improvement,
        ))
    return Fig2Data(rows)


def render(data: Fig2Data) -> str:
    lines = []
    lines.append("Figure 2a: steady-state IPC (measured | paper)")
    header = (f"{'Kernel':<18} {'base':>12} {'COPIFT':>12} "
              f"{'gain':>12} {'expected':>9}")
    lines += [header, "-" * len(header)]
    for r in data.rows:
        m = r.measurement
        lines.append(
            f"{r.name:<18} "
            f"{m.baseline.ipc:.2f}|{r.paper_ipc[0]:.2f}"
            f"{'':>2} "
            f"{m.copift.ipc:.2f}|{r.paper_ipc[1]:.2f}"
            f"{'':>2} "
            f"{m.ipc_gain:.2f}x|{r.paper_ipc[1] / r.paper_ipc[0]:.2f}x "
            f"{r.expected_ipc:>8.2f}"
        )
    lines.append(f"geomean IPC gain: {data.geomean_ipc_gain:.2f}x "
                 f"(paper: 1.62x); peak IPC {data.peak_ipc:.2f} "
                 f"(paper: 1.75)")
    lines.append("")

    lines.append("Figure 2b: power [mW] (measured | paper)")
    header = f"{'Kernel':<18} {'base':>14} {'COPIFT':>14} {'ratio':>14}"
    lines += [header, "-" * len(header)]
    for r in data.rows:
        m = r.measurement
        lines.append(
            f"{r.name:<18} "
            f"{m.baseline.power_mw:5.1f}|{r.paper_power_mw[0]:5.1f}   "
            f"{m.copift.power_mw:5.1f}|{r.paper_power_mw[1]:5.1f}   "
            f"{m.power_increase:.2f}x|"
            f"{r.paper_power_mw[1] / r.paper_power_mw[0]:.2f}x"
        )
    lines.append(
        f"geomean power increase: {data.geomean_power_increase:.2f}x "
        f"(paper: 1.07x)"
    )
    lines.append("")

    lines.append("Figure 2c: speedup / energy improvement "
                 "(measured | paper)")
    header = (f"{'Kernel':<18} {'speedup':>14} {'expected S_':>11} "
              f"{'energy impr.':>14}")
    lines += [header, "-" * len(header)]
    for r in data.rows:
        m = r.measurement
        lines.append(
            f"{r.name:<18} "
            f"{m.speedup:5.2f}|{r.paper_speedup:5.2f}   "
            f"{r.expected_speedup:>10.2f} "
            f"{m.energy_improvement:8.2f}|"
            f"{r.paper_energy_improvement:.2f}"
        )
    lines.append(
        f"geomean speedup: {data.geomean_speedup:.2f}x (paper: 1.47x); "
        f"geomean energy improvement: "
        f"{data.geomean_energy_improvement:.2f}x (paper: 1.37x)"
    )
    return "\n".join(lines)


def fig2_payload(data: Fig2Data) -> dict:
    rows = []
    for r in data.rows:
        m = r.measurement
        rows.append({
            "kernel": r.name,
            "baseline": {"ipc": m.baseline.ipc,
                         "cycles": m.baseline.cycles,
                         "power_mw": m.baseline.power_mw},
            "copift": {"ipc": m.copift.ipc,
                       "cycles": m.copift.cycles,
                       "power_mw": m.copift.power_mw},
            "speedup": m.speedup,
            "ipc_gain": m.ipc_gain,
            "power_increase": m.power_increase,
            "energy_improvement": m.energy_improvement,
            "expected_ipc": r.expected_ipc,
            "expected_speedup": r.expected_speedup,
            "paper": {"ipc": list(r.paper_ipc),
                      "power_mw": list(r.paper_power_mw),
                      "speedup": r.paper_speedup,
                      "energy_improvement": r.paper_energy_improvement},
        })
    return {
        "rows": rows,
        "geomean_speedup": data.geomean_speedup,
        "geomean_ipc_gain": data.geomean_ipc_gain,
        "geomean_power_increase": data.geomean_power_increase,
        "geomean_energy_improvement": data.geomean_energy_improvement,
    }


def observe_fig2(request: ArtifactRequest) -> tuple:
    """Representative cell for ``--trace``/``--profile``: expf/copift
    at the figure's problem size on a bare core."""
    return (Workload("expf", "copift", n=request.effective_n(4096)),
            CoreBackend())


@artifact("fig2", aliases=("fig2a", "fig2b", "fig2c"), order=20,
          batched=True,
          help="Figure 2 IPC / power / speedup / energy, all kernels",
          observe=observe_fig2)
def fig2_artifact(request: ArtifactRequest) -> ArtifactResult:
    data = generate(n=request.effective_n(4096), batch=request.batch)
    return ArtifactResult("fig2", render(data), fig2_payload(data))
