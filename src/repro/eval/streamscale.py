"""Streaming-traffic artifact: latency percentiles vs offered load.

``streamscale`` sweeps an open-loop :class:`~repro.traffic.
TrafficScenario` (two priority classes on a multi-cluster SoC; see
:func:`repro.traffic.default_scenario`) across several offered-load
points, replicated over seeds, and reports per-class p50/p95/p99
latency plus the sustained-throughput-vs-offered-load curve — the
serving-capacity view the closed-batch artifacts cannot give.

Load points are *fractions of estimated capacity* (``--rate 0.3,0.7``
sweeps 30% and 70% of the rate the clusters can sustain given the
class mix), so the curve brackets the knee regardless of kernel sizes.
Each (load point x seed) pair is one shard cell: profiles are built
once up front and embedded in the cells, cells are simulated
independently (``--jobs``), and replications merge in fixed seed
order — the payload is bit-identical for any ``--jobs N``.

``--trace-file`` replays a recorded arrival trace through the same
dispatcher instead of the Poisson sweep (one point, no seeds);
``--policy`` selects dispatch order and QoS arbitration, so a
``fifo``-vs-``priority+qos`` pair of runs shows exactly what the QoS
weights buy the latency-critical class.
"""

from __future__ import annotations

import argparse

from ..api import ArtifactRequest, ArtifactResult, ExtraFlag, artifact
from ..traffic import (
    POLICY_CHOICES,
    TrafficError,
    TrafficResult,
    TrafficScenario,
    build_profiles,
    default_scenario,
    load_trace,
    simulate,
    stream_record,
    traffic_registry,
)
from .parallel import run_sharded

#: Offered-load points, as fractions of estimated capacity.
DEFAULT_LOADS = (0.3, 0.5, 0.7, 0.9, 1.1)

#: Arrival window (cycles) per replication.
DEFAULT_DURATION = 240_000

#: Replication seeds, merged in this order.
DEFAULT_SEEDS = (1, 2, 3)


def parse_loads(text: str) -> tuple[float, ...]:
    """Parse a ``--rate`` value like ``0.3,0.7,1.1``."""
    loads = []
    for part in text.split(","):
        try:
            load = float(part.strip())
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--rate expects comma-separated load fractions "
                f"(e.g. 0.3,0.7,1.1), got {part.strip()!r}"
            ) from None
        if load <= 0:
            raise argparse.ArgumentTypeError(
                f"--rate loads must be > 0, got {part.strip()!r}")
        loads.append(load)
    if not loads:
        raise argparse.ArgumentTypeError("--rate needs a load point")
    return tuple(loads)


def parse_duration(text: str) -> int:
    try:
        duration = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--duration expects an integer cycle count, got {text!r}"
        ) from None
    if duration < 1:
        raise argparse.ArgumentTypeError(
            f"--duration must be >= 1, got {duration}")
    return duration


def parse_policy_flag(text: str) -> str:
    policy = text.strip()
    if policy not in POLICY_CHOICES:
        raise argparse.ArgumentTypeError(
            f"--policy expects one of {', '.join(POLICY_CHOICES)}, "
            f"got {text!r}")
    return policy


def estimate_capacity(scenario: TrafficScenario, profiles) -> float:
    """Sustainable completion rate, requests/cycle (M/G/c-style).

    The share-weighted mean uncontended service time is the expected
    cluster occupancy per request; ``clusters`` of them serve in
    parallel.  QoS stretching and queueing push the real knee below
    this, which is why the default sweep's top load point is 1.1.
    """
    mean_cycles = sum(cls.share * p.cycles
                      for cls, p in zip(scenario.classes, profiles))
    return scenario.clusters / mean_cycles


def _run_cell(cell) -> TrafficResult:
    """Pool worker (module-level, picklable): one replication."""
    scenario, profiles, rate, duration, seed, requests = cell
    return simulate(scenario, profiles, rate, duration, seed,
                    requests=requests)


def generate(loads: tuple[float, ...] = DEFAULT_LOADS,
             duration: int = DEFAULT_DURATION,
             policy: str = "priority+qos",
             clusters: int = 2, cores: int = 4,
             seeds: tuple[int, ...] = DEFAULT_SEEDS,
             trace_file: str | None = None,
             jobs: int = 1) -> dict:
    """Run the streaming sweep; returns the artifact's payload dict.

    With a trace file the sweep collapses to one point replaying the
    trace (the offered rate is measured from the trace itself);
    otherwise every load point is replicated over *seeds* and pooled
    in seed order.
    """
    scenario = default_scenario(policy=policy, clusters=clusters,
                                cores=cores)
    profiles = build_profiles(scenario)
    capacity = estimate_capacity(scenario, profiles)
    registry = traffic_registry(scenario)

    if trace_file is not None:
        requests = load_trace(trace_file, scenario.classes)
        span = max(r.arrival for r in requests)
        cells = [(scenario, profiles, len(requests) / span, span,
                  0, requests)]
        groups = [("trace", 1)]
    else:
        cells = [(scenario, profiles, load * capacity, duration,
                  seed, None)
                 for load in loads for seed in seeds]
        groups = [(load, len(seeds)) for load in loads]

    results = iter(run_sharded(_run_cell, cells, jobs=jobs))
    points = []
    for load, replications in groups:
        pooled = next(results)
        for _ in range(replications - 1):
            pooled.merge(next(results))
        record = stream_record(scenario, profiles, pooled)
        points.append({
            "load": load,
            "offered_rate": pooled.offered_rate,
            "throughput": pooled.throughput,
            "requests": pooled.requests,
            "completed": pooled.completed,
            "makespan": pooled.makespan,
            "peak_queue_depth": pooled.peak_queue_depth,
            "metrics": registry.collect(pooled),
            "classes": [c.stats().to_json() for c in pooled.classes],
            "record": record.to_json(),
        })

    return {
        "policy": policy,
        "clusters": clusters,
        "cores": cores,
        "duration": duration,
        "seeds": list(seeds) if trace_file is None else [],
        "trace_file": trace_file,
        "capacity_rpc": capacity,
        "profiles": [
            {
                "name": p.name,
                "kernel": p.kernel,
                "variant": p.variant,
                "n": p.n,
                "service_cycles": p.cycles,
                "dma_bytes": p.dma_bytes,
            }
            for p in profiles
        ],
        "points": points,
    }


def render(payload: dict) -> str:
    """Text view: the throughput curve + per-class tail latencies."""
    source = (f"trace {payload['trace_file']}"
              if payload["trace_file"] else
              f"{len(payload['seeds'])} seed(s), "
              f"{payload['duration']} cycles/run")
    lines = [
        f"Streaming traffic: {payload['clusters']}x{payload['cores']} "
        f"SoC, policy {payload['policy']}, {source}",
        f"(capacity estimate {payload['capacity_rpc'] * 1e6:.1f} "
        f"req/Mcycle; latencies in cycles, pooled over seeds)",
    ]
    classes = [p["name"] for p in payload["profiles"]]
    class_cols = "".join(
        f" {name + ' p50':>9} {name + ' p99':>9}" for name in classes)
    header = (f"{'load':>6} {'offered':>9} {'sustained':>10} "
              f"{'reqs':>6}{class_cols} {'peakQ':>6}")
    lines += [header, "-" * len(header)]
    for point in payload["points"]:
        by_name = {c["name"]: c for c in point["classes"]}
        cells = "".join(
            f" {by_name[name]['p50']:>9} {by_name[name]['p99']:>9}"
            for name in classes)
        load = point["load"]
        shown = f"{load:.2f}" if isinstance(load, float) else str(load)
        lines.append(
            f"{shown:>6} {point['offered_rate'] * 1e6:>9.1f} "
            f"{point['throughput'] * 1e6:>10.1f} "
            f"{point['requests']:>6}{cells} "
            f"{point['peak_queue_depth']:>6}")
    if len(payload["points"]) > 1 and len(classes) > 1:
        last = payload["points"][-1]
        by_name = {c["name"]: c for c in last["classes"]}
        hi, lo = classes[0], classes[-1]
        lines.append(
            f"at {last['load']}x load: {hi} p99 "
            f"{by_name[hi]['p99']} vs {lo} p99 {by_name[lo]['p99']} "
            f"({by_name[lo]['p99'] / max(by_name[hi]['p99'], 1):.1f}x "
            f"separation)")
    return "\n".join(lines)


def observe_streamscale(request: ArtifactRequest) -> tuple:
    """Representative cell for ``--trace``/``--profile``: one
    uncontended high-class request on the scenario's cluster shape."""
    from ..api import ClusterBackend, Workload
    scenario = default_scenario()
    cls = scenario.classes[0]
    return (Workload(cls.kernel, cls.variant, n=cls.n),
            ClusterBackend(cores=scenario.cores, writeback=True))


@artifact("streamscale", sharded=True, order=48,
          help="open-loop streaming traffic: latency percentiles "
               "vs offered load",
          flags=(
              ExtraFlag(
                  "--rate",
                  help="offered-load points as fractions of estimated "
                       "capacity, comma-separated (default "
                       "0.3,0.5,0.7,0.9,1.1)",
                  parse=parse_loads, metavar="L1,L2,..."),
              ExtraFlag(
                  "--duration",
                  help="arrival window per replication, in cycles "
                       f"(default {DEFAULT_DURATION})",
                  parse=parse_duration, metavar="CYCLES"),
              ExtraFlag(
                  "--trace-file",
                  help="replay this arrival trace ('<cycle> <class>' "
                       "per line) instead of the Poisson sweep",
                  metavar="PATH"),
              ExtraFlag(
                  "--policy",
                  help="dispatch/arbitration policy: "
                       + ", ".join(POLICY_CHOICES)
                       + " (default priority+qos)",
                  parse=parse_policy_flag, metavar="POLICY"),
          ),
          observe=observe_streamscale)
def streamscale_artifact(request: ArtifactRequest) -> ArtifactResult:
    try:
        payload = generate(
            loads=request.extra("rate", DEFAULT_LOADS),
            duration=request.extra("duration", DEFAULT_DURATION),
            policy=request.extra("policy", "priority+qos"),
            trace_file=request.extra("trace_file"),
            jobs=request.jobs,
        )
    except TrafficError as exc:
        raise SystemExit(f"streamscale: {exc}") from None
    return ArtifactResult("streamscale", render(payload), payload)
