"""Figure 3 regeneration: poly_lcg IPC across problem and block sizes.

The paper sweeps the ``poly_lcg`` kernel over problem sizes
768..98304 and block sizes 32..256, showing that

* IPC rises with problem size (prologue/epilogue amortization),
* each block size has a problem size reaching >99.5 % of its own
  asymptotic IPC (smaller blocks converge at smaller problems),
* for each problem size there is an optimal ("peak") block size, and
  the peak shifts toward larger blocks as the problem grows (small
  blocks cannot amortize per-block SSR/buffer-switch overheads).

The default sweep uses the paper's block sizes but scales problem sizes
down 4x (Python cycle simulation is ~10^4 slower than QuestaSim on RTL
farm hardware; the convergence behaviour is already fully visible).
Pass ``full=True`` for the paper's exact grid.  The grid is one
:class:`~repro.api.Sweep`, so ``jobs > 1`` shards (batched) cells over
host processes with bit-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import (
    ArtifactRequest,
    ArtifactResult,
    CoreBackend,
    Sweep,
    Workload,
    artifact,
)
from ..sim import CoreConfig

#: The paper's sweep grid.
PAPER_BLOCK_SIZES = (32, 48, 64, 96, 128, 192, 256)
PAPER_PROBLEM_SIZES = (768, 1536, 3072, 6144, 12288, 24576, 49152, 98304)

#: Default (scaled-down) grid: same blocks, 4x smaller problems.
DEFAULT_BLOCK_SIZES = PAPER_BLOCK_SIZES
DEFAULT_PROBLEM_SIZES = (768, 1536, 3072, 6144, 12288, 24576)


def _round_to_multiple(n: int, block: int) -> int:
    """Smallest multiple of *block* that is >= n and >= 2 blocks."""
    blocks = max(2, -(-n // block))
    return blocks * block


@dataclass
class Fig3Data:
    """IPC grid with the paper's two annotation families."""

    block_sizes: tuple[int, ...]
    problem_sizes: tuple[int, ...]
    #: ipc[problem][block]
    ipc: dict[int, dict[int, float]]

    def max_ipc_for_block(self, block: int) -> float:
        return max(self.ipc[n][block] for n in self.problem_sizes)

    def converged_problem(self, block: int,
                          fraction: float = 0.995) -> int | None:
        """Smallest problem reaching *fraction* of the block's max IPC
        (the paper's ">99.5%" annotations)."""
        ceiling = self.max_ipc_for_block(block)
        for n in self.problem_sizes:
            if self.ipc[n][block] >= fraction * ceiling:
                return n
        return None

    def peak_block(self, problem: int) -> int:
        """Best block size for a problem size (the "peak" annotations)."""
        row = self.ipc[problem]
        return max(row, key=row.get)


def generate(block_sizes: tuple[int, ...] = DEFAULT_BLOCK_SIZES,
             problem_sizes: tuple[int, ...] = DEFAULT_PROBLEM_SIZES,
             kernel_name: str = "poly_lcg",
             config: CoreConfig | None = None,
             full: bool = False, jobs: int = 1,
             batch: int | str | None = None) -> Fig3Data:
    """Run the block/problem-size sweep.

    With ``jobs > 1`` the grid cells are sharded over host processes
    (each cell is one independent simulation); the grid is assembled in
    sweep order and identical to a sequential run.  ``batch`` routes
    the bare-core cells through the lockstep engine with the same
    byte-identity guarantee, and composes with ``jobs``.
    """
    if full:
        block_sizes = PAPER_BLOCK_SIZES
        problem_sizes = PAPER_PROBLEM_SIZES
    workloads = [
        Workload(kernel_name, "copift",
                 n=_round_to_multiple(n, block), block=block)
        for n in problem_sizes
        for block in block_sizes
    ]
    sweep = Sweep(workloads, backends=(CoreBackend(config=config),),
                  batch=batch)
    measured = iter(sweep.run(jobs=jobs))
    ipc: dict[int, dict[int, float]] = {}
    for n in problem_sizes:
        ipc[n] = {}
        for block in block_sizes:
            ipc[n][block] = next(measured).ipc
    return Fig3Data(tuple(block_sizes), tuple(problem_sizes), ipc)


def render(data: Fig3Data) -> str:
    lines = ["Figure 3: poly_lcg IPC vs problem size x block size"]
    label = "N/B"
    header = f"{label:>8} " + "".join(
        f"{b:>8}" for b in data.block_sizes
    )
    lines += [header, "-" * len(header)]
    for n in data.problem_sizes:
        peak = data.peak_block(n)
        cells = []
        for b in data.block_sizes:
            marker = "*" if b == peak else " "
            cells.append(f"{data.ipc[n][b]:7.3f}{marker}")
        lines.append(f"{n:>8} " + "".join(cells))
    lines.append("(* = peak block size for that problem size)")
    lines.append("")
    lines.append(">99.5%-of-max problem size per block size:")
    for b in data.block_sizes:
        lines.append(f"  B={b:<4} -> N={data.converged_problem(b)}")
    return "\n".join(lines)


def fig3_payload(data: Fig3Data) -> dict:
    return {
        "block_sizes": list(data.block_sizes),
        "problem_sizes": list(data.problem_sizes),
        "ipc": {str(n): {str(b): data.ipc[n][b]
                         for b in data.block_sizes}
                for n in data.problem_sizes},
        "peak_block": {str(n): data.peak_block(n)
                       for n in data.problem_sizes},
        "converged_problem": {str(b): data.converged_problem(b)
                              for b in data.block_sizes},
    }


def observe_fig3(request: ArtifactRequest) -> tuple:
    """Representative cell for ``--trace``/``--profile``: the grid's
    centre — poly_lcg/copift at block 64, mid-range problem size."""
    return (Workload("poly_lcg", "copift",
                     n=_round_to_multiple(6144, 64), block=64),
            CoreBackend())


@artifact("fig3", sharded=True, batched=True, order=30,
          help="Figure 3 poly_lcg IPC over the block/problem grid",
          observe=observe_fig3)
def fig3_artifact(request: ArtifactRequest) -> ArtifactResult:
    data = generate(full=request.full, jobs=request.jobs,
                    batch=request.batch)
    return ArtifactResult("fig3", render(data), fig3_payload(data))
