"""Legacy measurement API: thin shims over :mod:`repro.api`.

Kept for backwards compatibility — the unified experiment API
(:class:`repro.api.Workload` / backends / :class:`repro.api.RunRecord`)
is the real measurement path; :func:`measure_instance` and
:func:`measure_kernel` adapt it to the original
:class:`VariantMeasurement` / :class:`KernelMeasurement` shapes that
older callers (and the figure artifacts' paired-variant views) consume.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..api.backend import record_from_instance
from ..api.record import RunRecord
from ..energy import EnergyModel, PowerReport
from ..kernels.common import KernelInstance
from ..kernels.registry import KernelDef
from ..sim import CoreConfig


@dataclass(frozen=True)
class VariantMeasurement:
    """One variant's steady-state numbers (view over a RunRecord)."""

    variant: str
    cycles: int
    int_instructions: int
    fp_instructions: int
    ipc: float
    power: PowerReport

    @property
    def power_mw(self) -> float:
        return self.power.power_mw

    @property
    def energy_pj(self) -> float:
        return self.power.total_energy_pj

    @classmethod
    def from_record(cls, record: RunRecord) -> "VariantMeasurement":
        return cls(
            variant=record.variant,
            cycles=record.cycles,
            int_instructions=record.int_instructions,
            fp_instructions=record.fp_instructions,
            ipc=record.ipc,
            power=record.power,
        )


@dataclass(frozen=True)
class KernelMeasurement:
    """Paired baseline/COPIFT measurement of one kernel."""

    name: str
    n: int
    block: int
    baseline: VariantMeasurement
    copift: VariantMeasurement

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.copift.cycles

    @property
    def ipc_gain(self) -> float:
        return self.copift.ipc / self.baseline.ipc

    @property
    def power_increase(self) -> float:
        return self.copift.power_mw / self.baseline.power_mw

    @property
    def energy_improvement(self) -> float:
        return self.baseline.energy_pj / self.copift.energy_pj

    @classmethod
    def from_records(cls, baseline: RunRecord,
                     copift: RunRecord) -> "KernelMeasurement":
        if baseline.kernel != copift.kernel:
            raise ValueError(
                f"mismatched record pair: baseline is "
                f"{baseline.kernel!r}, copift is {copift.kernel!r}"
            )
        if (baseline.variant, copift.variant) != ("baseline",
                                                  "copift"):
            raise ValueError(
                f"record pair passed out of order: got "
                f"({baseline.variant!r}, {copift.variant!r}), "
                f"expected ('baseline', 'copift')"
            )
        return cls(
            name=baseline.kernel, n=baseline.n,
            block=copift.block or 0,
            baseline=VariantMeasurement.from_record(baseline),
            copift=VariantMeasurement.from_record(copift),
        )


def _warn_deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.eval.{name} is deprecated; use the unified experiment "
        f"API instead ({replacement})",
        DeprecationWarning, stacklevel=3,
    )


def measure_instance(instance: KernelInstance,
                     config: CoreConfig | None = None,
                     energy_model: EnergyModel | None = None,
                     check: bool = True) -> VariantMeasurement:
    """Run one kernel instance and reduce it to steady-state numbers.

    .. deprecated:: 1.3
       Use :func:`repro.api.record_from_instance` (or a
       :class:`repro.api.CoreBackend` over a ``Workload``).
    """
    _warn_deprecated("measure_instance",
                     "repro.api.record_from_instance")
    record = record_from_instance(instance, config=config,
                                  energy_model=energy_model,
                                  check=check)
    return VariantMeasurement.from_record(record)


def measure_kernel(kernel_def: KernelDef, n: int = 4096,
                   block: int | None = None,
                   config: CoreConfig | None = None,
                   energy_model: EnergyModel | None = None,
                   check: bool = True) -> KernelMeasurement:
    """Measure baseline + COPIFT variants of one kernel.

    .. deprecated:: 1.3
       Use :class:`repro.api.Workload` pairs over
       :class:`repro.api.CoreBackend` (see
       :meth:`KernelMeasurement.from_records`).
    """
    _warn_deprecated("measure_kernel",
                     "repro.api.Workload + repro.api.CoreBackend")
    block = block or kernel_def.default_block
    baseline = record_from_instance(
        kernel_def.build_baseline(n), config=config,
        energy_model=energy_model, check=check,
    )
    copift = record_from_instance(
        kernel_def.build_copift(n, block=block), config=config,
        energy_model=energy_model, check=check,
    )
    return KernelMeasurement.from_records(baseline, copift)


def geomean(values: list[float]) -> float:
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
