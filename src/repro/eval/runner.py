"""Experiment runner: paired baseline/COPIFT measurements.

One :class:`KernelMeasurement` captures everything Figures 2a-2c need
for one kernel: steady-state IPC of both variants, average power from
the energy model, speedup and energy improvement.  Measurements use the
``main`` region (setup excluded) at a problem size large enough for
prologue/epilogue effects to be representative of steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy import EnergyModel, PowerReport
from ..kernels.common import KernelInstance, MAIN_REGION
from ..kernels.registry import KernelDef
from ..sim import CoreConfig, RunResult


@dataclass(frozen=True)
class VariantMeasurement:
    """One variant's steady-state numbers."""

    variant: str
    cycles: int
    int_instructions: int
    fp_instructions: int
    ipc: float
    power: PowerReport

    @property
    def power_mw(self) -> float:
        return self.power.power_mw

    @property
    def energy_pj(self) -> float:
        return self.power.total_energy_pj


@dataclass(frozen=True)
class KernelMeasurement:
    """Paired baseline/COPIFT measurement of one kernel."""

    name: str
    n: int
    block: int
    baseline: VariantMeasurement
    copift: VariantMeasurement

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.copift.cycles

    @property
    def ipc_gain(self) -> float:
        return self.copift.ipc / self.baseline.ipc

    @property
    def power_increase(self) -> float:
        return self.copift.power_mw / self.baseline.power_mw

    @property
    def energy_improvement(self) -> float:
        return self.baseline.energy_pj / self.copift.energy_pj


def measure_instance(instance: KernelInstance,
                     config: CoreConfig | None = None,
                     energy_model: EnergyModel | None = None,
                     check: bool = True) -> VariantMeasurement:
    """Run one kernel instance and reduce it to steady-state numbers."""
    model = energy_model or EnergyModel()
    result, _ = instance.run(config=config, check=check)
    region = result.region(MAIN_REGION)
    counters = region.counters
    power = model.report(
        counters, region.cycles,
        dma_active=instance.dma_active,
        dma_bytes=instance.dma_bytes,
    )
    return VariantMeasurement(
        variant=instance.variant,
        cycles=region.cycles,
        int_instructions=counters.int_issued,
        fp_instructions=counters.fp_issued,
        ipc=region.ipc,
        power=power,
    )


def measure_kernel(kernel_def: KernelDef, n: int = 4096,
                   block: int | None = None,
                   config: CoreConfig | None = None,
                   energy_model: EnergyModel | None = None,
                   check: bool = True) -> KernelMeasurement:
    """Measure baseline + COPIFT variants of one kernel."""
    block = block or kernel_def.default_block
    baseline = measure_instance(
        kernel_def.build_baseline(n), config=config,
        energy_model=energy_model, check=check,
    )
    copift = measure_instance(
        kernel_def.build_copift(n, block=block), config=config,
        energy_model=energy_model, check=check,
    )
    return KernelMeasurement(
        name=kernel_def.name, n=n, block=block,
        baseline=baseline, copift=copift,
    )


def geomean(values: list[float]) -> float:
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
