"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.eval table1
    python -m repro.eval fig2 [--n 4096]
    python -m repro.eval fig3 [--full]
    python -m repro.eval all
"""

from __future__ import annotations

import argparse
import sys

from . import fig2, fig3, report, table1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=["table1", "fig2a", "fig2b", "fig2c", "fig2", "fig3",
                 "all", "report"],
        help="Which artifact to regenerate.",
    )
    parser.add_argument("--n", type=int, default=4096,
                        help="Problem size for Fig. 2 measurements.")
    parser.add_argument("--full", action="store_true",
                        help="Use the paper's full Fig. 3 grid "
                             "(slow: tens of minutes).")
    parser.add_argument("--out", type=str, default=None,
                        help="Write the report to this file "
                             "(report mode only).")
    args = parser.parse_args(argv)

    if args.artifact == "table1":
        print(table1.render(table1.generate(n=min(args.n, 2048))))
    elif args.artifact in ("fig2", "fig2a", "fig2b", "fig2c"):
        print(fig2.render(fig2.generate(n=args.n)))
    elif args.artifact == "fig3":
        print(fig3.render(fig3.generate(full=args.full)))
    elif args.artifact == "report":
        text = report.generate_report(n=args.n, full_fig3=args.full)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            print(text)
    elif args.artifact == "all":
        print(table1.render(table1.generate(n=min(args.n, 2048))))
        print()
        print(fig2.render(fig2.generate(n=args.n)))
        print()
        print(fig3.render(fig3.generate(full=args.full)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
