"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.eval --list [--json] [--out FILE]
    python -m repro.eval table1
    python -m repro.eval fig2 [--n 4096]
    python -m repro.eval fig3 [--full] [--jobs N] [--batch auto|N]
    python -m repro.eval clusterscale [--n 4096] [--cores 1,2,4,8]
                                      [--jobs N] [--writeback on|off]
    python -m repro.eval socscale [--n 4096] [--clusters 1x4,2x4,4x4]
                                  [--jobs N] [--writeback on|off]
    python -m repro.eval all [--out results.txt] [--json] [--jobs N]
    python -m repro.eval report --out report.md

``--list`` honours ``--json``/``--out`` too, dumping the registry in
machine-readable form for tooling.

Artifacts may register **extra flags** of their own (``socscale
--clusters``); the dispatcher pulls them from the registry and rejects
a flag passed to an artifact that did not register it.  A flag may be
shared by several artifacts (``--writeback`` belongs to both scaling
sweeps).

The subcommands are **registered artifacts** (``repro.api.artifact``):
importing the artifact modules below fills the registry, and everything
else — the available-name list, ``--list`` output, which artifacts
accept ``--jobs`` — is derived from it.  Every artifact (including
``all``) honours ``--out`` and ``--json``: ``--out`` writes the
rendered artifact to a file, ``--json`` switches the output to a
machine-readable JSON payload.

``--jobs N`` shards the simulation sweeps of the artifacts marked
*sharded* in the registry over N host processes.  Sweeps are
deterministic per cell, so the output is bit-identical for every N;
the flag only changes wall-clock time.  ``--batch auto|N`` runs the
bare-core cells of artifacts marked *batched* on the vectorized
lockstep engine (:mod:`repro.sim.batch`) with the same guarantee:
payloads are byte-identical for every ``--jobs``/``--batch`` combo.

**Caching**: artifact sweeps consult a content-addressed result store
(:mod:`repro.serve`) per cell, so a warm re-run performs zero
simulations and emits byte-identical output.  ``--cache-dir DIR``
names the store (default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-eval``); ``--no-cache`` is the escape hatch; a
cache summary goes to stderr so stdout payloads stay byte-identical
either way.  ``--list --json`` includes the store's entry counts and
cumulative hit/miss stats.  ``--serve`` (no artifact name) runs the
long-lived JSON-lines evaluation service on stdin/stdout instead —
see :mod:`repro.serve.protocol` for the wire format.
"""

from __future__ import annotations

import argparse
import sys

from ..api import artifacts
from ..api.artifacts import ArtifactRequest, write_output

# The package __init__ has already imported every artifact module,
# registering the subcommands this dispatcher serves.
from .parallel import default_jobs


def _parse_batch(text: str) -> int | str:
    if text == "auto":
        return "auto"
    try:
        lanes = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--batch expects 'auto' or a positive integer, "
            f"got {text!r}"
        ) from exc
    if lanes < 1:
        raise argparse.ArgumentTypeError(
            f"--batch expects 'auto' or a positive integer, "
            f"got {text!r}"
        )
    return lanes


def _parse_cores(text: str) -> tuple[int, ...]:
    try:
        cores = tuple(int(part) for part in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--cores expects a comma-separated list, got {text!r}"
        ) from exc
    if not cores or any(c < 1 for c in cores):
        raise argparse.ArgumentTypeError(
            f"--cores entries must be >= 1, got {text!r}"
        )
    return cores


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    # The artifact is validated by hand (not via argparse choices) so
    # unknown names get one clear line listing what exists instead of
    # a usage dump the user has to parse.
    parser.add_argument(
        "artifact", nargs="?", default=None,
        help="Which artifact to regenerate: "
             + ", ".join(artifacts.names(include_aliases=True))
             + " (see --list).",
    )
    parser.add_argument("--list", action="store_true", dest="list_",
                        help="List every registered artifact with its "
                             "description and exit.")
    parser.add_argument("--n", type=int, default=None,
                        help="Problem size for Fig. 2 / clusterscale "
                             "measurements (default 4096; table1 "
                             "defaults to its converged 2048).")
    parser.add_argument("--full", action="store_true",
                        help="Use the paper's full Fig. 3 grid "
                             "(slow sequentially; use --jobs).")
    parser.add_argument("--cores", type=_parse_cores, default=None,
                        help="Core counts for the clusterscale sweep "
                             "(comma-separated, default 1,2,4,8).")
    parser.add_argument("--jobs", type=int, default=1,
                        help="Shard sweep cells over this many host "
                             "processes (sharded artifacts only; "
                             f"this host has {default_jobs()} CPUs). "
                             "Output is identical for every value.")
    parser.add_argument("--batch", type=_parse_batch, default=None,
                        metavar="auto|N",
                        help="Run bare-core sweep cells on the "
                             "vectorized lockstep batch engine "
                             "('auto' or an explicit lane count; "
                             "batched artifacts only).  Records are "
                             "byte-identical to the scalar engine's; "
                             "the flag only changes throughput and "
                             "composes with --jobs.")
    parser.add_argument("--out", type=str, default=None,
                        help="Write the artifact to this file instead "
                             "of stdout (honoured by every artifact, "
                             "including 'all').")
    parser.add_argument("--json", action="store_true",
                        help="Emit a machine-readable JSON payload "
                             "instead of the text rendering.")
    parser.add_argument("--trace", type=str, default=None,
                        metavar="FILE",
                        help="Write a Chrome/Perfetto trace of the "
                             "artifact's representative cell to FILE "
                             "(open in ui.perfetto.dev or "
                             "chrome://tracing).")
    parser.add_argument("--profile", action="store_true",
                        help="Append the representative cell's "
                             "cycle-attribution profile tree and "
                             "metrics to the artifact output.")
    parser.add_argument("--cache-dir", type=str, default=None,
                        metavar="DIR",
                        help="Content-addressed result store consulted "
                             "per sweep cell (default $REPRO_CACHE_DIR "
                             "or ~/.cache/repro-eval).")
    parser.add_argument("--no-cache", action="store_true",
                        help="Bypass the result store: simulate every "
                             "cell and persist nothing.")
    parser.add_argument("--serve", action="store_true",
                        help="Run the long-lived evaluation service "
                             "(JSON-lines over stdin/stdout) instead "
                             "of one artifact; honours --cache-dir/"
                             "--no-cache/--jobs.")
    # Per-artifact extra flags come from the registry; the dispatcher
    # accepts them all and validates ownership after parsing, so a
    # flag given to the wrong artifact gets one clear line (same
    # treatment as --jobs on an unsharded artifact).  A flag may be
    # shared by several artifacts (--writeback): it is added once and
    # owned by all of them.
    flag_owner: dict = {}
    for flag, owner in artifacts.extra_flags():
        entry = flag_owner.setdefault(flag.dest, (flag, []))
        entry[1].append(owner)
    for flag, owners in flag_owner.values():
        names = "/".join(o.name for o in owners)
        parser.add_argument(flag.name, type=flag.parse,
                            default=flag.default, metavar=flag.metavar,
                            help=f"{flag.help} ({names} only)")
    args = parser.parse_args(argv)

    from ..serve import CacheError, resolve_store, use_store

    if args.no_cache and args.cache_dir is not None:
        parser.error(
            f"--no-cache and --cache-dir {args.cache_dir} are "
            f"mutually exclusive; drop one"
        )

    if args.serve:
        for name, given in (("--list", args.list_),
                            ("--out", args.out is not None),
                            ("--json", args.json),
                            ("--trace", args.trace is not None),
                            ("--profile", args.profile),
                            ("--batch", args.batch is not None),
                            ("an artifact name",
                             args.artifact is not None)):
            if given:
                parser.error(
                    f"--serve runs the JSON-lines service on "
                    f"stdin/stdout and does not take {name}"
                )
        if args.jobs < 1:
            parser.error(f"--jobs must be >= 1, got {args.jobs}")
        from ..serve.__main__ import serve_main
        return serve_main(cache_dir=args.cache_dir,
                          no_cache=args.no_cache, jobs=args.jobs)

    if args.list_:
        text = "registered artifacts:\n" + artifacts.describe()
        payload = artifacts.describe_json()
        try:
            store = resolve_store(args.cache_dir,
                                  no_cache=args.no_cache)
        except CacheError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        payload["cache"] = {"enabled": store is not None}
        if store is not None:
            payload["cache"].update(store.describe())
        write_output(text, payload, args.out, args.json)
        return 0
    if args.artifact is None:
        parser.error("an artifact name is required (see --list)")

    try:
        spec = artifacts.get(args.artifact)
    except KeyError as exc:
        parser.error(exc.args[0])
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.jobs > 1 and not spec.sharded:
        parser.error(
            f"--jobs applies to sharded sweeps only "
            f"({', '.join(artifacts.sharded_names())}); artifact "
            f"{args.artifact!r} runs a single measurement"
        )
    if args.batch is not None and not spec.batched:
        parser.error(
            f"--batch applies to batched sweeps only "
            f"({', '.join(artifacts.batched_names())}); artifact "
            f"{args.artifact!r} has no bare-core sweep cells"
        )
    own_dests = {flag.dest for flag in spec.flags}
    extras = {}
    for dest, (flag, owners) in flag_owner.items():
        value = getattr(args, dest)
        if dest in own_dests:
            extras[dest] = value
        elif value != flag.default:
            if len(owners) == 1:
                where = f"artifact {owners[0].name!r}"
            else:
                where = "artifacts " + ", ".join(
                    repr(o.name) for o in owners)
            parser.error(
                f"{flag.name} applies to {where} only; artifact "
                f"{args.artifact!r} does not take it"
            )

    observing = bool(args.trace or args.profile)
    if observing and spec.observe is None:
        parser.error(
            f"--trace/--profile need an artifact with an "
            f"observability hook; artifact {args.artifact!r} has "
            f"none (try: " + ", ".join(
                s.name for s in artifacts.specs()
                if s.observe is not None) + ")"
        )

    request = ArtifactRequest(n=args.n, full=args.full,
                              cores=args.cores, jobs=args.jobs,
                              batch=args.batch, extras=extras)
    try:
        store = resolve_store(args.cache_dir, no_cache=args.no_cache)
        with use_store(store):
            result = spec.run(request)
    except CacheError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text, payload = result.text, result.payload
    if store is not None:
        # Summary to stderr (never stdout): cached and uncached runs
        # must emit byte-identical payloads.
        s = store.stats
        print(f"cache: {s.hits} hits, {s.misses} misses, "
              f"{s.deduped} deduped, {s.stores} stored "
              f"({store.root})", file=sys.stderr)
        store.flush_stats()

    if observing:
        # The representative cell re-runs *inline* (never through the
        # sharded sweep), so the trace/profile bytes are identical for
        # every --jobs value.
        from ..obs import (MetricsRegistry, ObsSink, ProfileNode,
                           render_profile, write_chrome_trace)
        workload, backend = spec.observe(request)
        sink = ObsSink()
        record = backend.run(workload, check=False, obs=sink)
        cell = (f"observed cell: {workload.kernel}/{workload.variant} "
                f"n={workload.n} on {backend.spec}")
        if args.trace:
            write_chrome_trace(sink, args.trace)
            print(f"wrote {args.trace} ({len(sink)} events; {cell})")
        if args.profile:
            node = ProfileNode.from_json(record.profile)
            registry = MetricsRegistry.default()
            text = "\n\n".join([
                text, cell,
                render_profile(node),
                registry.render(record),
            ])
            payload = dict(payload)
            payload["profile"] = record.profile
            payload["metrics"] = registry.collect(record)

    write_output(text, payload, args.out, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
