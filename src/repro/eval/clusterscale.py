"""Cluster-scaling artifact: 1/2/4/8-core sweep of every kernel.

For each registered kernel and both variants the sweep statically chunks
a fixed total problem over 1, 2, 4 and 8 cores (`repro.cluster`), runs
the cluster simulation (banked-TCDM arbitration, DMA-staged inputs for
the vector kernels, trailing barrier) and reports the makespan of the
``main`` region, the speedup and parallel efficiency versus the 1-core
run, bank-conflict stalls, and cluster power from the extended energy
model.  The 1-core column reproduces the single-``Machine`` measurement
exactly (same program, same memory image).

The sweep is one :class:`~repro.api.Sweep` of every (kernel, variant)
workload over one :class:`~repro.api.ClusterBackend` per core count;
cross-cell derived values (speedup, efficiency) are computed by the
merger, which is what keeps the ``--jobs N`` payload bit-identical to
the sequential one.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace

from ..api import (
    ArtifactRequest,
    ArtifactResult,
    ClusterBackend,
    ExtraFlag,
    RunRecord,
    Sweep,
    Workload,
    artifact,
)
from ..cluster import ClusterConfig
from ..kernels.registry import KERNELS
from ..sim import CoreConfig

DEFAULT_CORES = (1, 2, 4, 8)

#: Per-core TCDM placement offsets swept by ``--layout-search``.
#: 0 is the pathological all-cores-on-one-bank layout; the default
#: :class:`~repro.cluster.ClusterConfig` ships 2.
LAYOUT_STAGGERS = (0, 1, 2, 4, 8)


def parse_onoff(text: str) -> bool:
    """Parse an ``on``/``off`` flag value."""
    value = text.strip().lower()
    if value in ("on", "1", "true", "yes"):
        return True
    if value in ("off", "0", "false", "no"):
        return False
    raise argparse.ArgumentTypeError(
        f"expected on|off, got {text!r}"
    )


#: Shared by ``clusterscale`` and ``socscale`` (one definition, two
#: owners — the registry accepts identical flags on several artifacts).
WRITEBACK_FLAG = ExtraFlag(
    "--writeback",
    help="simulate output write-back: drain kernel outputs to L2 "
         "through the DMA, contending in the TCDM bank arbiter "
         "(and SoC interconnect) like staging reads (default off)",
    parse=parse_onoff, default=False, metavar="on|off",
)


@dataclass(frozen=True)
class ScalePoint:
    """One (kernel, variant, core-count) measurement."""

    cores: int
    cycles: int
    speedup: float        # vs the smallest swept count, same variant
    efficiency: float     # speedup normalized by the core-count ratio
    tcdm_conflict_cycles: int
    dma_bytes: int
    barrier_count: int
    power_mw: float
    #: Per-direction engine traffic (populated in write-back mode;
    #: kept out of the default payload so pre-write-back goldens stay
    #: byte-identical).
    dma_bytes_read: int = 0
    dma_bytes_written: int = 0


@dataclass(frozen=True)
class ScaleRow:
    """One kernel x variant across every swept core count."""

    name: str
    variant: str
    points: tuple[ScalePoint, ...]

    def point(self, cores: int) -> ScalePoint:
        for p in self.points:
            if p.cores == cores:
                return p
        raise KeyError(f"no {cores}-core point for {self.name}")


@dataclass(frozen=True)
class LayoutPoint:
    """One bank-stagger setting of a kernel's layout search."""

    stagger: int
    cycles: int
    tcdm_conflict_cycles: int


@dataclass(frozen=True)
class LayoutRow:
    """One kernel's ``bank_stagger_words`` sweep (copift, max cores).

    ``best`` is the lowest-cycle setting; ties break toward the
    smaller stagger (denser physical placement for equal makespan).
    """

    name: str
    points: tuple[LayoutPoint, ...]

    @property
    def best(self) -> LayoutPoint:
        return min(self.points, key=lambda p: (p.cycles, p.stagger))


@dataclass(frozen=True)
class ClusterScaleData:
    rows: tuple[ScaleRow, ...]
    n: int
    cores: tuple[int, ...]
    writeback: bool = False
    #: Populated by ``--layout-search`` only, so default payloads stay
    #: byte-identical to pre-search goldens.
    layout: tuple[LayoutRow, ...] | None = None

    def row(self, name: str, variant: str) -> ScaleRow:
        for r in self.rows:
            if r.name == name and r.variant == variant:
                return r
        raise KeyError(f"no row {name}/{variant}")


def layout_search(n: int, cores: int, base_config: ClusterConfig,
                  core_config: CoreConfig | None = None,
                  jobs: int = 1,
                  staggers: tuple[int, ...] = LAYOUT_STAGGERS
                  ) -> tuple[LayoutRow, ...]:
    """Sweep ``bank_stagger_words`` per kernel at a fixed core count.

    One :class:`Sweep` of every kernel's copift variant (the layout-
    sensitive one: vector loads hit the banks hardest) over one
    :class:`ClusterBackend` per stagger setting; the merger picks each
    kernel's best setting.  Cells are independent simulations, so the
    search shards under ``jobs`` like the main sweep.
    """
    staggers = tuple(dict.fromkeys(staggers))
    workloads = [Workload(kernel_def.name, "copift", n=n)
                 for kernel_def in KERNELS.values()]
    backends = [
        ClusterBackend(cores=cores,
                       config=replace(base_config,
                                      bank_stagger_words=stagger),
                       core_config=core_config)
        for stagger in staggers
    ]
    sweep = Sweep(workloads, backends=backends)
    measured = iter(sweep.run(jobs=jobs))
    rows = []
    for kernel_def in KERNELS.values():
        points = []
        for stagger in staggers:
            record: RunRecord = next(measured)
            points.append(LayoutPoint(
                stagger=stagger,
                cycles=record.cycles,
                tcdm_conflict_cycles=(
                    record.cluster.tcdm_conflict_cycles),
            ))
        rows.append(LayoutRow(kernel_def.name, tuple(points)))
    return tuple(rows)


def generate(n: int = 4096, cores: tuple[int, ...] = DEFAULT_CORES,
             config: ClusterConfig | None = None,
             core_config: CoreConfig | None = None,
             check: bool = False, jobs: int = 1,
             writeback: bool = False,
             layout: bool = False) -> ClusterScaleData:
    """Run the full scaling sweep.

    *cores* is normalized to ascending unique counts; speedups are
    relative to the smallest swept count (1 in the default sweep).
    With ``jobs > 1`` the (kernel x variant x core-count) cells are
    sharded over host processes; results are merged in sweep order, so
    the output is identical to a sequential run.  With ``writeback``
    the vector kernels drain their outputs back to L2 through the DMA
    engine and every transfer beat contends in the TCDM bank arbiter.
    ``layout`` appends a :func:`layout_search` over
    ``bank_stagger_words`` at the widest swept core count.
    """
    cores = tuple(sorted(set(cores)))
    base_config = config or ClusterConfig()
    workloads = [
        Workload(kernel_def.name, variant, n=n)
        for kernel_def in KERNELS.values()
        for variant in ("baseline", "copift")
    ]
    backends = [
        ClusterBackend(cores=n_cores, config=base_config,
                       core_config=core_config, writeback=writeback)
        for n_cores in cores
    ]
    sweep = Sweep(workloads, backends=backends)
    measured = iter(sweep.run(jobs=jobs, check=check))

    rows = []
    for kernel_def in KERNELS.values():
        for variant in ("baseline", "copift"):
            points = []
            base_cycles = None
            for n_cores in cores:
                record: RunRecord = next(measured)
                cycles = record.cycles
                if base_cycles is None:
                    base_cycles = cycles
                speedup = base_cycles / cycles
                detail = record.cluster
                points.append(ScalePoint(
                    cores=n_cores,
                    cycles=cycles,
                    speedup=speedup,
                    efficiency=speedup * cores[0] / n_cores,
                    tcdm_conflict_cycles=detail.tcdm_conflict_cycles,
                    dma_bytes=detail.dma_bytes,
                    barrier_count=detail.barrier_count,
                    power_mw=record.power_mw,
                    dma_bytes_read=detail.dma_bytes_read,
                    dma_bytes_written=detail.dma_bytes_written,
                ))
            rows.append(ScaleRow(kernel_def.name, variant,
                                 tuple(points)))
    layout_rows = None
    if layout:
        layout_rows = layout_search(n, cores[-1], base_config,
                                    core_config=core_config, jobs=jobs)
    return ClusterScaleData(tuple(rows), n=n, cores=tuple(cores),
                            writeback=writeback, layout=layout_rows)


def render(data: ClusterScaleData) -> str:
    """Text table: cycles and speedup per core count."""
    base_cores = data.cores[0]
    mode = " with simulated output write-back" if data.writeback else ""
    lines = [
        f"Cluster scaling: {data.n} elements/samples over "
        f"{'/'.join(str(c) for c in data.cores)} cores{mode}",
        f"(speedup vs the {base_cores}-core run of the same variant; "
        "S = speedup, E = efficiency)",
    ]
    cores_cols = "".join(
        f" {'S@' + str(c):>7} {'E@' + str(c):>6}"
        for c in data.cores[1:]
    )
    base_label = f"{base_cores}-core cyc"
    header = (f"{'Kernel':<18} {'variant':<9} {base_label:>11}"
              f"{cores_cols} {'cflt@max':>9} {'mW@max':>7}")
    lines += [header, "-" * len(header)]
    for row in data.rows:
        base = row.points[0]
        cells = "".join(
            f" {p.speedup:>6.2f}x {p.efficiency:>6.2f}"
            for p in row.points[1:]
        )
        last = row.points[-1]
        lines.append(
            f"{row.name:<18} {row.variant:<9} {base.cycles:>11}"
            f"{cells} {last.tcdm_conflict_cycles:>9} "
            f"{last.power_mw:>6.1f}"
        )
    max_cores = data.cores[-1]
    speedups = [r.points[-1].speedup for r in data.rows]
    lines.append(
        f"speedup at {max_cores} cores: min {min(speedups):.2f}x, "
        f"max {max(speedups):.2f}x "
        f"(ideal {max_cores / base_cores:.2f}x)"
    )
    if data.layout is not None:
        staggers = [p.stagger for p in data.layout[0].points]
        lines += [
            "",
            f"TCDM layout search (copift at {max_cores} cores, "
            f"bank_stagger_words in "
            f"{'/'.join(str(s) for s in staggers)}):",
        ]
        header = (f"{'Kernel':<18} {'best':>5} "
                  + "".join(f" {'cyc@' + str(s):>9}" for s in staggers))
        lines += [header, "-" * len(header)]
        for lrow in data.layout:
            cells = "".join(f" {p.cycles:>9}" for p in lrow.points)
            lines.append(
                f"{lrow.name:<18} {lrow.best.stagger:>5} {cells}")
    return "\n".join(lines)


def clusterscale_payload(data: ClusterScaleData) -> dict:
    # The write-back fields ride along only when the mode is on, so a
    # default sweep's payload stays byte-identical to pre-write-back
    # goldens.
    def point_json(p: ScalePoint) -> dict:
        entry = {
            "cores": p.cores,
            "cycles": p.cycles,
            "speedup": p.speedup,
            "efficiency": p.efficiency,
            "tcdm_conflict_cycles": p.tcdm_conflict_cycles,
            "dma_bytes": p.dma_bytes,
            "barrier_count": p.barrier_count,
            "power_mw": p.power_mw,
        }
        if data.writeback:
            entry["dma_bytes_read"] = p.dma_bytes_read
            entry["dma_bytes_written"] = p.dma_bytes_written
        return entry

    payload = {
        "n": data.n,
        "cores": list(data.cores),
        "rows": [
            {
                "kernel": row.name,
                "variant": row.variant,
                "points": [point_json(p) for p in row.points],
            }
            for row in data.rows
        ],
    }
    if data.writeback:
        payload["writeback"] = True
    if data.layout is not None:
        # Rides along only when the search ran, mirroring the
        # write-back fields: default payloads stay golden-stable.
        payload["layout_search"] = {
            "cores": data.cores[-1],
            "staggers": [p.stagger for p in data.layout[0].points],
            "rows": [
                {
                    "kernel": lrow.name,
                    "best_stagger": lrow.best.stagger,
                    "points": [
                        {
                            "stagger": p.stagger,
                            "cycles": p.cycles,
                            "tcdm_conflict_cycles":
                                p.tcdm_conflict_cycles,
                        }
                        for p in lrow.points
                    ],
                }
                for lrow in data.layout
            ],
        }
    return payload


def observe_clusterscale(request: ArtifactRequest) -> tuple:
    """Representative cell for ``--trace``/``--profile``: expf/copift
    on the widest swept cluster (banked TCDM, DMA, barrier)."""
    cores = max(request.effective_cores(DEFAULT_CORES))
    return (Workload("expf", "copift", n=request.effective_n(4096)),
            ClusterBackend(cores=cores,
                           writeback=request.extra("writeback", False)))


LAYOUT_FLAG = ExtraFlag(
    "--layout-search",
    help="sweep the TCDM bank_stagger_words placement per kernel "
         "(copift at the widest swept core count) and report the "
         "best setting alongside the scaling table (default off)",
    parse=parse_onoff, default=False, metavar="on|off",
)


@artifact("clusterscale", sharded=True, order=40,
          help="1/2/4/8-core cluster scaling of every kernel",
          flags=(WRITEBACK_FLAG, LAYOUT_FLAG),
          observe=observe_clusterscale)
def clusterscale_artifact(request: ArtifactRequest) -> ArtifactResult:
    data = generate(n=request.effective_n(4096),
                    cores=request.effective_cores(DEFAULT_CORES),
                    jobs=request.jobs,
                    writeback=request.extra("writeback", False),
                    layout=request.extra("layout_search", False))
    return ArtifactResult("clusterscale", render(data),
                          clusterscale_payload(data))
