"""Cluster-scaling artifact: 1/2/4/8-core sweep of every kernel.

For each registered kernel and both variants the sweep statically chunks
a fixed total problem over 1, 2, 4 and 8 cores (`repro.cluster`), runs
the cluster simulation (banked-TCDM arbitration, DMA-staged inputs for
the vector kernels, trailing barrier) and reports the makespan of the
``main`` region, the speedup and parallel efficiency versus the 1-core
run, bank-conflict stalls, and cluster power from the extended energy
model.  The 1-core column reproduces the single-``Machine`` measurement
exactly (same program, same memory image).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, partition_kernel
from ..energy import ClusterEnergyModel
from ..kernels.common import MAIN_REGION
from ..kernels.registry import KERNELS
from ..sim import CoreConfig
from .parallel import run_sharded

DEFAULT_CORES = (1, 2, 4, 8)


@dataclass(frozen=True)
class ScalePoint:
    """One (kernel, variant, core-count) measurement."""

    cores: int
    cycles: int
    speedup: float        # vs the smallest swept count, same variant
    efficiency: float     # speedup normalized by the core-count ratio
    tcdm_conflict_cycles: int
    dma_bytes: int
    barrier_count: int
    power_mw: float


@dataclass(frozen=True)
class ScaleRow:
    """One kernel x variant across every swept core count."""

    name: str
    variant: str
    points: tuple[ScalePoint, ...]

    def point(self, cores: int) -> ScalePoint:
        for p in self.points:
            if p.cores == cores:
                return p
        raise KeyError(f"no {cores}-core point for {self.name}")


@dataclass(frozen=True)
class ClusterScaleData:
    rows: tuple[ScaleRow, ...]
    n: int
    cores: tuple[int, ...]

    def row(self, name: str, variant: str) -> ScaleRow:
        for r in self.rows:
            if r.name == name and r.variant == variant:
                return r
        raise KeyError(f"no row {name}/{variant}")


def _measure_cell(cell: tuple) -> dict:
    """One (kernel, variant, core-count) simulation — the shard worker.

    Module-level and fed only picklable payloads so
    :func:`~repro.eval.parallel.run_sharded` can dispatch it to worker
    processes.  Returns primitives; cross-cell derived values (speedup,
    efficiency) are computed by the merger, which is what keeps the
    ``--jobs N`` payload bit-identical to the sequential one.
    """
    kernel_name, variant, n, n_cores, config, core_config, check = cell
    kernel_def = KERNELS[kernel_name]
    workload = partition_kernel(kernel_def, n, n_cores,
                                variant=variant)
    result = workload.run(config=config, core_config=core_config,
                          check=check)
    region = result.region(MAIN_REGION)
    cycles = region.cycles
    # DMA energy is priced on the kernels' *conceptual* traffic (input
    # staging + output drain), exactly as Figure 2 prices the same
    # instances — the engine's measured bytes cover only the transfers
    # the cluster actually models (staged inputs), which would make the
    # 1-core power column disagree with Fig. 2.
    dma_bytes = sum(i.dma_bytes for i in workload.instances)
    power = ClusterEnergyModel().report(
        region.counters, cycles, n_cores,
        n_banks=config.tcdm_banks,
        tcdm_accesses=result.tcdm_accesses,
        tcdm_conflict_cycles=result.tcdm_conflict_cycles,
        dma_bytes=dma_bytes,
        dma_transfers=result.counters.dma_transfers,
        barriers=result.barrier_count,
        dma_active=any(i.dma_active for i in workload.instances),
    )
    return {
        "cycles": cycles,
        "tcdm_conflict_cycles": result.tcdm_conflict_cycles,
        "dma_bytes": result.dma_bytes,
        "barrier_count": result.barrier_count,
        "power_mw": power.power_mw,
    }


def generate(n: int = 4096, cores: tuple[int, ...] = DEFAULT_CORES,
             config: ClusterConfig | None = None,
             core_config: CoreConfig | None = None,
             check: bool = False, jobs: int = 1) -> ClusterScaleData:
    """Run the full scaling sweep.

    *cores* is normalized to ascending unique counts; speedups are
    relative to the smallest swept count (1 in the default sweep).
    With ``jobs > 1`` the (kernel x variant x core-count) cells are
    sharded over host processes; results are merged in sweep order, so
    the output is identical to a sequential run.
    """
    cores = tuple(sorted(set(cores)))
    base_config = config or ClusterConfig()
    cells = [
        (kernel_def.name, variant, n, n_cores, base_config,
         core_config, check)
        for kernel_def in KERNELS.values()
        for variant in ("baseline", "copift")
        for n_cores in cores
    ]
    measured = iter(run_sharded(_measure_cell, cells, jobs=jobs))

    rows = []
    for kernel_def in KERNELS.values():
        for variant in ("baseline", "copift"):
            points = []
            base_cycles = None
            for n_cores in cores:
                cell = next(measured)
                cycles = cell["cycles"]
                if base_cycles is None:
                    base_cycles = cycles
                speedup = base_cycles / cycles
                points.append(ScalePoint(
                    cores=n_cores,
                    cycles=cycles,
                    speedup=speedup,
                    efficiency=speedup * cores[0] / n_cores,
                    tcdm_conflict_cycles=cell["tcdm_conflict_cycles"],
                    dma_bytes=cell["dma_bytes"],
                    barrier_count=cell["barrier_count"],
                    power_mw=cell["power_mw"],
                ))
            rows.append(ScaleRow(kernel_def.name, variant,
                                 tuple(points)))
    return ClusterScaleData(tuple(rows), n=n, cores=tuple(cores))


def render(data: ClusterScaleData) -> str:
    """Text table: cycles and speedup per core count."""
    base_cores = data.cores[0]
    lines = [
        f"Cluster scaling: {data.n} elements/samples over "
        f"{'/'.join(str(c) for c in data.cores)} cores",
        f"(speedup vs the {base_cores}-core run of the same variant; "
        "S = speedup, E = efficiency)",
    ]
    cores_cols = "".join(
        f" {'S@' + str(c):>7} {'E@' + str(c):>6}"
        for c in data.cores[1:]
    )
    base_label = f"{base_cores}-core cyc"
    header = (f"{'Kernel':<18} {'variant':<9} {base_label:>11}"
              f"{cores_cols} {'cflt@max':>9} {'mW@max':>7}")
    lines += [header, "-" * len(header)]
    for row in data.rows:
        base = row.points[0]
        cells = "".join(
            f" {p.speedup:>6.2f}x {p.efficiency:>6.2f}"
            for p in row.points[1:]
        )
        last = row.points[-1]
        lines.append(
            f"{row.name:<18} {row.variant:<9} {base.cycles:>11}"
            f"{cells} {last.tcdm_conflict_cycles:>9} "
            f"{last.power_mw:>6.1f}"
        )
    max_cores = data.cores[-1]
    speedups = [r.points[-1].speedup for r in data.rows]
    lines.append(
        f"speedup at {max_cores} cores: min {min(speedups):.2f}x, "
        f"max {max(speedups):.2f}x "
        f"(ideal {max_cores / base_cores:.2f}x)"
    )
    return "\n".join(lines)
