"""Compatibility shim: artifact output helpers, re-exported.

The real definitions moved into the unified experiment API
(:mod:`repro.api.artifacts` for :class:`ArtifactResult` /
:func:`write_output` / :func:`combine`) and into the artifact modules
themselves (each ``*_payload`` lives next to the data shape it
serializes).  Importing them from ``repro.eval.io`` keeps working.
"""

from __future__ import annotations

from ..api.artifacts import ArtifactResult, combine, write_output
from .clusterscale import clusterscale_payload
from .fig2 import fig2_payload
from .fig3 import fig3_payload
from .socscale import socscale_payload
from .table1 import table1_payload

__all__ = [
    "ArtifactResult",
    "clusterscale_payload",
    "combine",
    "fig2_payload",
    "fig3_payload",
    "socscale_payload",
    "table1_payload",
    "write_output",
]
