"""Shared artifact output: text/JSON rendering and the ``--out`` writer.

Every ``python -m repro.eval`` artifact flows through one
:class:`ArtifactResult` (rendered text plus a JSON-able payload), so
``--out`` and ``--json`` behave identically for every artifact —
including ``all``, which concatenates texts and merges payloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .clusterscale import ClusterScaleData
from .fig2 import Fig2Data
from .fig3 import Fig3Data
from .table1 import Table1Row


@dataclass(frozen=True)
class ArtifactResult:
    """One regenerated artifact: human text + machine payload."""

    name: str
    text: str
    payload: dict


def table1_payload(rows: list[Table1Row]) -> dict:
    def mix(model) -> dict:
        return {
            "n_int": model.base.n_int, "n_fp": model.base.n_fp,
            "copift_n_int": model.copift.n_int,
            "copift_n_fp": model.copift.n_fp,
            "thread_imbalance": model.thread_imbalance,
            "i_prime": model.i_prime,
            "s_double_prime": model.s_double_prime,
            "s_prime": model.s_prime,
            "max_block": model.max_block,
        }

    return {"rows": [
        {"kernel": row.name, "measured": mix(row.measured),
         "paper": mix(row.paper)}
        for row in rows
    ]}


def fig2_payload(data: Fig2Data) -> dict:
    rows = []
    for r in data.rows:
        m = r.measurement
        rows.append({
            "kernel": r.name,
            "baseline": {"ipc": m.baseline.ipc,
                         "cycles": m.baseline.cycles,
                         "power_mw": m.baseline.power_mw},
            "copift": {"ipc": m.copift.ipc,
                       "cycles": m.copift.cycles,
                       "power_mw": m.copift.power_mw},
            "speedup": m.speedup,
            "ipc_gain": m.ipc_gain,
            "power_increase": m.power_increase,
            "energy_improvement": m.energy_improvement,
            "expected_ipc": r.expected_ipc,
            "expected_speedup": r.expected_speedup,
            "paper": {"ipc": list(r.paper_ipc),
                      "power_mw": list(r.paper_power_mw),
                      "speedup": r.paper_speedup,
                      "energy_improvement": r.paper_energy_improvement},
        })
    return {
        "rows": rows,
        "geomean_speedup": data.geomean_speedup,
        "geomean_ipc_gain": data.geomean_ipc_gain,
        "geomean_power_increase": data.geomean_power_increase,
        "geomean_energy_improvement": data.geomean_energy_improvement,
    }


def fig3_payload(data: Fig3Data) -> dict:
    return {
        "block_sizes": list(data.block_sizes),
        "problem_sizes": list(data.problem_sizes),
        "ipc": {str(n): {str(b): data.ipc[n][b]
                         for b in data.block_sizes}
                for n in data.problem_sizes},
        "peak_block": {str(n): data.peak_block(n)
                       for n in data.problem_sizes},
        "converged_problem": {str(b): data.converged_problem(b)
                              for b in data.block_sizes},
    }


def clusterscale_payload(data: ClusterScaleData) -> dict:
    return {
        "n": data.n,
        "cores": list(data.cores),
        "rows": [
            {
                "kernel": row.name,
                "variant": row.variant,
                "points": [
                    {
                        "cores": p.cores,
                        "cycles": p.cycles,
                        "speedup": p.speedup,
                        "efficiency": p.efficiency,
                        "tcdm_conflict_cycles": p.tcdm_conflict_cycles,
                        "dma_bytes": p.dma_bytes,
                        "barrier_count": p.barrier_count,
                        "power_mw": p.power_mw,
                    }
                    for p in row.points
                ],
            }
            for row in data.rows
        ],
    }


def combine(results: list[ArtifactResult]) -> tuple[str, dict]:
    """Concatenate texts and merge payloads keyed by artifact name."""
    text = "\n\n".join(r.text for r in results)
    payload = {r.name: r.payload for r in results}
    return text, payload


def write_output(text: str, payload: dict, out: str | None,
                 as_json: bool) -> None:
    """Route an artifact to stdout or ``--out``, as text or JSON."""
    content = json.dumps(payload, indent=2, sort_keys=True) \
        if as_json else text
    if out:
        with open(out, "w") as handle:
            handle.write(content)
            if not content.endswith("\n"):
                handle.write("\n")
        print(f"wrote {out}")
    else:
        print(content)
