"""Markdown report generation: all artifacts in one document.

``python -m repro.eval report --out report.md`` regenerates Table I,
Figures 2a-2c and Figure 3 and writes a single self-contained markdown
report with measured-vs-paper tables — the machine-generated companion
to EXPERIMENTS.md.
"""

from __future__ import annotations

from ..api import ArtifactRequest, ArtifactResult, artifact
from . import fig2, fig3, table1


def _md_table(header: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def generate_report(n: int = 2048, full_fig3: bool = False,
                    fig3_blocks: tuple[int, ...] | None = None,
                    fig3_problems: tuple[int, ...] | None = None) -> str:
    """Run all experiments and render one markdown document.

    *fig3_blocks*/*fig3_problems* override the Figure-3 sweep grid
    (useful for quick reports and tests).
    """
    sections = ["# COPIFT reproduction report",
                "",
                f"Problem size for Figure 2: n = {n}.",
                ""]

    # --- Table I ---------------------------------------------------------
    rows = table1.generate(n=min(n, 2048))
    body = []
    for row in rows:
        m, p = row.measured, row.paper
        body.append([
            row.name,
            f"{m.base.n_int} / {p.base.n_int}",
            f"{m.base.n_fp} / {p.base.n_fp}",
            f"{m.thread_imbalance:.2f} / {p.thread_imbalance:.2f}",
            f"{m.copift.n_int} / {p.copift.n_int}",
            f"{m.copift.n_fp} / {p.copift.n_fp}",
            f"{m.i_prime:.2f} / {p.i_prime:.2f}",
            f"{m.s_prime:.2f} / {p.s_prime:.2f}",
        ])
    sections += [
        "## Table I — kernel characteristics (measured / paper)", "",
        _md_table(["kernel", "#Int", "#FP", "TI", "CP #Int", "CP #FP",
                   "I'", "S'"], body),
        "",
    ]

    # --- Figure 2 ---------------------------------------------------------
    data = fig2.generate(n=n)
    body = []
    for row in data.rows:
        m = row.measurement
        body.append([
            row.name,
            f"{m.baseline.ipc:.2f} / {row.paper_ipc[0]:.2f}",
            f"{m.copift.ipc:.2f} / {row.paper_ipc[1]:.2f}",
            f"{m.baseline.power_mw:.1f} / {row.paper_power_mw[0]:.1f}",
            f"{m.copift.power_mw:.1f} / {row.paper_power_mw[1]:.1f}",
            f"{m.speedup:.2f} / {row.paper_speedup:.2f}",
            f"{m.energy_improvement:.2f} / "
            f"{row.paper_energy_improvement:.2f}",
        ])
    sections += [
        "## Figure 2 — IPC, power, speedup, energy (measured / paper)",
        "",
        _md_table(["kernel", "base IPC", "COPIFT IPC", "base mW",
                   "COPIFT mW", "speedup", "energy impr."], body),
        "",
        f"Geomeans (measured / paper): speedup "
        f"{data.geomean_speedup:.2f} / 1.47, IPC gain "
        f"{data.geomean_ipc_gain:.2f} / 1.62, power increase "
        f"{data.geomean_power_increase:.2f} / 1.07, energy "
        f"improvement {data.geomean_energy_improvement:.2f} / 1.37.",
        "",
    ]

    # --- Figure 3 ---------------------------------------------------------
    fig3_kwargs = {}
    if fig3_blocks is not None:
        fig3_kwargs["block_sizes"] = fig3_blocks
    if fig3_problems is not None:
        fig3_kwargs["problem_sizes"] = fig3_problems
    sweep = fig3.generate(full=full_fig3, **fig3_kwargs)
    header = ["N \\ B"] + [str(b) for b in sweep.block_sizes]
    body = []
    for problem in sweep.problem_sizes:
        peak = sweep.peak_block(problem)
        row = [str(problem)]
        for block in sweep.block_sizes:
            mark = "**" if block == peak else ""
            row.append(f"{mark}{sweep.ipc[problem][block]:.3f}{mark}")
        body.append(row)
    sections += [
        "## Figure 3 — poly_lcg IPC vs problem and block size", "",
        _md_table(header, body),
        "",
        "Bold = peak block size per problem size.  Convergence "
        "(smallest N reaching >99.5 % of each block's max IPC): "
        + ", ".join(
            f"B={b}: N={sweep.converged_problem(b)}"
            for b in sweep.block_sizes
        ) + ".",
        "",
    ]
    return "\n".join(sections)


@artifact("report", composite=True, order=60,
          help="self-contained markdown report of every figure/table")
def report_artifact(request: ArtifactRequest) -> ArtifactResult:
    text = generate_report(n=request.effective_n(4096),
                           full_fig3=request.full)
    return ArtifactResult("report", text, {"markdown": text})
