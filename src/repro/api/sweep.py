"""Declarative sweeps: workloads x backends, executed in one place.

A :class:`Sweep` is the cross-product of workload specs and backend
specs.  Its executor is the **only** sharding/batching site in the
repo: every artifact fans its cells through :meth:`Sweep.run`, which

* preserves **input order** — results line up with :meth:`Sweep.cells`
  regardless of parallelism;
* guarantees **determinism** — each cell's record depends only on the
  (workload, backend) pair, so ``jobs=N`` output is bit-identical to
  ``jobs=1`` (the property the CLI's ``--jobs`` flag documents);
* **batches** fine-grained cells per pool task via
  :func:`repro.eval.parallel.shard_hinted`, amortizing process startup
  and pickling overhead when a sweep has many more cells than workers;
* optionally runs bare-core cells through the **vectorized batch
  engine** (``Sweep(batch=...)``): eligible cells are grouped into
  lockstep fleets stepped by :class:`repro.sim.batch.BatchEngine`,
  each group one pool task, with records byte-identical to the scalar
  engine's for every ``jobs``/``batch`` combination.

Cells (workload + backend dataclasses) are picklable by construction,
so the executor needs no per-artifact worker plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .backend import Backend, parse_backend
from .record import RunRecord
from .workload import Workload

#: Target pool tasks per worker process.  More than one keeps the pool
#: load-balanced when cell costs vary (big-n cells dominate sweeps);
#: far fewer tasks than cells amortizes fork/pickle overhead.
_BATCHES_PER_JOB = 4


def _run_batch(batch: list) -> list:
    """Pool worker: run one batch of indexed cells.

    Module-level (picklable by reference); returns ``(index, record)``
    pairs so the merger can restore global sweep order no matter how
    cells were grouped into batches.
    """
    return [(index, backend.run(workload, check=check))
            for index, workload, backend, check in batch]


def _run_task(task: tuple) -> list:
    """Pool worker: one sweep task, scalar shard or lockstep group.

    Tasks are ``("scalar", cells)`` — a shard of independent cells run
    through the backends one by one — or ``("batch", (backend,
    items))`` — one vectorized lockstep group stepped by the
    :class:`~repro.sim.batch.BatchEngine`.  Both return the same
    ``(index, record)`` pairs, so the merger below is agnostic.
    """
    kind, payload = task
    if kind == "batch":
        from .batchrun import run_batch_cells
        backend, items = payload
        return run_batch_cells(backend, items)
    return _run_batch(payload)


@dataclass(frozen=True)
class Sweep:
    """Cross-product sweep of workloads over backends.

    Attributes:
        workloads: Workload specs, in result-major order.
        backends: Backend instances or spec strings (``"core"``,
            ``"cluster:4"``); strings are resolved on construction.
        batch: Vectorized lockstep execution of bare-core cells:
            ``None`` (default) runs every cell on the scalar engine,
            ``"auto"`` groups eligible cells into lockstep batches of
            a default lane width, an integer sets the width
            explicitly.  Records are byte-identical for every value
            (the batch engine is equivalence-locked against the
            scalar scheduler); cluster/SoC cells always run scalar.
    """

    workloads: tuple[Workload, ...]
    backends: tuple[Backend, ...] = ("core",)
    batch: int | str | None = None

    def __init__(self, workloads: Iterable[Workload],
                 backends: Sequence[Backend | str] = ("core",),
                 batch: int | str | None = None) -> None:
        from .batchrun import resolve_batch

        resolved = tuple(
            parse_backend(b) if isinstance(b, str) else b
            for b in backends
        )
        resolve_batch(batch)        # validate eagerly, store verbatim
        object.__setattr__(self, "workloads", tuple(workloads))
        object.__setattr__(self, "backends", resolved)
        object.__setattr__(self, "batch", batch)
        if not self.workloads:
            raise ValueError("sweep needs at least one workload")
        if not resolved:
            raise ValueError("sweep needs at least one backend")

    def cells(self) -> list[tuple[Workload, Backend]]:
        """The sweep cells, workload-major, in execution order."""
        return [(w, b) for w in self.workloads for b in self.backends]

    def run(self, jobs: int = 1, check: bool = False,
            cache=None) -> list[RunRecord]:
        """Execute every cell; records come back in :meth:`cells` order.

        ``jobs=1`` runs inline (no pool); higher values shard batched
        cells over that many host processes.  Output is identical for
        every *jobs* value.

        *cache* selects the result store consulted per cell **before**
        sharding: ``None`` (default) uses the ambient
        :func:`repro.serve.active_store` (none, unless a caller such as
        the eval CLI activated one), ``False`` disables caching for
        this run, and a :class:`repro.serve.RunStore` is used directly.
        Identical cells within the sweep are always simulated once and
        fanned out (the very record object is shared, so payloads stay
        byte-identical); ``check=True`` bypasses the persistent store —
        a cached record cannot attest a fresh output verification —
        but keeps the in-sweep dedupe.
        """
        # Imported here, not at module top: repro.eval's package init
        # imports the artifact modules (which import repro.api), so a
        # top-level import would cycle during package initialization.
        from ..eval.parallel import (
            run_sharded,
            shard_hinted,
            validate_jobs,
        )
        from ..serve.client import active_store
        from ..serve.store import cache_key
        from .batchrun import plan_batch, resolve_batch

        validate_jobs(jobs)
        if cache is None:
            store = active_store()
        else:
            store = cache or None
        cells = self.cells()
        records: list[RunRecord | None] = [None] * len(cells)
        fingerprint = store.fingerprint if store is not None else None
        leaders: dict[str, int] = {}
        followers: dict[int, int] = {}   # follower index -> leader
        pending: list[tuple] = []
        keys: list[str | None] = []
        for i, (w, b) in enumerate(cells):
            key = cache_key(w, b, fingerprint=fingerprint)
            keys.append(key)
            if key is not None and store is not None and not check:
                cached = store.lookup(w, b, key=key)
                if cached is not None:
                    records[i] = cached
                    continue
            if key is not None and key in leaders:
                followers[i] = leaders[key]
                if store is not None:
                    store.stats.deduped += 1
                continue
            if key is not None:
                leaders[key] = i
            pending.append((i, w, b, check))

        lanes = resolve_batch(self.batch)
        scalar_pending = pending
        batch_tasks: list = []
        if lanes is not None and lanes > 1 and pending:
            batch_tasks, scalar_pending = plan_batch(pending, lanes)
        tasks = [("batch", task) for task in batch_tasks]
        if scalar_pending:
            if jobs == 1:
                tasks.append(("scalar", scalar_pending))
            else:
                tasks.extend(
                    ("scalar", shard) for shard in
                    shard_hinted(scalar_pending, jobs,
                                 per_job=_BATCHES_PER_JOB))
        if not tasks:
            computed = []
        elif jobs == 1 or len(tasks) == 1:
            computed = [pair for task in tasks
                        for pair in _run_task(task)]
        else:
            computed = [pair
                        for task_out in run_sharded(_run_task, tasks,
                                                    jobs=jobs)
                        for pair in task_out]
        for index, record in computed:
            records[index] = record
            if store is not None and not check \
                    and keys[index] is not None:
                workload, backend = cells[index]
                store.save(workload, backend, record,
                           key=keys[index])
        for follower, leader in followers.items():
            records[follower] = records[leader]
        return records

    def index(self, records: Sequence[RunRecord]
              ) -> dict[tuple[Workload, str], RunRecord]:
        """Key already-computed :meth:`run` output by
        ``(workload, backend spec)`` — no re-simulation.

        Raises ``ValueError`` if two cells share a key (duplicate
        workloads, or two backends with the same spec string, e.g. two
        differently-configured ``CoreBackend``s) — a dict would
        silently keep only the last record.
        """
        cells = self.cells()
        if len(records) != len(cells):
            raise ValueError(
                f"{len(records)} records for {len(cells)} cells; "
                f"pass the unfiltered output of run()"
            )
        indexed: dict[tuple[Workload, str], RunRecord] = {}
        for (w, b), record in zip(cells, records):
            key = (w, b.spec)
            if key in indexed:
                raise ValueError(
                    f"duplicate sweep cell {w.kernel}/{w.variant} on "
                    f"{b.spec!r}; use run() for positional results"
                )
            indexed[key] = record
        return indexed

    def run_indexed(self, jobs: int = 1, check: bool = False
                    ) -> dict[tuple[Workload, str], RunRecord]:
        """:meth:`run` + :meth:`index` in one call."""
        return self.index(self.run(jobs=jobs, check=check))
