"""Declarative sweeps: workloads x backends, executed in one place.

A :class:`Sweep` is the cross-product of workload specs and backend
specs.  Its executor is the **only** sharding/batching site in the
repo: every artifact fans its cells through :meth:`Sweep.run`, which

* preserves **input order** — results line up with :meth:`Sweep.cells`
  regardless of parallelism;
* guarantees **determinism** — each cell's record depends only on the
  (workload, backend) pair, so ``jobs=N`` output is bit-identical to
  ``jobs=1`` (the property the CLI's ``--jobs`` flag documents);
* **batches** fine-grained cells per pool task via
  :func:`repro.eval.parallel.shard_evenly`, amortizing process startup
  and pickling overhead when a sweep has many more cells than workers.

Cells (workload + backend dataclasses) are picklable by construction,
so the executor needs no per-artifact worker plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .backend import Backend, parse_backend
from .record import RunRecord
from .workload import Workload

#: Target pool tasks per worker process.  More than one keeps the pool
#: load-balanced when cell costs vary (big-n cells dominate sweeps);
#: far fewer tasks than cells amortizes fork/pickle overhead.
_BATCHES_PER_JOB = 4


def _run_batch(batch: list) -> list:
    """Pool worker: run one batch of indexed cells.

    Module-level (picklable by reference); returns ``(index, record)``
    pairs so the merger can restore global sweep order no matter how
    cells were grouped into batches.
    """
    return [(index, backend.run(workload, check=check))
            for index, workload, backend, check in batch]


@dataclass(frozen=True)
class Sweep:
    """Cross-product sweep of workloads over backends.

    Attributes:
        workloads: Workload specs, in result-major order.
        backends: Backend instances or spec strings (``"core"``,
            ``"cluster:4"``); strings are resolved on construction.
    """

    workloads: tuple[Workload, ...]
    backends: tuple[Backend, ...] = ("core",)

    def __init__(self, workloads: Iterable[Workload],
                 backends: Sequence[Backend | str] = ("core",)) -> None:
        resolved = tuple(
            parse_backend(b) if isinstance(b, str) else b
            for b in backends
        )
        object.__setattr__(self, "workloads", tuple(workloads))
        object.__setattr__(self, "backends", resolved)
        if not self.workloads:
            raise ValueError("sweep needs at least one workload")
        if not resolved:
            raise ValueError("sweep needs at least one backend")

    def cells(self) -> list[tuple[Workload, Backend]]:
        """The sweep cells, workload-major, in execution order."""
        return [(w, b) for w in self.workloads for b in self.backends]

    def run(self, jobs: int = 1, check: bool = False,
            cache=None) -> list[RunRecord]:
        """Execute every cell; records come back in :meth:`cells` order.

        ``jobs=1`` runs inline (no pool); higher values shard batched
        cells over that many host processes.  Output is identical for
        every *jobs* value.

        *cache* selects the result store consulted per cell **before**
        sharding: ``None`` (default) uses the ambient
        :func:`repro.serve.active_store` (none, unless a caller such as
        the eval CLI activated one), ``False`` disables caching for
        this run, and a :class:`repro.serve.RunStore` is used directly.
        Identical cells within the sweep are always simulated once and
        fanned out (the very record object is shared, so payloads stay
        byte-identical); ``check=True`` bypasses the persistent store —
        a cached record cannot attest a fresh output verification —
        but keeps the in-sweep dedupe.
        """
        # Imported here, not at module top: repro.eval's package init
        # imports the artifact modules (which import repro.api), so a
        # top-level import would cycle during package initialization.
        from ..eval.parallel import (
            run_sharded,
            shard_evenly,
            validate_jobs,
        )
        from ..serve.client import active_store
        from ..serve.store import cache_key

        validate_jobs(jobs)
        if cache is None:
            store = active_store()
        else:
            store = cache or None
        cells = self.cells()
        records: list[RunRecord | None] = [None] * len(cells)
        fingerprint = store.fingerprint if store is not None else None
        leaders: dict[str, int] = {}
        followers: dict[int, int] = {}   # follower index -> leader
        pending: list[tuple] = []
        keys: list[str | None] = []
        for i, (w, b) in enumerate(cells):
            key = cache_key(w, b, fingerprint=fingerprint)
            keys.append(key)
            if key is not None and store is not None and not check:
                cached = store.lookup(w, b, key=key)
                if cached is not None:
                    records[i] = cached
                    continue
            if key is not None and key in leaders:
                followers[i] = leaders[key]
                if store is not None:
                    store.stats.deduped += 1
                continue
            if key is not None:
                leaders[key] = i
            pending.append((i, w, b, check))

        if len(pending) == 1 or jobs == 1:
            computed = _run_batch(pending)
        elif pending:
            batches = shard_evenly(
                pending, min(len(pending), jobs * _BATCHES_PER_JOB))
            computed = [pair
                        for batch in run_sharded(_run_batch, batches,
                                                 jobs=jobs)
                        for pair in batch]
        else:
            computed = []
        for index, record in computed:
            records[index] = record
            if store is not None and not check \
                    and keys[index] is not None:
                workload, backend = cells[index]
                store.save(workload, backend, record,
                           key=keys[index])
        for follower, leader in followers.items():
            records[follower] = records[leader]
        return records

    def index(self, records: Sequence[RunRecord]
              ) -> dict[tuple[Workload, str], RunRecord]:
        """Key already-computed :meth:`run` output by
        ``(workload, backend spec)`` — no re-simulation.

        Raises ``ValueError`` if two cells share a key (duplicate
        workloads, or two backends with the same spec string, e.g. two
        differently-configured ``CoreBackend``s) — a dict would
        silently keep only the last record.
        """
        cells = self.cells()
        if len(records) != len(cells):
            raise ValueError(
                f"{len(records)} records for {len(cells)} cells; "
                f"pass the unfiltered output of run()"
            )
        indexed: dict[tuple[Workload, str], RunRecord] = {}
        for (w, b), record in zip(cells, records):
            key = (w, b.spec)
            if key in indexed:
                raise ValueError(
                    f"duplicate sweep cell {w.kernel}/{w.variant} on "
                    f"{b.spec!r}; use run() for positional results"
                )
            indexed[key] = record
        return indexed

    def run_indexed(self, jobs: int = 1, check: bool = False
                    ) -> dict[tuple[Workload, str], RunRecord]:
        """:meth:`run` + :meth:`index` in one call."""
        return self.index(self.run(jobs=jobs, check=check))
