"""Unified experiment API: Workload x Backend -> RunRecord.

The single entry point for running kernels anywhere in the repo::

    from repro.api import Workload, parse_backend

    record = parse_backend("cluster:4").run(
        Workload("expf", "copift", n=4096))
    print(record.cycles, record.ipc, record.power_mw)

Layers:

* :class:`Workload` — frozen spec (kernel, variant, n, block, seed)
  that builds its ``KernelInstance`` lazily.
* :class:`Backend` — where it runs: :class:`CoreBackend` (bare core),
  :class:`ClusterBackend` (N cores) or :class:`SocBackend` (C clusters
  x M cores); named by spec strings (``"core"``, ``"cluster:4"``,
  ``"soc:2x4"``) via :func:`parse_backend`.
* :class:`RunRecord` — the unified result (cycles, counters, IPC,
  power/energy, cluster detail) with a versioned ``to_json`` schema.
* :class:`Sweep` — declarative workloads x backends cross-product;
  its executor owns determinism, ``jobs`` sharding and per-task cell
  batching for the whole eval layer.
* :func:`artifact` — registry decorator turning a function into a
  ``python -m repro.eval`` subcommand.
"""

from .artifacts import (
    REGISTRY,
    ArtifactRequest,
    ArtifactResult,
    ArtifactSpec,
    ExtraFlag,
    artifact,
    combine,
    write_output,
)
from .backend import (
    Backend,
    ClusterBackend,
    CoreBackend,
    SocBackend,
    backend_spec_forms,
    parse_backend,
    record_from_instance,
)
from .fingerprint import timing_fingerprint
from .record import (
    SCHEMA_VERSION,
    ClusterDetail,
    RunRecord,
    SocDetail,
    StreamClassStats,
    StreamDetail,
)
from .sweep import Sweep
from .workload import VARIANTS, Workload, pair

__all__ = [
    "ArtifactRequest",
    "ArtifactResult",
    "ArtifactSpec",
    "Backend",
    "ClusterBackend",
    "ClusterDetail",
    "CoreBackend",
    "ExtraFlag",
    "REGISTRY",
    "RunRecord",
    "SCHEMA_VERSION",
    "SocBackend",
    "SocDetail",
    "StreamClassStats",
    "StreamDetail",
    "Sweep",
    "VARIANTS",
    "Workload",
    "artifact",
    "backend_spec_forms",
    "combine",
    "pair",
    "parse_backend",
    "record_from_instance",
    "timing_fingerprint",
    "write_output",
]
