"""Batch-engine planning for sweeps: lockstep groups as pool tasks.

:class:`~repro.api.sweep.Sweep` delegates here when constructed with
``batch=...``: pending cells whose backend is a bare-core
:class:`~repro.api.backend.CoreBackend` are grouped per backend
instance and chunked into lockstep *batch tasks* of at most the lane
width; everything else (cluster/SoC backends, singleton chunks)
stays on the scalar path.  Batch tasks are the per-task sharding unit,
so ``batch=`` composes with ``--jobs`` process sharding, and the
result contract is unchanged: ``(index, record)`` pairs whose records
are byte-identical to the scalar engine's.
"""

from __future__ import annotations

from .backend import CoreBackend, record_from_result

#: Lane width selected by ``batch="auto"``: wide enough to amortize
#: numpy dispatch over the fleet, small enough that one task is still
#: a sensible sharding unit next to ``--jobs``.
DEFAULT_LANES = 64


def resolve_batch(batch) -> int | None:
    """Normalize a ``Sweep(batch=...)`` value to a lane count.

    ``None`` disables batching; ``"auto"`` selects
    :data:`DEFAULT_LANES`; a positive integer is used as-is.
    """
    if batch is None:
        return None
    if batch == "auto":
        return DEFAULT_LANES
    if isinstance(batch, bool) or not isinstance(batch, int) \
            or batch < 1:
        raise ValueError(
            f"batch must be 'auto', an integer >= 1, or None; "
            f"got {batch!r}"
        )
    return batch


def plan_batch(pending: list, lanes: int) -> tuple[list, list]:
    """Split pending cells into batch tasks and scalar leftovers.

    Args:
        pending: ``(index, workload, backend, check)`` tuples, in
            sweep order, as built by :meth:`Sweep.run`.
        lanes: Maximum lanes per lockstep group.

    Returns:
        ``(batch_tasks, scalar_pending)`` where each batch task is
        ``(backend, [(index, workload, check), ...])``.  Cells are
        grouped by backend *identity* (sweeps reuse one backend
        object per column; dataclass equality would conflate
        differently configured backends whose compare-excluded
        fields differ) and chunked to at most *lanes*.  Chunks of
        one cell gain nothing from lockstep and stay scalar.
    """
    groups: dict[int, tuple] = {}
    scalar_pending: list = []
    for cell in pending:
        index, workload, backend, check = cell
        if isinstance(backend, CoreBackend):
            group = groups.setdefault(id(backend), (backend, []))
            group[1].append((index, workload, check))
        else:
            scalar_pending.append(cell)
    batch_tasks = []
    for backend, items in groups.values():
        for at in range(0, len(items), lanes):
            chunk = items[at:at + lanes]
            if len(chunk) == 1:
                index, workload, check = chunk[0]
                scalar_pending.append(
                    (index, workload, backend, check))
            else:
                batch_tasks.append((backend, chunk))
    # Keep scalar leftovers in sweep order: sharding is deterministic
    # either way, but ordered shards keep worker payloads stable.
    scalar_pending.sort(key=lambda cell: cell[0])
    return batch_tasks, scalar_pending


def run_batch_cells(backend: CoreBackend, items: list) -> list:
    """Execute one lockstep group; return ``(index, record)`` pairs.

    Mirrors the scalar cell path exactly: per-lane errors re-raise
    (the whole sweep fails, as it would have scalar), ``check=True``
    verifies against the lane's memory image and final machine state,
    and records are produced by the same
    :func:`~repro.api.backend.record_from_result` tail the scalar
    path uses.
    """
    # Imported lazily so merely importing the API keeps working (with
    # an actionable error on use) when numpy is absent.
    from ..sim.batch import BatchEngine

    instances = [workload.build() for _, workload, _ in items]
    engine = BatchEngine(instances, config=backend.config).run()
    out = []
    for lane, (index, workload, check) in enumerate(items):
        error = engine.errors[lane]
        if error is not None:
            raise error
        if check:
            instance = instances[lane]
            instance.verify(instance.memory, engine.machine(lane))
        record = record_from_result(
            instances[lane], engine.results[lane],
            energy_model=backend.energy_model, seed=workload.seed)
        out.append((index, record))
    return out
