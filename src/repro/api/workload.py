"""Declarative workload specs: what to run, independent of where.

A :class:`Workload` is a frozen, picklable description of one kernel
build — name (resolved through :mod:`repro.kernels.registry`), variant,
problem size, COPIFT block size and PRNG seed.  The underlying
:class:`~repro.kernels.common.KernelInstance` is built lazily by
:meth:`Workload.build`, so specs can be enumerated, hashed, compared
and shipped to worker processes without paying program-construction
cost up front.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels.common import KernelInstance
from ..kernels.registry import KERNELS, KernelDef

VARIANTS = ("baseline", "copift")


@dataclass(frozen=True)
class Workload:
    """One kernel build, described declaratively.

    Attributes:
        kernel: Registered kernel name (see ``repro.kernels.KERNELS``).
        variant: ``baseline`` or ``copift``.
        n: Problem size in elements/samples.
        block: COPIFT block size; ``None`` uses the kernel's default.
            Ignored for baselines.
        seed: PRNG/input seed; ``None`` keeps each builder's default
            (which is what every paper artifact measures).
    """

    kernel: str
    variant: str = "baseline"
    n: int = 4096
    block: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"available: {sorted(KERNELS)}"
            )
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; "
                f"expected one of {VARIANTS}"
            )
        if self.n < 1:
            raise ValueError(f"problem size must be >= 1, got {self.n}")
        if self.block is not None and self.block < 1:
            raise ValueError(f"block must be >= 1, got {self.block}")

    @property
    def kernel_def(self) -> KernelDef:
        return KERNELS[self.kernel]

    @property
    def effective_block(self) -> int | None:
        """The block size a COPIFT build will use (None for baselines)."""
        if self.variant != "copift":
            return None
        return self.block or self.kernel_def.default_block

    def build(self) -> KernelInstance:
        """Construct the kernel instance (program + memory image)."""
        kwargs: dict = {}
        if self.seed is not None:
            kwargs["seed"] = self.seed
        if self.variant == "baseline":
            return self.kernel_def.build_baseline(self.n, **kwargs)
        return self.kernel_def.build_copift(
            self.n, block=self.effective_block, **kwargs)

    def with_(self, **changes) -> "Workload":
        """A copy with the given fields replaced (validated again)."""
        from dataclasses import replace
        return replace(self, **changes)


def pair(kernel: str, n: int = 4096, block: int | None = None,
         seed: int | None = None) -> tuple[Workload, Workload]:
    """The (baseline, copift) workload pair every figure compares."""
    return (
        Workload(kernel, "baseline", n=n, seed=seed),
        Workload(kernel, "copift", n=n, block=block, seed=seed),
    )
