"""Artifact registry: declarative eval subcommands.

An *artifact* is a named, reproducible output (Table I, Figure 2, ...)
rendered as human text plus a machine-readable JSON payload
(:class:`ArtifactResult`).  Modules register them with the
:func:`artifact` decorator::

    @artifact("fig3", help="poly_lcg IPC over a block/problem grid",
              sharded=True)
    def fig3_artifact(request: ArtifactRequest) -> ArtifactResult:
        ...

and ``python -m repro.eval`` becomes a generic dispatcher: subcommand
names, ``--list`` output, unknown-artifact errors and the set of
``--jobs``-capable artifacts all come from this registry instead of
hard-coded tables.  Adding a scenario is one registered function — no
CLI surgery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

#: CLI flags every artifact shares; per-artifact extra flags must not
#: collide with these (or with each other).
SHARED_FLAGS = ("--list", "--n", "--full", "--cores", "--jobs",
                "--batch", "--out", "--json", "--trace", "--profile",
                "--cache-dir", "--no-cache", "--serve")


@dataclass(frozen=True)
class ArtifactResult:
    """One regenerated artifact: human text + machine payload."""

    name: str
    text: str
    payload: dict


@dataclass(frozen=True)
class ExtraFlag:
    """One artifact-specific CLI flag (beyond the shared set).

    The dispatcher adds every registered artifact's extra flags to its
    parser, rejects a flag given to an artifact that did not register
    it, and delivers parsed values through ``ArtifactRequest.extras``.

    Attributes:
        name: Flag spelling, e.g. ``"--clusters"``.
        help: argparse help text.
        parse: Value parser (argparse ``type=``); receives the raw
            string, may raise ``argparse.ArgumentTypeError``.
        default: Value when the flag is absent.
        metavar: Placeholder shown in ``--help``.
    """

    name: str
    help: str = ""
    parse: Callable[[str], Any] = str
    default: Any = None
    metavar: str | None = None

    def __post_init__(self) -> None:
        if not self.name.startswith("--"):
            raise ValueError(
                f"extra flag name must start with '--', got "
                f"{self.name!r}"
            )
        if self.name in SHARED_FLAGS:
            raise ValueError(
                f"extra flag {self.name} collides with a shared "
                f"eval flag"
            )

    @property
    def dest(self) -> str:
        return self.name[2:].replace("-", "_")


@dataclass(frozen=True)
class ArtifactRequest:
    """Normalized CLI/config options an artifact runs with.

    ``n`` and ``cores`` are ``None`` unless the caller explicitly
    chose them — each artifact resolves its own default via
    :meth:`effective_n` / :meth:`effective_cores`, and can warn about
    out-of-range values only when the user actually asked for them.
    ``extras`` holds values of the artifact's own registered
    :class:`ExtraFlag`\\ s, keyed by flag dest.
    """

    n: int | None = None
    full: bool = False
    cores: tuple[int, ...] | None = None
    jobs: int = 1
    #: ``Sweep(batch=...)`` value — ``None`` (scalar engine),
    #: ``"auto"``, or an explicit lane count.  Only honoured by
    #: artifacts registered with ``batched=True``.
    batch: int | str | None = None
    extras: dict = field(default_factory=dict)

    def effective_n(self, default: int) -> int:
        """The explicit problem size, or the artifact's *default*."""
        return self.n if self.n is not None else default

    def effective_cores(self, default: tuple[int, ...]
                        ) -> tuple[int, ...]:
        """The explicit core counts, or the artifact's *default*."""
        return self.cores if self.cores is not None else default

    def extra(self, dest: str, default: Any = None) -> Any:
        """An extra-flag value (or *default* when absent/None)."""
        value = self.extras.get(dest)
        return value if value is not None else default


@dataclass(frozen=True)
class ArtifactSpec:
    """One registry entry."""

    name: str
    func: Callable[[ArtifactRequest], ArtifactResult]
    help: str = ""
    #: Whether the artifact's sweep honours ``--jobs`` sharding.
    sharded: bool = False
    #: Whether the artifact's sweep honours ``--batch`` (vectorized
    #: lockstep execution of bare-core cells).  Records are
    #: byte-identical either way; the flag only changes throughput.
    batched: bool = False
    #: Alternate CLI names resolving to this artifact (e.g. fig2a).
    aliases: tuple[str, ...] = ()
    #: Composites (all/report) are excluded from the ``all`` bundle.
    composite: bool = False
    #: Listing/report position.  Lower sorts first; ties break on
    #: registration order.  Independent of module import order.
    order: int = 100
    #: Artifact-specific CLI flags (beyond the shared set).
    flags: tuple[ExtraFlag, ...] = ()
    #: Observability hook for ``--trace`` / ``--profile``:
    #: ``request -> (workload, backend)`` selecting the artifact's
    #: *representative cell* — the single workload x backend pair the
    #: dispatcher re-runs inline (never sharded, so trace bytes are
    #: stable across ``--jobs``) with an ObsSink attached.  None means
    #: the artifact cannot be observed.
    observe: Callable[[ArtifactRequest], tuple] | None = None

    def run(self, request: ArtifactRequest) -> ArtifactResult:
        return self.func(request)


#: The registry, keyed by name; iterate via :func:`specs` for report
#: order (explicit ``order`` field, not import order).
REGISTRY: dict[str, ArtifactSpec] = {}
_ALIASES: dict[str, str] = {}


def specs() -> list[ArtifactSpec]:
    """All registered artifacts, in report order."""
    return sorted(REGISTRY.values(), key=lambda s: s.order)


def artifact(name: str, help: str = "", sharded: bool = False,
             batched: bool = False,
             aliases: tuple[str, ...] = (),
             composite: bool = False, order: int = 100,
             flags: tuple[ExtraFlag, ...] = (),
             observe: Callable[[ArtifactRequest], tuple] | None = None
             ) -> Callable:
    """Register the decorated function as the artifact *name*."""
    def register(func: Callable) -> Callable:
        if name in REGISTRY or name in _ALIASES:
            raise ValueError(f"artifact {name!r} already registered")
        # Key on dest, not name: '--foo-bar' and '--foo_bar' are
        # distinct names but collide on the argparse attribute the
        # dispatcher routes values by.  Registering the *same* flag
        # definition on several artifacts is allowed (a shared flag
        # like --writeback); a dest claimed by a different definition
        # is a collision.
        taken = {f.dest: (s.name, f) for s in REGISTRY.values()
                 for f in s.flags}
        for flag in flags:
            if flag.dest in taken and taken[flag.dest][1] != flag:
                raise ValueError(
                    f"extra flag {flag.name} of artifact {name!r} is "
                    f"already registered by {taken[flag.dest][0]!r} "
                    f"with a different definition"
                )
        spec = ArtifactSpec(name=name, func=func, help=help,
                            sharded=sharded, batched=batched,
                            aliases=tuple(aliases),
                            composite=composite, order=order,
                            flags=tuple(flags), observe=observe)
        REGISTRY[name] = spec
        for alias in spec.aliases:
            if alias in REGISTRY or alias in _ALIASES:
                raise ValueError(
                    f"artifact alias {alias!r} already registered")
            _ALIASES[alias] = name
        return func
    return register


def get(name: str) -> ArtifactSpec:
    """Resolve an artifact (or alias) name, raising ``KeyError``.

    The error message (``exc.args[0]``) lists every valid name,
    aliases included; the CLI reuses it verbatim.
    """
    canonical = _ALIASES.get(name, name)
    try:
        return REGISTRY[canonical]
    except KeyError:
        raise KeyError(
            f"unknown artifact {name!r}; available artifacts: "
            + ", ".join(names(include_aliases=True))
        ) from None


def names(include_aliases: bool = False) -> list[str]:
    """Registered artifact names, in report order."""
    result = [spec.name for spec in specs()]
    if include_aliases:
        result += sorted(_ALIASES)
    return result


def sharded_names() -> list[str]:
    return [spec.name for spec in specs() if spec.sharded]


def batched_names() -> list[str]:
    return [spec.name for spec in specs() if spec.batched]


def extra_flags() -> list[tuple[ExtraFlag, "ArtifactSpec"]]:
    """Every registered extra flag with its owning artifact."""
    return [(flag, spec) for spec in specs() for flag in spec.flags]


def bundle_names() -> list[str]:
    """Artifacts included in the ``all`` composite, in report order."""
    return [spec.name for spec in specs() if not spec.composite]


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def describe_json() -> dict:
    """Machine-readable registry dump (for ``--list --json``).

    One entry per artifact, in report order, carrying everything a
    tool needs to drive the CLI: name, help, aliases, whether the
    artifact honours ``--jobs`` sharding, whether it is a composite,
    and its extra flags (name/help/metavar/default).
    """
    return {
        "artifacts": [
            {
                "name": spec.name,
                "help": spec.help,
                "aliases": list(spec.aliases),
                "sharded": spec.sharded,
                "batched": spec.batched,
                "composite": spec.composite,
                "flags": [
                    {
                        "name": flag.name,
                        "help": flag.help,
                        "metavar": flag.metavar,
                        "default": _json_safe(flag.default),
                    }
                    for flag in spec.flags
                ],
            }
            for spec in specs()
        ],
    }


def describe() -> str:
    """One line per artifact: name, aliases, help (for ``--list``)."""
    if not REGISTRY:
        return "  (no artifacts registered)"
    width = max(len(name) for name in REGISTRY)
    lines = []
    for spec in specs():
        alias = f" (also: {', '.join(spec.aliases)})" if spec.aliases \
            else ""
        flags = " [" + " ".join(f.name for f in spec.flags) + "]" \
            if spec.flags else ""
        lines.append(f"  {spec.name:<{width}}  {spec.help}{alias}{flags}")
    return "\n".join(lines)


def combine(results: list[ArtifactResult]) -> tuple[str, dict]:
    """Concatenate texts and merge payloads keyed by artifact name."""
    text = "\n\n".join(r.text for r in results)
    payload = {r.name: r.payload for r in results}
    return text, payload


def write_output(text: str, payload: dict, out: str | None,
                 as_json: bool) -> None:
    """Route an artifact to stdout or ``--out``, as text or JSON."""
    content = json.dumps(payload, indent=2, sort_keys=True) \
        if as_json else text
    if out:
        with open(out, "w") as handle:
            handle.write(content)
            if not content.endswith("\n"):
                handle.write("\n")
        print(f"wrote {out}")
    else:
        print(content)
