"""Timing-model fingerprint: one hash naming the current simulator.

A cached :class:`~repro.api.record.RunRecord` is only reusable while
the *timing model* that produced it is unchanged.  The repo already has
a canonical statement of that model: the golden file
(``tests/golden/golden_n512.json``), regenerated exactly when a PR
intentionally changes timing, plus the energy-model constants (which
turn cycles into power/energy without being locked by the goldens).
:func:`timing_fingerprint` hashes both into one hex digest; the serve
layer (:mod:`repro.serve`) builds every cache key on it, so editing the
golden file — or any energy constant — automatically invalidates every
affected cache entry without bookkeeping.

The golden file is located relative to the source tree (development
checkouts) or the working directory (installed packages driven from a
repo root).  When neither exists the fingerprint degrades to a
deterministic ``golden:absent`` sentinel: caching still works within
that environment, it just cannot distinguish golden revisions.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import fields

from ..energy import ClusterEnergyParams, EnergyParams, SocEnergyParams

#: Relative location of the timing goldens inside a repo checkout.
GOLDEN_RELPATH = os.path.join("tests", "golden", "golden_n512.json")


def default_golden_path() -> str | None:
    """The golden file backing the fingerprint, or None when absent.

    Tried in order: the repo root this source tree lives in (editable
    installs / ``PYTHONPATH=src``), then the current working directory
    (installed package driven from a checkout).
    """
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    for root in (src_root, os.getcwd()):
        candidate = os.path.join(root, GOLDEN_RELPATH)
        if os.path.isfile(candidate):
            return candidate
    return None


def _energy_constants_blob() -> bytes:
    """Stable byte encoding of every energy-model constant."""
    parts = []
    for params_cls in (EnergyParams, ClusterEnergyParams,
                       SocEnergyParams):
        params = params_cls()
        for field in fields(params_cls):
            parts.append(f"{params_cls.__name__}.{field.name}="
                         f"{getattr(params, field.name)!r}")
    return ";".join(parts).encode()


#: Memoized digests keyed by (path, mtime_ns, size) — recomputed the
#: moment the golden file changes, never stale within a process.
_CACHE: dict[tuple, str] = {}


def timing_fingerprint(golden_path: str | None = None) -> str:
    """Hex digest naming the current timing + energy model.

    Stable across runs and processes for an unchanged tree; changes
    whenever the golden file's bytes or any energy constant change.
    *golden_path* overrides the default golden location (tests use a
    temporary copy to prove sensitivity to edits).
    """
    path = golden_path if golden_path is not None \
        else default_golden_path()
    if path is None:
        stamp: tuple = ("<absent>",)
    else:
        try:
            stat = os.stat(path)
        except OSError as exc:
            raise FileNotFoundError(
                f"timing fingerprint: cannot read golden file {path}: "
                f"{exc.strerror or exc}"
            ) from None
        stamp = (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
    cached = _CACHE.get(stamp)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    if path is None:
        digest.update(b"golden:absent")
    else:
        with open(path, "rb") as handle:
            digest.update(b"golden:")
            digest.update(handle.read())
    digest.update(b"\nenergy:")
    digest.update(_energy_constants_blob())
    fingerprint = digest.hexdigest()
    _CACHE[stamp] = fingerprint
    return fingerprint
