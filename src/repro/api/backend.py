"""Execution backends: where a workload runs.

A backend turns a :class:`~repro.api.workload.Workload` into a
:class:`~repro.api.record.RunRecord`.  Two implementations exist:

* :class:`CoreBackend` — one bare Snitch-like ``Machine`` (the paper's
  single-core measurements, Figures 2-3).
* :class:`ClusterBackend` — an N-core cluster via
  :func:`repro.cluster.partition_kernel` (banked TCDM, DMA staging,
  trailing barrier; the ``clusterscale`` artifact).

Backends are named by **spec strings** — ``"core"``, ``"cluster:4"`` —
so CLIs, configs and sweep definitions can all select them uniformly
through :func:`parse_backend`.  Both implementations are frozen,
picklable dataclasses, so sweep cells can carry them into worker
processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..cluster import ClusterConfig, partition_kernel
from ..energy import ClusterEnergyModel, EnergyModel
from ..kernels.common import MAIN_REGION, KernelInstance
from ..sim import CoreConfig
from .record import ClusterDetail, RunRecord
from .workload import Workload


@runtime_checkable
class Backend(Protocol):
    """Anything that can run a workload and produce a RunRecord."""

    @property
    def spec(self) -> str:
        """The canonical spec string naming this backend."""
        ...

    def run(self, workload: Workload, check: bool = False) -> RunRecord:
        """Simulate *workload*; optionally verify kernel results."""
        ...


def record_from_instance(instance: KernelInstance,
                         config: CoreConfig | None = None,
                         energy_model: EnergyModel | None = None,
                         check: bool = True,
                         seed: int | None = None) -> RunRecord:
    """Run an already-built instance on a bare core, as a RunRecord.

    This is the single measurement path shared by :class:`CoreBackend`
    and the legacy ``repro.eval.measure_instance`` shim: main-region
    cycles/counters, IPC, and the energy model priced on the kernel's
    conceptual DMA traffic.
    """
    model = energy_model or EnergyModel()
    result, _ = instance.run(config=config, check=check)
    region = result.region(MAIN_REGION)
    counters = region.counters
    power = model.report(
        counters, region.cycles,
        dma_active=instance.dma_active,
        dma_bytes=instance.dma_bytes,
    )
    return RunRecord(
        kernel=instance.name,
        variant=instance.variant,
        n=instance.n,
        block=instance.block,
        seed=seed,
        backend="core",
        cycles=region.cycles,
        total_cycles=result.cycles,
        int_instructions=counters.int_issued,
        fp_instructions=counters.fp_issued,
        ipc=region.ipc,
        counters=dict(vars(counters)),
        power=power,
    )


@dataclass(frozen=True)
class CoreBackend:
    """A single bare core (no cluster interconnect)."""

    config: CoreConfig | None = None
    energy_model: EnergyModel | None = field(default=None, compare=False)

    @property
    def spec(self) -> str:
        return "core"

    def run(self, workload: Workload, check: bool = False) -> RunRecord:
        return record_from_instance(
            workload.build(), config=self.config,
            energy_model=self.energy_model, check=check,
            seed=workload.seed,
        )


@dataclass(frozen=True)
class ClusterBackend:
    """An N-core cluster; the workload is statically chunked over it."""

    cores: int = 8
    config: ClusterConfig | None = None
    core_config: CoreConfig | None = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")

    @property
    def spec(self) -> str:
        return f"cluster:{self.cores}"

    def run(self, workload: Workload, check: bool = False) -> RunRecord:
        if workload.seed is not None:
            raise ValueError(
                "cluster backends derive per-core seeds from the "
                "partitioner; build the workload with seed=None"
            )
        # ClusterWorkload.run resizes config.n_cores to the partition
        # itself; only tcdm_banks is read here (for the power report).
        config = self.config or ClusterConfig()
        parted = partition_kernel(
            workload.kernel_def, workload.n, self.cores,
            variant=workload.variant, block=workload.block,
        )
        result = parted.run(config=config,
                            core_config=self.core_config, check=check)
        region = result.region(MAIN_REGION)
        cycles = region.cycles
        # DMA energy is priced on the kernels' *conceptual* traffic
        # (input staging + output drain), exactly as the single-core
        # energy model prices the same instances — the engine's
        # measured bytes cover only the transfers the cluster actually
        # models (staged inputs), which would make the 1-core power
        # column disagree with Fig. 2.
        priced_dma_bytes = sum(i.dma_bytes for i in parted.instances)
        power = ClusterEnergyModel().report(
            region.counters, cycles, self.cores,
            n_banks=config.tcdm_banks,
            tcdm_accesses=result.tcdm_accesses,
            tcdm_conflict_cycles=result.tcdm_conflict_cycles,
            dma_bytes=priced_dma_bytes,
            dma_transfers=result.counters.dma_transfers,
            barriers=result.barrier_count,
            dma_active=any(i.dma_active for i in parted.instances),
        )
        return RunRecord(
            kernel=workload.kernel,
            variant=workload.variant,
            n=workload.n,
            block=parted.block,
            seed=None,
            backend=self.spec,
            cycles=cycles,
            total_cycles=result.cycles,
            int_instructions=region.counters.int_issued,
            fp_instructions=region.counters.fp_issued,
            ipc=region.ipc,
            counters=dict(vars(region.counters)),
            power=power,
            cluster=ClusterDetail(
                cores=self.cores,
                tcdm_accesses=result.tcdm_accesses,
                tcdm_conflict_cycles=result.tcdm_conflict_cycles,
                tcdm_bank_conflicts=tuple(result.tcdm_bank_conflicts),
                dma_bytes=result.dma_bytes,
                dma_busy_cycles=result.dma_busy_cycles,
                barrier_count=result.barrier_count,
                core_cycles=tuple(r.cycles
                                  for r in result.core_results),
            ),
        )


def parse_backend(spec: str, core_config: CoreConfig | None = None,
                  cluster_config: ClusterConfig | None = None) -> Backend:
    """Resolve a backend spec string to a backend instance.

    Accepted forms: ``"core"`` (bare core), ``"cluster"`` (cluster at
    its default size) and ``"cluster:N"`` (N-core cluster, N >= 1).
    Optional configs are attached to whichever backend is built.
    """
    if not isinstance(spec, str):
        raise ValueError(
            f"backend spec must be a string, got {type(spec).__name__}"
        )
    text = spec.strip()
    if text == "core":
        return CoreBackend(config=core_config)
    if text == "cluster" or text.startswith("cluster:"):
        if text == "cluster":
            cores = (cluster_config or ClusterConfig()).n_cores
        else:
            count = text.split(":", 1)[1]
            try:
                cores = int(count)
            except ValueError:
                raise ValueError(
                    f"bad core count {count!r} in backend spec "
                    f"{spec!r}; expected 'cluster:N' with integer N"
                ) from None
            if cores < 1:
                raise ValueError(
                    f"core count must be >= 1 in backend spec {spec!r}"
                )
        return ClusterBackend(cores=cores, config=cluster_config,
                              core_config=core_config)
    raise ValueError(
        f"unknown backend spec {spec!r}; expected 'core', 'cluster' "
        f"or 'cluster:N'"
    )
