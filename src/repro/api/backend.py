"""Execution backends: where a workload runs.

A backend turns a :class:`~repro.api.workload.Workload` into a
:class:`~repro.api.record.RunRecord`.  Three implementations exist:

* :class:`CoreBackend` — one bare Snitch-like ``Machine`` (the paper's
  single-core measurements, Figures 2-3).
* :class:`ClusterBackend` — an N-core cluster via
  :func:`repro.cluster.partition_kernel` (banked TCDM, DMA staging,
  trailing barrier; the ``clusterscale`` artifact).
* :class:`SocBackend` — a C-cluster x M-core SoC via
  :func:`repro.soc.partition_soc_kernel` (shared L2 behind a
  beat-arbitrated interconnect; the ``socscale`` artifact).

Backends are named by **spec strings** — ``"core"``, ``"cluster:4"``,
``"soc:2x4"``, with a ``+wb`` suffix selecting output write-back
simulation (``"cluster:4+wb"``) — so CLIs, configs and sweep
definitions can all select
them uniformly through :func:`parse_backend`; the accepted spec forms
are enumerated by :func:`backend_spec_forms`, which is derived from
the same parser table :func:`parse_backend` dispatches on (so error
messages can never fall out of sync with what actually parses).  All
implementations are frozen, picklable dataclasses, so sweep cells can
carry them into worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from ..cluster import ClusterConfig, partition_kernel
from ..energy import ClusterEnergyModel, EnergyModel, SocEnergyModel
from ..kernels.common import MAIN_REGION, KernelInstance
from ..obs import ObsSink, aggregate_profile, core_profile
from ..sim import CoreConfig
from ..soc import SocConfig, partition_soc_kernel, soc_config_for
from .record import ClusterDetail, RunRecord, SocDetail
from .workload import Workload


@runtime_checkable
class Backend(Protocol):
    """Anything that can run a workload and produce a RunRecord."""

    @property
    def spec(self) -> str:
        """The canonical spec string naming this backend."""
        ...

    def run(self, workload: Workload, check: bool = False,
            obs=None) -> RunRecord:
        """Simulate *workload*; optionally verify kernel results.

        *obs* is the observability knob: ``None`` (default) runs
        without instrumentation, any truthy value embeds the
        cycle-attribution profile in the record, and an
        :class:`repro.obs.ObsSink` additionally collects the run's
        structured events into that sink.
        """
        ...


def _obs_sink(obs) -> ObsSink | None:
    """The event sink behind the ``obs`` knob (None for bare truthy)."""
    return obs if isinstance(obs, ObsSink) else None


def _cluster_profile_node(scope: str, cluster_result):
    """Profile a ClusterRunResult: per-core leaves under one node."""
    children = [
        core_profile(f"{scope}/core{k}", r.region(MAIN_REGION))
        for k, r in enumerate(cluster_result.core_results)
    ]
    return aggregate_profile(scope, children)


def record_from_result(instance: KernelInstance, result,
                       energy_model: EnergyModel | None = None,
                       seed: int | None = None,
                       profile=None) -> RunRecord:
    """Price and package an already-computed bare-core RunResult.

    The measurement tail shared by the scalar path
    (:func:`record_from_instance`) and the batch engine
    (:func:`repro.api.batchrun.run_batch_cells`): main-region
    cycles/counters, IPC, and the energy model priced on the kernel's
    conceptual DMA traffic.  Because the record is a pure function of
    *result* and the instance's static metadata, scalar and batch
    records are byte-identical whenever their RunResults are.
    """
    model = energy_model or EnergyModel()
    region = result.region(MAIN_REGION)
    counters = region.counters
    power = model.report(
        counters, region.cycles,
        dma_active=instance.dma_active,
        dma_bytes=instance.dma_bytes,
    )
    return RunRecord(
        kernel=instance.name,
        variant=instance.variant,
        n=instance.n,
        block=instance.block,
        seed=seed,
        backend="core",
        cycles=region.cycles,
        total_cycles=result.cycles,
        int_instructions=counters.int_issued,
        fp_instructions=counters.fp_issued,
        ipc=region.ipc,
        counters=dict(vars(counters)),
        power=power,
        profile=profile,
    )


def record_from_instance(instance: KernelInstance,
                         config: CoreConfig | None = None,
                         energy_model: EnergyModel | None = None,
                         check: bool = True,
                         seed: int | None = None,
                         obs=None) -> RunRecord:
    """Run an already-built instance on a bare core, as a RunRecord.

    This is the single measurement path shared by :class:`CoreBackend`
    and the legacy ``repro.eval.measure_instance`` shim.  See
    :meth:`Backend.run` for the ``obs`` knob.
    """
    result, _ = instance.run(config=config, check=check,
                             obs=_obs_sink(obs))
    profile = core_profile(
        "core", result.region(MAIN_REGION)).to_json() if obs else None
    return record_from_result(instance, result,
                              energy_model=energy_model, seed=seed,
                              profile=profile)


@dataclass(frozen=True)
class CoreBackend:
    """A single bare core (no cluster interconnect)."""

    config: CoreConfig | None = None
    energy_model: EnergyModel | None = field(default=None, compare=False)

    @property
    def spec(self) -> str:
        return "core"

    def run(self, workload: Workload, check: bool = False,
            obs=None) -> RunRecord:
        return record_from_instance(
            workload.build(), config=self.config,
            energy_model=self.energy_model, check=check,
            seed=workload.seed, obs=obs,
        )


@dataclass(frozen=True)
class ClusterBackend:
    """An N-core cluster; the workload is statically chunked over it."""

    cores: int = 8
    config: ClusterConfig | None = None
    core_config: CoreConfig | None = None
    #: Simulate output write-back (spec suffix ``+wb``): outputs drain
    #: to L2 through the DMA after the main region, DMA beats contend
    #: in the TCDM bank arbiter, and the energy model prices the
    #: engine's *measured* bytes instead of the kernels' conceptual
    #: traffic.
    writeback: bool = False

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")

    @property
    def spec(self) -> str:
        suffix = "+wb" if self.writeback else ""
        return f"cluster:{self.cores}{suffix}"

    def run(self, workload: Workload, check: bool = False,
            obs=None) -> RunRecord:
        if workload.seed is not None:
            raise ValueError(
                "cluster backends derive per-core seeds from the "
                "partitioner; build the workload with seed=None"
            )
        # ClusterWorkload.run resizes config.n_cores to the partition
        # itself; only tcdm_banks is read here (for the power report).
        config = self.config or ClusterConfig()
        parted = partition_kernel(
            workload.kernel_def, workload.n, self.cores,
            variant=workload.variant, block=workload.block,
            writeback=self.writeback,
        )
        result = parted.run(config=config,
                            core_config=self.core_config, check=check,
                            obs=_obs_sink(obs))
        region = result.region(MAIN_REGION)
        cycles = region.cycles
        # With write-back off, DMA energy is priced on the kernels'
        # *conceptual* traffic (input staging + output drain), exactly
        # as the single-core energy model prices the same instances —
        # the engine's measured bytes cover only the transfers the
        # cluster actually models (staged inputs), which would make
        # the 1-core power column disagree with Fig. 2.  With
        # write-back on, the drain *is* simulated, so the engine's
        # beat-accurate byte count is the authoritative activity.
        if self.writeback:
            priced_dma_bytes = result.dma_bytes
        else:
            priced_dma_bytes = sum(i.dma_bytes
                                   for i in parted.instances)
        power = ClusterEnergyModel().report(
            region.counters, cycles, self.cores,
            n_banks=config.tcdm_banks,
            tcdm_accesses=result.tcdm_accesses,
            tcdm_conflict_cycles=result.tcdm_conflict_cycles,
            dma_bytes=priced_dma_bytes,
            dma_transfers=result.counters.dma_transfers,
            barriers=result.barrier_count,
            dma_active=any(i.dma_active for i in parted.instances),
        )
        return RunRecord(
            kernel=workload.kernel,
            variant=workload.variant,
            n=workload.n,
            block=parted.block,
            seed=None,
            backend=self.spec,
            cycles=cycles,
            total_cycles=result.cycles,
            int_instructions=region.counters.int_issued,
            fp_instructions=region.counters.fp_issued,
            ipc=region.ipc,
            counters=dict(vars(region.counters)),
            power=power,
            cluster=ClusterDetail(
                cores=self.cores,
                tcdm_accesses=result.tcdm_accesses,
                tcdm_conflict_cycles=result.tcdm_conflict_cycles,
                tcdm_bank_conflicts=tuple(result.tcdm_bank_conflicts),
                dma_bytes=result.dma_bytes,
                dma_bytes_read=result.dma_bytes_read,
                dma_bytes_written=result.dma_bytes_written,
                dma_busy_cycles=result.dma_busy_cycles,
                barrier_count=result.barrier_count,
                core_cycles=tuple(r.cycles
                                  for r in result.core_results),
                writeback=self.writeback,
            ),
            profile=_cluster_profile_node(
                "cluster0", result).to_json() if obs else None,
        )


@dataclass(frozen=True)
class SocBackend:
    """A C-cluster x M-core SoC sharing one L2 over the interconnect."""

    # Defaults mirror SocConfig/ClusterConfig (2 clusters of 8 cores),
    # so SocBackend() and parse_backend("soc") build the same machine.
    clusters: int = 2
    cores: int = 8
    config: SocConfig | None = None
    core_config: CoreConfig | None = None
    #: Simulate output write-back (spec suffix ``+wb``): outputs drain
    #: to the shared L2, drain beats contend on the interconnect and
    #: in the TCDM bank arbiters, and DMA energy prices the channels'
    #: measured bytes.
    writeback: bool = False

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise ValueError(
                f"clusters must be >= 1, got {self.clusters}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")

    @property
    def spec(self) -> str:
        suffix = "+wb" if self.writeback else ""
        return f"soc:{self.clusters}x{self.cores}{suffix}"

    def run(self, workload: Workload, check: bool = False,
            obs=None) -> RunRecord:
        if workload.seed is not None:
            raise ValueError(
                "SoC backends derive per-core seeds from the "
                "partitioner; build the workload with seed=None"
            )
        parted = partition_soc_kernel(
            workload.kernel_def, workload.n, self.clusters, self.cores,
            variant=workload.variant, block=workload.block,
            writeback=self.writeback,
        )
        config = soc_config_for(parted, base=self.config)
        result = parted.run(config=config,
                            core_config=self.core_config, check=check,
                            obs=_obs_sink(obs))
        region = result.region(MAIN_REGION)
        cycles = region.cycles
        # Per-cluster activity priced by the cluster model over the SoC
        # makespan (every cluster is powered for the whole region); DMA
        # energy uses the kernels' conceptual traffic with write-back
        # off and each channel's measured bytes with it on, exactly as
        # the cluster backend prices it (see ClusterBackend.run).
        model = SocEnergyModel()
        dma_active = any(i.dma_active for i in parted.instances)
        cluster_reports = []
        for cluster_result, cluster_workload in zip(
                result.cluster_results, parted.cluster_workloads):
            cregion = cluster_result.region(MAIN_REGION)
            if self.writeback:
                cluster_dma_bytes = cluster_result.dma_bytes
            else:
                cluster_dma_bytes = sum(
                    i.dma_bytes for i in cluster_workload.instances)
            cluster_reports.append(model.cluster_model.report(
                cregion.counters, cycles, self.cores,
                n_banks=config.cluster.tcdm_banks,
                tcdm_accesses=cluster_result.tcdm_accesses,
                tcdm_conflict_cycles=cluster_result
                .tcdm_conflict_cycles,
                dma_bytes=cluster_dma_bytes,
                dma_transfers=cregion.counters.dma_transfers,
                barriers=cluster_result.barrier_count,
                dma_active=dma_active,
            ))
        power = model.report(
            cluster_reports, cycles,
            link_beats=sum(result.link_beats),
            link_stall_cycles=sum(result.link_stall_cycles),
            l2_bytes=result.l2_bytes_read + result.l2_bytes_written,
        )
        return RunRecord(
            kernel=workload.kernel,
            variant=workload.variant,
            n=workload.n,
            block=parted.block,
            seed=None,
            backend=self.spec,
            cycles=cycles,
            total_cycles=result.cycles,
            int_instructions=region.counters.int_issued,
            fp_instructions=region.counters.fp_issued,
            ipc=region.ipc,
            counters=dict(vars(region.counters)),
            power=power,
            soc=SocDetail(
                clusters=self.clusters,
                cores_per_cluster=self.cores,
                link_beats=tuple(result.link_beats),
                link_stall_cycles=tuple(result.link_stall_cycles),
                l2_bytes_read=result.l2_bytes_read,
                l2_bytes_written=result.l2_bytes_written,
                dma_bytes_read=result.dma_bytes_read,
                dma_bytes_written=result.dma_bytes_written,
                cluster_cycles=tuple(result.cluster_cycles),
                cluster_dma_stall_cycles=tuple(
                    result.cluster_dma_stall_cycles),
                barrier_count=result.barrier_count,
                writeback=self.writeback,
            ),
            profile=aggregate_profile("soc", [
                _cluster_profile_node(f"soc/cluster{c}", cr)
                for c, cr in enumerate(result.cluster_results)
            ]).to_json() if obs else None,
        )


# ----------------------------------------------------------------------
# spec-string parsing
# ----------------------------------------------------------------------
#: Write-back spec suffix: ``cluster:4+wb`` / ``soc:2x4+wb`` simulate
#: output write-back on the named backend.
_WB_SUFFIX = "+wb"


def _split_writeback(text: str) -> tuple[str, bool]:
    if text.endswith(_WB_SUFFIX):
        return text[:-len(_WB_SUFFIX)], True
    return text, False


def _parse_core(text: str, spec: str, core_config, cluster_config
                ) -> Backend | None:
    if text != "core":
        return None
    return CoreBackend(config=core_config)


def _parse_cluster(text: str, spec: str, core_config, cluster_config
                   ) -> Backend | None:
    text, writeback = _split_writeback(text)
    if text == "cluster":
        cores = (cluster_config or ClusterConfig()).n_cores
    elif text.startswith("cluster:"):
        count = text.split(":", 1)[1]
        try:
            cores = int(count)
        except ValueError:
            raise ValueError(
                f"bad core count {count!r} in backend spec "
                f"{spec!r}; expected 'cluster:N' with integer N"
            ) from None
        if cores < 1:
            raise ValueError(
                f"core count must be >= 1 in backend spec {spec!r}"
            )
    else:
        return None
    return ClusterBackend(cores=cores, config=cluster_config,
                          core_config=core_config,
                          writeback=writeback)


def _parse_soc(text: str, spec: str, core_config, cluster_config
               ) -> Backend | None:
    # A caller-supplied cluster config rides inside the SoC config, so
    # every backend form honours the same optional-config contract.
    base = SocConfig(cluster=cluster_config) \
        if cluster_config is not None else None
    text, writeback = _split_writeback(text)
    if text == "soc":
        config = base or SocConfig()
        return SocBackend(clusters=config.n_clusters,
                          cores=config.cluster.n_cores,
                          config=base, core_config=core_config,
                          writeback=writeback)
    if not text.startswith("soc:"):
        return None
    shape = text.split(":", 1)[1]
    parts = shape.split("x")
    if len(parts) != 2:
        raise ValueError(
            f"bad SoC shape {shape!r} in backend spec {spec!r}; "
            f"expected 'soc:CxM' (clusters x cores, e.g. 'soc:2x4')"
        )
    try:
        clusters, cores = (int(p) for p in parts)
    except ValueError:
        raise ValueError(
            f"bad SoC shape {shape!r} in backend spec {spec!r}; "
            f"expected 'soc:CxM' with integer C and M"
        ) from None
    if clusters < 1 or cores < 1:
        raise ValueError(
            f"SoC shape must be >= 1x1 in backend spec {spec!r}"
        )
    return SocBackend(clusters=clusters, cores=cores, config=base,
                      core_config=core_config, writeback=writeback)


#: Spec-form parser table: display form -> parser.  parse_backend tries
#: each parser in order; backend_spec_forms() lists the keys, so the
#: unknown-spec error enumerates exactly the forms this table accepts.
_SPEC_PARSERS: dict[str, Callable] = {
    "core": _parse_core,
    "cluster[:N][+wb]": _parse_cluster,
    "soc:CxM[+wb]": _parse_soc,
}


def backend_spec_forms() -> tuple[str, ...]:
    """Every accepted backend spec form, as shown in error messages."""
    return tuple(_SPEC_PARSERS)


def parse_backend(spec: str, core_config: CoreConfig | None = None,
                  cluster_config: ClusterConfig | None = None) -> Backend:
    """Resolve a backend spec string to a backend instance.

    Accepted forms (see :func:`backend_spec_forms`): ``"core"`` (bare
    core), ``"cluster"`` / ``"cluster:N"`` (N-core cluster) and
    ``"soc"`` / ``"soc:CxM"`` (C clusters of M cores); cluster and SoC
    forms take an optional ``+wb`` suffix enabling output write-back
    simulation.  Optional configs are attached to whichever backend is
    built.
    """
    if not isinstance(spec, str):
        raise ValueError(
            f"backend spec must be a string, got {type(spec).__name__}"
        )
    text = spec.strip()
    for parser in _SPEC_PARSERS.values():
        backend = parser(text, spec, core_config, cluster_config)
        if backend is not None:
            return backend
    raise ValueError(
        f"unknown backend spec {spec!r}; expected one of: "
        + ", ".join(repr(form) for form in backend_spec_forms())
    )
