"""Unified run result: one record shape for every backend.

Every way of running a workload — a bare core, an N-core cluster, a
sweep cell in a worker process — reduces to one :class:`RunRecord`:
main-region cycles and instruction counts, IPC, power/energy from the
energy model, and (when clustered) the shared-resource detail the
cluster artifacts report (bank-conflict stalls, DMA traffic, barriers,
per-core cycles).

The JSON schema (:meth:`RunRecord.to_json` / :meth:`RunRecord.from_json`)
is versioned: ``schema`` is bumped whenever a field changes meaning, so
persisted payloads can be validated instead of silently reinterpreted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy import PowerReport

#: Version of the ``RunRecord.to_json`` schema.  Bump on any change to
#: field names or semantics.
#:
#: v1: core + cluster records.
#: v2: adds the ``soc_detail`` block (multi-cluster SoC runs).
#: v3: per-direction DMA traffic (``dma_bytes_read`` /
#:     ``dma_bytes_written``) and the ``writeback`` mode marker in
#:     both detail blocks (unified memory-traffic engine).
#: v4: optional ``profile`` block — the observability layer's
#:     cycle-attribution tree (``repro.obs.profile.ProfileNode``
#:     JSON), present when the run was made with the ``obs`` knob.
#: v5: optional ``stream_detail`` block — open-loop traffic scenarios
#:     (``repro.traffic``): per-class latency percentiles, QoS
#:     arbitration tallies and dispatcher occupancy.
SCHEMA_VERSION = 5


@dataclass(frozen=True)
class ClusterDetail:
    """Shared-resource measurements of a clustered run.

    Attributes:
        cores: Number of cores in the cluster.
        tcdm_accesses: Banked-TCDM grants over the whole run.
        tcdm_conflict_cycles: Total bank-conflict stall cycles.
        tcdm_bank_conflicts: Per-bank conflict cycles.
        dma_bytes: Bytes moved by the shared DMA engine (with
            ``writeback`` off that is staged inputs only, and the
            *priced* DMA traffic in ``power`` uses the kernels'
            conceptual bytes, exactly as the single-core energy model
            does; with ``writeback`` on the engine's measured bytes —
            staging plus drain — are also what the energy model
            prices).
        dma_bytes_read: Bytes staged into the TCDM (READ direction).
        dma_bytes_written: Bytes drained out of the TCDM (WRITE
            direction; non-zero only with ``writeback`` on).
        dma_busy_cycles: Cycles the DMA engine was occupied.
        barrier_count: Barrier episodes completed by the cluster.
        core_cycles: Per-core elapsed cycles, in core order.
        writeback: Whether output write-back was simulated.
    """

    cores: int
    tcdm_accesses: int
    tcdm_conflict_cycles: int
    tcdm_bank_conflicts: tuple[int, ...]
    dma_bytes: int
    dma_busy_cycles: int
    barrier_count: int
    core_cycles: tuple[int, ...]
    dma_bytes_read: int = 0
    dma_bytes_written: int = 0
    writeback: bool = False

    def to_json(self) -> dict:
        return {
            "cores": self.cores,
            "tcdm_accesses": self.tcdm_accesses,
            "tcdm_conflict_cycles": self.tcdm_conflict_cycles,
            "tcdm_bank_conflicts": list(self.tcdm_bank_conflicts),
            "dma_bytes": self.dma_bytes,
            "dma_bytes_read": self.dma_bytes_read,
            "dma_bytes_written": self.dma_bytes_written,
            "dma_busy_cycles": self.dma_busy_cycles,
            "barrier_count": self.barrier_count,
            "core_cycles": list(self.core_cycles),
            "writeback": self.writeback,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ClusterDetail":
        return cls(
            cores=data["cores"],
            tcdm_accesses=data["tcdm_accesses"],
            tcdm_conflict_cycles=data["tcdm_conflict_cycles"],
            tcdm_bank_conflicts=tuple(data["tcdm_bank_conflicts"]),
            dma_bytes=data["dma_bytes"],
            dma_bytes_read=data["dma_bytes_read"],
            dma_bytes_written=data["dma_bytes_written"],
            dma_busy_cycles=data["dma_busy_cycles"],
            barrier_count=data["barrier_count"],
            core_cycles=tuple(data["core_cycles"]),
            writeback=data["writeback"],
        )


@dataclass(frozen=True)
class SocDetail:
    """Shared-resource measurements of a multi-cluster SoC run.

    Attributes:
        clusters: Number of clusters in the SoC.
        cores_per_cluster: Cores in each cluster.
        link_beats: Per-cluster DMA beats granted over the L2 link.
        link_stall_cycles: Per-cluster beat-arbitration stall cycles
            (contention on the shared link).
        l2_bytes_read: Bytes the DMA channels read from the L2.
        l2_bytes_written: Bytes written to the L2.
        dma_bytes_read: Bytes staged into the TCDMs (READ direction,
            summed over every cluster's channel).
        dma_bytes_written: Bytes drained out of the TCDMs (WRITE
            direction; non-zero only with ``writeback`` on).
        cluster_cycles: Per-cluster elapsed cycles, in cluster order.
        cluster_dma_stall_cycles: Per-cluster ``dma.wait`` fence
            stalls — where link contention reaches the cores.
        barrier_count: Barrier episodes across every cluster.
        writeback: Whether output write-back was simulated.
    """

    clusters: int
    cores_per_cluster: int
    link_beats: tuple[int, ...]
    link_stall_cycles: tuple[int, ...]
    l2_bytes_read: int
    l2_bytes_written: int
    cluster_cycles: tuple[int, ...]
    cluster_dma_stall_cycles: tuple[int, ...]
    barrier_count: int
    dma_bytes_read: int = 0
    dma_bytes_written: int = 0
    writeback: bool = False

    def to_json(self) -> dict:
        return {
            "clusters": self.clusters,
            "cores_per_cluster": self.cores_per_cluster,
            "link_beats": list(self.link_beats),
            "link_stall_cycles": list(self.link_stall_cycles),
            "l2_bytes_read": self.l2_bytes_read,
            "l2_bytes_written": self.l2_bytes_written,
            "dma_bytes_read": self.dma_bytes_read,
            "dma_bytes_written": self.dma_bytes_written,
            "cluster_cycles": list(self.cluster_cycles),
            "cluster_dma_stall_cycles":
                list(self.cluster_dma_stall_cycles),
            "barrier_count": self.barrier_count,
            "writeback": self.writeback,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SocDetail":
        return cls(
            clusters=data["clusters"],
            cores_per_cluster=data["cores_per_cluster"],
            link_beats=tuple(data["link_beats"]),
            link_stall_cycles=tuple(data["link_stall_cycles"]),
            l2_bytes_read=data["l2_bytes_read"],
            l2_bytes_written=data["l2_bytes_written"],
            dma_bytes_read=data["dma_bytes_read"],
            dma_bytes_written=data["dma_bytes_written"],
            cluster_cycles=tuple(data["cluster_cycles"]),
            cluster_dma_stall_cycles=tuple(
                data["cluster_dma_stall_cycles"]),
            barrier_count=data["barrier_count"],
            writeback=data["writeback"],
        )


@dataclass(frozen=True)
class StreamClassStats:
    """One priority class's outcome in an open-loop traffic run.

    Latency percentiles are total (arrival-to-completion) latencies in
    cycles, exact nearest-rank quantiles over every completed request
    of the class.

    Attributes:
        name: Class label.
        weight: QoS arbitration weight the class ran with.
        priority: Dispatch priority (larger is more urgent).
        requests: Requests that arrived.
        completed: Requests served to completion.
        p50 / p95 / p99: Total-latency percentiles, in cycles.
        mean_queue_cycles: Mean wait for a free cluster.
        mean_service_cycles: Mean on-cluster service time (profile
            plus QoS arbitration slip).
        qos_beats: Interconnect beats granted to the class's DMA.
        qos_stall_cycles: Beat-arbitration stall cycles the class
            absorbed versus its uncontended schedule.
    """

    name: str
    weight: int
    priority: int
    requests: int
    completed: int
    p50: int
    p95: int
    p99: int
    mean_queue_cycles: float
    mean_service_cycles: float
    qos_beats: int = 0
    qos_stall_cycles: int = 0

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "priority": self.priority,
            "requests": self.requests,
            "completed": self.completed,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "mean_queue_cycles": self.mean_queue_cycles,
            "mean_service_cycles": self.mean_service_cycles,
            "qos_beats": self.qos_beats,
            "qos_stall_cycles": self.qos_stall_cycles,
        }

    @classmethod
    def from_json(cls, data: dict) -> "StreamClassStats":
        return cls(
            name=data["name"],
            weight=data["weight"],
            priority=data["priority"],
            requests=data["requests"],
            completed=data["completed"],
            p50=data["p50"],
            p95=data["p95"],
            p99=data["p99"],
            mean_queue_cycles=data["mean_queue_cycles"],
            mean_service_cycles=data["mean_service_cycles"],
            qos_beats=data["qos_beats"],
            qos_stall_cycles=data["qos_stall_cycles"],
        )


@dataclass(frozen=True)
class StreamDetail:
    """Open-loop traffic measurements (``repro.traffic`` scenarios).

    Attributes:
        clusters: Clusters the dispatcher placed requests onto.
        cores_per_cluster: Cores in each cluster.
        policy: Scenario policy string (``fifo``, ``priority``,
            ``fifo+qos``, ``priority+qos``).
        offered_rate: Offered arrival rate, requests per cycle.
        duration: Arrival window in cycles.
        requests: Requests that arrived across every class.
        completed: Requests served to completion.
        makespan: Cycle the last request finished.
        peak_queue_depth: Largest pending-queue depth observed.
        cluster_busy_cycles: Per-cluster busy cycles, in cluster
            order.
        classes: Per-class outcome, in scenario class order.
    """

    clusters: int
    cores_per_cluster: int
    policy: str
    offered_rate: float
    duration: int
    requests: int
    completed: int
    makespan: int
    peak_queue_depth: int
    cluster_busy_cycles: tuple[int, ...]
    classes: tuple[StreamClassStats, ...]

    def to_json(self) -> dict:
        return {
            "clusters": self.clusters,
            "cores_per_cluster": self.cores_per_cluster,
            "policy": self.policy,
            "offered_rate": self.offered_rate,
            "duration": self.duration,
            "requests": self.requests,
            "completed": self.completed,
            "makespan": self.makespan,
            "peak_queue_depth": self.peak_queue_depth,
            "cluster_busy_cycles": list(self.cluster_busy_cycles),
            "classes": [c.to_json() for c in self.classes],
        }

    @classmethod
    def from_json(cls, data: dict) -> "StreamDetail":
        return cls(
            clusters=data["clusters"],
            cores_per_cluster=data["cores_per_cluster"],
            policy=data["policy"],
            offered_rate=data["offered_rate"],
            duration=data["duration"],
            requests=data["requests"],
            completed=data["completed"],
            makespan=data["makespan"],
            peak_queue_depth=data["peak_queue_depth"],
            cluster_busy_cycles=tuple(data["cluster_busy_cycles"]),
            classes=tuple(StreamClassStats.from_json(c)
                          for c in data["classes"]),
        )


@dataclass(frozen=True)
class RunRecord:
    """One workload run on one backend, reduced to reportable numbers.

    Cycle and instruction counts are taken from the kernel's ``main``
    region (setup excluded), matching how every paper artifact measures;
    ``total_cycles`` is the whole program for completeness.  Power and
    energy come from the (cluster) energy model over the same region.
    """

    kernel: str
    variant: str
    n: int
    block: int | None
    backend: str                     # backend spec string, e.g. "core"
    cycles: int                      # main-region makespan
    total_cycles: int
    int_instructions: int
    fp_instructions: int
    ipc: float
    counters: dict                   # main-region activity counters
    power: PowerReport
    cluster: ClusterDetail | None = None
    soc: SocDetail | None = None
    seed: int | None = None
    #: Cycle-attribution tree (ProfileNode.to_json()) when the run was
    #: observed (``obs`` knob); None otherwise.
    profile: dict | None = None
    #: Open-loop traffic detail (``repro.traffic``); None for closed
    #: fixed-n batch runs.
    stream: StreamDetail | None = None

    @property
    def instructions(self) -> int:
        return self.int_instructions + self.fp_instructions

    @property
    def power_mw(self) -> float:
        return self.power.power_mw

    @property
    def energy_pj(self) -> float:
        return self.power.total_energy_pj

    @property
    def energy_uj(self) -> float:
        return self.power.energy_uj

    def to_json(self) -> dict:
        """Stable, versioned JSON form (plain dict of primitives)."""
        return {
            "schema": SCHEMA_VERSION,
            "kernel": self.kernel,
            "variant": self.variant,
            "n": self.n,
            "block": self.block,
            "seed": self.seed,
            "backend": self.backend,
            "cycles": self.cycles,
            "total_cycles": self.total_cycles,
            "int_instructions": self.int_instructions,
            "fp_instructions": self.fp_instructions,
            "ipc": self.ipc,
            "counters": dict(self.counters),
            "power": {
                "cycles": self.power.cycles,
                "dynamic_energy_pj": self.power.dynamic_energy_pj,
                "constant_energy_pj": self.power.constant_energy_pj,
                "breakdown_pj": dict(self.power.breakdown_pj),
                "power_mw": self.power.power_mw,
                "energy_pj": self.power.total_energy_pj,
            },
            "cluster": self.cluster.to_json() if self.cluster else None,
            "soc_detail": self.soc.to_json() if self.soc else None,
            "profile": dict(self.profile) if self.profile else None,
            "stream_detail": self.stream.to_json()
            if self.stream else None,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_json` output.

        Raises ``ValueError`` on a schema-version mismatch so stale
        payloads fail loudly instead of deserializing wrong.
        """
        version = data.get("schema")
        if version != SCHEMA_VERSION:
            hints = {
                1: (" (v1 predates the SoC layer and lacks "
                    "'soc_detail'; re-run the artifact to regenerate "
                    "the payload)"),
                2: (" (v2 predates the unified memory-traffic engine "
                    "and lacks the per-direction "
                    "'dma_bytes_read'/'dma_bytes_written' and "
                    "'writeback' detail fields; re-run the artifact "
                    "to regenerate the payload)"),
                3: (" (v3 predates the observability layer and lacks "
                    "the optional 'profile' cycle-attribution block; "
                    "re-run the artifact to regenerate the payload)"),
                4: (" (v4 predates the streaming-traffic layer and "
                    "lacks the optional 'stream_detail' block; re-run "
                    "the artifact to regenerate the payload)"),
            }
            raise ValueError(
                f"RunRecord schema mismatch: payload has "
                f"{version!r}, this build reads {SCHEMA_VERSION}"
                f"{hints.get(version, '')}"
            )
        p = data["power"]
        power = PowerReport(
            cycles=p["cycles"],
            dynamic_energy_pj=p["dynamic_energy_pj"],
            constant_energy_pj=p["constant_energy_pj"],
            breakdown_pj=dict(p["breakdown_pj"]),
        )
        cluster = ClusterDetail.from_json(data["cluster"]) \
            if data.get("cluster") else None
        soc = SocDetail.from_json(data["soc_detail"]) \
            if data.get("soc_detail") else None
        return cls(
            kernel=data["kernel"],
            variant=data["variant"],
            n=data["n"],
            block=data["block"],
            seed=data["seed"],
            backend=data["backend"],
            cycles=data["cycles"],
            total_cycles=data["total_cycles"],
            int_instructions=data["int_instructions"],
            fp_instructions=data["fp_instructions"],
            ipc=data["ipc"],
            counters=dict(data["counters"]),
            power=power,
            cluster=cluster,
            soc=soc,
            profile=dict(data["profile"])
            if data.get("profile") else None,
            stream=StreamDetail.from_json(data["stream_detail"])
            if data.get("stream_detail") else None,
        )
