"""Cluster-level configuration: cores, TCDM banking, DMA, barrier.

Defaults approximate the 8-core Snitch compute cluster the paper's
kernels target: 32 word-interleaved TCDM banks (4 banks per core), a
wide shared DMA engine moving tiles between L2 and TCDM, and a
single-cycle-tree hardware barrier with a small propagation latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ClusterConfig:
    """Tunable cluster parameters.

    Attributes:
        n_cores: Number of Snitch-like worker cores.
        tcdm_banks: Word-interleaved TCDM banks (one 32-bit word per
            bank per cycle).
        tcdm_size: Architectural TCDM capacity in bytes; DMA transfers
            into or out of the scratchpad must fit under this bound.
        bank_stagger_words: Per-core physical placement offset, in
            32-bit words, applied when mapping a core's addresses onto
            banks.  Cores run identical programs over identically laid
            out chunks; real firmware staggers the chunk bases so
            lock-step cores land on disjoint banks.  The default of 2
            words (one FP64 element) de-conflicts lock-step 64-bit
            streams; 0 models naive placement (worst-case conflicts)
            and is required for cores *sharing* one memory image,
            where the mapping must be physical.
        dma_bandwidth: Sustained DMA bandwidth in bytes per cycle
            (shared by all cores' transfers).
        dma_setup_latency: Fixed cycles per transfer before the first
            beat lands (descriptor fetch + interconnect traversal).
        barrier_latency: Cycles from the last core's arrival to the
            barrier release reaching every core.
        model_bank_conflicts: Ablation switch for the bank arbiter.
        writeback: Output write-back simulation mode.  When True,
            partitioned workloads drain their vector outputs to the
            L2 window through the DMA engine after the main region,
            and every DMA beat — staging reads and drains alike —
            claims TCDM bank-cycles in the arbiter, so transfer
            traffic and core accesses contend for the same banks.
            False (the default) keeps the historical model: inputs
            staged with uncontended TCDM beats, output-drain bytes
            priced conceptually by the energy model but never
            simulated — and cycle-identical to the pre-write-back
            goldens.
    """

    n_cores: int = 8
    tcdm_banks: int = 32
    tcdm_size: int = 1 << 17
    bank_stagger_words: int = 2
    dma_bandwidth: int = 8
    dma_setup_latency: int = 16
    barrier_latency: int = 4
    model_bank_conflicts: bool = True
    writeback: bool = False

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.tcdm_banks < 1:
            raise ValueError(
                f"tcdm_banks must be >= 1, got {self.tcdm_banks}"
            )
        if self.dma_bandwidth < 1:
            raise ValueError(
                f"dma_bandwidth must be >= 1, got {self.dma_bandwidth}"
            )
