"""Static work partitioning of the registered kernels across a cluster.

Each of the six Table-I kernels parallelizes by chunking: core *c* of
*N* processes ``n / N`` elements (vector kernels) or samples (Monte
Carlo, with a per-core PRNG seed).  Chunks are private — the builders
already lay every instance out in its own memory image — so cores only
couple through the shared-resource timing models (banked TCDM, DMA
engine, barrier).

Vector kernels (``expf``/``logf``) optionally stage their inputs from a
simulated L2 region into the TCDM through the cluster DMA engine: the
input array is relocated to L2, its TCDM home is zeroed, and a prologue
of ``dma.start`` tile transfers is prepended.  Transfer completion times
flow through the memory-RAW machinery, so the kernel's first blocks
compute while later tiles are still in flight — double-buffered
execution without touching the kernel builders.

A multi-core workload appends a trailing ``cluster.barrier`` so every
run exercises the synchronization path; a 1-core workload is exactly
the single-``Machine`` instance (bit-identical cycles by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..isa.program import Program, ProgramBuilder
from ..kernels.common import KernelInstance
from ..kernels.registry import KernelDef
from ..mem import L2_WINDOW_BASE
from ..sim.config import CoreConfig
from .config import ClusterConfig
from .machine import ClusterMachine, ClusterRunResult

#: Simulated L2 window inside each core's memory image (the flat image
#: doubles as the global address space: TCDM low, L2 high).  Owned by
#: the unified traffic engine (:mod:`repro.mem`); re-exported here
#: under its historical name.
L2_BASE = L2_WINDOW_BASE

#: Drain window inside the per-core L2 address space: output write-back
#: lands here, above the staged-input window, so one core image can
#: hold both without overlap.
L2_DRAIN_BASE = L2_BASE + (1 << 18)

#: Per-core seed spacing for chunked PRNG/vector-input generation.
_SEED_STRIDE = 9973


def _prepend(program: Program, instructions: list) -> Program:
    offset = len(instructions)
    return Program(
        list(instructions) + list(program.instructions),
        {name: index + offset for name, index in program.labels.items()},
        program.name,
    )


def _append(program: Program, instructions: list) -> Program:
    return Program(
        list(program.instructions) + list(instructions),
        dict(program.labels),
        program.name,
    )


def choose_block(chunk: int, requested: int) -> int:
    """Largest workable COPIFT block ≤ *requested* for a chunk.

    Satisfies every builder's constraints at once: a multiple of 8,
    dividing the chunk, with at least 3 blocks (the deepest pipeline,
    expf's, needs 3).
    """
    if chunk % 8 or chunk < 32:
        raise ValueError(
            f"chunk of {chunk} elements cannot host a COPIFT pipeline "
            f"(needs a multiple of 8, at least 32)"
        )
    block = min(requested, chunk // 3)
    block -= block % 8
    while block > 8 and (chunk % block or chunk // block < 3):
        block -= 8
    if block < 8 or chunk % block or chunk // block < 3:
        raise ValueError(
            f"no valid block size ≤ {requested} for chunk {chunk}"
        )
    return block


def stage_inputs_via_dma(instance: KernelInstance,
                         l2_base: int = L2_BASE,
                         tile_elems: int = 64) -> KernelInstance:
    """Rebuild *instance* with its input array DMA-staged from L2.

    The input's TCDM home is zeroed so results genuinely depend on the
    transfers; one ``dma.start`` per ``tile_elems``-element tile is
    prepended (issue cost only — completion is tracked by the DMA
    engine and consumed through memory-RAW waits).
    """
    x_addr = instance.notes["x_addr"]
    x = instance.notes["inputs"]
    nbytes = x.nbytes
    memory = instance.memory
    memory.write_array(l2_base, x)
    memory.data[x_addr:x_addr + nbytes] = bytes(nbytes)

    tile = 8 * tile_elems
    prologue = ProgramBuilder()
    offset = 0
    current_len = None
    while offset < nbytes:
        length = min(tile, nbytes - offset)
        prologue.li("t0", x_addr + offset)
        prologue.li("t1", l2_base + offset)
        if length != current_len:
            prologue.li("t2", length)
            current_len = length
        prologue.dma_start("t0", "t1", "t2")
        offset += length
    program = _prepend(instance.program, prologue._instructions)
    notes = dict(instance.notes)
    notes["dma_staged"] = True
    return replace(instance, program=program, notes=notes)


def output_region(instance: KernelInstance) -> tuple[int, int] | None:
    """``(addr, nbytes)`` of the kernel's vector output, if it has one.

    Kernels register their output region explicitly through the
    ``out_region`` note; older builds are resolved from the historical
    ``y_addr``/``out_addr`` notes (one FP64 element per problem
    element).  Monte Carlo kernels reduce to scalars and have nothing
    to drain — they return ``None``.
    """
    region = instance.notes.get("out_region")
    if region is not None:
        addr, nbytes = region
        return (addr, nbytes)
    for key in ("y_addr", "out_addr"):
        if key in instance.notes:
            return (instance.notes[key], 8 * instance.n)
    return None


def drain_outputs_via_dma(instance: KernelInstance,
                          l2_base: int = L2_DRAIN_BASE,
                          tile_elems: int = 64) -> KernelInstance:
    """Rebuild *instance* with its output array DMA-drained to L2.

    Appends a write-back epilogue after the main region: one
    ``dma.start`` per ``tile_elems``-element tile moving the output
    region into the L2 drain window (chunked, so tiles pipeline
    through the engine and overlap other cores' compute), closed by a
    ``dma.wait`` fence so the program's makespan covers the drain.
    The epilogue issues once the integer core reaches it; FP results
    are functionally committed in program order, so the drained bytes
    are exact while the drain's *timing* overlaps the tail of the FP
    pipeline — the same approximation input staging makes in the
    other direction.
    """
    region = output_region(instance)
    if region is None:
        raise ValueError(
            f"kernel {instance.name} has no drainable outputs "
            f"(no out_region/y_addr/out_addr note)"
        )
    out_addr, nbytes = region
    tile = 8 * tile_elems
    epilogue = ProgramBuilder()
    offset = 0
    current_len = None
    while offset < nbytes:
        length = min(tile, nbytes - offset)
        epilogue.li("t0", l2_base + offset)
        epilogue.li("t1", out_addr + offset)
        if length != current_len:
            epilogue.li("t2", length)
            current_len = length
        epilogue.dma_start("t0", "t1", "t2")
        offset += length
    epilogue.dma_wait()
    program = _append(instance.program, epilogue._instructions)
    notes = dict(instance.notes)
    notes["dma_drained"] = True
    notes["drain_region"] = (l2_base, nbytes)
    notes["drain_src"] = out_addr
    return replace(instance, program=program, notes=notes)


@dataclass
class ClusterWorkload:
    """One kernel, one variant, statically chunked over N cores."""

    name: str
    variant: str
    n: int
    n_cores: int
    block: int | None
    instances: list[KernelInstance]
    #: Whether the instances carry write-back drain epilogues; the
    #: runner syncs :attr:`ClusterConfig.writeback` to it so the DMA
    #: beats also contend in the bank arbiter.
    writeback: bool = False

    def run(self, config: ClusterConfig | None = None,
            core_config: CoreConfig | None = None,
            check: bool = True,
            max_steps: int = 200_000_000,
            obs=None) -> ClusterRunResult:
        """Simulate the workload on a cluster sized to fit it.

        *obs* is an optional :class:`repro.obs.ObsSink` observing the
        whole cluster (cores, TCDM banks, DMA, barriers) under the
        ``cluster0`` scope.
        """
        config = config or ClusterConfig()
        if config.n_cores != self.n_cores:
            config = replace(config, n_cores=self.n_cores)
        if config.writeback != self.writeback:
            config = replace(config, writeback=self.writeback)
        cluster = ClusterMachine(config=config, core_config=core_config)
        if obs is not None:
            cluster.attach_obs(obs, "cluster0")
        for instance in self.instances:
            cluster.add_core(instance.program, instance.memory)
        result = cluster.run(max_steps=max_steps)
        if check:
            for instance, machine in zip(self.instances, cluster.cores):
                instance.verify(instance.memory, machine)
                verify_drained(instance)
        return result


def verify_drained(instance: KernelInstance) -> None:
    """Check a drained instance's L2 window copy of its outputs.

    The write-back epilogue's functional copy is applied in program
    order, so this asserts the *wiring* — addresses, lengths, the
    region actually drained — matches the output region the kernel
    registered.
    """
    if not instance.notes.get("dma_drained"):
        return
    drain_base, nbytes = instance.notes["drain_region"]
    out_addr = instance.notes["drain_src"]
    data = instance.memory.data
    if bytes(data[drain_base:drain_base + nbytes]) \
            != bytes(data[out_addr:out_addr + nbytes]):
        raise AssertionError(
            f"{instance.name}: L2 drain window diverged from the "
            f"TCDM output region"
        )


def partition_kernel(kernel_def: KernelDef, n: int, n_cores: int,
                     variant: str = "baseline",
                     block: int | None = None,
                     stage_dma: bool | None = None,
                     first_core: int = 0,
                     writeback: bool = False) -> ClusterWorkload:
    """Chunk one registered kernel over *n_cores* cores.

    Args:
        kernel_def: Registry entry to partition.
        n: Total problem size (must divide evenly into chunks).
        n_cores: Cluster size.
        variant: ``baseline`` or ``copift``.
        block: Requested COPIFT block size (auto-shrunk per chunk).
        stage_dma: Stage vector-kernel inputs from L2 through the DMA
            engine.  None (default) enables staging exactly for the
            kernels whose single-core instances already account DMA
            activity (``expf``/``logf``) when the cluster has more
            than one core — or at any core count in write-back mode,
            which simulates the kernel's full conceptual traffic.
        first_core: Global index of this cluster's first core.  The
            SoC partitioner passes ``cluster * n_cores`` so per-core
            seeds stay unique across the whole SoC; global core 0
            always keeps the builder's default seed.
        writeback: Simulate output write-back: every core with a
            registered output region (:func:`output_region`) drains
            it to the L2 window through the DMA engine after the main
            region, and the cluster runs with
            :attr:`ClusterConfig.writeback` so DMA beats contend in
            the TCDM bank arbiter.
    """
    if variant not in ("baseline", "copift"):
        raise ValueError(f"unknown variant {variant!r}")
    if n % n_cores:
        raise ValueError(
            f"problem size {n} does not chunk evenly over "
            f"{n_cores} cores"
        )
    chunk = n // n_cores
    chunk_block = None
    if variant == "copift":
        chunk_block = choose_block(chunk,
                                   block or kernel_def.default_block)

    instances = []
    for core in range(n_cores):
        kwargs: dict = {}
        if first_core + core > 0:
            # Global core 0 keeps the builder's default seed so a
            # 1-core workload is bit-identical to the plain instance.
            kwargs["seed"] = _SEED_STRIDE * (first_core + core)
        if variant == "baseline":
            instance = kernel_def.build_baseline(chunk, **kwargs)
        else:
            instance = kernel_def.build_copift(chunk, block=chunk_block,
                                               **kwargs)
        # Write-back mode simulates *all* of the kernel's conceptual
        # traffic, so staging is enabled even at one core there —
        # otherwise the measured bytes the energy model prices would
        # miss the input half at n_cores=1 (where the default model
        # keeps the bare-Machine cycle identity instead).
        dma = stage_dma if stage_dma is not None \
            else (instance.dma_active and (n_cores > 1 or writeback))
        if dma:
            if "inputs" not in instance.notes:
                raise ValueError(
                    f"kernel {kernel_def.name} has no stageable inputs"
                )
            instance = stage_inputs_via_dma(
                instance,
                tile_elems=chunk_block or min(64, chunk),
            )
        if writeback and output_region(instance) is not None:
            instance = drain_outputs_via_dma(
                instance,
                tile_elems=chunk_block or min(64, chunk),
            )
        if n_cores > 1:
            barrier = ProgramBuilder()
            barrier.cluster_barrier()
            instance = replace(
                instance,
                program=_append(instance.program,
                                barrier._instructions),
            )
        instances.append(instance)

    return ClusterWorkload(
        name=kernel_def.name, variant=variant, n=n, n_cores=n_cores,
        block=chunk_block, instances=instances, writeback=writeback,
    )
