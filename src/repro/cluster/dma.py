"""Cluster DMA engine: L2 <-> TCDM tile transfers with real timing.

One engine per cluster, shared by all cores.  A transfer programmed with
``dma.start dst, src, len`` occupies the engine for ``setup_latency +
ceil(len / bandwidth)`` cycles; transfers are serviced in program order
(single physical engine, one outstanding burst at a time — queueing a
transfer while another is in flight is precisely what double-buffering
exploits).  Completion times feed the cores' memory-RAW publication
machinery, so compute naturally overlaps in-flight transfers and stalls
only when it outruns them.

All of that behaviour lives in the unified
:class:`~repro.mem.TransferEngine`; :class:`ClusterDma` is the
cluster-level *configuration* of it — standalone-cluster defaults, no
beat arbiter (the cluster's link to its L2 window is uncontended), no
endpoint hooks.  An enclosing SoC swaps in
:class:`~repro.soc.machine.SocDmaChannel`, the same engine wired to
the shared interconnect and L2.

``DmaTransfer`` is the historical name of the queued-transfer record;
it is the engine's :class:`~repro.mem.Transfer` (now carrying the
stream :class:`~repro.mem.Direction` too).
"""

from __future__ import annotations

from ..mem import Transfer, TransferEngine

#: Compatibility alias: the queued-transfer record predates the unified
#: engine and was named for this module.
DmaTransfer = Transfer


class ClusterDma(TransferEngine):
    """The shared cluster DMA engine: a bare, uncontended
    :class:`~repro.mem.TransferEngine`."""

    def __init__(self, bandwidth: int = 8, setup_latency: int = 16,
                 tcdm_size: int | None = None) -> None:
        super().__init__(bandwidth=bandwidth,
                         setup_latency=setup_latency,
                         tcdm_size=tcdm_size)
