"""Cluster DMA engine: L2 <-> TCDM tile transfers with real timing.

One engine per cluster, shared by all cores.  A transfer programmed with
``dma.start dst, src, len`` occupies the engine for ``setup_latency +
ceil(len / bandwidth)`` cycles; transfers are serviced in program order
(single physical engine, one outstanding burst at a time — queueing a
transfer while another is in flight is precisely what double-buffering
exploits).  Completion times feed the cores' memory-RAW publication
machinery, so compute naturally overlaps in-flight transfers and stalls
only when it outruns them.

The engine also enforces the architectural TCDM capacity: a transfer
whose scratchpad-side footprint crosses ``tcdm_size`` raises
:class:`~repro.sim.memory.MemoryError_` (the model's equivalent of the
interconnect's error response).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.memory import MemoryError_


@dataclass(frozen=True)
class DmaTransfer:
    """Record of one queued transfer (for reports and tests)."""

    core_id: int
    dst: int
    src: int
    nbytes: int
    issue: int
    begin: int
    done: int


class ClusterDma:
    """Bandwidth/latency model of the shared cluster DMA engine."""

    def __init__(self, bandwidth: int = 8, setup_latency: int = 16,
                 tcdm_size: int | None = None) -> None:
        self.bandwidth = bandwidth
        self.setup_latency = setup_latency
        self.tcdm_size = tcdm_size
        self.transfers: list[DmaTransfer] = []
        self._free_at = 0
        self._core_done: dict[int, int] = {}
        self.bytes_moved = 0
        self.busy_cycles = 0

    # ------------------------------------------------------------------
    def _check_tcdm_bounds(self, addr: int, nbytes: int) -> None:
        """Reject scratchpad-side footprints overrunning the TCDM."""
        if self.tcdm_size is None:
            return
        if addr < self.tcdm_size and addr + nbytes > self.tcdm_size:
            raise MemoryError_(
                f"DMA transfer of {nbytes} bytes at 0x{addr:x} overruns "
                f"the TCDM capacity of 0x{self.tcdm_size:x} bytes"
            )

    def _completion(self, begin: int, nbytes: int) -> int:
        """Cycle the last beat of a transfer starting at *begin* lands.

        The base engine moves ``bandwidth`` bytes per cycle after the
        setup latency; SoC channels override this to arbitrate each
        beat through the shared L2 interconnect.
        """
        return begin + self.setup_latency + -(-nbytes // self.bandwidth)

    def start(self, core_id: int, dst: int, src: int, nbytes: int,
              now: int) -> int:
        """Queue a transfer issued at *now*; returns its completion cycle."""
        if nbytes < 0:
            raise MemoryError_(f"negative DMA length {nbytes}")
        self._check_tcdm_bounds(dst, nbytes)
        self._check_tcdm_bounds(src, nbytes)
        begin = max(now, self._free_at)
        done = self._completion(begin, nbytes)
        duration = done - begin
        self._free_at = done
        self.busy_cycles += duration
        self.bytes_moved += nbytes
        prev = self._core_done.get(core_id, 0)
        self._core_done[core_id] = max(prev, done)
        self.transfers.append(DmaTransfer(
            core_id=core_id, dst=dst, src=src, nbytes=nbytes,
            issue=now, begin=begin, done=done,
        ))
        return done

    def core_drain_time(self, core_id: int) -> int:
        """Cycle when every transfer started by *core_id* has completed
        (the ``dma.wait`` fence)."""
        return self._core_done.get(core_id, 0)

    @property
    def drain_time(self) -> int:
        """Cycle when the whole engine goes idle."""
        return self._free_at
