"""Multi-core cluster simulation layer.

Composes N :class:`~repro.sim.machine.Machine` cores into a Snitch-style
compute cluster:

* :class:`BankedTcdm` — word-interleaved bank arbitration (conflict
  stalls) layered over the flat functional memory.
* :class:`ClusterDma` — shared L2<->TCDM tile engine: the cluster
  configuration of the unified :class:`~repro.mem.TransferEngine`;
  drives double-buffered input staging and (in write-back mode)
  output drains.
* :class:`ClusterMachine` — event-driven N-core driver with hardware
  barriers (``cluster.barrier``) and cluster atomics (``amoadd.w``).
* :func:`partition_kernel` — static chunking of the six registered
  kernels into per-core workloads (DMA-staged inputs, optional
  write-back drain epilogues).
"""

from .config import ClusterConfig
from .dma import ClusterDma, DmaTransfer
from .machine import ClusterMachine, ClusterRunResult
from .partition import (
    ClusterWorkload,
    choose_block,
    drain_outputs_via_dma,
    output_region,
    partition_kernel,
    stage_inputs_via_dma,
)
from .tcdm import BankedTcdm, BankStats

__all__ = [
    "BankStats",
    "BankedTcdm",
    "ClusterConfig",
    "ClusterDma",
    "ClusterMachine",
    "ClusterRunResult",
    "ClusterWorkload",
    "DmaTransfer",
    "choose_block",
    "drain_outputs_via_dma",
    "output_region",
    "partition_kernel",
    "stage_inputs_via_dma",
]
