"""Banked-TCDM timing model: word-interleaved banks with arbitration.

Layered *over* :class:`repro.sim.memory.Memory` — functional state stays
a flat bytearray; this module only decides **when** an access is granted.
The TCDM is split into ``n_banks`` word-interleaved banks (word ``w``
lives in bank ``w % n_banks``); each bank grants one request per cycle.
A request claims every bank its footprint touches (a 64-bit access spans
two adjacent banks) and is delayed until the first cycle all of them are
free, which is the modelled bank-conflict stall.

Arbitration granularity follows the core model's structure:

* a core never conflicts with *itself* — the in-order core issues at
  most one LSU/SSR request per engine per cycle, and its private request
  port is already serialized, so same-core claims share the cycle.  This
  also keeps a 1-core cluster cycle-identical to a bare ``Machine``;
* cross-core claims are first-come-first-served in *simulation* order.
  The cluster driver steps the earliest-in-time core first, so claim
  order tracks cycle order closely (exact for lock-step cores); an
  ``frep`` burst may claim a span of future cycles ahead of its peers,
  which makes the arbitration approximate but deterministic.
"""

from __future__ import annotations

from ..mem import StreamStats, stat_alias


class BankStats(StreamStats):
    """Per-bank activity — the TCDM's view of the shared
    :class:`~repro.mem.StreamStats` shape.

    ``accesses`` and ``conflict_cycles`` are the historical names for
    ``grants`` and ``stall_cycles``; they alias the same storage, so
    the two spellings can never diverge.
    """

    accesses = stat_alias("grants")
    conflict_cycles = stat_alias("stall_cycles")


class BankedTcdm:
    """Per-cycle bank arbiter shared by every core of a cluster."""

    def __init__(self, n_banks: int = 32, bank_stagger_words: int = 2,
                 enabled: bool = True) -> None:
        self.n_banks = n_banks
        self.bank_stagger_words = bank_stagger_words
        self.enabled = enabled
        self.stats = [BankStats() for _ in range(n_banks)]
        #: claims[bank][cycle] -> core_id granted that bank-cycle.
        self._claims: list[dict[int, int]] = [
            {} for _ in range(n_banks)
        ]
        self._claim_count = 0
        #: Structured-event sink (repro.obs.ObsSink); None when off.
        self.obs = None
        #: Scope bank events are emitted under (the owning cluster).
        self.obs_scope = "cluster0"

    # ------------------------------------------------------------------
    def bank_of(self, core_id: int, addr: int) -> int:
        """Bank serving byte *addr* as seen by *core_id*.

        The per-core stagger models firmware placing each core's
        *private* chunk at a different bank-aligned offset; it shifts
        the core's whole address space by ``core_id * stagger`` words.
        That is the right model when every core carries its own memory
        image (the partitioned workloads), but it makes one shared
        physical word map to *different* banks per core — so for
        workloads where cores share a memory image (atomics on a
        common counter), configure ``bank_stagger_words=0`` to get a
        physical bank mapping and model contention on shared words.
        """
        word = (addr >> 2) + core_id * self.bank_stagger_words
        return word % self.n_banks

    def _banks_touched(self, core_id: int, addr: int,
                       nbytes: int) -> range:
        first = (addr >> 2) + core_id * self.bank_stagger_words
        last = ((addr + nbytes - 1) >> 2) + \
            core_id * self.bank_stagger_words
        return range(first, last + 1)

    # ------------------------------------------------------------------
    def access(self, core_id: int, addr: int, nbytes: int,
               cycle: int, requestor: int | None = None) -> int:
        """Arbitrate one access; returns the grant cycle (>= *cycle*).

        Claims every touched bank at the grant cycle.  Banks already
        claimed by the same *requestor* at a cycle do not block (the
        requestor's own port is serialized upstream); the requestor
        defaults to *core_id* — the common case of a core's LSU/SSR
        port.  The DMA engine passes its own requestor id
        (:data:`~repro.mem.DMA_REQUESTOR`) while keeping *core_id* for
        the bank mapping, so its beats conflict with every core's
        accesses, including the issuing core's.
        """
        if not self.enabled:
            return cycle
        if requestor is None:
            requestor = core_id
        words = self._banks_touched(core_id, addr, nbytes)
        n = self.n_banks
        claims = self._claims
        grant = cycle
        while True:
            for w in words:
                owner = claims[w % n].get(grant)
                if owner is not None and owner != requestor:
                    grant += 1
                    break
            else:
                break
        delay = grant - cycle
        obs = self.obs
        if obs is not None:
            obs.emit(self.obs_scope, f"bank{words[0] % n}",
                     "conflict" if delay else "grant", grant, 1,
                     "tcdm", {"core": core_id, "stall": delay})
        for w in words:
            bank = w % n
            claims[bank][grant] = requestor
            self._claim_count += 1
            stats = self.stats[bank]
            stats.grants += 1
            stats.stall_cycles += delay
            delay = 0  # attribute the stall to the first touched bank
        if self._claim_count > (1 << 20):
            self._prune(grant)
        return grant

    def _prune(self, now: int, horizon: int = 1 << 16) -> None:
        """Drop claims far in the past to bound memory."""
        floor = now - horizon
        total = 0
        for bank in self._claims:
            stale = [t for t in bank if t < floor]
            for t in stale:
                del bank[t]
            total += len(bank)
        self._claim_count = total

    # ------------------------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return sum(s.accesses for s in self.stats)

    @property
    def total_conflict_cycles(self) -> int:
        return sum(s.conflict_cycles for s in self.stats)

    def conflict_rate(self) -> float:
        """Conflict cycles per access (0.0 when idle)."""
        accesses = self.total_accesses
        if accesses == 0:
            return 0.0
        return self.total_conflict_cycles / accesses
