"""Multi-core cluster simulation: N Machines over shared resources.

A :class:`ClusterMachine` composes N :class:`~repro.sim.machine.Machine`
cores with the shared-resource timing models of this package:

* every core's loads/stores/SSR streams arbitrate through one
  :class:`~repro.cluster.tcdm.BankedTcdm` (bank-conflict stalls),
* ``dma.start``/``dma.wait`` program one shared
  :class:`~repro.cluster.dma.ClusterDma` engine,
* ``cluster.barrier`` parks a core until every active core arrives.

Execution is event-driven: the driver repeatedly steps the core whose
integer issue timeline is furthest behind, so cores advance roughly in
lock-step simulated time and shared-resource claims line up with the
cycles they model.  Functional state is per-core — each core binds its
own program over its own (or an explicitly shared) memory image — which
keeps correctness independent of the stepping interleave; only *timing*
couples the cores.  With a single core and no DMA/barrier instructions
the composition is cycle-identical to a bare ``Machine`` run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.program import Program
from ..sim.config import CoreConfig
from ..sim.counters import Counters, RegionMeasurement, RunResult
from ..sim.machine import Machine, SimulationError
from ..sim.memory import Memory
from .config import ClusterConfig
from .dma import ClusterDma
from .tcdm import BankedTcdm


def _sum_counters(parts: list[Counters]) -> Counters:
    total = Counters()
    for part in parts:
        for name, value in vars(part).items():
            setattr(total, name, getattr(total, name) + value)
    return total


@dataclass
class ClusterRunResult:
    """Aggregate measurements of one cluster simulation.

    Attributes:
        cycles: Cluster makespan — the slowest core's elapsed cycles.
        core_results: Per-core :class:`RunResult`, in core order.
        counters: Field-wise sum of the per-core counters.
        tcdm_accesses: Banked-TCDM grants over the whole run.
        tcdm_conflict_cycles: Total bank-conflict stall cycles.
        tcdm_bank_conflicts: Per-bank conflict cycles.
        dma_bytes: Bytes moved by the shared DMA engine.
        dma_bytes_read: Bytes staged into the TCDM (READ direction).
        dma_bytes_written: Bytes drained out of the TCDM (WRITE
            direction; non-zero only in write-back simulation mode).
        dma_busy_cycles: Cycles the DMA engine was occupied.
        barrier_count: Barrier episodes completed by the cluster.
    """

    cycles: int
    core_results: list[RunResult]
    counters: Counters
    tcdm_accesses: int = 0
    tcdm_conflict_cycles: int = 0
    tcdm_bank_conflicts: list[int] = field(default_factory=list)
    dma_bytes: int = 0
    dma_bytes_read: int = 0
    dma_bytes_written: int = 0
    dma_busy_cycles: int = 0
    barrier_count: int = 0

    @property
    def n_cores(self) -> int:
        return len(self.core_results)

    def region(self, name: str) -> RegionMeasurement:
        """Cluster-level view of a marked region.

        Cycles are the *makespan* (max over cores — cores enter a
        region together modulo skew); counters are summed.
        """
        parts = [r.regions[name] for r in self.core_results
                 if name in r.regions]
        if not parts:
            raise KeyError(f"no region {name!r} on any core")
        return RegionMeasurement(
            name,
            max(p.cycles for p in parts),
            _sum_counters([p.counters for p in parts]),
        )


class ClusterMachine:
    """N cores, one banked TCDM, one DMA engine, one barrier tree."""

    def __init__(self, config: ClusterConfig | None = None,
                 core_config: CoreConfig | None = None,
                 dma: ClusterDma | None = None) -> None:
        self.config = config or ClusterConfig()
        self.core_config = core_config or CoreConfig()
        self.tcdm = BankedTcdm(
            n_banks=self.config.tcdm_banks,
            bank_stagger_words=self.config.bank_stagger_words,
            enabled=self.config.model_bank_conflicts,
        )
        # An enclosing SoC passes its own per-cluster DMA channel (same
        # engine model, beats arbitrated by the shared interconnect).
        self.dma = dma if dma is not None else ClusterDma(
            bandwidth=self.config.dma_bandwidth,
            setup_latency=self.config.dma_setup_latency,
            tcdm_size=self.config.tcdm_size,
        )
        if self.config.writeback:
            # Write-back simulation: every DMA beat claims its TCDM
            # bank-cycles, so transfer traffic (staging reads and
            # output drains) contends with core accesses.
            self.dma.attach_tcdm(self.tcdm)
        self.cores: list[Machine] = []
        self._programs: list[Program] = []
        self.barrier_count = 0
        #: Index within an enclosing SocMachine (0 standalone).
        self.cluster_id = 0
        self._active: list[Machine] = []
        self._finished: list[Machine] = []
        self._bound = False
        #: Structured-event sink (repro.obs.ObsSink); None when off.
        self.obs = None
        #: Scope this cluster emits under (``soc/cluster{c}`` inside a
        #: SoC, ``cluster0`` standalone).
        self.obs_scope = "cluster0"
        self._tracing = False

    # ------------------------------------------------------------------
    def add_core(self, program: Program, memory: Memory) -> Machine:
        """Register one core running *program* over *memory*.

        Cores may share a ``Memory`` instance (cluster-shared data,
        atomics) or carry private images (partitioned chunks); the
        cluster does not care.  When sharing, set
        ``bank_stagger_words=0`` in the :class:`ClusterConfig` — the
        stagger models private-chunk placement and would otherwise map
        one shared word to different banks per core (see
        :meth:`BankedTcdm.bank_of`).
        """
        if len(self.cores) >= self.config.n_cores:
            raise ValueError(
                f"cluster is configured for {self.config.n_cores} cores"
            )
        machine = Machine(config=self.core_config, memory=memory)
        machine.core_id = len(self.cores)
        machine.tcdm = self.tcdm
        machine.dma = self.dma
        machine.cluster = self
        if self.obs is not None:
            machine.attach_obs(
                self.obs, f"{self.obs_scope}/core{machine.core_id}")
        if self._tracing:
            machine.enable_trace()
        self.cores.append(machine)
        self._programs.append(program)
        return machine

    # ------------------------------------------------------------------
    def attach_obs(self, sink, scope: str = "cluster0") -> None:
        """Observe the whole cluster: cores, TCDM banks, DMA, barriers.

        Cores added later inherit the sink (an enclosing SoC attaches
        before the workload populates the cluster).  Pass ``None`` to
        detach.
        """
        self.obs = sink
        self.obs_scope = scope
        self.tcdm.obs = sink
        self.tcdm.obs_scope = scope
        self.dma.attach_obs(sink, scope)
        for machine in self.cores:
            machine.attach_obs(sink, f"{scope}/core{machine.core_id}")

    def enable_trace(self) -> list[list]:
        """Record issue events on every core (present and future).

        Returns the per-core event lists, in core order — the list for
        a core added after this call appears as cores are added (read
        ``cores[k].trace`` for the live view).
        """
        self._tracing = True
        return [machine.enable_trace() for machine in self.cores]

    # ------------------------------------------------------------------
    def _release_barrier(self, waiting: list[Machine],
                         finished: list[Machine]) -> None:
        if finished:
            names = [m.core_id for m in waiting]
            raise SimulationError(
                f"barrier mismatch: cores {names} wait at a barrier "
                f"that cores {[m.core_id for m in finished]} exited "
                f"the program without reaching"
            )
        release = max(m.barrier_arrival for m in waiting) \
            + self.config.barrier_latency
        obs = self.obs
        if obs is not None:
            first = min(m.barrier_arrival for m in waiting)
            obs.emit(self.obs_scope, "barrier", "barrier", first,
                     release - first, "barrier",
                     {"cores": len(waiting),
                      "episode": self.barrier_count})
        for m in waiting:
            m.counters.stall_barrier += release - m.barrier_arrival
            m.int_time = release
            m.fp_time = max(m.fp_time, release)
            m.barrier_wait = False
        self.barrier_count += 1

    def bind(self, max_steps: int = 200_000_000) -> None:
        """Prepare every core for stepwise execution (see :meth:`step`)."""
        if not self.cores:
            raise ValueError("cluster has no cores; call add_core first")
        for machine, program in zip(self.cores, self._programs):
            # Cores sharing one Program object share its decode: the
            # DecodedProgram cache rides on the Program itself.
            machine.bind(program, max_steps)
        self._active = [m for m in self.cores]
        self._finished = []
        self._bound = True

    @property
    def finished(self) -> bool:
        return self._bound and not self._active

    @property
    def laggard_time(self) -> int:
        """Issue time of the core furthest behind (the cluster's clock).

        Barrier-parked cores keep their arrival-time clock, so a fully
        parked cluster reports the time its pending release resolves
        around — which is what an enclosing SoC driver should order on.
        """
        if not self._active:
            return max((m.sched.int_time for m in self.cores), default=0)
        return min(m.sched.int_time for m in self._active)

    def step(self) -> bool:
        """Advance the cluster by one dynamic instruction (or one
        barrier release) on the laggard core.

        Returns False once every core has finished.  The driver talks
        to the cores' schedulers directly rather than through the
        Machine facade's delegating properties (this loop runs once per
        dynamic instruction).
        """
        active = self._active
        if not active:
            return False
        runnable = [m for m in active if not m.sched.barrier_wait]
        if not runnable:
            self._release_barrier(active, self._finished)
            return True
        # Step the core furthest behind on its issue timeline so
        # shared-resource claims happen in (approximate) cycle
        # order.  Ties break by core id: deterministic.
        machine = min(runnable,
                      key=lambda m: (m.sched.int_time, m.core_id))
        if not machine.sched.step():
            active.remove(machine)
            self._finished.append(machine)
        return bool(active)

    def result(self) -> ClusterRunResult:
        """Aggregate measurements of everything executed so far."""
        results = [m.result() for m in self.cores]
        return ClusterRunResult(
            cycles=max(r.cycles for r in results),
            core_results=results,
            counters=_sum_counters([r.counters for r in results]),
            tcdm_accesses=self.tcdm.total_accesses,
            tcdm_conflict_cycles=self.tcdm.total_conflict_cycles,
            tcdm_bank_conflicts=[s.conflict_cycles
                                 for s in self.tcdm.stats],
            dma_bytes=self.dma.bytes_moved,
            dma_bytes_read=self.dma.bytes_read,
            dma_bytes_written=self.dma.bytes_written,
            dma_busy_cycles=self.dma.busy_cycles,
            barrier_count=self.barrier_count,
        )

    def run(self, max_steps: int = 200_000_000) -> ClusterRunResult:
        """Run every core to completion and aggregate measurements."""
        self.bind(max_steps)
        while self.step():
            pass
        return self.result()
