"""Chrome/Perfetto trace-event export and validation.

:func:`chrome_trace` converts an :class:`~repro.obs.events.ObsSink`
into the JSON object format understood by ``chrome://tracing`` and
https://ui.perfetto.dev: each hierarchical *scope* becomes a process,
each *lane* within it a thread, events become complete ("X") slices,
and DMA cause→effect pairs become flow arrows ("s"/"f").

The output is byte-deterministic: scopes and lanes get their
process/thread ids from a natural sort of their names, slices are
ordered by (process, thread, start, emission order), and the sink
itself is filled in simulation order — so the same workload on the
same backend always serializes to the same bytes, regardless of how
many sweep shards ran around it.

:func:`validate_chrome_trace` is the schema check CI runs against the
sample trace artifact: required keys per event phase, a ``dur`` on
every slice, metadata naming every process, and non-decreasing ``ts``
per lane.
"""

from __future__ import annotations

import json
import re

from .events import ObsEvent, ObsSink

_NAT_SPLIT = re.compile(r"(\d+)")


def _natural_key(name: str) -> tuple:
    """Sort helper so ``bank10`` follows ``bank9``, not ``bank1``."""
    return tuple(int(part) if part.isdigit() else part
                 for part in _NAT_SPLIT.split(name))


def _slice_json(event: ObsEvent, pid: int, tid: int) -> dict:
    out = {"name": event.name, "cat": event.cat or "event",
           "ph": "X", "ts": event.ts, "dur": event.dur,
           "pid": pid, "tid": tid}
    if event.args:
        out["args"] = dict(event.args)
    return out


def chrome_trace(sink: ObsSink) -> dict:
    """Serialize *sink* to a Chrome trace-event JSON object."""
    scopes = sorted({e.scope for e in sink.events}, key=_natural_key)
    pids = {scope: i + 1 for i, scope in enumerate(scopes)}
    tids: dict[tuple[str, str], int] = {}
    trace_events: list[dict] = []
    for scope in scopes:
        pid = pids[scope]
        lanes = sorted({e.lane for e in sink.events
                        if e.scope == scope}, key=_natural_key)
        trace_events.append({"name": "process_name", "ph": "M",
                             "pid": pid,
                             "args": {"name": scope}})
        trace_events.append({"name": "process_sort_index", "ph": "M",
                             "pid": pid,
                             "args": {"sort_index": pid}})
        for t, lane in enumerate(lanes, start=1):
            tids[(scope, lane)] = t
            trace_events.append({"name": "thread_name", "ph": "M",
                                 "pid": pid, "tid": t,
                                 "args": {"name": lane}})
            trace_events.append({"name": "thread_sort_index",
                                 "ph": "M", "pid": pid, "tid": t,
                                 "args": {"sort_index": t}})

    # Stable order: by lane, then start cycle, then emission order —
    # emission order is simulation order, which is deterministic.
    indexed = sorted(
        enumerate(sink.events),
        key=lambda pair: (pids[pair[1].scope],
                          tids[(pair[1].scope, pair[1].lane)],
                          pair[1].ts, pair[0]))
    for _, event in indexed:
        pid = pids[event.scope]
        tid = tids[(event.scope, event.lane)]
        trace_events.append(_slice_json(event, pid, tid))
        if event.flow is not None:
            arrow = {"name": event.name, "cat": event.cat or "event",
                     "ph": event.flow_phase, "id": event.flow,
                     "ts": event.ts + (event.dur
                                       if event.flow_phase == "f"
                                       else 0),
                     "pid": pid, "tid": tid}
            if event.flow_phase == "f":
                arrow["bp"] = "e"
            trace_events.append(arrow)
    return {"traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {"clock": "cycles"}}


def write_chrome_trace(sink: ObsSink, path: str) -> None:
    """Write *sink* to *path* as deterministic Chrome trace JSON."""
    data = chrome_trace(sink)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")


def validate_chrome_trace(data: dict) -> int:
    """Check *data* against the Chrome trace-event schema.

    Raises ValueError on the first violation; returns the number of
    ``traceEvents`` when valid.  This is what CI runs against the
    uploaded sample trace.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("missing top-level 'traceEvents' key")
    events = data["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    named_pids: set[int] = set()
    last_ts: dict[tuple[int, int], int] = {}
    for i, event in enumerate(events):
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ValueError(f"event {i} missing '{key}': {event}")
        phase = event["ph"]
        if phase == "M":
            if event["name"] == "process_name":
                named_pids.add(event["pid"])
            continue
        if "ts" not in event:
            raise ValueError(f"event {i} missing 'ts': {event}")
        if phase == "X":
            if "dur" not in event:
                raise ValueError(f"slice {i} missing 'dur': {event}")
            lane = (event["pid"], event.get("tid", 0))
            if event["ts"] < last_ts.get(lane, 0):
                raise ValueError(
                    f"slice {i} breaks per-lane ts monotonicity: "
                    f"{event}")
            last_ts[lane] = event["ts"]
        elif phase in ("s", "f"):
            if "id" not in event:
                raise ValueError(f"flow event {i} missing 'id': "
                                 f"{event}")
        else:
            raise ValueError(f"event {i} has unknown phase "
                             f"'{phase}'")
    used_pids = {e["pid"] for e in events if e["ph"] != "M"}
    unnamed = used_pids - named_pids
    if unnamed:
        raise ValueError(f"processes without process_name metadata: "
                         f"{sorted(unnamed)}")
    return len(events)
