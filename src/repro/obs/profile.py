"""Deterministic top-down cycle attribution across core → cluster → SoC.

Every measured region answers two questions exactly: *how many cycles
did it take* and *what was each cycle spent on*.  The integer core is
the issue engine that owns the critical path — each of its cycles is
either an issue slot (integer issue or FP dispatch), one of the stall
classes from :class:`Counters`, or part of the **drain** tail where
the FPSS finishes work the integer core already handed off.  That
last bucket is computed as the signed residual, so the leaf buckets
sum to the region's cycle count *by construction* — the
golden-agreement test asserts this for every kernel on every backend.

FPSS-side stall counters overlap the integer timeline (both engines
stall on the same cycle all the time) so they are reported as an
``overlap`` detail, never added to the sum.

Cluster and SoC nodes aggregate their children: a parent's cycle
count is the makespan (max over children), matching how the cluster
and SoC machines measure regions.

Inputs are duck-typed (anything with ``cycles`` and a ``counters``
object exposing the stall-field tuples), so this module imports
nothing from the rest of the repo.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ProfileNode:
    """One scope's cycle attribution.

    Attributes:
        scope: Hierarchical scope name (matches the trace's process
            names, e.g. ``soc/cluster0/core2``).
        cycles: Region cycles measured at this scope.
        buckets: Ordered leaf attribution; values sum to *cycles*
            exactly (the ``drain`` bucket is the signed residual).
            Empty on aggregate (cluster/SoC) nodes.
        overlap: FPSS-side stall detail that overlaps the integer
            timeline — informational, excluded from the sum.
        children: Child scopes (cores of a cluster, clusters of a
            SoC).
    """

    scope: str
    cycles: int
    buckets: dict[str, int] = field(default_factory=dict)
    overlap: dict[str, int] = field(default_factory=dict)
    children: list["ProfileNode"] = field(default_factory=list)

    def bucket_sum(self) -> int:
        return sum(self.buckets.values())

    def to_json(self) -> dict:
        out: dict = {"scope": self.scope, "cycles": self.cycles}
        if self.buckets:
            out["buckets"] = dict(self.buckets)
        if self.overlap:
            out["overlap"] = dict(self.overlap)
        if self.children:
            out["children"] = [c.to_json() for c in self.children]
        return out

    @classmethod
    def from_json(cls, data: dict) -> "ProfileNode":
        return cls(scope=data["scope"], cycles=data["cycles"],
                   buckets=dict(data.get("buckets", {})),
                   overlap=dict(data.get("overlap", {})),
                   children=[cls.from_json(c)
                             for c in data.get("children", [])])


def core_profile(scope: str, region) -> ProfileNode:
    """Attribute one core's region cycles to issue/stall/drain buckets.

    *region* is any object with ``cycles`` and ``counters`` (a
    :class:`RegionMeasurement`); the counters object must expose
    ``int_stall_fields()`` / ``fp_stall_fields()``.
    """
    counters = region.counters
    buckets: dict[str, int] = {
        "issue.int": counters.int_issued,
        "issue.fp_dispatch": counters.fp_dispatched,
    }
    for name in counters.int_stall_fields():
        buckets["stall." + name.removeprefix("stall_")] = \
            getattr(counters, name)
    # The integer core's issue slots plus its stalls cover its own
    # busy time; whatever remains of the region is the FPSS drain
    # tail, barrier skew and region-boundary slack.  Signed residual
    # => the buckets always sum to region.cycles exactly.
    buckets["drain"] = region.cycles - sum(buckets.values())
    overlap = {
        name.removeprefix("fp_stall_"): getattr(counters, name)
        for name in counters.fp_stall_fields()
    }
    return ProfileNode(scope=scope, cycles=region.cycles,
                       buckets=buckets, overlap=overlap)


def aggregate_profile(scope: str,
                      children: list[ProfileNode]) -> ProfileNode:
    """Parent node over *children*: cycles = makespan (max child)."""
    cycles = max((c.cycles for c in children), default=0)
    return ProfileNode(scope=scope, cycles=cycles, children=children)


def _render_node(node: ProfileNode, total: int, indent: int,
                 lines: list[str], min_pct: float) -> None:
    pct = 100.0 * node.cycles / total if total else 0.0
    pad = "  " * indent
    lines.append(f"{pad}{node.scope:<{32 - len(pad)}} "
                 f"{node.cycles:>10}  {pct:6.1f}%")
    for name, value in node.buckets.items():
        if value == 0:
            continue
        bucket_pct = 100.0 * value / total if total else 0.0
        if bucket_pct < min_pct and name != "drain":
            continue
        bucket_pad = "  " * (indent + 1)
        lines.append(f"{bucket_pad}{name:<{32 - len(bucket_pad)}} "
                     f"{value:>10}  {bucket_pct:6.1f}%")
    shown_overlap = {k: v for k, v in node.overlap.items() if v}
    if shown_overlap:
        detail = ", ".join(f"{k}={v}"
                           for k, v in shown_overlap.items())
        lines.append(f"{'  ' * (indent + 1)}(fpss overlap: {detail})")
    for child in node.children:
        _render_node(child, total, indent + 1, lines, min_pct)


def render_profile(node: ProfileNode, min_pct: float = 0.0) -> str:
    """Percent tree of *node*, scoped like the trace's processes.

    Buckets below *min_pct* percent of the root's cycles are elided
    (the ``drain`` residual is always shown).
    """
    lines = [f"{'scope / bucket':<32} {'cycles':>10}  {'share':>7}",
             "-" * 52]
    _render_node(node, node.cycles, 0, lines, min_pct)
    return "\n".join(lines)
