"""Per-core issue tracing and dual-issue timeline rendering.

This is the successor of ``repro.sim.trace`` (which now re-exports
from here with a deprecation warning).  Enable with
:meth:`Machine.enable_trace` — or, for whole hierarchies,
:meth:`ClusterMachine.enable_trace` / :meth:`SocMachine.enable_trace`
— before running; every issue event (integer core, FP dispatch, FPSS
issue, sequencer replay) is recorded with its cycle.
:func:`render_timeline` draws the two issue engines as parallel
lanes — the overlap the whole paper is about becomes directly
visible:

    cycle     INT lane            FP lane
      112     addi                fmadd.d   <- sequencer
      113     lw                  fmul.d    <- sequencer
      ...

Tracing costs one branch per instruction when disabled and is off by
default.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One issue event.

    Attributes:
        engine: ``int`` (integer core), ``fp`` (FPSS issue).
        cycle: Issue cycle on that engine's timeline.
        mnemonic: Instruction mnemonic.
        pc: Static instruction index (None for sequencer replays).
        sequencer: True when the FPSS issue came from the FREP buffer.
    """

    engine: str
    cycle: int
    mnemonic: str
    pc: int | None = None
    sequencer: bool = False


def _fit(cell: str, width: int) -> str:
    """Pad *cell* to *width*; mark (never silently drop) overflow."""
    if len(cell) > width:
        return cell[: max(width - 1, 0)] + "~"
    return f"{cell:<{width}}"


def render_timeline(events: list[TraceEvent], start: int = 0,
                    end: int | None = None, width: int = 18,
                    show_pc: bool = False) -> str:
    """Render both issue lanes side by side for cycles [start, end).

    Cycles where neither engine issues are elided with a ``...`` row —
    including a trailing one when the window ends inside a gap.  With
    ``show_pc=True`` each mnemonic carries its static instruction
    index as ``#pc`` (sequencer replays have none).  Cells longer than
    *width* are marked with a ``~`` instead of silently truncated.
    """
    if end is None:
        end = max((e.cycle for e in events), default=0) + 1
    int_lane: dict[int, str] = {}
    fp_lane: dict[int, str] = {}
    for event in events:
        if not start <= event.cycle < end:
            continue
        cell = event.mnemonic
        if show_pc and event.pc is not None and event.pc >= 0:
            cell += f" #{event.pc}"
        if event.engine == "int":
            int_lane[event.cycle] = cell
        else:
            suffix = "  <seq" if event.sequencer else ""
            fp_lane[event.cycle] = cell + suffix
    lines = [f"{'cycle':>7}  {'integer core':<{width}} {'FPSS':<{width}}"]
    lines.append("-" * (9 + 2 * width))
    gap = False
    for cycle in range(start, end):
        int_op = int_lane.get(cycle)
        fp_op = fp_lane.get(cycle)
        if int_op is None and fp_op is None:
            gap = True
            continue
        if gap:
            lines.append(f"{'...':>7}")
            gap = False
        lines.append(f"{cycle:>7}  {_fit(int_op or '', width)} "
                     f"{_fit(fp_op or '', width)}")
    if gap:
        lines.append(f"{'...':>7}")
    return "\n".join(lines)


def dual_issue_cycles(events: list[TraceEvent]) -> int:
    """Number of cycles where both engines issued an instruction."""
    int_cycles = {e.cycle for e in events if e.engine == "int"}
    fp_cycles = {e.cycle for e in events if e.engine == "fp"}
    return len(int_cycles & fp_cycles)


def lane_utilization(events: list[TraceEvent],
                     cycles: int) -> tuple[float, float]:
    """(integer, FP) issue-slot utilization over *cycles*."""
    if cycles == 0:
        return (0.0, 0.0)
    int_count = sum(1 for e in events if e.engine == "int")
    fp_count = sum(1 for e in events if e.engine == "fp")
    return (int_count / cycles, fp_count / cycles)
