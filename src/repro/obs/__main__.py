"""Validate a Chrome trace-event JSON file::

    python -m repro.obs validate trace.json

Exit status 0 when the file satisfies the trace-event schema
(:func:`repro.obs.trace.validate_chrome_trace`); 1 with the violation
printed otherwise.  CI runs this against the sample trace artifact.
"""

from __future__ import annotations

import json
import sys

from .trace import validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2 or argv[0] != "validate":
        print("usage: python -m repro.obs validate TRACE.json",
              file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path) as handle:
            data = json.load(handle)
        count = validate_chrome_trace(data)
    except (OSError, ValueError) as exc:
        print(f"invalid trace {path}: {exc}", file=sys.stderr)
        return 1
    print(f"ok: {path} ({count} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
