"""Structured observability events and the nullable collection sink.

Every timing model in the hierarchy — the two issue engines of a core,
the banked-TCDM arbiter, the unified transfer engine, the SoC
interconnect, barriers, the shared L2 — reports what it did through one
:class:`ObsSink`.  Producers hold a *nullable* reference to the sink
(``None`` when observability is off) and guard each emission with a
single ``is not None`` check, so the disabled cost is one branch per
modelled event and zero allocations.

Events are plain records tagged with a **hierarchical scope** (the
process-like container: ``soc``, ``soc/cluster1``,
``cluster0/core3``) and a **lane** (the thread-like track inside it:
``int``, ``fp``, ``bank7``, ``dma``, ``link0``, ``l2``, ``barrier``).
The Chrome-trace exporter (:mod:`repro.obs.trace`) maps scopes to
processes and lanes to threads; the cycle-attribution profiler
(:mod:`repro.obs.profile`) uses the same scope names, so traces and
profiles line up.

This module imports nothing from the rest of the repo (the simulator
imports *it*), which is what lets one layer observe every other
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ObsEvent:
    """One observed occurrence on a scope's lane.

    Attributes:
        scope: Hierarchical container, e.g. ``soc/cluster0/core2``.
        lane: Track within the scope, e.g. ``int`` / ``bank3`` /
            ``link1``.
        name: What happened (mnemonic, ``dma.read``, ``barrier``, ...).
        ts: Start cycle.
        dur: Duration in cycles (0 for instantaneous marks).
        cat: Category for trace-viewer filtering (``issue``, ``tcdm``,
            ``dma``, ``link``, ``barrier``, ``l2``).
        args: Optional extra payload shown by trace viewers.
        flow: Flow-arrow id linking a cause to its effect (the
            ``dma.start`` issue to the transfer's completion), or None.
        flow_phase: ``"s"`` (flow start) / ``"f"`` (flow finish) when
            *flow* is set.
    """

    scope: str
    lane: str
    name: str
    ts: int
    dur: int = 0
    cat: str = ""
    args: dict | None = None
    flow: int | None = None
    flow_phase: str | None = None


@dataclass
class ObsSink:
    """Append-only event collector shared by every instrumented model.

    One sink observes a whole machine hierarchy: the SoC, its
    clusters, their cores, banks and links all emit into the same
    list, in simulation order — which is deterministic, so two runs of
    the same workload produce byte-identical event streams.
    """

    events: list[ObsEvent] = field(default_factory=list)
    _flow: int = 0

    def emit(self, scope: str, lane: str, name: str, ts: int,
             dur: int = 0, cat: str = "", args: dict | None = None,
             flow: int | None = None,
             flow_phase: str | None = None) -> None:
        """Record one event (see :class:`ObsEvent` for the fields)."""
        self.events.append(ObsEvent(scope, lane, name, ts, dur, cat,
                                    args, flow, flow_phase))

    def next_flow(self) -> int:
        """A fresh flow-arrow id (deterministic: a plain counter)."""
        self._flow += 1
        return self._flow

    def scopes(self) -> list[str]:
        """Every scope that emitted, sorted."""
        return sorted({e.scope for e in self.events})

    def lanes(self, scope: str) -> list[str]:
        """Every lane of *scope* that emitted, sorted."""
        return sorted({e.lane for e in self.events if e.scope == scope})

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()
        self._flow = 0
