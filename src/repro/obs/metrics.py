"""Named metrics extracted uniformly from any run record.

The repo's artifacts each pick their own columns out of a
``RunRecord``; the registry here is the one place that names a metric
once — extraction rule, unit, one-line help — so traces, profiles and
tables all agree on what, say, ``tcdm.conflict_cycles`` means.

Records are duck-typed: anything with the ``RunRecord`` surface
(``cycles``, ``ipc``, a ``counters`` dict, optional ``cluster`` /
``soc`` detail blocks, a ``power`` report) works, and a metric whose
inputs are absent (e.g. link stalls on a core-only run) simply
yields ``None`` and is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: Metric kinds a registry accepts.  ``counter`` and ``gauge`` yield
#: scalars; ``histogram`` extracts yield a :class:`Histogram`, which
#: :meth:`MetricsRegistry.collect` flattens into ``.count``/``.p50``/
#: ``.p95``/``.p99`` scalar entries so tables and payloads stay flat.
METRIC_KINDS = ("counter", "gauge", "histogram")


class Histogram:
    """Sample accumulator: log-spaced buckets + exact tail percentiles.

    Two views over one stream of non-negative integer samples
    (latencies in cycles, sizes in bytes):

    * fixed log-spaced **buckets** — sample *v* lands in the bucket
      with upper edge ``2**v.bit_length()`` (0 gets its own bucket),
      so the bucket list is bounded (~64 entries) no matter how many
      samples arrive;
    * **retained samples** under :attr:`sample_cap`, giving *exact*
      p50/p95/p99 as long as the count stays under the cap.  Beyond
      the cap new samples still update count/sum/min/max and the
      buckets, and percentiles degrade to the bucket upper edge —
      conservative (never under-reports a latency) and still
      deterministic.

    Merging (:meth:`merge`) is order-sensitive only in the retained
    list's order; callers that need bit-identical results across a
    sharded run merge shards in a fixed order, exactly like every
    other sharded payload in the repo.
    """

    #: Retained samples stop growing past this; percentiles switch to
    #: the bucket view.  2^16 samples ≈ 512 KiB of ints — small enough
    #: to keep per-class, large enough that every shipped scenario
    #: stays exact.
    DEFAULT_SAMPLE_CAP = 1 << 16

    def __init__(self, sample_cap: int = DEFAULT_SAMPLE_CAP) -> None:
        if sample_cap < 1:
            raise ValueError(
                f"sample_cap must be >= 1, got {sample_cap}")
        self.sample_cap = sample_cap
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None
        #: bucket upper edge (power of two, or 0) -> sample count.
        self.buckets: dict[int, int] = {}
        self._samples: list[int] = []

    @staticmethod
    def bucket_edge(value: int) -> int:
        """Upper edge of the log-spaced bucket *value* lands in."""
        return 0 if value == 0 else 1 << value.bit_length()

    def record(self, value: int) -> None:
        """Add one sample (a non-negative integer)."""
        if value < 0:
            raise ValueError(
                f"histogram samples must be >= 0, got {value}")
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        edge = self.bucket_edge(value)
        self.buckets[edge] = self.buckets.get(edge, 0) + 1
        if len(self._samples) < self.sample_cap:
            self._samples.append(value)

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s samples into this histogram."""
        self.count += other.count
        self.sum += other.sum
        for bound in ("min", "max"):
            theirs = getattr(other, bound)
            if theirs is not None:
                mine = getattr(self, bound)
                pick = min if bound == "min" else max
                setattr(self, bound,
                        theirs if mine is None else pick(mine, theirs))
        for edge, n in other.buckets.items():
            self.buckets[edge] = self.buckets.get(edge, 0) + n
        room = self.sample_cap - len(self._samples)
        if room > 0:
            self._samples.extend(other._samples[:room])

    @property
    def exact(self) -> bool:
        """Whether percentiles are exact (every sample retained)."""
        return self.count == len(self._samples)

    def percentile(self, q: float) -> int | None:
        """The *q*-quantile (exact under the cap; bucket edge above).

        Exact means the nearest-rank quantile of the full sample set:
        the ``ceil(q * n)``-th smallest sample.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        # Nearest-rank in pure integer arithmetic: quantiles are
        # expressed in basis points so ceil(q * n) cannot pick up
        # float error (0.95 is not exact in binary).
        rank = max(-(-round(q * 10_000) * self.count // 10_000), 1)
        if self.exact:
            ordered = sorted(self._samples)
            return ordered[rank - 1]
        seen = 0
        for edge in sorted(self.buckets):
            seen += self.buckets[edge]
            if seen >= rank:
                return edge
        return self.max

    @property
    def p50(self) -> int | None:
        return self.percentile(0.50)

    @property
    def p95(self) -> int | None:
        return self.percentile(0.95)

    @property
    def p99(self) -> int | None:
        return self.percentile(0.99)

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def to_json(self) -> dict:
        """Stable summary: scalars + the sorted bucket list."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "exact": self.exact,
            "buckets": [[edge, self.buckets[edge]]
                        for edge in sorted(self.buckets)],
        }


@dataclass(frozen=True)
class Metric:
    """One named measurement extractable from a run record.

    Attributes:
        name: Dotted identifier, e.g. ``tcdm.conflict_cycles``.
        unit: Display unit (``cycles``, ``insn/cycle``, ``bytes``,
            ``mW``, ...).
        help: One-line meaning.
        extract: ``record -> value`` callable; return None when the
            record has no such measurement (metric is skipped).  For
            ``histogram`` metrics the callable returns a
            :class:`Histogram` (or None).
        kind: One of :data:`METRIC_KINDS`.  ``counter``/``gauge`` are
            scalars (the distinction is documentation: counters only
            grow); ``histogram`` values are flattened by
            :meth:`MetricsRegistry.collect`.
    """

    name: str
    unit: str
    help: str
    extract: Callable
    kind: str = "gauge"

    def __post_init__(self) -> None:
        if self.kind not in METRIC_KINDS:
            raise ValueError(
                f"metric {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {METRIC_KINDS}"
            )


def _counter(name: str):
    return lambda r: r.counters.get(name)


def _stall_total(record):
    total = 0
    for key, value in record.counters.items():
        if key.startswith(("stall_", "fp_stall_")):
            total += value
    return total


def _cluster(attr: str):
    return lambda r: (getattr(r.cluster, attr)
                      if getattr(r, "cluster", None) else None)


def _soc(attr: str):
    def extract(record):
        detail = getattr(record, "soc", None)
        if detail is None:
            return None
        value = getattr(detail, attr)
        return sum(value) if isinstance(value, tuple) else value
    return extract


DEFAULT_METRICS: tuple[Metric, ...] = (
    Metric("cycles", "cycles", "main-region makespan",
           lambda r: r.cycles),
    Metric("ipc", "insn/cycle",
           "issued instructions per cycle, both engines",
           lambda r: r.ipc),
    Metric("issue.int", "insn", "integer-core issues",
           _counter("int_issued")),
    Metric("issue.fp", "insn", "FPSS issues (incl. FREP replays)",
           _counter("fp_issued")),
    Metric("issue.sequencer", "insn", "FREP sequencer replays",
           _counter("sequencer_issued")),
    Metric("stall.total", "cycles",
           "every stall class on both engines", _stall_total),
    Metric("stall.tcdm", "cycles", "integer-LSU bank conflicts",
           _counter("stall_tcdm")),
    Metric("stall.barrier", "cycles", "cluster barrier waits",
           _counter("stall_barrier")),
    Metric("stall.dma", "cycles", "dma.wait fence stalls",
           _counter("stall_dma")),
    Metric("tcdm.conflict_cycles", "cycles",
           "banked-TCDM arbitration stalls, all cores",
           _cluster("tcdm_conflict_cycles")),
    Metric("dma.bytes", "bytes", "DMA traffic, both directions",
           _cluster("dma_bytes")),
    Metric("dma.busy_cycles", "cycles", "DMA engine occupancy",
           _cluster("dma_busy_cycles")),
    Metric("link.beats", "beats", "L2-link beats granted, all links",
           _soc("link_beats")),
    Metric("link.stall_cycles", "cycles",
           "L2-link arbitration stalls, all links",
           _soc("link_stall_cycles")),
    Metric("l2.bytes", "bytes", "L2 traffic, both directions",
           lambda r: ((r.soc.l2_bytes_read + r.soc.l2_bytes_written)
                      if getattr(r, "soc", None) else None)),
    Metric("power.mw", "mW", "average power over the main region",
           lambda r: r.power_mw),
    Metric("energy.pj_per_elem", "pJ/elem",
           "main-region energy per output element",
           lambda r: r.energy_pj / r.n if r.n else None),
)


@dataclass
class MetricsRegistry:
    """An ordered, name-unique collection of :class:`Metric`."""

    metrics: list[Metric] = field(default_factory=list)

    @classmethod
    def default(cls) -> "MetricsRegistry":
        return cls(metrics=list(DEFAULT_METRICS))

    def register(self, metric: Metric) -> None:
        if any(m.name == metric.name for m in self.metrics):
            raise ValueError(f"duplicate metric {metric.name!r}")
        self.metrics.append(metric)

    def register_many(self, metrics) -> None:
        """Register several metrics, same duplicate rules as one."""
        for metric in metrics:
            self.register(metric)

    def collect(self, record) -> dict:
        """Extract every applicable metric from *record*, in order.

        Histogram-kind metrics flatten into scalar entries —
        ``name.count`` plus ``name.p50``/``.p95``/``.p99`` — so the
        result is a flat name->number dict regardless of metric kind.
        """
        out: dict = {}
        for metric in self.metrics:
            value = metric.extract(record)
            if value is None:
                continue
            if isinstance(value, Histogram):
                out[f"{metric.name}.count"] = value.count
                for tail in ("p50", "p95", "p99"):
                    quantile = getattr(value, tail)
                    if quantile is not None:
                        out[f"{metric.name}.{tail}"] = quantile
            else:
                out[metric.name] = value
        return out

    def render(self, record) -> str:
        """Aligned metric table for *record*."""
        units = {m.name: m.unit for m in self.metrics}
        rows = self.collect(record)
        lines = [f"{'metric':<24} {'value':>14}  unit",
                 "-" * 48]
        for name, value in rows.items():
            shown = f"{value:.4f}" if isinstance(value, float) \
                else str(value)
            unit = units.get(name)
            if unit is None:
                # A histogram's flattened entries share its unit
                # (counts are dimensionless).
                base, _, tail = name.rpartition(".")
                unit = "samples" if tail == "count" \
                    else units.get(base, "")
            lines.append(f"{name:<24} {shown:>14}  {unit}")
        return "\n".join(lines)
