"""Named metrics extracted uniformly from any run record.

The repo's artifacts each pick their own columns out of a
``RunRecord``; the registry here is the one place that names a metric
once — extraction rule, unit, one-line help — so traces, profiles and
tables all agree on what, say, ``tcdm.conflict_cycles`` means.

Records are duck-typed: anything with the ``RunRecord`` surface
(``cycles``, ``ipc``, a ``counters`` dict, optional ``cluster`` /
``soc`` detail blocks, a ``power`` report) works, and a metric whose
inputs are absent (e.g. link stalls on a core-only run) simply
yields ``None`` and is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Metric:
    """One named measurement extractable from a run record.

    Attributes:
        name: Dotted identifier, e.g. ``tcdm.conflict_cycles``.
        unit: Display unit (``cycles``, ``insn/cycle``, ``bytes``,
            ``mW``, ...).
        help: One-line meaning.
        extract: ``record -> value`` callable; return None when the
            record has no such measurement (metric is skipped).
    """

    name: str
    unit: str
    help: str
    extract: Callable


def _counter(name: str):
    return lambda r: r.counters.get(name)


def _stall_total(record):
    total = 0
    for key, value in record.counters.items():
        if key.startswith(("stall_", "fp_stall_")):
            total += value
    return total


def _cluster(attr: str):
    return lambda r: (getattr(r.cluster, attr)
                      if getattr(r, "cluster", None) else None)


def _soc(attr: str):
    def extract(record):
        detail = getattr(record, "soc", None)
        if detail is None:
            return None
        value = getattr(detail, attr)
        return sum(value) if isinstance(value, tuple) else value
    return extract


DEFAULT_METRICS: tuple[Metric, ...] = (
    Metric("cycles", "cycles", "main-region makespan",
           lambda r: r.cycles),
    Metric("ipc", "insn/cycle",
           "issued instructions per cycle, both engines",
           lambda r: r.ipc),
    Metric("issue.int", "insn", "integer-core issues",
           _counter("int_issued")),
    Metric("issue.fp", "insn", "FPSS issues (incl. FREP replays)",
           _counter("fp_issued")),
    Metric("issue.sequencer", "insn", "FREP sequencer replays",
           _counter("sequencer_issued")),
    Metric("stall.total", "cycles",
           "every stall class on both engines", _stall_total),
    Metric("stall.tcdm", "cycles", "integer-LSU bank conflicts",
           _counter("stall_tcdm")),
    Metric("stall.barrier", "cycles", "cluster barrier waits",
           _counter("stall_barrier")),
    Metric("stall.dma", "cycles", "dma.wait fence stalls",
           _counter("stall_dma")),
    Metric("tcdm.conflict_cycles", "cycles",
           "banked-TCDM arbitration stalls, all cores",
           _cluster("tcdm_conflict_cycles")),
    Metric("dma.bytes", "bytes", "DMA traffic, both directions",
           _cluster("dma_bytes")),
    Metric("dma.busy_cycles", "cycles", "DMA engine occupancy",
           _cluster("dma_busy_cycles")),
    Metric("link.beats", "beats", "L2-link beats granted, all links",
           _soc("link_beats")),
    Metric("link.stall_cycles", "cycles",
           "L2-link arbitration stalls, all links",
           _soc("link_stall_cycles")),
    Metric("l2.bytes", "bytes", "L2 traffic, both directions",
           lambda r: ((r.soc.l2_bytes_read + r.soc.l2_bytes_written)
                      if getattr(r, "soc", None) else None)),
    Metric("power.mw", "mW", "average power over the main region",
           lambda r: r.power_mw),
    Metric("energy.pj_per_elem", "pJ/elem",
           "main-region energy per output element",
           lambda r: r.energy_pj / r.n if r.n else None),
)


@dataclass
class MetricsRegistry:
    """An ordered, name-unique collection of :class:`Metric`."""

    metrics: list[Metric] = field(default_factory=list)

    @classmethod
    def default(cls) -> "MetricsRegistry":
        return cls(metrics=list(DEFAULT_METRICS))

    def register(self, metric: Metric) -> None:
        if any(m.name == metric.name for m in self.metrics):
            raise ValueError(f"duplicate metric {metric.name!r}")
        self.metrics.append(metric)

    def register_many(self, metrics) -> None:
        """Register several metrics, same duplicate rules as one."""
        for metric in metrics:
            self.register(metric)

    def collect(self, record) -> dict:
        """Extract every applicable metric from *record*, in order."""
        out: dict = {}
        for metric in self.metrics:
            value = metric.extract(record)
            if value is not None:
                out[metric.name] = value
        return out

    def render(self, record) -> str:
        """Aligned metric table for *record*."""
        units = {m.name: m.unit for m in self.metrics}
        rows = self.collect(record)
        lines = [f"{'metric':<24} {'value':>14}  unit",
                 "-" * 48]
        for name, value in rows.items():
            shown = f"{value:.4f}" if isinstance(value, float) \
                else str(value)
            lines.append(f"{name:<24} {shown:>14}  {units[name]}")
        return "\n".join(lines)
