"""Unified observability: tracing, profiles and metrics for every layer.

One instrumentation layer spans the whole machine hierarchy:

* :class:`ObsSink` collects structured :class:`ObsEvent` records from
  every timing model — integer/FP issue, TCDM bank grants and
  conflicts, ``TransferEngine`` transfers, SoC interconnect link
  grants, barriers, DMA fences, L2 traffic — tagged with hierarchical
  scopes (``soc/cluster{c}/core{k}``, ``bank{b}``, ``link{l}``).
  Attach one with ``Machine.attach_obs`` /
  ``ClusterMachine.attach_obs`` / ``SocMachine.attach_obs``, or pass
  ``--trace out.json`` to any eval artifact.
* :func:`chrome_trace` / :func:`write_chrome_trace` export a sink as
  Chrome/Perfetto trace-event JSON (open in https://ui.perfetto.dev
  or ``chrome://tracing``); :func:`validate_chrome_trace` checks the
  schema.
* :func:`core_profile` / :func:`aggregate_profile` /
  :func:`render_profile` derive the deterministic top-down
  cycle-attribution tree (``--profile``; embedded in ``RunRecord``
  schema v4).
* :class:`MetricsRegistry` names the derived measurements every
  artifact shares.
* :class:`TraceEvent` / :func:`render_timeline` are the per-core
  issue timeline formerly in ``repro.sim.trace`` (now a deprecated
  shim over this package).

Everything here is import-cycle-free by design: no module under
``repro.obs`` imports from the rest of the repo.
"""

from .events import ObsEvent, ObsSink
from .metrics import (
    DEFAULT_METRICS,
    METRIC_KINDS,
    Histogram,
    Metric,
    MetricsRegistry,
)
from .profile import (
    ProfileNode,
    aggregate_profile,
    core_profile,
    render_profile,
)
from .timeline import (
    TraceEvent,
    dual_issue_cycles,
    lane_utilization,
    render_timeline,
)
from .trace import chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "DEFAULT_METRICS",
    "METRIC_KINDS",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "ObsEvent",
    "ObsSink",
    "ProfileNode",
    "TraceEvent",
    "aggregate_profile",
    "chrome_trace",
    "core_profile",
    "dual_issue_cycles",
    "lane_utilization",
    "render_profile",
    "render_timeline",
    "validate_chrome_trace",
    "write_chrome_trace",
]
