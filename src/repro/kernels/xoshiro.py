"""xoshiro128+ PRNG on RV32 (integer thread).

Blackman & Vigna's xoshiro128+ with 4×32-bit state.  Each output is the
sum of two state words followed by the xor-shift state update and an
11-bit rotate — all single-cycle ALU operations, so unlike the LCG the
xoshiro kernels have *no* multiply writeback-port hazards (which is why
the paper's xoshiro kernels track their expected IPC more closely).

Each Monte Carlo sample draws two outputs (x and y coordinates), making
xoshiro the most integer-heavy kernel pair in Table I.
"""

from __future__ import annotations

from ..isa.program import ProgramBuilder

#: State registers (s8..s11 = s[0]..s[3]); callers must not clobber.
STATE_REGS = ("s8", "s9", "s10", "s11")

#: Integer instructions emitted per 32-bit output.
STEP_INSTRUCTIONS = 11


def emit_init(b: ProgramBuilder, seed: int) -> None:
    """Load a non-degenerate 128-bit state derived from *seed*."""
    state = reference_init(seed)
    for reg, word in zip(STATE_REGS, state):
        b.li(reg, word)


def emit_step(b: ProgramBuilder, out_reg: str, tmp: str = "t3",
              tmp2: str = "t4", tmp3: str = "t5") -> None:
    """One xoshiro128+ output into *out_reg* (11 instructions)."""
    s0, s1, s2, s3 = STATE_REGS
    b.add(out_reg, s0, s3)        # result = s0 + s3
    b.slli(tmp, s1, 9)            # t = s1 << 9
    b.xor(s2, s2, s0)             # s2 ^= s0
    b.xor(s3, s3, s1)             # s3 ^= s1
    b.xor(s1, s1, s2)             # s1 ^= s2
    b.xor(s0, s0, s3)             # s0 ^= s3
    b.xor(s2, s2, tmp)            # s2 ^= t
    b.slli(tmp2, s3, 11)          # s3 = rotl(s3, 11)
    b.srli(tmp3, s3, 21)
    b.emit("or", s3, tmp2, tmp3)


def reference_init(seed: int) -> tuple[int, int, int, int]:
    """SplitMix-style state expansion, mirrored exactly in Python."""
    mask = 0xFFFFFFFF
    z = seed & mask
    words = []
    for _ in range(4):
        z = (z + 0x9E3779B9) & mask
        w = z
        w = ((w ^ (w >> 16)) * 0x85EBCA6B) & mask
        w = ((w ^ (w >> 13)) * 0xC2B2AE35) & mask
        w ^= w >> 16
        words.append(w)
    if not any(words):
        words[0] = 1  # the all-zero state is invalid
    return tuple(words)


def reference_sequence(seed: int, n_outputs: int) -> list[int]:
    """Python mirror of *n_outputs* consecutive outputs."""
    mask = 0xFFFFFFFF
    s = list(reference_init(seed))
    outputs = []
    for _ in range(n_outputs):
        outputs.append((s[0] + s[3]) & mask)
        t = (s[1] << 9) & mask
        s[2] ^= s[0]
        s[3] ^= s[1]
        s[1] ^= s[2]
        s[0] ^= s[3]
        s[2] ^= t
        s[3] = ((s[3] << 11) | (s[3] >> 21)) & mask
    return outputs
