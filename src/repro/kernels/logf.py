"""The ``logf`` kernel: vector logarithm with an ISSR-mapped table.

glibc-style table-driven log.  For each element ``x``:

1. the **integer thread** dissects the IEEE-754 bits (high word only —
   f32-grade accuracy, like the glibc ``logf`` this reproduces):
   exponent ``k = (hi >> 20) - 1023``, table index ``i`` from the top
   four mantissa bits, and the normalized significand ``z ∈ [1, 2)``
   rebuilt by substituting the exponent field;
2. the **FP thread** looks up ``(invc, logc) = T[i]`` (``c`` anchors the
   middle of mantissa bucket ``i``), computes the residual
   ``r = z*invc - 1`` (|r| ≤ 1/32) and evaluates
   ``log(x) = k·ln2 + logc + r + r²·poly(r)``.

The table lookup address is data-dependent — a **Type 1** dynamic memory
dependency.  Per Table I footnote ‡, the COPIFT variant maps it onto an
**ISSR**: the integer thread emits a stream of table-entry indices
(``2i`` and ``2i+1`` for the invc/logc halves) and the ISSR gathers
``T[idx]`` in hardware into ``ft1``.  The exponent crosses into the FP
thread via the spilled ``k`` slot and the ``cfcvt.d.w`` COPIFT extension
(footnote *).  This kernel has only two phases (INT → FP), so the
software pipeline is a double-buffered two-column rotation.
"""

from __future__ import annotations

import math

import numpy as np

from ..isa.program import ProgramBuilder
from ..sim import Allocator, Memory
from ..sim.ssr import (
    F_BOUND0, F_BOUND1, F_IDX_BASE, F_IDX_CFG, F_RPTR, F_STATUS,
    F_STRIDE0, F_STRIDE1, F_WPTR, encode_cfg_imm,
)
from .common import KernelInstance, load_f64_constants

#: 16-entry table over the mantissa interval [1, 2).
TABLE_BITS = 4
N_TABLE = 1 << TABLE_BITS

LN2 = math.log(2.0)

#: log(1+r) = r + r^2 * (A0 + A1 r + A2 r + A3 r^3), |r| <= 1/32.
A = (-0.5, 1.0 / 3.0, -0.25, 0.2)

_ONE_HI = 0x3FF00000


def log_table() -> np.ndarray:
    """Interleaved (invc, logc) pairs, c = bucket midpoints."""
    rows = []
    for i in range(N_TABLE):
        c = 1.0 + (i + 0.5) / N_TABLE
        rows.extend((1.0 / c, math.log(c)))
    return np.array(rows, dtype=np.float64)


def reference_log(x: np.ndarray) -> np.ndarray:
    return np.log(x)


def default_inputs(n: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.01, 100.0, size=n)


def _verify(memory: Memory, y_addr: int, x: np.ndarray) -> None:
    y = memory.read_array(y_addr, np.float64, len(x))
    # f32-grade accuracy: the mantissa is truncated to the high word.
    np.testing.assert_allclose(y, reference_log(x), rtol=0, atol=1e-5)


_CONSTS = {
    "ft3": LN2,
    "ft4": 1.0,
    "ft5": A[0],
    "ft6": A[1],
    "ft7": A[2],
    "ft8": A[3],
}


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def build_baseline(n: int, seed: int = 11) -> KernelInstance:
    """RV32G baseline: dissection + direct fld lookups, 4-way unrolled."""
    if n % 4 != 0:
        raise ValueError("n must be a multiple of 4")
    memory = Memory()
    alloc = Allocator(memory)
    x = default_inputs(n, seed)
    x_addr = alloc.alloc_array("x", x)
    y_addr = alloc.alloc("y", 8 * n)
    t_addr = alloc.alloc_array("T", log_table())
    z_buf = alloc.alloc("z", 8 * 4)  # lo words stay zero

    b = ProgramBuilder("logf_baseline")
    load_f64_constants(b, alloc, _CONSTS)
    b.li("a0", x_addr)
    b.li("a1", y_addr)
    b.li("a2", x_addr + 8 * n)
    b.li("a5", t_addr)
    b.li("a7", z_buf)
    b.lui("s10", _ONE_HI >> 12)     # exponent-substitution constant

    b.mark("main_start")
    b.label("loop")
    # Integer stage: dissect four elements; k in s4..s7, &T[i] in s0..s3.
    for u in range(4):
        b.lw("t3", 8 * u + 4, "a0")           # hi word of x
        b.srli("t4", "t3", 20)
        b.addi(f"s{4 + u}", "t4", -1023)      # k
        b.srli("t5", "t3", 16)
        b.andi("t5", "t5", N_TABLE - 1)
        b.slli("t5", "t5", 4)                 # 16-byte entries
        b.add(f"s{u}", "a5", "t5")            # &T[i]
        b.slli("t3", "t3", 12)
        b.srli("t3", "t3", 12)                # mantissa bits
        b.emit("or", "t3", "t3", "s10")       # exponent := 1023
        b.sw("t3", 8 * u + 4, "a7")           # z hi word
    # FP stage, list-scheduled across the four elements.
    for u in range(4):
        b.fld(f"fa{u}", 8 * u, "a7")          # z
    for u in range(4):
        b.fld(f"fs{u}", 0, f"s{u}")           # invc  (Type 1 address)
    for u in range(4):
        b.fld(f"fs{4 + u}", 8, f"s{u}")       # logc
    for u in range(4):
        b.fmsub_d(f"fa{u}", f"fa{u}", f"fs{u}", "ft4")     # r
    for u in range(4):
        b.fcvt_d_w(f"fs{u}", f"s{4 + u}")     # k as double (Type 3)
    for u in range(4):
        b.fmadd_d(f"fs{u}", f"fs{u}", "ft3", f"fs{4 + u}")  # y0
    for u in range(4):
        b.fmadd_d(f"fs{4 + u}", "ft8", f"fa{u}", "ft7")    # q = A3 r+A2
    for u in range(4):
        b.fmadd_d(f"fs{4 + u}", f"fs{4 + u}", f"fa{u}", "ft6")
    for u in range(4):
        b.fmadd_d(f"fs{4 + u}", f"fs{4 + u}", f"fa{u}", "ft5")
    for u in range(4):
        b.fmul_d(f"fs{8 + u % 4}", f"fa{u}", f"fa{u}")     # r^2
    for u in range(4):
        b.fadd_d(f"fs{u}", f"fs{u}", f"fa{u}")             # y0 + r
    for u in range(4):
        b.fmadd_d(f"fa{u}", f"fs{4 + u}", f"fs{8 + u % 4}",
                  f"fs{u}")                                # y
    for u in range(4):
        b.fsd(f"fa{u}", 8 * u, "a1")
    b.addi("a0", "a0", 32)
    b.addi("a1", "a1", 32)
    b.bne("a0", "a2", "loop")
    b.mark("main_end")

    return KernelInstance(
        name="logf", variant="baseline", program=b.build(),
        memory=memory, n=n, block=None,
        dma_active=True, dma_bytes=16 * n,
        verify=lambda mem, machine: _verify(mem, y_addr, x),
        notes={"x_addr": x_addr, "y_addr": y_addr, "inputs": x,
               "out_region": (y_addr, 8 * n)},
    )


# ---------------------------------------------------------------------------
# COPIFT
# ---------------------------------------------------------------------------

def _emit_fp_phase(b: ProgramBuilder) -> None:
    """FP phase for one element (9 instructions, Table I #FP = 36).

    Pops: z (ft0), invc (ft1/ISSR), k (ft0), logc (ft1/ISSR);
    pushes y (ft2).
    """
    b.fmsub_d("fa2", "ft0", "ft1", "ft4")        # r = z*invc - 1
    b.cfcvt_d_w("fa0", "ft0")                    # k (COPIFT custom-1)
    b.fmadd_d("fa1", "fa0", "ft3", "ft1")        # y0 = k ln2 + logc
    b.fmadd_d("fa3", "ft8", "fa2", "ft7")        # q = A3 r + A2
    b.fmadd_d("fa3", "fa3", "fa2", "ft6")
    b.fmul_d("fa4", "fa2", "fa2")                # r^2
    b.fmadd_d("fa3", "fa3", "fa2", "ft5")
    b.fadd_d("fa1", "fa1", "fa2")                # y0 + r
    b.fmadd_d("ft2", "fa3", "fa4", "fa1")        # y (push)


def build_copift(n: int, block: int = 64, seed: int = 11) -> KernelInstance:
    """COPIFT logf: 2 phases, double buffering, ISSR table gather."""
    if block % 4 != 0:
        raise ValueError("block must be a multiple of 4")
    if n % block != 0:
        raise ValueError("n must be a multiple of block")
    nb = n // block
    if nb < 2:
        raise ValueError("need at least 2 blocks")

    memory = Memory()
    alloc = Allocator(memory)
    x = default_inputs(n, seed)
    x_addr = alloc.alloc_array("x", x)
    y_addr = alloc.alloc("y", 8 * n)
    t_addr = alloc.alloc_array("T", log_table())
    # Two rotated columns x [z | ki | idx], each slot block*8 bytes
    # (the idx slot holds 2*block uint32 indices = block*8 bytes too).
    slot = 8 * block
    col_size = 3 * slot
    arena = alloc.alloc("arena", 2 * col_size)

    b = ProgramBuilder("logf_copift")
    load_f64_constants(b, alloc, _CONSTS)
    b.li("a0", x_addr)              # x block cursor
    b.li("a1", y_addr)              # y block cursor
    b.li("s2", arena)               # cw: column written this macro
    b.li("s3", arena + col_size)    # cr: column written last macro
    b.li("s5", block - 1)           # FREP reps - 1
    b.li("s6", t_addr)              # table base for the ISSR
    b.lui("s10", _ONE_HI >> 12)

    def cfg_imm(value: int, field: int, ssr: int) -> None:
        b.li("t0", value)
        b.scfgwi("t0", encode_cfg_imm(field, ssr))

    # Stream shapes are loop-invariant; only bases are re-armed per macro.
    # SSR0: fused (z, k) read - dims (2, block), strides (slot, 8).
    cfg_imm(2, F_STATUS, 0)
    cfg_imm(1, F_BOUND0, 0)
    cfg_imm(slot, F_STRIDE0, 0)
    cfg_imm(block - 1, F_BOUND1, 0)
    cfg_imm(8, F_STRIDE1, 0)
    # SSR1: ISSR gather of (invc, logc): 2*block u32 indices, T + idx*8.
    cfg_imm(1, F_STATUS, 1)
    cfg_imm(2 * block - 1, F_BOUND0, 1)
    cfg_imm(4, F_STRIDE0, 1)
    cfg_imm(4 | (3 << 3), F_IDX_CFG, 1)
    # SSR2: y write stream, 1-D contiguous.
    cfg_imm(1, F_STATUS, 2)
    cfg_imm(block - 1, F_BOUND0, 2)
    cfg_imm(8, F_STRIDE0, 2)

    def int_phase() -> None:
        """Dissect one block (59 instructions per 4 elements)."""
        b.mv("a6", "a0")                     # x cursor
        b.mv("a7", "s2")                     # column cursor
        b.addi("t2", "a0", slot)             # x bound
        loop = b.fresh_label("dissect")
        b.label(loop)
        for u in range(4):
            b.lw("t3", 8 * u + 4, "a6")
            b.srli("t4", "t3", 20)
            b.addi("t4", "t4", -1023)
            b.sw("t4", slot + 8 * u, "a7")   # k -> ki slot low word
            b.srli("t5", "t3", 16)
            b.andi("t5", "t5", N_TABLE - 1)
            b.slli("t5", "t5", 1)            # 2i
            b.sw("t5", 2 * slot + 8 * u, "a7")
            b.addi("t5", "t5", 1)
            b.sw("t5", 2 * slot + 8 * u + 4, "a7")
            b.slli("t3", "t3", 12)
            b.srli("t3", "t3", 12)
            b.emit("or", "t3", "t3", "s10")
            b.sw("t3", 8 * u + 4, "a7")      # z hi word (lo stays 0)
        b.addi("a6", "a6", 32)
        b.addi("a7", "a7", 32)
        b.bne("a6", "t2", loop)

    def arm_streams() -> None:
        """Point the streams at cr (producer column) and the y cursor."""
        b.scfgwi("s3", encode_cfg_imm(F_RPTR, 0))
        b.addi("t1", "s3", 2 * slot)
        b.scfgwi("t1", encode_cfg_imm(F_IDX_BASE, 1))
        b.scfgwi("s6", encode_cfg_imm(F_RPTR, 1))
        b.scfgwi("a1", encode_cfg_imm(F_WPTR, 2))

    def frep_fp_phase() -> None:
        scratch = ProgramBuilder()
        _emit_fp_phase(scratch)
        b.frep_o("s5", len(scratch._instructions))
        b.extend(scratch._instructions)

    def swap_columns() -> None:
        b.mv("t1", "s2")
        b.mv("s2", "s3")
        b.mv("s3", "t1")

    b.ssr_enable()
    b.mark("main_start")

    # Prologue: integer phase fills block 0; no FP work yet.
    int_phase()
    b.addi("a0", "a0", slot)
    swap_columns()

    # Steady macros 1 .. nb-1: FP phase (block j-1) + int phase (block j).
    if nb > 1:
        b.li("s7", nb - 1)
        b.label("steady")
        arm_streams()
        frep_fp_phase()
        int_phase()
        b.addi("a0", "a0", slot)
        b.addi("a1", "a1", slot)
        swap_columns()
        b.addi("s7", "s7", -1)
        b.bnez("s7", "steady")

    # Epilogue: FP phase on the final block.
    arm_streams()
    frep_fp_phase()

    b.mark("main_end")
    b.ssr_disable()

    return KernelInstance(
        name="logf", variant="copift", program=b.build(),
        memory=memory, n=n, block=block,
        dma_active=True, dma_bytes=16 * n,
        verify=lambda mem, machine: _verify(mem, y_addr, x),
        notes={"x_addr": x_addr, "y_addr": y_addr, "inputs": x,
               "out_region": (y_addr, 8 * n)},
    )
