"""The ``expf`` kernel: vector exponential (paper Fig. 1, Table I row 1).

Implements the glibc-style table-driven exponential the paper extracts
its running example from: for each element,

1. ``z = x * 32/ln2``; ``kd = z + SHIFT`` rounds ``z`` to the integer
   ``k`` using the 1.5·2^52 shift trick (the add leaves ``k`` in the low
   mantissa bits of ``kd``);
2. the integer thread extracts ``k`` via an ``fsd``/``lw`` round trip,
   looks up ``T[k % 32]`` (bits of ``2^(j/32)``, pre-adjusted by
   ``-(j << 47)`` exactly as glibc's table is) and adds ``k << 15`` into
   the high word to build ``s = 2^(k/32)`` scaled by ``2^(k/32 >> 5)``;
3. the FP thread evaluates the cubic polynomial ``p ≈ 2^(r/32)`` for the
   rounding residual ``r = z - k`` and multiplies ``y = p * s``.

The *baseline* is the paper's 4-way-unrolled RV32G loop (43 integer + 52
FP instructions per iteration, matching Table I exactly); the *COPIFT*
variant applies all seven methodology steps: three phases, block tiling,
3-column rotated buffers, software pipelining, a 2-D fused read stream
(x, t), a 2-D fused write stream (ki, w, y), a w read stream, and a
single 10-instruction FREP body fusing FP phases 0 and 2.
"""

from __future__ import annotations

import math

import numpy as np

from ..isa.program import ProgramBuilder
from ..sim import Allocator, Memory
from ..sim.ssr import (
    F_BOUND0, F_BOUND1, F_RPTR, F_STATUS, F_STRIDE0, F_STRIDE1, F_WPTR,
    encode_cfg_imm,
)
from .common import KernelInstance, load_f64_constants

#: Table size: 2^5 entries, as in glibc's expf.
TABLE_BITS = 5
N_TABLE = 1 << TABLE_BITS

LN2 = math.log(2.0)
INV_LN2N = N_TABLE / LN2
SHIFT = 1.5 * 2.0 ** 52

#: Cubic polynomial for 2^(r/32), |r| <= 0.5 (Taylor in r*ln2/32).
C3 = 1.0
C2 = LN2 / N_TABLE
C1 = LN2 ** 2 / (2 * N_TABLE ** 2)
C0 = LN2 ** 3 / (6 * N_TABLE ** 3)


def exp_table() -> np.ndarray:
    """The 32-entry uint64 table, glibc-style ``-(j << 47)`` adjusted."""
    entries = []
    for j in range(N_TABLE):
        bits = np.float64(2.0 ** (j / N_TABLE)).view(np.uint64)
        entries.append((int(bits) - (j << 47)) & 0xFFFFFFFFFFFFFFFF)
    return np.array(entries, dtype=np.uint64)


def reference_exp(x: np.ndarray) -> np.ndarray:
    """Golden model (the kernel is accurate to ~1e-9 relative)."""
    return np.exp(x)


def default_inputs(n: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(-5.0, 5.0, size=n)


def _verify(memory: Memory, y_addr: int, x: np.ndarray) -> None:
    y = memory.read_array(y_addr, np.float64, len(x))
    expected = reference_exp(x)
    np.testing.assert_allclose(y, expected, rtol=1e-8)


_CONSTS = {
    "ft3": INV_LN2N,
    "ft4": SHIFT,
    "ft5": C0,
    "ft6": C1,
    "ft7": C2,
    "ft8": C3,
}


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def build_baseline(n: int, seed: int = 7) -> KernelInstance:
    """Snitch-optimized RV32G baseline: 4-way unrolled, list-scheduled."""
    if n % 4 != 0:
        raise ValueError("n must be a multiple of 4")
    memory = Memory()
    alloc = Allocator(memory)
    x = default_inputs(n, seed)
    x_addr = alloc.alloc_array("x", x)
    y_addr = alloc.alloc("y", 8 * n)
    t_addr = alloc.alloc_array("T", exp_table())
    ki_buf = alloc.alloc("ki", 8 * 4)
    t_buf = alloc.alloc("t", 8 * 4)

    b = ProgramBuilder("expf_baseline")
    load_f64_constants(b, alloc, _CONSTS)
    b.li("a0", x_addr)
    b.li("a1", y_addr)
    b.li("a2", x_addr + 8 * n)
    b.li("a5", t_addr)
    b.li("a6", ki_buf)
    b.li("a7", t_buf)

    b.mark("main_start")
    b.label("loop")
    # Stage A: z and kd for all four elements (FP).
    for u in range(4):
        z = f"fa{u}"
        kd = f"fs{u}"
        b.fld(z, 8 * u, "a0")
        b.fmul_d(z, "ft3", z)
        b.fadd_d(kd, z, "ft4")
        b.fsd(kd, 8 * u, "a6")
    # Stage B: integer extraction + table lookup (paper Fig. 1b, 5-14).
    for u in range(4):
        b.lw("t3", 8 * u, "a6")          # ki (low word of kd)
        b.andi("t4", "t3", N_TABLE - 1)
        b.slli("t4", "t4", 3)
        b.add("t4", "a5", "t4")
        b.lw("t5", 0, "t4")              # T_lo
        b.lw("t6", 4, "t4")              # T_hi
        b.slli("t3", "t3", 15)           # ki << 15
        b.add("t3", "t3", "t6")
        b.sw("t5", 8 * u, "a7")
        b.sw("t3", 8 * u + 4, "a7")
    # Stage C: residual, polynomial, scale (FP) — list-scheduled across
    # the four unroll units so dependent ops sit ≥ 4 issue slots apart
    # and the shallow FPU pipeline never stalls.
    def _regs(u: int) -> tuple[str, str, str, str, str]:
        return (f"fa{u}", f"fs{u}", f"fs{4 + u}", f"fa{4 + u}",
                f"fs{8 + u % 4}")

    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fsub_d(kd, kd, "ft4")          # k
    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fsub_d(z, z, kd)               # r = z - k
    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fmadd_d(kd, "ft5", z, "ft6")   # p1 = C0 r + C1
    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fmadd_d(p2, "ft7", z, "ft8")   # p2 = C2 r + C3
    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fmul_d(r2, z, z)
    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fld(s, 8 * u, "a7")            # s = 2^(k/32)
    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fmadd_d(kd, kd, r2, p2)        # p = p1 r2 + p2
    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fmul_d(kd, kd, s)              # y
    for u in range(4):
        z, kd, p2, r2, s = _regs(u)
        b.fsd(kd, 8 * u, "a1")
    b.addi("a0", "a0", 32)
    b.addi("a1", "a1", 32)
    b.bne("a0", "a2", "loop")
    b.mark("main_end")

    return KernelInstance(
        name="expf", variant="baseline", program=b.build(),
        memory=memory, n=n, block=None,
        dma_active=True, dma_bytes=16 * n,
        verify=lambda mem, machine: _verify(mem, y_addr, x),
        notes={"x_addr": x_addr, "y_addr": y_addr, "inputs": x,
               "out_region": (y_addr, 8 * n)},
    )


# ---------------------------------------------------------------------------
# COPIFT
# ---------------------------------------------------------------------------

def _emit_phase0(b: ProgramBuilder) -> None:
    """FP phase 0 for one element: z, kd (→ki stream), poly (→w stream).

    Instruction order minimizes the in-order issue critical path of the
    FREP body (the sequencer cannot interleave iterations, so the
    iteration's dependence chain bounds FP throughput): the ki push sits
    in the shadow of the k subtraction, and p1/p2/r² overlap.
    """
    b.fmul_d("fa3", "ft3", "ft0")        # z = InvLn2N * x     (pop x)
    b.fadd_d("fa1", "fa3", "ft4")        # kd (rounded)
    b.fsub_d("fa2", "fa1", "ft4")        # k
    b.fmv_d("ft1", "fa1")                # push kd -> ki
    b.fsub_d("fa3", "fa3", "fa2")        # r
    b.fmadd_d("fa2", "ft5", "fa3", "ft6")   # p1
    b.fmul_d("fa1", "fa3", "fa3")           # r2
    b.fmadd_d("fa4", "ft7", "fa3", "ft8")   # p2
    b.fmadd_d("ft1", "fa2", "fa1", "fa4")   # push w
    # 9 instructions


def _emit_phase2(b: ProgramBuilder) -> None:
    """FP phase 2 for one element: y = w * s (pops w, t; pushes y)."""
    b.fmul_d("ft1", "ft2", "ft0")
    # 1 instruction


def _emit_int_phase(b: ProgramBuilder, block: int) -> None:
    """Integer phase 1 over one block: extract k, build s into t slots.

    Expects a6 = ki read pointer, a7 = t write pointer, t2 = end bound.
    43 instructions per 4 elements — Table I's COPIFT #Int column.
    """
    loop = b.fresh_label("intphase")
    b.label(loop)
    for u in range(4):
        b.lw("t3", 8 * u, "a6")
        b.andi("t4", "t3", N_TABLE - 1)
        b.slli("t4", "t4", 3)
        b.add("t4", "a5", "t4")
        b.lw("t5", 0, "t4")
        b.lw("t6", 4, "t4")
        b.slli("t3", "t3", 15)
        b.add("t3", "t3", "t6")
        b.sw("t5", 8 * u, "a7")
        b.sw("t3", 8 * u + 4, "a7")
    b.addi("a6", "a6", 32)
    b.addi("a7", "a7", 32)
    b.bne("a6", "t2", loop)


def _cfg(b: ProgramBuilder, reg: str, field: int, ssr: int) -> None:
    b.scfgwi(reg, encode_cfg_imm(field, ssr))


def _cfg_imm(b: ProgramBuilder, value: int, field: int, ssr: int,
             scratch: str = "t0") -> None:
    b.li(scratch, value)
    _cfg(b, scratch, field, ssr)


def build_copift(n: int, block: int = 64, seed: int = 7) -> KernelInstance:
    """COPIFT-transformed expf (paper Fig. 1d-1j end state)."""
    if block % 4 != 0:
        raise ValueError("block must be a multiple of 4")
    if n % block != 0:
        raise ValueError("n must be a multiple of block")
    nb = n // block
    if nb < 3:
        raise ValueError("need at least 3 blocks for the 3-phase pipeline")

    memory = Memory()
    alloc = Allocator(memory)
    x = default_inputs(n, seed)
    x_addr = alloc.alloc_array("x", x)
    y_addr = alloc.alloc("y", 8 * n)
    t_addr = alloc.alloc_array("T", exp_table())
    # Rotated arena: 3 columns x [ki | w | y | t], each slot block*8 B.
    slot = 8 * block
    col_size = 4 * slot
    arena = alloc.alloc("arena", 3 * col_size)

    b = ProgramBuilder("expf_copift")
    load_f64_constants(b, alloc, _CONSTS)
    b.li("a0", x_addr)              # x read pointer (block granularity)
    b.li("a1", y_addr)              # y DMA-out pointer
    b.li("a5", t_addr)
    b.li("s2", arena)               # cw:  column of macro j
    b.li("s3", arena + 2 * col_size)  # cr1: column of macro j-1
    b.li("s4", arena + 1 * col_size)  # cr2: column of macro j-2
    b.li("s5", block - 1)           # FREP repetitions - 1
    b.li("s6", slot)                # DMA length / slot pitch

    def rotate_columns() -> None:
        b.mv("t1", "s2")
        b.mv("s2", "s4")
        b.mv("s4", "s3")
        b.mv("s3", "t1")

    def shape_read_x_only() -> None:
        _cfg_imm(b, 1, F_STATUS, 0)
        _cfg_imm(b, block - 1, F_BOUND0, 0)
        _cfg_imm(b, 8, F_STRIDE0, 0)

    def shape_read_fused() -> None:
        # (x[i], t[i]) pairs: dims (2, block); stride0 set per macro.
        _cfg_imm(b, 2, F_STATUS, 0)
        _cfg_imm(b, 1, F_BOUND0, 0)
        _cfg_imm(b, block - 1, F_BOUND1, 0)
        _cfg_imm(b, 8, F_STRIDE1, 0)

    def shape_read_t_only() -> None:
        _cfg_imm(b, 1, F_STATUS, 0)
        _cfg_imm(b, block - 1, F_BOUND0, 0)
        _cfg_imm(b, 8, F_STRIDE0, 0)

    def shape_write(n_streams: int) -> None:
        # Fused (ki, w[, y]) writes: dims (n_streams, block).
        _cfg_imm(b, 2, F_STATUS, 1)
        _cfg_imm(b, n_streams - 1, F_BOUND0, 1)
        _cfg_imm(b, slot, F_STRIDE0, 1)
        _cfg_imm(b, block - 1, F_BOUND1, 1)
        _cfg_imm(b, 8, F_STRIDE1, 1)

    def shape_read_w() -> None:
        _cfg_imm(b, 1, F_STATUS, 2)
        _cfg_imm(b, block - 1, F_BOUND0, 2)
        _cfg_imm(b, 8, F_STRIDE0, 2)

    def arm_read_fused() -> None:
        # stride0 = (cr1.t_slot) - x_block; base = x block pointer.
        b.addi("t1", "s3", 3 * slot)
        b.sub("t1", "t1", "a0")
        _cfg(b, "t1", F_STRIDE0, 0)
        _cfg(b, "a0", F_RPTR, 0)

    def arm_write() -> None:
        _cfg(b, "s2", F_WPTR, 1)

    def arm_read_w() -> None:
        b.addi("t1", "s4", slot)
        _cfg(b, "t1", F_RPTR, 2)

    def frep(body) -> None:
        scratch = ProgramBuilder()
        body(scratch)
        b.frep_o("s5", len(scratch._instructions))
        b.extend(scratch._instructions)

    def int_phase() -> None:
        # ki read pointer = cr1, t write pointer = cw.t_slot.
        b.mv("a6", "s3")
        b.addi("a7", "s2", 3 * slot)
        b.addi("t2", "s3", slot)
        _emit_int_phase(b, block)

    def dma_out_y() -> None:
        # y of the oldest in-flight block sits in cw's y slot.
        b.addi("t1", "s2", 2 * slot)
        b.dma_copy("a1", "t1", "s6")
        b.addi("a1", "a1", slot)

    def advance_x() -> None:
        b.addi("a0", "a0", slot)

    b.ssr_enable()
    b.mark("main_start")

    # ---- Prologue macro 0: FP phase 0 on block 0 only. ----
    shape_read_x_only()
    shape_write(2)
    _cfg(b, "a0", F_RPTR, 0)
    arm_write()
    frep(_emit_phase0)
    advance_x()
    rotate_columns()

    # ---- Prologue macro 1: FP phase 0 (block 1) + int phase (block 0).
    shape_read_x_only()
    _cfg(b, "a0", F_RPTR, 0)
    arm_write()
    frep(_emit_phase0)
    int_phase()
    advance_x()
    rotate_columns()

    # ---- Steady state: macros 2 .. nb-1. ----
    steady = nb - 2
    if steady > 0:
        shape_read_fused()
        shape_write(3)
        shape_read_w()
        b.li("s7", steady)
        b.label("steady")
        arm_read_fused()
        arm_write()
        arm_read_w()

        def fused_body(sb: ProgramBuilder) -> None:
            _emit_phase0(sb)
            _emit_phase2(sb)

        frep(fused_body)
        int_phase()
        dma_out_y()
        advance_x()
        rotate_columns()
        b.addi("s7", "s7", -1)
        b.bnez("s7", "steady")

    # ---- Epilogue macro nb: FP phase 2 (block nb-2) + int (block nb-1).
    shape_read_t_only()
    shape_write(2)  # only y is pushed now; use 1-wide fused write below
    _cfg_imm(b, 1, F_STATUS, 1)
    _cfg_imm(b, block - 1, F_BOUND0, 1)
    _cfg_imm(b, 8, F_STRIDE0, 1)
    shape_read_w()
    b.addi("t1", "s3", 3 * slot)
    _cfg(b, "t1", F_RPTR, 0)        # t of block nb-2
    b.addi("t1", "s2", 2 * slot)
    _cfg(b, "t1", F_WPTR, 1)        # y slot of cw
    arm_read_w()
    frep(_emit_phase2)
    int_phase()
    dma_out_y()
    rotate_columns()

    # ---- Epilogue macro nb+1: FP phase 2 (block nb-1). ----
    b.addi("t1", "s3", 3 * slot)
    _cfg(b, "t1", F_RPTR, 0)
    b.addi("t1", "s2", 2 * slot)
    _cfg(b, "t1", F_WPTR, 1)
    arm_read_w()
    frep(_emit_phase2)
    dma_out_y()

    b.mark("main_end")
    b.ssr_disable()

    return KernelInstance(
        name="expf", variant="copift", program=b.build(),
        memory=memory, n=n, block=block,
        dma_active=True, dma_bytes=16 * n,
        verify=lambda mem, machine: _verify(mem, y_addr, x),
        notes={"x_addr": x_addr, "y_addr": y_addr, "inputs": x,
               "out_region": (y_addr, 8 * n)},
    )
