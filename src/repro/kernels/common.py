"""Shared kernel infrastructure: instances, constants, helpers.

Every evaluated kernel comes in two variants (paper §III):

* **baseline** — Snitch-optimized RV32G code: a single software-pipelined
  loop mixing integer and FP instructions, scheduled to hide FP latency
  but structurally single-issue.
* **copift** — the COPIFT transformation: phases separated, loop tiled
  into blocks, software-pipelined across blocks, FP memory traffic on
  SSRs, FP phases under FREP, ISA-extension instructions for cross-RF
  operations.

A :class:`KernelInstance` bundles a built program with its pre-loaded
memory image and a verifier against a golden (NumPy/Python) model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..isa.program import Program, ProgramBuilder
from ..sim import Allocator, CoreConfig, Machine, Memory, RunResult

#: Region name that wraps the main computation (marked in every kernel).
MAIN_REGION = "main"


@dataclass
class KernelInstance:
    """One runnable kernel build.

    Attributes:
        name: Kernel name (``expf``, ``poly_lcg``, ...).
        variant: ``baseline`` or ``copift``.
        program: The built program.
        memory: Pre-loaded memory image (inputs, tables, buffers).
        n: Problem size in elements/samples.
        block: COPIFT block size (None for baselines).
        dma_active: Whether the DMA engine is powered for this kernel
            (vector kernels stage arrays; Monte Carlo kernels do not).
        dma_bytes: Total bytes conceptually moved by the DMA (input
            staging + output drain), for the energy model.
        verify: Callable raising AssertionError if the memory image
            does not hold the expected results after the run.
    """

    name: str
    variant: str
    program: Program
    memory: Memory
    n: int
    block: int | None
    dma_active: bool
    dma_bytes: int
    verify: Callable[[Memory, Machine], None]
    notes: dict = field(default_factory=dict)

    def run(self, config: CoreConfig | None = None,
            check: bool = True, obs=None) -> tuple[RunResult, Machine]:
        """Simulate this instance; optionally verify the results.

        *obs* is an optional :class:`repro.obs.ObsSink` receiving the
        run's structured events under the ``core`` scope.
        """
        machine = Machine(config=config, memory=self.memory)
        if obs is not None:
            machine.attach_obs(obs, "core")
        result = machine.run(self.program)
        if check:
            self.verify(self.memory, machine)
        return result, machine


def load_f64_constants(builder: ProgramBuilder, alloc: Allocator,
                       assignments: dict[str, float],
                       addr_reg: str = "t0") -> None:
    """Materialize double constants into FP registers at program start.

    Allocates a constant pool, stores the values at build time, and
    emits one ``li`` + ``fld`` pair per constant (setup-only cost).
    """
    import numpy as np

    values = list(assignments.items())
    pool = alloc.alloc(f"constpool_{id(assignments) & 0xFFFF}",
                       8 * len(values))
    array = np.array([v for _, v in values], dtype=np.float64)
    alloc.memory.write_array(pool, array)
    for i, (reg_name, _) in enumerate(values):
        builder.li(addr_reg, pool + 8 * i)
        builder.fld(reg_name, 0, addr_reg)


def emit_counted_loop(builder: ProgramBuilder, count_reg: str,
                      bound_reg: str, label_stem: str,
                      body: Callable[[ProgramBuilder], None],
                      step: int = 1) -> None:
    """Emit ``for (count = count; count != bound; count += step) body``.

    The counter must be initialized before the call; the loop executes
    at least once (kernels guarantee non-empty trips).
    """
    top = builder.fresh_label(label_stem)
    builder.label(top)
    body(builder)
    builder.addi(count_reg, count_reg, step)
    builder.bne(count_reg, bound_reg, top)


@dataclass(frozen=True)
class MixSample:
    """Dynamically measured instruction mix of the main region."""

    int_per_iter: float
    fp_per_iter: float

    def scaled(self, unroll: int) -> tuple[float, float]:
        return self.int_per_iter * unroll, self.fp_per_iter * unroll


def measure_mix(instance: KernelInstance,
                config: CoreConfig | None = None,
                unroll: int = 4) -> tuple[int, int]:
    """Measure (int, fp) instructions per *unroll*-element group.

    This is how the Table-I characteristics are produced: run the
    kernel, take the main region's issued-instruction counts, normalize
    per element and scale to the paper's 4-element loop iterations.
    """
    result, _ = instance.run(config=config, check=False)
    region = result.region(MAIN_REGION)
    n = instance.n
    ints = round(region.counters.int_issued * unroll / n)
    fps = round(region.counters.fp_issued * unroll / n)
    return ints, fps
