"""64-bit linear congruential PRNG on RV32 (integer thread).

``s = a*s + c mod 2^64`` with Knuth's MMIX multiplier.  On a 32-bit core
the step costs four multiplies (three ``mul`` + one ``mulhu``) plus the
carry chain — the multiply-heavy sequence whose writeback-port
structural hazards the paper identifies as the source of the LCG
kernels' residual stalls (§III-A: "stalls in the PRN generation with
the LCG, which are due to structural hazards on the register file's
writeback port, and could not be eliminated by unrolling").

One step yields 64 fresh bits per sample: the high word becomes the x
coordinate, the low word the y coordinate.  (A reproduction note, not a
recommendation: low-order LCG bits are statistically weak; the paper's
kernels evaluate *throughput* of the mixed int/FP pattern, not PRNG
quality.)
"""

from __future__ import annotations

from ..isa.program import ProgramBuilder

#: Knuth MMIX constants.
LCG_A = 6364136223846793005
LCG_C = 1442695040888963407

A_LO = LCG_A & 0xFFFFFFFF
A_HI = LCG_A >> 32
C_LO = LCG_C & 0xFFFFFFFF
C_HI = LCG_C >> 32

#: Register allocation contract: callers must not clobber these.
STATE_REGS = ("s0", "s1")             # state lo, hi
CONST_REGS = ("s8", "s9", "s10", "s11")  # a_lo, a_hi, c_lo, c_hi

#: Integer instructions emitted per step (for static planning).
STEP_INSTRUCTIONS = 10


def emit_init(b: ProgramBuilder, seed: int) -> None:
    """Load the PRNG state and constants (setup code, outside loops)."""
    b.li("s0", seed & 0xFFFFFFFF)
    b.li("s1", (seed >> 32) & 0xFFFFFFFF)
    b.li("s8", A_LO)
    b.li("s9", A_HI)
    b.li("s10", C_LO)
    b.li("s11", C_HI)


def emit_step(b: ProgramBuilder, x_reg: str, y_reg: str) -> None:
    """One 64-bit LCG step; x_reg := new hi word, y_reg := new lo word.

    10 integer instructions, 4 on the shared muldiv unit.
    """
    b.mul("t3", "s8", "s0")       # lo(a_lo * s_lo)
    b.mulhu("t4", "s8", "s0")     # hi(a_lo * s_lo)
    b.mul("t5", "s9", "s0")       # a_hi * s_lo (low 32 bits)
    b.mul("t6", "s8", "s1")       # a_lo * s_hi (low 32 bits)
    b.add("t4", "t4", "t5")
    b.add("t4", "t4", "t6")       # new hi before increment
    b.add("s0", "t3", "s10")      # new lo = lo + c_lo
    b.sltu("t5", "s0", "s10")     # carry
    b.add("t4", "t4", "s11")
    b.add("s1", "t4", "t5")       # new hi
    if x_reg != "s1":
        raise ValueError("LCG convention: x_reg must be s1 (state hi)")
    if y_reg != "s0":
        raise ValueError("LCG convention: y_reg must be s0 (state lo)")


def reference_sequence(seed: int, n: int) -> list[tuple[int, int]]:
    """Python mirror: (x=hi, y=lo) pairs for *n* samples."""
    mask = (1 << 64) - 1
    s = seed & mask
    pairs = []
    for _ in range(n):
        s = (LCG_A * s + LCG_C) & mask
        pairs.append((s >> 32, s & 0xFFFFFFFF))
    return pairs
