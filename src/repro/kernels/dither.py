"""``dither``: a seventh kernel, built by the automated transformer.

Generates a vector of uniform dither noise — ``d[i] = (u_i * 2^-32 -
0.5) * amplitude`` with ``u_i`` drawn from xoshiro128+ — a standard
pre-quantization step in audio/DSP and neural-network quantization
pipelines.  It is exactly the mixed integer/FP pattern COPIFT targets
(integer PRNG feeding FP scaling), and unlike the paper's six kernels
it is produced *entirely* by :func:`repro.copift.transform
.generate_two_phase`: no hand-written pipeline code.

This demonstrates that the methodology implementation generalizes past
the paper's evaluation set.
"""

from __future__ import annotations

import numpy as np

from ..copift.transform import TwoPhaseSpec, generate_two_phase
from ..isa.program import ProgramBuilder
from ..sim import Allocator, Memory
from . import xoshiro
from .common import KernelInstance, load_f64_constants

TWO_M32 = 2.0 ** -32


def reference_dither(n: int, seed: int,
                     amplitude: float) -> np.ndarray:
    """Exact mirror of the generated code's arithmetic."""
    outputs = xoshiro.reference_sequence(seed, n)
    scale = amplitude * TWO_M32
    offset = -amplitude * 0.5
    return np.array([float(u) * scale + offset for u in outputs])


def build_copift(n: int, block: int = 64, seed: int = 99,
                 amplitude: float = 0.125) -> KernelInstance:
    """COPIFT dither kernel via the automated two-phase transformer."""
    memory = Memory()
    alloc = Allocator(memory)

    consts = {"fs8": amplitude * TWO_M32, "fs9": -amplitude * 0.5}

    def emit_setup(b: ProgramBuilder) -> None:
        load_f64_constants(b, alloc, consts)
        xoshiro.emit_init(b, seed)

    def emit_int_element(b: ProgramBuilder, u: int) -> None:
        xoshiro.emit_step(b, "a2")
        b.sw("a2", 8 * u, "a7")

    def emit_fp_body(b: ProgramBuilder) -> None:
        b.cfcvt_d_wu("fa0", "ft0")
        b.fmadd_d("ft2", "fa0", "fs8", "fs9")

    spec = TwoPhaseSpec(
        name="dither",
        emit_setup=emit_setup,
        emit_int_element=emit_int_element,
        emit_fp_body=emit_fp_body,
        pops_per_element=1,
        pushes_per_element=1,
        unroll=4,
    )
    build = generate_two_phase(spec, n, block, alloc)
    out_addr = build.output_addr

    def verify(mem: Memory, machine) -> None:
        measured = mem.read_array(out_addr, np.float64, n)
        np.testing.assert_array_equal(
            measured, reference_dither(n, seed, amplitude))

    return KernelInstance(
        name="dither", variant="copift", program=build.program,
        memory=memory, n=n, block=block,
        dma_active=True, dma_bytes=8 * n,
        verify=verify,
        notes={"out_addr": out_addr,
               "out_region": (out_addr, 8 * n),
               "fp_body_length": build.fp_body_length},
    )


def build_baseline(n: int, seed: int = 99,
                   amplitude: float = 0.125) -> KernelInstance:
    """Single-loop RV32G baseline for the dither kernel."""
    if n % 4 != 0:
        raise ValueError("n must be a multiple of 4")
    memory = Memory()
    alloc = Allocator(memory)
    out_addr = alloc.alloc("out", 8 * n)
    consts = {"fs8": amplitude * TWO_M32, "fs9": -amplitude * 0.5}

    b = ProgramBuilder("dither_baseline")
    load_f64_constants(b, alloc, consts)
    xoshiro.emit_init(b, seed)
    b.li("a0", out_addr)
    b.li("a1", out_addr + 8 * n)
    b.mark("main_start")
    b.label("loop")
    for u in range(4):
        xoshiro.emit_step(b, "a2")
        b.fcvt_d_wu(f"fa{u}", "a2")
        b.fmadd_d(f"fa{u}", f"fa{u}", "fs8", "fs9")
        b.fsd(f"fa{u}", 8 * u, "a0")
    b.addi("a0", "a0", 32)
    b.bne("a0", "a1", "loop")
    b.mark("main_end")

    def verify(mem: Memory, machine) -> None:
        measured = mem.read_array(out_addr, np.float64, n)
        np.testing.assert_array_equal(
            measured, reference_dither(n, seed, amplitude))

    return KernelInstance(
        name="dither", variant="baseline", program=b.build(),
        memory=memory, n=n, block=None,
        dma_active=True, dma_bytes=8 * n,
        verify=verify,
        notes={"out_addr": out_addr,
               "out_region": (out_addr, 8 * n)},
    )
