"""The six evaluated kernels (paper Table I), baseline + COPIFT each."""

from .common import KernelInstance, MAIN_REGION
from .registry import KERNELS, KernelDef, kernel

__all__ = ["KERNELS", "KernelDef", "KernelInstance", "MAIN_REGION",
           "kernel"]
