"""Kernel registry: one entry per Table-I row.

Provides uniform constructors for the six evaluated kernels so the
evaluation harness, tests and benchmarks can iterate over them without
knowing each module's signature.  Kernels are listed in the paper's
Table-I order (by expected speedup S′).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..copift.model import InstructionMix, KernelModel
from . import expf, logf, montecarlo
from .common import KernelInstance
from .montecarlo import LCG_SPEC, PI_SPEC, POLY_SPEC, XOSHIRO_SPEC


@dataclass(frozen=True)
class KernelDef:
    """Uniform kernel constructor pair plus paper-reported data."""

    name: str
    build_baseline: Callable[..., KernelInstance]
    build_copift: Callable[..., KernelInstance]
    #: Default COPIFT block size for Figure-2 style measurements.
    default_block: int
    #: Paper Table I instruction mixes (per 4-element loop iteration).
    paper_base: InstructionMix
    paper_copift: InstructionMix
    #: Paper Table I auxiliary columns.
    paper_max_block: int
    #: Paper Fig. 2 measurements, for EXPERIMENTS.md side-by-sides.
    paper_ipc: tuple[float, float]        # (baseline, copift)
    paper_power_mw: tuple[float, float]   # (baseline, copift)
    paper_speedup: float
    paper_energy_improvement: float

    def paper_model(self) -> KernelModel:
        """Table-I row computed from the paper's instruction counts."""
        return KernelModel(
            name=self.name,
            base=self.paper_base,
            copift=self.paper_copift,
            max_block=self.paper_max_block,
        )


def _mc(prng, integrand):
    def baseline(n: int, seed: int = 42) -> KernelInstance:
        return montecarlo.build_baseline(prng, integrand, n, seed=seed)

    def copift(n: int, block: int = 64, seed: int = 42) -> KernelInstance:
        return montecarlo.build_copift(prng, integrand, n, block=block,
                                       seed=seed)

    return baseline, copift


_PI_LCG = _mc(LCG_SPEC, PI_SPEC)
_POLY_LCG = _mc(LCG_SPEC, POLY_SPEC)
_PI_XOSHIRO = _mc(XOSHIRO_SPEC, PI_SPEC)
_POLY_XOSHIRO = _mc(XOSHIRO_SPEC, POLY_SPEC)

#: All kernels, in the paper's Fig. 2 x-axis order (ascending S′).
KERNELS: dict[str, KernelDef] = {
    "pi_xoshiro128p": KernelDef(
        "pi_xoshiro128p", *_PI_XOSHIRO, default_block=64,
        paper_base=InstructionMix(172, 56),
        paper_copift=InstructionMix(200, 56),
        paper_max_block=341,
        paper_ipc=(0.96, 1.24), paper_power_mw=(37.90, 38.70),
        paper_speedup=1.15, paper_energy_improvement=1.12,
    ),
    "poly_xoshiro128p": KernelDef(
        "poly_xoshiro128p", *_POLY_XOSHIRO, default_block=64,
        paper_base=InstructionMix(172, 80),
        paper_copift=InstructionMix(200, 80),
        paper_max_block=341,
        paper_ipc=(0.96, 1.36), paper_power_mw=(39.00, 40.10),
        paper_speedup=1.26, paper_energy_improvement=1.22,
    ),
    "pi_lcg": KernelDef(
        "pi_lcg", *_PI_LCG, default_block=64,
        paper_base=InstructionMix(44, 56),
        paper_copift=InstructionMix(72, 56),
        paper_max_block=341,
        paper_ipc=(0.86, 1.50), paper_power_mw=(37.40, 42.10),
        paper_speedup=1.32, paper_energy_improvement=1.17,
    ),
    "poly_lcg": KernelDef(
        "poly_lcg", *_POLY_LCG, default_block=64,
        paper_base=InstructionMix(44, 80),
        paper_copift=InstructionMix(72, 80),
        paper_max_block=341,
        paper_ipc=(0.89, 1.75), paper_power_mw=(38.40, 45.10),
        paper_speedup=1.58, paper_energy_improvement=1.34,
    ),
    "logf": KernelDef(
        "logf", logf.build_baseline, logf.build_copift, default_block=64,
        paper_base=InstructionMix(39, 52),
        paper_copift=InstructionMix(57, 36),
        paper_max_block=273,
        paper_ipc=(0.92, 1.48), paper_power_mw=(41.50, 41.80),
        paper_speedup=1.62, paper_energy_improvement=1.61,
    ),
    "expf": KernelDef(
        "expf", expf.build_baseline, expf.build_copift, default_block=64,
        paper_base=InstructionMix(43, 52),
        paper_copift=InstructionMix(43, 36),
        paper_max_block=157,
        paper_ipc=(0.92, 1.63), paper_power_mw=(43.60, 46.20),
        paper_speedup=2.05, paper_energy_improvement=1.93,
    ),
}


def kernel(name: str) -> KernelDef:
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None
