"""Content-addressed on-disk store of :class:`RunRecord` results.

Every cacheable sweep cell maps to one JSON file whose name is a
SHA-256 over everything that determines the result:

* the full workload spec (kernel, variant, n, block, seed);
* the backend's *complete* configuration — not just its spec string:
  ``None`` configs are normalized to the defaults they mean, nested
  config dataclasses are serialized field by field, and a backend
  carrying state the normalizer does not understand is simply
  **uncacheable** (``cache_key`` returns None) rather than wrongly
  shared;
* the record schema version (:data:`repro.api.record.SCHEMA_VERSION`);
* the timing-model fingerprint
  (:func:`repro.api.timing_fingerprint` — golden file + energy
  constants), so an intentional timing change invalidates every
  affected key with zero bookkeeping.

Entries live under a per-fingerprint *generation* directory
(``<root>/<fingerprint[:16]>/<key>.json``): after a timing change the
old generation is simply never consulted again.  Writes go to a
uniquely-named temp file in the same directory and are committed with
:func:`os.replace`, so a crashed writer can never tear a committed
entry — leftover ``*.tmp*`` files are ignored by lookups and
overwritten harmlessly.  A *committed* entry that fails to parse, on
the other hand, is reported loudly (:class:`CacheError` naming the
file) instead of being silently recomputed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum

from ..api.backend import ClusterBackend, CoreBackend, SocBackend
from ..api.fingerprint import timing_fingerprint
from ..api.record import SCHEMA_VERSION, RunRecord
from ..api.workload import Workload
from ..cluster import ClusterConfig
from ..energy import EnergyModel
from ..sim import CoreConfig
from ..soc import SocConfig


class CacheError(RuntimeError):
    """A cache operation failed in a way the user must act on."""


class _Uncacheable(Exception):
    """Internal: a value has no stable serialized form."""


def _stable_state(value):
    """Canonical JSON-able form of a config/spec value tree.

    Dataclasses become name-tagged dicts, enums their values, dict
    keys strings; anything without an obviously stable encoding raises
    ``_Uncacheable`` so the caller can refuse to cache rather than
    guess.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Enum):
        return _stable_state(value.value)
    if is_dataclass(value) and not isinstance(value, type):
        state = {"__dataclass__": type(value).__name__}
        for field in fields(value):
            state[field.name] = _stable_state(getattr(value, field.name))
        return state
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            key = key.value if isinstance(key, Enum) else key
            if not isinstance(key, (str, int)):
                raise _Uncacheable(f"dict key {key!r}")
            out[str(key)] = _stable_state(item)
        return out
    if isinstance(value, (list, tuple)):
        return [_stable_state(item) for item in value]
    raise _Uncacheable(f"value of type {type(value).__name__}")


#: Per-backend-type normalization: fields whose ``None`` means "the
#: default instance of this config class".  Filling the defaults in
#: makes ``ClusterBackend(cores=4)`` and
#: ``ClusterBackend(cores=4, config=ClusterConfig())`` share one key —
#: they run the identical machine.
_DEFAULT_FILLERS: dict[type, dict[str, type]] = {
    CoreBackend: {"config": CoreConfig, "energy_model": EnergyModel},
    ClusterBackend: {"config": ClusterConfig,
                     "core_config": CoreConfig},
    SocBackend: {"config": SocConfig, "core_config": CoreConfig},
}


def backend_state(backend) -> dict | None:
    """The backend's complete normalized state, or None if uncacheable.

    Only the known backend types are cacheable: an unfamiliar backend
    implementation may hold state this normalizer cannot see, and a
    wrong cache share is strictly worse than a redundant simulation.
    """
    fillers = _DEFAULT_FILLERS.get(type(backend))
    if fillers is None:
        return None
    state: dict = {"spec": backend.spec}
    try:
        for field in fields(backend):
            value = getattr(backend, field.name)
            if value is None and field.name in fillers:
                value = fillers[field.name]()
            if isinstance(value, EnergyModel):
                value = value.params
            state[field.name] = _stable_state(value)
    except _Uncacheable:
        return None
    return state


def cache_key(workload: Workload, backend,
              fingerprint: str | None = None) -> str | None:
    """Content address of one sweep cell, or None if uncacheable."""
    state = backend_state(backend)
    if state is None:
        return None
    payload = {
        "schema": SCHEMA_VERSION,
        "fingerprint": fingerprint if fingerprint is not None
        else timing_fingerprint(),
        "workload": _stable_state(workload),
        "backend": state,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class StoreStats:
    """Counters of one store's traffic (this process, since creation).

    ``deduped`` counts sweep cells answered by fanning out another
    identical cell's in-sweep result (no store file involved).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    deduped: int = 0

    def to_json(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "deduped": self.deduped}


#: Unique temp-file suffixes within a process (os.replace makes the
#: commit atomic; the counter only keeps concurrent writers from
#: colliding on the staging name).
_TMP_COUNTER = itertools.count()


class RunStore:
    """The on-disk content-addressed RunRecord cache.

    Args:
        root: Cache directory (created on demand).
        fingerprint: Timing-model fingerprint selecting the entry
            generation; defaults to the live
            :func:`~repro.api.timing_fingerprint`.
    """

    #: Basename of the cumulative-stats sidecar at the store root.
    STATS_FILE = "stats.json"

    def __init__(self, root: str | os.PathLike,
                 fingerprint: str | None = None) -> None:
        self.root = os.fspath(root)
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise CacheError(
                f"cache path {self.root} exists and is not a "
                f"directory; point --cache-dir at a directory or pass "
                f"--no-cache"
            )
        self.fingerprint = fingerprint if fingerprint is not None \
            else timing_fingerprint()
        self.generation = self.fingerprint[:16]
        self.stats = StoreStats()

    # -- paths ---------------------------------------------------------

    @property
    def generation_dir(self) -> str:
        return os.path.join(self.root, self.generation)

    def entry_path(self, key: str) -> str:
        return os.path.join(self.generation_dir, f"{key}.json")

    # -- keyed access --------------------------------------------------

    def key_for(self, workload: Workload, backend) -> str | None:
        return cache_key(workload, backend,
                         fingerprint=self.fingerprint)

    def get(self, key: str) -> RunRecord | None:
        """The stored record for *key*, or None (counted as a miss).

        Raises :class:`CacheError` for a committed entry that cannot
        be parsed — a torn *temp* file never reaches this path, so any
        unreadable entry means on-disk corruption the user should see.
        """
        path = self.entry_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except (FileNotFoundError, NotADirectoryError):
            self.stats.misses += 1
            return None
        try:
            record = RunRecord.from_json(json.loads(text))
        except (ValueError, KeyError, TypeError) as exc:
            raise CacheError(
                f"corrupt cache entry {path} ({exc}); delete the file "
                f"(or the whole cache dir) or re-run with --no-cache"
            ) from None
        self.stats.hits += 1
        return record

    def put(self, key: str, record: RunRecord) -> None:
        """Atomically persist *record* under *key*.

        The payload is staged in a uniquely-named temp file beside the
        entry and committed with ``os.replace``; a writer dying
        mid-write leaves only ignorable ``*.tmp*`` litter, never a
        half-written committed entry.
        """
        os.makedirs(self.generation_dir, exist_ok=True)
        path = self.entry_path(key)
        tmp = f"{path}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}"
        blob = json.dumps(record.to_json(), sort_keys=True, indent=1)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob)
            handle.write("\n")
        os.replace(tmp, path)
        self.stats.stores += 1

    # -- cell-level access (what Sweep/EvalService use) ----------------

    def lookup(self, workload: Workload, backend,
               key: str | None = None) -> RunRecord | None:
        """Cached record for a sweep cell, identity-checked, or None.

        A hit is asserted to describe exactly the requested cell
        (kernel, variant, n, backend spec); a mismatch means the store
        is corrupted and raises :class:`CacheError` instead of
        returning a wrong result.  *key* skips recomputing the content
        address when the caller already has it.
        """
        if key is None:
            key = self.key_for(workload, backend)
        if key is None:
            return None
        record = self.get(key)
        if record is None:
            return None
        found = (record.kernel, record.variant, record.n,
                 record.backend)
        wanted = (workload.kernel, workload.variant, workload.n,
                  backend.spec)
        if found != wanted:
            raise CacheError(
                f"cache entry {self.entry_path(key)} holds "
                f"{found[0]}/{found[1]} n={found[2]} on {found[3]!r} "
                f"but its key describes {wanted[0]}/{wanted[1]} "
                f"n={wanted[2]} on {wanted[3]!r}; delete the file or "
                f"re-run with --no-cache"
            )
        return record

    def save(self, workload: Workload, backend, record: RunRecord,
             key: str | None = None) -> None:
        """Persist a freshly computed cell result (no-op if uncacheable)."""
        if key is None:
            key = self.key_for(workload, backend)
        if key is not None:
            self.put(key, record)

    # -- stats / introspection -----------------------------------------

    def _stats_path(self) -> str:
        return os.path.join(self.root, self.STATS_FILE)

    def _load_cumulative(self) -> dict:
        try:
            with open(self._stats_path(), encoding="utf-8") as handle:
                data = json.load(handle)
            return data if isinstance(data, dict) else {}
        except (OSError, ValueError):
            return {}

    def flush_stats(self) -> dict:
        """Fold this process's counters into the cumulative sidecar.

        Returns the merged totals.  The in-memory counters are zeroed
        so repeated flushes never double-count; the sidecar write is
        atomic like every other store write.
        """
        merged = self._load_cumulative()
        for name, delta in self.stats.to_json().items():
            if delta:
                merged[name] = int(merged.get(name, 0)) + delta
        os.makedirs(self.root, exist_ok=True)
        tmp = (f"{self._stats_path()}.tmp.{os.getpid()}"
               f".{next(_TMP_COUNTER)}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self._stats_path())
        self.stats = StoreStats()
        return merged

    def _count_entries(self, directory: str) -> int:
        try:
            names = os.listdir(directory)
        except OSError:
            return 0
        return sum(1 for name in names if name.endswith(".json")
                   and ".tmp." not in name)

    def describe(self) -> dict:
        """Machine-readable store summary (``--list --json``)."""
        stale = 0
        try:
            generations = [name for name in os.listdir(self.root)
                           if os.path.isdir(os.path.join(self.root,
                                                         name))]
        except OSError:
            generations = []
        for name in generations:
            if name != self.generation:
                stale += self._count_entries(
                    os.path.join(self.root, name))
        return {
            "dir": self.root,
            "fingerprint": self.fingerprint,
            "generation": self.generation,
            "entries": self._count_entries(self.generation_dir),
            "stale_entries": stale,
            "cumulative": self._load_cumulative(),
        }
