"""Async evaluation service: warm cache in front, worker pool behind.

:class:`EvalService` is the long-lived front end the serve layer is
named for.  Requests (one ``(workload, backend)`` cell each) resolve
in three tiers:

1. **store hit** — the content-addressed :class:`~repro.serve.store.
   RunStore` already holds the record; no simulation.
2. **coalesced** — an identical cell is being simulated *right now*;
   the request piggybacks on that in-flight future, so N concurrent
   clients asking for one cell trigger exactly one simulation.
3. **miss** — the cell is admitted to the bounded recompute stage
   (an :class:`asyncio.Semaphore` caps concurrently admitted cells;
   excess misses queue on the semaphore, which is the service's
   backpressure) and runs on a persistent
   :class:`~concurrent.futures.ProcessPoolExecutor` via the same
   module-level worker sweep sharding uses.  The result is persisted
   before the response goes out.

Traffic counters (hit/miss/coalesced/in-flight) are published through
the observability layer's :class:`~repro.obs.MetricsRegistry`
(:func:`service_registry`), so the serve metrics carry the same
name/unit/help discipline as every simulator metric.
"""

from __future__ import annotations

import asyncio
import inspect
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..obs.metrics import Metric, MetricsRegistry
from .store import RunStore, cache_key


@dataclass
class ServiceStats:
    """Request counters of one service instance."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    in_flight: int = 0
    peak_in_flight: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.coalesced


def service_registry() -> MetricsRegistry:
    """The serve-layer metrics, named like every other repo metric."""
    registry = MetricsRegistry()
    registry.register_many([
        Metric("serve.requests", "requests",
               "evaluation requests answered",
               lambda s: s.requests),
        Metric("serve.hits", "requests",
               "answered from the content-addressed store",
               lambda s: s.hits),
        Metric("serve.misses", "requests",
               "required a fresh simulation",
               lambda s: s.misses),
        Metric("serve.coalesced", "requests",
               "piggybacked on an identical in-flight simulation",
               lambda s: s.coalesced),
        Metric("serve.in_flight", "cells",
               "simulations admitted right now",
               lambda s: s.in_flight),
        Metric("serve.peak_in_flight", "cells",
               "most simulations admitted at once",
               lambda s: s.peak_in_flight),
    ])
    return registry


class EvalService:
    """Coalescing, cache-backed evaluator of workload x backend cells.

    Args:
        store: Result store consulted/filled per cell (None runs
            cache-less but still coalesces).
        jobs: Worker processes in the persistent simulation pool.
        max_pending: Bound on concurrently *admitted* recomputes; the
            backpressure knob — misses beyond it wait in line.
        runner: Override for the simulation call, ``(workload,
            backend) -> RunRecord`` (sync or async).  Tests inject
            counting/fake runners; the default ships cells to the
            process pool.
    """

    def __init__(self, store: RunStore | None = None, jobs: int = 1,
                 max_pending: int = 8, runner=None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        self.store = store
        self.jobs = jobs
        self.stats = ServiceStats()
        self.registry = service_registry()
        self._runner = runner
        self._pool: ProcessPoolExecutor | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._admit = asyncio.Semaphore(max_pending)

    # -- simulation ----------------------------------------------------

    async def _simulate(self, workload, backend):
        if self._runner is not None:
            result = self._runner(workload, backend)
            if inspect.isawaitable(result):
                result = await result
            return result
        # Imported lazily: repro.eval's package init pulls in every
        # artifact module, which this module must not force at import.
        from ..eval.parallel import run_cell
        if self._pool is None:
            # spawn, not fork: the service runs inside an asyncio
            # loop with helper threads (stdin reader, executor
            # manager), and a fork can inherit one of their locks in
            # the locked state — the worker then deadlocks in its own
            # bootstrap.  Spawned workers start from a clean
            # interpreter; the pool is persistent, so the one-time
            # startup cost amortizes over the session.
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"))
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, run_cell,
                                          (workload, backend))

    # -- the request path ----------------------------------------------

    async def evaluate(self, workload, backend):
        """Resolve one cell; returns ``(record, status)``.

        *status* is ``"hit"`` (store), ``"coalesced"`` (shared an
        in-flight simulation) or ``"miss"`` (simulated here).  A hit
        is identity-checked by the store; an uncacheable cell (custom
        backend state) always simulates and never coalesces.
        """
        if self.store is not None:
            record = self.store.lookup(workload, backend)
            if record is not None:
                self.stats.hits += 1
                return record, "hit"
        key = (self.store.key_for(workload, backend)
               if self.store is not None
               else cache_key(workload, backend))
        pending = self._inflight.get(key) if key is not None else None
        if pending is not None:
            self.stats.coalesced += 1
            record = await asyncio.shield(pending)
            return record, "coalesced"

        future = asyncio.get_running_loop().create_future()
        if key is not None:
            self._inflight[key] = future
        try:
            async with self._admit:
                self.stats.misses += 1
                self.stats.in_flight += 1
                self.stats.peak_in_flight = max(
                    self.stats.peak_in_flight, self.stats.in_flight)
                try:
                    record = await self._simulate(workload, backend)
                finally:
                    self.stats.in_flight -= 1
            if self.store is not None:
                self.store.save(workload, backend, record)
            future.set_result(record)
            return record, "miss"
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved: with no coalesced waiters the event
                # loop would otherwise log a never-retrieved warning.
                future.exception()
            raise
        finally:
            if key is not None:
                self._inflight.pop(key, None)

    # -- stats / lifecycle ---------------------------------------------

    def stats_json(self) -> dict:
        """Service + store counters through the metrics registry.

        The ``store`` block carries this process's session counters
        plus the full :meth:`~repro.serve.store.RunStore.describe`
        summary — including the ``cumulative`` sidecar totals other
        processes have flushed, which a session-only view would miss.
        """
        out = dict(self.registry.collect(self.stats))
        if self.store is not None:
            out["store"] = self.store.stats.to_json()
            out["store"].update(self.store.describe())
        return out

    def render_stats(self) -> str:
        """Aligned text table of the service counters."""
        return self.registry.render(self.stats)

    async def close(self) -> None:
        """Shut the worker pool down and flush store stats."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.store is not None:
            self.store.flush_stats()
