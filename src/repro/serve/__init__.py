"""Persistent evaluation service with a content-addressed result cache.

``repro.serve`` is the serving layer over the evaluation stack: repeat
(workload, backend) traffic is answered from a warm, content-addressed
:class:`~repro.api.record.RunRecord` cache, and only genuinely new
cells hit the simulator.  Three layers:

* :mod:`repro.serve.store` — :class:`RunStore`, the on-disk cache.
  Entries are keyed by a hash over the workload spec, the backend's
  full configuration, the record schema version and the timing-model
  fingerprint (:func:`repro.api.timing_fingerprint`), so a golden-file
  or energy-constant change invalidates every affected key
  automatically.  Writes are write-temp-then-rename atomic.
* :mod:`repro.serve.service` — :class:`EvalService`, a stdlib-asyncio
  front end over a persistent worker pool: coalesces duplicate
  in-flight requests (N clients asking for one cell trigger exactly
  one simulation), bounds the recompute queue for backpressure, and
  tracks hit/miss/in-flight/coalesced counters through the
  observability :class:`~repro.obs.MetricsRegistry`.
* :mod:`repro.serve.client` + :mod:`repro.serve.protocol` — cache
  activation for in-process clients (the :class:`~repro.api.Sweep`
  executor and the ``python -m repro.eval`` dispatcher consult the
  active store per cell) and the JSON-lines request protocol behind
  ``python -m repro.eval --serve`` / ``python -m repro.serve``.

Cached results are bit-identical to uncached runs: a ``RunRecord``
round-trips exactly through its versioned JSON schema, and every hit
is structurally verified against the requesting cell.
"""

from .client import active_store, default_cache_dir, resolve_store, use_store
from .protocol import ProtocolError, decode_request, encode_response
from .service import EvalService, ServiceStats, service_registry
from .store import CacheError, RunStore, StoreStats, cache_key

__all__ = [
    "CacheError",
    "EvalService",
    "ProtocolError",
    "RunStore",
    "ServiceStats",
    "StoreStats",
    "active_store",
    "cache_key",
    "decode_request",
    "default_cache_dir",
    "encode_response",
    "resolve_store",
    "service_registry",
    "use_store",
]
