"""Run the evaluation service on stdin/stdout.

Usage::

    python -m repro.serve [--cache-dir DIR] [--no-cache]
                          [--jobs N] [--max-pending N]

(equivalently ``python -m repro.eval --serve``, which forwards here).
The process reads JSON-lines requests from stdin and writes one
response line per request to stdout (see :mod:`repro.serve.protocol`);
diagnostics go to stderr so the response stream stays machine-clean.
EOF or a ``shutdown`` request ends the session, flushing cumulative
cache stats to the store's sidecar on the way out.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from ..eval.parallel import default_jobs
from .client import default_cache_dir, resolve_store
from .protocol import serve_session
from .service import EvalService
from .store import CacheError


async def _stdin_lines():
    """Async line iterator over stdin (reads on a worker thread).

    Reads the raw fd with ``os.read`` instead of
    ``sys.stdin.readline``: a blocked readline holds the text
    wrapper's internal lock, and a worker process forked off while it
    is held inherits it *locked* — multiprocessing's child bootstrap
    closes stdin and deadlocks.  ``os.read`` blocks without holding
    any Python-level lock, so forking stays safe while a request is
    awaited.
    """
    loop = asyncio.get_running_loop()
    fd = sys.stdin.fileno()
    pending = b""
    while True:
        chunk = await loop.run_in_executor(None, os.read, fd, 65536)
        if not chunk:
            if pending:
                yield pending.decode("utf-8", errors="replace")
            return
        pending += chunk
        while b"\n" in pending:
            line, pending = pending.split(b"\n", 1)
            yield line.decode("utf-8", errors="replace")


def _write_line(line: str) -> None:
    sys.stdout.write(line + "\n")
    sys.stdout.flush()


async def _serve(service: EvalService) -> int:
    try:
        return await serve_session(service, _stdin_lines(),
                                   _write_line)
    finally:
        await service.close()


def serve_main(cache_dir: str | None = None, no_cache: bool = False,
               jobs: int = 1, max_pending: int = 8) -> int:
    """Build the service from CLI options and serve until EOF."""
    try:
        store = resolve_store(cache_dir, no_cache=no_cache)
        service = EvalService(store=store, jobs=jobs,
                              max_pending=max_pending)
    except (CacheError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    where = store.root if store is not None else "disabled (--no-cache)"
    print(f"repro.serve: cache {where}; jobs={jobs} "
          f"max_pending={max_pending}; reading JSON-lines requests "
          f"from stdin", file=sys.stderr)
    handled = asyncio.run(_serve(service))
    print(f"repro.serve: session over after {handled} requests",
          file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persistent evaluation service (JSON-lines over "
                    "stdin/stdout) with a content-addressed "
                    "RunRecord cache.",
    )
    parser.add_argument("--cache-dir", type=str, default=None,
                        metavar="DIR",
                        help="Result-store directory (default "
                             f"{default_cache_dir()}, or "
                             "$REPRO_CACHE_DIR).")
    parser.add_argument("--no-cache", action="store_true",
                        help="Serve without the result store (every "
                             "request simulates; coalescing still "
                             "applies).")
    parser.add_argument("--jobs", type=int, default=1,
                        help="Worker processes in the simulation pool "
                             f"(this host has {default_jobs()} CPUs).")
    parser.add_argument("--max-pending", type=int, default=8,
                        help="Bound on concurrently admitted "
                             "recomputes (backpressure; default 8).")
    args = parser.parse_args(argv)
    if args.no_cache and args.cache_dir is not None:
        parser.error(
            f"--no-cache and --cache-dir {args.cache_dir} are "
            f"mutually exclusive; drop one"
        )
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.max_pending < 1:
        parser.error(
            f"--max-pending must be >= 1, got {args.max_pending}")
    return serve_main(cache_dir=args.cache_dir,
                      no_cache=args.no_cache, jobs=args.jobs,
                      max_pending=args.max_pending)


if __name__ == "__main__":
    sys.exit(main())
