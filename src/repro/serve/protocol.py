"""JSON-lines wire protocol of the evaluation service.

One request per line, one response line per request, ids echoed back
so clients may pipeline.  Requests::

    {"id": 1, "op": "run", "workload": {"kernel": "expf",
     "variant": "copift", "n": 4096}, "backend": "cluster:4"}
    {"id": 2, "op": "stats"}
    {"id": 3, "op": "ping"}
    {"op": "shutdown"}

Responses::

    {"id": 1, "ok": true, "status": "hit",
     "record": { ...RunRecord.to_json()... }}
    {"id": 2, "ok": true, "stats": { ... }}
    {"id": 9, "ok": false, "error": "one-line reason"}

``status`` is ``hit`` (content-addressed store), ``coalesced``
(shared an identical in-flight simulation) or ``miss`` (simulated for
this request).  Responses arrive in **completion order** — a warm hit
overtakes a cold simulation — which is why ids exist.

:func:`serve_session` drives one full session over any async line
source and sync line sink; ``python -m repro.serve`` (and
``python -m repro.eval --serve``) wire it to stdin/stdout.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from ..api.backend import parse_backend
from ..api.workload import Workload
from .store import CacheError

#: Accepted operations, in documentation order.
OPS = ("run", "stats", "ping", "shutdown")

#: Workload-spec keys a ``run`` request may carry.
WORKLOAD_KEYS = ("kernel", "variant", "n", "block", "seed")


class ProtocolError(ValueError):
    """A request line the server cannot act on (one-line reason).

    ``request_id`` carries the offending request's id when the line
    was at least valid JSON, so the error response can be correlated.
    """

    def __init__(self, message: str, request_id=None) -> None:
        super().__init__(message)
        self.request_id = request_id


@dataclass(frozen=True)
class Request:
    """One decoded request."""

    op: str
    id: object = None
    workload: Workload | None = None
    backend: object = None


def _one_line(exc: BaseException) -> str:
    return " ".join(str(exc).split())


def decode_request(line: str) -> Request:
    """Parse one request line, validating everything up front."""
    try:
        data = json.loads(line)
    except ValueError:
        raise ProtocolError(
            f"request is not valid JSON: {line.strip()[:120]!r}"
        ) from None
    if not isinstance(data, dict):
        raise ProtocolError(
            f"request must be a JSON object, got "
            f"{type(data).__name__}"
        )
    request_id = data.get("id")
    op = data.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of: " + ", ".join(OPS),
            request_id=request_id,
        )
    if op != "run":
        return Request(op=op, id=request_id)
    spec = data.get("workload")
    if not isinstance(spec, dict) or "kernel" not in spec:
        raise ProtocolError(
            "run request needs a 'workload' object with at least a "
            "'kernel' key", request_id=request_id,
        )
    unknown = sorted(set(spec) - set(WORKLOAD_KEYS))
    if unknown:
        raise ProtocolError(
            f"unknown workload keys {unknown}; accepted: "
            + ", ".join(WORKLOAD_KEYS), request_id=request_id,
        )
    backend_spec = data.get("backend", "core")
    try:
        workload = Workload(**spec)
        backend = parse_backend(backend_spec)
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(_one_line(exc),
                            request_id=request_id) from None
    return Request(op="run", id=request_id, workload=workload,
                   backend=backend)


def encode_response(request_id=None, ok: bool = True,
                    **payload) -> str:
    """One response line (no trailing newline), ids echoed back."""
    body = {"id": request_id, "ok": ok}
    body.update(payload)
    return json.dumps(body, sort_keys=True)


async def serve_session(service, lines, write) -> int:
    """Drive one protocol session until EOF or ``shutdown``.

    Args:
        service: An :class:`~repro.serve.service.EvalService`.
        lines: Async iterator yielding raw request lines.
        write: Sync callable sending one response line.

    Returns the number of requests handled.  ``run`` requests execute
    concurrently (that is what makes coalescing observable over the
    wire); malformed lines get an error response and the session
    continues.
    """
    handled = 0
    tasks: set[asyncio.Task] = set()

    async def run_one(request: Request) -> None:
        try:
            record, status = await service.evaluate(
                request.workload, request.backend)
            write(encode_response(request.id, status=status,
                                  record=record.to_json()))
        except (CacheError, ProtocolError, ValueError) as exc:
            write(encode_response(request.id, ok=False,
                                  error=_one_line(exc)))
        except Exception as exc:  # worker/pool failures stay per-request
            write(encode_response(
                request.id, ok=False,
                error=f"{type(exc).__name__}: {_one_line(exc)}"))

    async for line in lines:
        if not line.strip():
            continue
        handled += 1
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            write(encode_response(exc.request_id, ok=False,
                                  error=str(exc)))
            continue
        if request.op == "ping":
            write(encode_response(request.id, pong=True))
        elif request.op == "stats":
            write(encode_response(request.id,
                                  stats=service.stats_json()))
        elif request.op == "shutdown":
            write(encode_response(request.id, shutdown=True))
            break
        else:
            task = asyncio.ensure_future(run_one(request))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*tasks)
    return handled
