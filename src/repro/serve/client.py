"""Cache activation for in-process clients.

The :class:`~repro.api.Sweep` executor consults whatever store is
*active* — artifacts build their sweeps internally, so the cache is
threaded through ambient state rather than every artifact signature.
The ``python -m repro.eval`` dispatcher activates the resolved store
around each artifact run (:func:`use_store`); library code sees no
cache unless it opts in (``Sweep.run(cache=...)`` or an explicit
:func:`use_store` block).

Resolution order for the cache directory: an explicit ``--cache-dir``,
the ``REPRO_CACHE_DIR`` environment variable, then the per-user
default (``~/.cache/repro-eval``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .store import RunStore

#: Environment override for the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_ACTIVE: list[RunStore] = []


def default_cache_dir() -> str:
    """The cache directory used when none is named explicitly."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-eval")


def resolve_store(cache_dir: str | None = None,
                  no_cache: bool = False) -> RunStore | None:
    """Build the store the CLI flags select (None when disabled)."""
    if no_cache:
        return None
    return RunStore(cache_dir or default_cache_dir())


def active_store() -> RunStore | None:
    """The store in-process sweeps currently consult, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_store(store: RunStore | None):
    """Activate *store* for the dynamic extent of the block.

    ``use_store(None)`` is an explicit cache-off scope, shadowing any
    outer activation (the ``--no-cache`` escape hatch).
    """
    _ACTIVE.append(store)
    try:
        yield store
    finally:
        _ACTIVE.pop()
