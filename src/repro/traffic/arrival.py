"""Open-loop request arrival: seeded Poisson streams and trace replay.

Closed, fixed-n batches answer "how fast is one kernel"; an *open*
arrival process answers the question deployments face — how much
offered load can the SoC sustain, and at what latency.  This module
generates the request stream: each :class:`Request` names a registered
:class:`PriorityClass` (which carries the kernel workload, the QoS
weight and the dispatch priority) and an arrival cycle.

Two sources exist, both deterministic:

* :func:`poisson_arrivals` — independent seeded Poisson streams, one
  per class (rate split by each class's ``share``), merged into one
  time-ordered stream.  Inter-arrival gaps come from inverse-transform
  sampling over a 64-bit LCG (:class:`Lcg64`), so the stream is a pure
  function of ``(classes, rate, duration, seed)`` — the property the
  ``--jobs``-sharded replications rely on.
* :func:`load_trace` — replay of a trace file (one request per line:
  ``cycle class``, ``#`` comments allowed), for driving the dispatcher
  with recorded or adversarial arrival patterns.

Arrival cycles are integers; ties are ordered by descending dispatch
priority then generation order, so the merged stream is total-ordered
and every downstream consumer is deterministic by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..kernels.registry import KERNELS

#: Dispatch-priority convention: larger means more urgent.
__all__ = [
    "Lcg64",
    "PriorityClass",
    "Request",
    "load_trace",
    "poisson_arrivals",
]


class TrafficError(RuntimeError):
    """A traffic-scenario operation failed in a way the user must fix."""


@dataclass(frozen=True)
class PriorityClass:
    """One request class: workload shape + QoS weight + priority.

    Attributes:
        name: Class label used in traces, payloads and reports.
        weight: QoS arbitration weight — the class's guaranteed share
            of interconnect beat slots (see
            :class:`~repro.traffic.qos.QosArbiter`).  ``0`` means the
            class has no reserved slots and is never granted.
        priority: Dispatch priority; **larger is more urgent**.  The
            ``priority`` dispatch policy serves pending requests in
            descending priority (FIFO within a class).
        kernel: Registered kernel every request of this class runs.
        variant: ``baseline`` or ``copift``.
        n: Problem size per request.
        share: Fraction of the offered Poisson arrival rate this class
            contributes; shares must sum to 1 across a scenario.
    """

    name: str
    weight: int
    priority: int
    kernel: str
    variant: str
    n: int
    share: float

    def __post_init__(self) -> None:
        if not self.name:
            raise TrafficError("priority class needs a non-empty name")
        if self.weight < 0:
            raise TrafficError(
                f"class {self.name!r}: weight must be >= 0, got "
                f"{self.weight}"
            )
        if self.kernel not in KERNELS:
            raise TrafficError(
                f"class {self.name!r}: unknown kernel "
                f"{self.kernel!r}; available: {sorted(KERNELS)}"
            )
        if not 0.0 < self.share <= 1.0:
            raise TrafficError(
                f"class {self.name!r}: share must be in (0, 1], got "
                f"{self.share}"
            )


@dataclass(frozen=True)
class Request:
    """One kernel request in the open arrival stream.

    Attributes:
        rid: Stream-wide id, dense in arrival order (ties broken by
            priority then generation order) — the deterministic
            tie-break every queue in the dispatcher falls back to.
        arrival: Arrival cycle.
        cls: Index into the scenario's class tuple.
    """

    rid: int
    arrival: int
    cls: int


class Lcg64:
    """Minimal 64-bit LCG (Knuth's MMIX constants).

    The standard library's Mersenne Twister would do, but an explicit
    8-line generator makes the determinism contract self-evident: the
    stream is a pure function of the seed, independent of Python
    version, platform and call history elsewhere in the process.
    """

    _MUL = 6364136223846793005
    _INC = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        # Avalanche the seed so small seeds do not correlate streams.
        self._state = (seed * 0x9E3779B97F4A7C15 + 1) & self._MASK

    def next_u64(self) -> int:
        self._state = (self._state * self._MUL + self._INC) & self._MASK
        return self._state

    def uniform(self) -> float:
        """Uniform float in the open interval (0, 1)."""
        # Top 53 bits; +1 over 2^53+1 keeps both endpoints open, so
        # log(u) below is always finite.
        return (self.next_u64() >> 11) / ((1 << 53) + 1) or 2.0 ** -54


def _exponential_gap(rng: Lcg64, rate: float) -> int:
    """One inter-arrival gap in whole cycles (at least 1)."""
    return max(1, round(-math.log(rng.uniform()) / rate))


def poisson_arrivals(classes: tuple[PriorityClass, ...], rate: float,
                     duration: int, seed: int) -> list[Request]:
    """Sample the merged open-loop arrival stream.

    Args:
        classes: The scenario's priority classes; each contributes an
            independent Poisson stream of rate ``rate * share``.
        rate: Total offered arrival rate in requests per cycle.
        duration: Arrival window in cycles; requests arrive in
            ``[1, duration]`` (the queue keeps draining afterwards).
        seed: Replication seed; each class derives its own sub-stream
            from ``(seed, class index)``.

    Returns the requests sorted by ``(arrival, -priority, rid order)``
    with dense ids assigned after the merge.
    """
    if rate <= 0.0:
        raise TrafficError(f"arrival rate must be > 0, got {rate}")
    if duration < 1:
        raise TrafficError(f"duration must be >= 1, got {duration}")
    proto: list[tuple[int, int, int, int]] = []
    for index, cls in enumerate(classes):
        rng = Lcg64((seed << 8) ^ index)
        t = 0
        seq = 0
        class_rate = rate * cls.share
        while True:
            t += _exponential_gap(rng, class_rate)
            if t > duration:
                break
            proto.append((t, -cls.priority, index, seq))
            seq += 1
    proto.sort()
    return [Request(rid=rid, arrival=arrival, cls=index)
            for rid, (arrival, _, index, _) in enumerate(proto)]


def load_trace(path: str,
               classes: tuple[PriorityClass, ...]) -> list[Request]:
    """Parse a trace file into the same stream shape as the sampler.

    Format: one request per line, ``<cycle> <class-name>`` separated
    by whitespace or a comma; blank lines and ``#`` comments are
    skipped.  Cycles need not be sorted — the stream is re-ordered by
    ``(arrival, -priority, line order)`` exactly like the sampler's
    merge — but must be integers >= 1, and every class name must be
    registered in *classes*.  Errors carry the file and line number.
    """
    by_name = {cls.name: index for index, cls in enumerate(classes)}
    proto: list[tuple[int, int, int, int]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise TrafficError(
            f"cannot read trace file {path}: {exc.strerror or exc}"
        ) from None
    for lineno, raw in enumerate(lines, start=1):
        text = raw.split("#", 1)[0].strip()
        if not text:
            continue
        parts = text.replace(",", " ").split()
        if len(parts) != 2:
            raise TrafficError(
                f"{path}:{lineno}: expected '<cycle> <class>', got "
                f"{text!r}"
            )
        cycle_text, name = parts
        try:
            arrival = int(cycle_text)
        except ValueError:
            raise TrafficError(
                f"{path}:{lineno}: arrival cycle must be an integer, "
                f"got {cycle_text!r}"
            ) from None
        if arrival < 1:
            raise TrafficError(
                f"{path}:{lineno}: arrival cycle must be >= 1, got "
                f"{arrival}"
            )
        if name not in by_name:
            raise TrafficError(
                f"{path}:{lineno}: unknown class {name!r}; this "
                f"scenario defines: "
                + ", ".join(cls.name for cls in classes)
            )
        index = by_name[name]
        proto.append((arrival, -classes[index].priority, index, lineno))
    if not proto:
        raise TrafficError(f"trace file {path} contains no requests")
    proto.sort()
    return [Request(rid=rid, arrival=arrival, cls=index)
            for rid, (arrival, _, index, _) in enumerate(proto)]
