"""QoS-weighted beat arbitration for streaming DMA traffic.

:class:`QosArbiter` is a drop-in for the ``TransferEngine.arbiter``
hook (``(stream_id, nbeats, start) -> done``) that divides the shared
interconnect's beat slots between *priority classes* instead of
first-come-first-served.  It generalizes the
:class:`~repro.soc.interconnect.SocInterconnect` claim table: time is
split into aligned windows of ``sum(weights)`` cycles, and class *c*
owns ``weights[c] * link_cap`` beat slots in every window — a weighted
TDM reservation.  A beat is granted at the first cycle where both the
link (``link_cap`` beats per cycle) and the class's window quota have
room, so under contention a weight-3 class drains ~3x faster than a
weight-1 class, and an idle class's slots simply go unused by others
(the reservation is non-work-conserving, which is what makes the
latency bound per class independent of the other classes' load).

Streams (one per cluster DMA channel) are *bound* to a class by the
dispatcher when it places a request (:meth:`QosArbiter.bind`), so one
physical channel serves different classes over time and each beat is
accounted to the class that owns it right now.

With ``weights=None`` the arbiter degrades to plain FCFS under the
per-cycle cap — the contended-but-unweighted baseline the ``--policy``
flag calls ``fifo``/``priority`` (without ``+qos``).

A class with weight 0 owns no slots and is never granted; the
:attr:`~QosArbiter.max_wait` starvation guard turns that (or any
misconfigured arbiter that stops granting) into a one-line
:class:`~repro.traffic.arrival.TrafficError` instead of an unbounded
search.
"""

from __future__ import annotations

from ..mem import StreamStats, stat_alias
from .arrival import TrafficError

__all__ = ["QosArbiter", "QosClassStats"]


class QosClassStats(StreamStats):
    """Per-class arbitration tallies, in the shared stats shape.

    ``beats`` aliases ``grants`` exactly like the interconnect's
    :class:`~repro.soc.interconnect.LinkStats` does.
    """

    beats = stat_alias("grants")


class QosArbiter:
    """Windowed weighted-TDM beat arbiter over one shared link.

    Args:
        weights: Per-class beat-slot weights.  Class *c* is reserved
            ``weights[c] * link_cap`` slots in every aligned window of
            ``sum(weights)`` cycles; the reservation is exact (the
            window's slots add up to the link's capacity).  ``None``
            disables weighting: plain FCFS under ``link_cap``.
        link_cap: Total beats the link grants per cycle.
        max_wait: Starvation guard — if a single beat cannot be placed
            within this many cycles of its request, arbitration raises
            a one-line :class:`TrafficError` instead of scanning
            forever (a zero-weight class or a never-granting custom
            quota hits this).
        n_classes: Number of classes to keep stats for in FCFS mode
            (``weights=None``); ignored when weights are given (the
            weight tuple defines the class count).
    """

    def __init__(self, weights: tuple[int, ...] | None = None,
                 link_cap: int = 1, max_wait: int = 1 << 20,
                 n_classes: int | None = None) -> None:
        if link_cap < 1:
            raise TrafficError(
                f"link_cap must be >= 1, got {link_cap}")
        if max_wait < 1:
            raise TrafficError(
                f"max_wait must be >= 1, got {max_wait}")
        if weights is not None:
            if not weights:
                raise TrafficError("weights must not be empty")
            if any(w < 0 for w in weights):
                raise TrafficError(
                    f"weights must be >= 0, got {weights}")
            if sum(weights) < 1:
                raise TrafficError(
                    f"at least one weight must be positive, got "
                    f"{weights}")
        self.weights = tuple(weights) if weights is not None else None
        self.link_cap = link_cap
        self.max_wait = max_wait
        if weights is not None:
            n_classes = len(weights)
        elif n_classes is None:
            n_classes = 1
        elif n_classes < 1:
            raise TrafficError(
                f"n_classes must be >= 1, got {n_classes}")
        #: Cycles per reservation window (1 in FCFS mode).
        self.window = sum(weights) if weights is not None else 1
        #: Beat slots class c owns per window.
        self.quota = (tuple(w * link_cap for w in weights)
                      if weights is not None else None)
        self.stats = [QosClassStats() for _ in range(n_classes)]
        #: claims[cycle] -> total beats granted that cycle.
        self._claims: dict[int, int] = {}
        #: per-class claims[window index] -> beats granted to that
        #: class inside the window.
        self._window_claims: list[dict[int, int]] = [
            {} for _ in range(n_classes)
        ]
        self._bound: dict[int, int] = {}
        self._claim_count = 0

    # ------------------------------------------------------------------
    def bind(self, stream_id: int, cls: int) -> None:
        """Account *stream_id*'s next beats to class *cls*.

        The dispatcher re-binds a cluster's DMA stream every time it
        places a request of a different class on that cluster.
        """
        n_classes = len(self.stats)
        if not 0 <= cls < n_classes:
            raise TrafficError(
                f"class index {cls} out of range for {n_classes} "
                f"class(es)")
        self._bound[stream_id] = cls

    def class_of(self, stream_id: int) -> int:
        """The class *stream_id* currently accounts to (default 0)."""
        return self._bound.get(stream_id, 0)

    # ------------------------------------------------------------------
    def _ideal_done(self, nbeats: int, start: int) -> int:
        """Completion with the link all to ourselves (no contention)."""
        return start + -(-nbeats // self.link_cap)

    def transfer(self, stream_id: int, nbeats: int, start: int) -> int:
        """Arbitrate one transfer of *nbeats* beats issued at *start*.

        The ``TransferEngine.arbiter`` contract: returns the cycle the
        last beat lands (> *start* for any positive beat count; equal
        to *start* for an empty transfer).
        """
        cls = self.class_of(stream_id)
        stats = self.stats[cls]
        stats.transfers += 1
        if nbeats <= 0:
            return start
        link_cap = self.link_cap
        window = self.window
        quota = self.quota[cls] if self.quota is not None else None
        claims = self._claims
        mine = self._window_claims[cls]
        deadline = start + self.max_wait
        t = start + 1                       # first beat lands next cycle
        for _ in range(nbeats):
            while claims.get(t, 0) >= link_cap \
                    or (quota is not None
                        and mine.get(t // window, 0) >= quota):
                t += 1
                if t > deadline:
                    share = ("unweighted" if quota is None
                             else f"quota {quota}/window")
                    raise TrafficError(
                        f"QoS starvation: stream {stream_id} (class "
                        f"{cls}, {share}) waited > {self.max_wait} "
                        f"cycles for a beat slot requested at cycle "
                        f"{start}"
                    )
            claims[t] = claims.get(t, 0) + 1
            mine[t // window] = mine.get(t // window, 0) + 1
            self._claim_count += 1
        stats.beats += nbeats
        stats.stall_cycles += max(0, t - self._ideal_done(nbeats, start))
        if self._claim_count > (1 << 20):
            self._prune(t)
        return t

    def _prune(self, now: int, horizon: int = 1 << 16) -> None:
        """Drop claims far in the past to bound memory."""
        floor = now - horizon
        for cycle in [c for c in self._claims if c < floor]:
            del self._claims[cycle]
        window_floor = floor // self.window
        for table in self._window_claims:
            for index in [w for w in table if w < window_floor]:
                del table[index]
        self._claim_count = len(self._claims) \
            + sum(len(t) for t in self._window_claims)

    # ------------------------------------------------------------------
    @property
    def total_beats(self) -> int:
        return sum(s.beats for s in self.stats)

    @property
    def total_stall_cycles(self) -> int:
        return sum(s.stall_cycles for s in self.stats)

    def stall_rate(self) -> float:
        """Stall cycles per granted beat (0.0 when idle)."""
        beats = self.total_beats
        if beats == 0:
            return 0.0
        return self.total_stall_cycles / beats
