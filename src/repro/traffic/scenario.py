"""Traffic scenarios: classes + policy -> latency/throughput results.

A :class:`TrafficScenario` names everything an open-loop run needs —
the priority classes, the SoC shape the dispatcher places onto, the
policy string — and :func:`simulate` turns it plus an offered load
into a :class:`TrafficResult`: per-class latency histograms (exact
p50/p95/p99), sustained throughput, QoS arbitration tallies and
dispatcher occupancy.

Policy strings compose the two orthogonal knobs:

``fifo`` / ``priority``
    the dispatcher's queueing discipline (which waiting request gets
    the next free cluster);
``+qos`` suffix
    weight the interconnect's *beat* arbitration by class (the
    :class:`~repro.traffic.qos.QosArbiter` behind every cluster DMA
    engine's ``arbiter`` hook) instead of serving beats FCFS.

Results merge (:meth:`TrafficResult.merge`): the ``streamscale``
artifact pools replications over seeds in fixed seed order, so pooled
percentiles are one deterministic function of the seed set — sharding
the replications over processes cannot change them.

:func:`stream_record` reduces a result to the repo's universal
:class:`~repro.api.RunRecord` (schema v5's ``stream_detail`` block),
pricing energy from the per-class profiles; :func:`traffic_registry`
publishes the same numbers through the observability layer's
:class:`~repro.obs.MetricsRegistry`, latencies as ``histogram``-kind
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api.record import RunRecord, StreamClassStats, StreamDetail
from ..energy import PowerReport
from ..obs.metrics import Histogram, Metric, MetricsRegistry
from .arrival import PriorityClass, Request, TrafficError, poisson_arrivals
from .dispatch import Dispatcher
from .model import RequestProfile, build_profile, replay_engine
from .qos import QosArbiter

__all__ = [
    "POLICY_CHOICES",
    "ClassResult",
    "TrafficResult",
    "TrafficScenario",
    "build_profiles",
    "default_scenario",
    "parse_policy",
    "simulate",
    "stream_record",
    "traffic_registry",
]

#: Accepted scenario policy strings.
POLICY_CHOICES = ("fifo", "priority", "fifo+qos", "priority+qos")


def parse_policy(text: str) -> tuple[str, bool]:
    """Split a policy string into (dispatch policy, qos enabled)."""
    if text not in POLICY_CHOICES:
        raise TrafficError(
            f"unknown policy {text!r}; expected one of "
            + ", ".join(POLICY_CHOICES))
    if text.endswith("+qos"):
        return text[:-len("+qos")], True
    return text, False


@dataclass(frozen=True)
class TrafficScenario:
    """An open-loop streaming scenario over a multi-cluster SoC.

    Attributes:
        classes: The priority classes; arrival shares must sum to 1.
        clusters: Clusters the dispatcher places requests onto.
        cores: Cores per cluster (the shape requests are profiled
            on).
        policy: One of :data:`POLICY_CHOICES`.
        link_cap: Interconnect beats granted per cycle across all
            clusters' DMA streams.
    """

    classes: tuple[PriorityClass, ...]
    clusters: int = 2
    cores: int = 4
    policy: str = "priority+qos"
    link_cap: int = 1

    def __post_init__(self) -> None:
        if not self.classes:
            raise TrafficError("scenario needs at least one class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise TrafficError(f"duplicate class names in {names}")
        total_share = sum(cls.share for cls in self.classes)
        if abs(total_share - 1.0) > 1e-9:
            raise TrafficError(
                f"class shares must sum to 1, got {total_share:g}")
        if self.clusters < 1:
            raise TrafficError(
                f"clusters must be >= 1, got {self.clusters}")
        if self.cores < 1:
            raise TrafficError(f"cores must be >= 1, got {self.cores}")
        parse_policy(self.policy)  # validates

    @property
    def backend_spec(self) -> str:
        """Spec-style name for records: ``traffic:CxM``."""
        return f"traffic:{self.clusters}x{self.cores}"


def default_scenario(policy: str = "priority+qos",
                     clusters: int = 2,
                     cores: int = 4) -> TrafficScenario:
    """The shipped two-class scenario: latency-critical vs bulk.

    ``hi`` is a small COPIFT ``expf`` (latency-critical inference-like
    requests, QoS weight 3); ``lo`` is a larger baseline ``logf``
    (bulk batch work, weight 1).  Both drain outputs, so their DMA
    beats genuinely contend on the interconnect.
    """
    return TrafficScenario(
        classes=(
            PriorityClass(name="hi", weight=3, priority=1,
                          kernel="expf", variant="copift", n=256,
                          share=0.3),
            PriorityClass(name="lo", weight=1, priority=0,
                          kernel="logf", variant="baseline", n=512,
                          share=0.7),
        ),
        clusters=clusters,
        cores=cores,
        policy=policy,
    )


def build_profiles(scenario: TrafficScenario,
                   cluster_config=None
                   ) -> tuple[RequestProfile, ...]:
    """Profile every class once on the scenario's cluster shape."""
    return tuple(build_profile(cls, scenario.cores,
                               cluster_config=cluster_config)
                 for cls in scenario.classes)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class ClassResult:
    """One class's accumulated outcome (mergeable across seeds)."""

    name: str
    weight: int
    priority: int
    requests: int = 0
    completed: int = 0
    latency: Histogram = field(default_factory=Histogram)
    queue_cycles_sum: int = 0
    service_cycles_sum: int = 0
    qos_beats: int = 0
    qos_stall_cycles: int = 0

    def merge(self, other: "ClassResult") -> None:
        self.requests += other.requests
        self.completed += other.completed
        self.latency.merge(other.latency)
        self.queue_cycles_sum += other.queue_cycles_sum
        self.service_cycles_sum += other.service_cycles_sum
        self.qos_beats += other.qos_beats
        self.qos_stall_cycles += other.qos_stall_cycles

    @property
    def mean_queue_cycles(self) -> float:
        return self.queue_cycles_sum / self.completed \
            if self.completed else 0.0

    @property
    def mean_service_cycles(self) -> float:
        return self.service_cycles_sum / self.completed \
            if self.completed else 0.0

    def stats(self) -> StreamClassStats:
        """Freeze into the RunRecord's per-class detail shape."""
        return StreamClassStats(
            name=self.name,
            weight=self.weight,
            priority=self.priority,
            requests=self.requests,
            completed=self.completed,
            p50=self.latency.p50 or 0,
            p95=self.latency.p95 or 0,
            p99=self.latency.p99 or 0,
            mean_queue_cycles=self.mean_queue_cycles,
            mean_service_cycles=self.mean_service_cycles,
            qos_beats=self.qos_beats,
            qos_stall_cycles=self.qos_stall_cycles,
        )


@dataclass
class TrafficResult:
    """Outcome of one (or several merged) open-loop runs."""

    policy: str
    offered_rate: float
    duration: int
    requests: int = 0
    completed: int = 0
    #: Sum of per-run makespans (so pooled throughput is
    #: completed / makespan across merged runs too).
    makespan: int = 0
    peak_queue_depth: int = 0
    cluster_busy: list[int] = field(default_factory=list)
    classes: list[ClassResult] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Sustained completion rate, requests per cycle."""
        return self.completed / self.makespan if self.makespan else 0.0

    def merge(self, other: "TrafficResult") -> None:
        """Pool another replication (same scenario, different seed)."""
        if (other.policy != self.policy
                or other.duration != self.duration
                or other.offered_rate != self.offered_rate):
            raise TrafficError(
                "cannot merge results from different scenarios: "
                f"({self.policy}, {self.offered_rate:g}, "
                f"{self.duration}) vs ({other.policy}, "
                f"{other.offered_rate:g}, {other.duration})")
        self.requests += other.requests
        self.completed += other.completed
        self.makespan += other.makespan
        self.peak_queue_depth = max(self.peak_queue_depth,
                                    other.peak_queue_depth)
        if not self.cluster_busy:
            self.cluster_busy = list(other.cluster_busy)
        else:
            for c, busy in enumerate(other.cluster_busy):
                self.cluster_busy[c] += busy
        if not self.classes:
            self.classes = other.classes
        else:
            for mine, theirs in zip(self.classes, other.classes):
                mine.merge(theirs)


# ----------------------------------------------------------------------
# simulation
# ----------------------------------------------------------------------
def simulate(scenario: TrafficScenario,
             profiles: tuple[RequestProfile, ...],
             rate: float, duration: int, seed: int,
             requests: list[Request] | None = None) -> TrafficResult:
    """Run one open-loop replication of *scenario*.

    Args:
        scenario: The scenario (classes, shape, policy).
        profiles: Per-class profiles from :func:`build_profiles`.
        rate: Offered arrival rate, requests per cycle (ignored when
            *requests* is given).
        duration: Arrival window in cycles (ignored when *requests*
            is given).
        seed: Replication seed for the arrival sampler.
        requests: Pre-built arrival stream (trace replay); overrides
            the Poisson sampler.
    """
    if len(profiles) != len(scenario.classes):
        raise TrafficError(
            f"{len(scenario.classes)} class(es) but {len(profiles)} "
            f"profile(s)")
    if requests is None:
        requests = poisson_arrivals(scenario.classes, rate, duration,
                                    seed)
    base_policy, qos_on = parse_policy(scenario.policy)
    weights = tuple(cls.weight for cls in scenario.classes) \
        if qos_on else None
    arbiter = QosArbiter(weights=weights, link_cap=scenario.link_cap,
                         n_classes=len(scenario.classes))
    engines = [replay_engine(profiles[0], c, arbiter.transfer)
               for c in range(scenario.clusters)]
    dispatcher = Dispatcher(scenario.classes, profiles,
                            scenario.clusters, policy=base_policy,
                            engines=engines, qos=arbiter)
    served = dispatcher.run(requests)

    result = TrafficResult(
        policy=scenario.policy,
        offered_rate=rate,
        duration=duration,
        requests=len(requests),
        completed=len(served),
        makespan=max((c.finish for c in served), default=0),
        peak_queue_depth=dispatcher.peak_queue_depth,
        cluster_busy=list(dispatcher.cluster_busy),
        classes=[ClassResult(name=cls.name, weight=cls.weight,
                             priority=cls.priority)
                 for cls in scenario.classes],
    )
    for request in requests:
        result.classes[request.cls].requests += 1
    for done in served:
        cres = result.classes[done.cls]
        cres.completed += 1
        cres.latency.record(done.total_cycles)
        cres.queue_cycles_sum += done.queue_cycles
        cres.service_cycles_sum += done.service_cycles
    for index, stats in enumerate(arbiter.stats):
        result.classes[index].qos_beats = stats.beats
        result.classes[index].qos_stall_cycles = stats.stall_cycles
    return result


# ----------------------------------------------------------------------
# record + metrics surfaces
# ----------------------------------------------------------------------
def stream_record(scenario: TrafficScenario,
                  profiles: tuple[RequestProfile, ...],
                  result: TrafficResult,
                  seed: int | None = None) -> RunRecord:
    """Reduce a traffic result to the universal :class:`RunRecord`.

    Dynamic energy prices every completed request at its class
    profile's activity energy; constant energy powers all clusters for
    the pooled makespan — so queueing (idle clusters burning
    background power) shows up in the energy column, exactly as it
    would on silicon.
    """
    completed_by_class = [c.completed for c in result.classes]
    dynamic = sum(n * p.dynamic_energy_pj
                  for n, p in zip(completed_by_class, profiles))
    constant = (profiles[0].constant_pj_per_cycle * result.makespan
                * scenario.clusters) if profiles else 0.0
    breakdown = {
        f"class.{p.name}": n * p.dynamic_energy_pj
        for n, p in zip(completed_by_class, profiles)
    }
    power = PowerReport(
        cycles=result.makespan,
        dynamic_energy_pj=dynamic,
        constant_energy_pj=constant,
        breakdown_pj=breakdown,
    )
    int_instructions = sum(n * p.int_instructions
                           for n, p in zip(completed_by_class, profiles))
    fp_instructions = sum(n * p.fp_instructions
                          for n, p in zip(completed_by_class, profiles))
    issued = int_instructions + fp_instructions
    return RunRecord(
        kernel="+".join(cls.kernel for cls in scenario.classes),
        variant="+".join(cls.variant for cls in scenario.classes),
        n=result.requests,
        block=None,
        seed=seed,
        backend=scenario.backend_spec,
        cycles=result.makespan,
        total_cycles=result.makespan,
        int_instructions=int_instructions,
        fp_instructions=fp_instructions,
        ipc=issued / (result.makespan * scenario.clusters)
        if result.makespan else 0.0,
        counters={},
        power=power,
        stream=StreamDetail(
            clusters=scenario.clusters,
            cores_per_cluster=scenario.cores,
            policy=scenario.policy,
            offered_rate=result.offered_rate,
            duration=result.duration,
            requests=result.requests,
            completed=result.completed,
            makespan=result.makespan,
            peak_queue_depth=result.peak_queue_depth,
            cluster_busy_cycles=tuple(result.cluster_busy),
            classes=tuple(c.stats() for c in result.classes),
        ),
    )


def traffic_registry(scenario: TrafficScenario) -> MetricsRegistry:
    """Metrics over a :class:`TrafficResult`, latencies as histograms.

    Class latencies are ``histogram``-kind metrics, so
    ``registry.collect(result)`` flattens each into
    ``traffic.<class>.latency.{count,p50,p95,p99}`` scalars.
    """
    registry = MetricsRegistry()
    registry.register_many([
        Metric("traffic.requests", "requests",
               "requests that arrived, all classes",
               lambda r: r.requests, kind="counter"),
        Metric("traffic.completed", "requests",
               "requests served to completion",
               lambda r: r.completed, kind="counter"),
        Metric("traffic.makespan", "cycles",
               "cycle the last request finished",
               lambda r: r.makespan),
        Metric("traffic.throughput", "requests/cycle",
               "sustained completion rate",
               lambda r: r.throughput),
        Metric("traffic.queue_depth.peak", "requests",
               "largest pending-queue depth observed",
               lambda r: r.peak_queue_depth),
    ])
    for index, cls in enumerate(scenario.classes):
        registry.register(Metric(
            f"traffic.{cls.name}.latency", "cycles",
            f"total latency of class {cls.name!r} "
            f"(weight {cls.weight}, priority {cls.priority})",
            lambda r, i=index: r.classes[i].latency,
            kind="histogram",
        ))
        registry.register(Metric(
            f"traffic.{cls.name}.qos_stall_cycles", "cycles",
            f"beat-arbitration stalls absorbed by class {cls.name!r}",
            lambda r, i=index: r.classes[i].qos_stall_cycles,
            kind="counter",
        ))
    return registry
