"""Open-loop streaming traffic: arrivals, dispatch, QoS, percentiles.

The layer that turns the closed-batch simulator into a serving-
capacity model.  A scenario flows through four stages:

1. **arrival** (:mod:`repro.traffic.arrival`) — a deterministic,
   seeded open-loop request stream: merged per-class Poisson
   processes, or a replayed trace file.  Each request carries a
   :class:`PriorityClass` (kernel workload + dispatch priority + QoS
   weight).
2. **profile** (:mod:`repro.traffic.model`) — each class is simulated
   *once*, uncontended, on a cluster of the scenario's shape,
   capturing its service time and its DMA transfer schedule.
3. **dispatch** (:mod:`repro.traffic.dispatch`) — a discrete-event
   queueing simulation places requests onto free clusters (FIFO or
   priority order) and replays each request's profiled DMA schedule
   through a real :class:`~repro.mem.TransferEngine` per cluster.
4. **QoS arbitration** (:mod:`repro.traffic.qos`) — the engines share
   one :class:`QosArbiter` through the ``TransferEngine.arbiter``
   hook: a windowed weighted-TDM claim table, so high-weight classes'
   beats win interconnect grants under contention and the slip feeds
   straight back into per-request service time.

:mod:`repro.traffic.scenario` ties the stages together and reduces a
run to per-class latency histograms (exact p50/p95/p99), sustained
throughput, a schema-v5 :class:`~repro.api.RunRecord` and a
:class:`~repro.obs.MetricsRegistry` view.  The ``streamscale``
artifact (``python -m repro.eval streamscale``) sweeps offered load
over this machinery.
"""

from .arrival import (
    Lcg64,
    PriorityClass,
    Request,
    TrafficError,
    load_trace,
    poisson_arrivals,
)
from .dispatch import POLICIES, CompletedRequest, Dispatcher
from .model import RequestProfile, build_profile, replay_engine
from .qos import QosArbiter, QosClassStats
from .scenario import (
    POLICY_CHOICES,
    ClassResult,
    TrafficResult,
    TrafficScenario,
    build_profiles,
    default_scenario,
    parse_policy,
    simulate,
    stream_record,
    traffic_registry,
)

__all__ = [
    "POLICIES",
    "POLICY_CHOICES",
    "ClassResult",
    "CompletedRequest",
    "Dispatcher",
    "Lcg64",
    "PriorityClass",
    "QosArbiter",
    "QosClassStats",
    "Request",
    "RequestProfile",
    "TrafficError",
    "TrafficResult",
    "TrafficScenario",
    "build_profile",
    "build_profiles",
    "default_scenario",
    "load_trace",
    "parse_policy",
    "poisson_arrivals",
    "replay_engine",
    "simulate",
    "stream_record",
    "traffic_registry",
]
