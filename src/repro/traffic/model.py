"""Per-class request profiles: simulate once, replay many times.

An open-loop scenario completes thousands of requests; simulating a
full cluster per request would make the sweep intractable and — more
importantly — non-compositional.  Instead each :class:`PriorityClass`
is simulated **once**, uncontended, on a cluster of the scenario's
shape (:func:`build_profile`), capturing

* the request's uncontended **service time** (the cluster makespan,
  including the write-back drain fence — streaming requests must pay
  for getting their results out, which is exactly the traffic QoS
  arbitrates), and
* the request's **DMA transfer schedule**: every descriptor the
  cluster engine served, with issue/completion cycles relative to
  request start.

The queueing simulation then *replays* that schedule through a real
:class:`~repro.mem.TransferEngine` per cluster whose ``arbiter`` hook
is the shared :class:`~repro.traffic.qos.QosArbiter` — so contention
between concurrent requests is computed by the same beat-claim
machinery the SoC interconnect uses, not by an analytic approximation.
Any completion slip the arbiter adds over the profiled schedule
extends the request's service time one-for-one (the profiled program
ends in a ``dma.wait`` fence, so compute cannot finish before its
drain does).

Profiles also carry the energy decomposition of one request (dynamic
pJ per request, constant pJ/cycle of a powered cluster), so a stream
record can price a whole scenario without re-running the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster import ClusterConfig, partition_kernel
from ..cluster.machine import ClusterMachine
from ..energy import ClusterEnergyModel
from ..kernels.common import MAIN_REGION
from ..kernels.registry import kernel
from ..mem import TransferEngine
from .arrival import PriorityClass

__all__ = ["RequestProfile", "build_profile", "replay_engine"]


@dataclass(frozen=True)
class RequestProfile:
    """Everything the queueing simulation needs about one class.

    Attributes:
        name: The priority class this profiles.
        kernel / variant / n / cores: Workload shape, echoed for
            payloads.
        cycles: Uncontended service time in cycles (cluster makespan,
            drain fence included).
        dma_bytes: Bytes one request moves through the cluster DMA.
        transfers: The profiled DMA schedule, one
            ``(core, issue, dst, src, nbytes, done)`` tuple per
            descriptor in engine-service order; cycles are relative to
            request start.
        bandwidth / setup_latency: Engine parameters the replay
            engines must share with the profiling run.
        dynamic_energy_pj: Activity energy of one request.
        constant_pj_per_cycle: Background power of one powered
            cluster, per cycle (prices idle/queueing time too).
    """

    name: str
    kernel: str
    variant: str
    n: int
    cores: int
    cycles: int
    dma_bytes: int
    transfers: tuple[tuple[int, int, int, int, int, int], ...]
    bandwidth: int
    setup_latency: int
    dynamic_energy_pj: float
    constant_pj_per_cycle: float
    int_instructions: int = 0
    fp_instructions: int = 0


def build_profile(cls: PriorityClass, cores: int,
                  cluster_config: ClusterConfig | None = None,
                  check: bool = False) -> RequestProfile:
    """Simulate one uncontended request of *cls* and profile it.

    Runs the class's kernel on a *cores*-core cluster in write-back
    mode (outputs drain to L2 — the traffic a streaming server
    actually ships), keeping the machine so the DMA engine's served
    descriptor list can be captured alongside the makespan.
    """
    kernel_def = kernel(cls.kernel)
    parted = partition_kernel(kernel_def, cls.n, cores,
                              variant=cls.variant, writeback=True)
    config = cluster_config or ClusterConfig()
    if config.n_cores != cores:
        config = replace(config, n_cores=cores)
    if not config.writeback:
        config = replace(config, writeback=True)
    # ClusterWorkload.run would hide the machine; build it by hand so
    # cluster.dma.transfers stays readable after the run.
    cluster = ClusterMachine(config=config)
    for instance in parted.instances:
        cluster.add_core(instance.program, instance.memory)
    result = cluster.run()
    if check:
        for instance, machine in zip(parted.instances, cluster.cores):
            instance.verify(instance.memory, machine)
    region = result.region(MAIN_REGION)
    power = ClusterEnergyModel().report(
        region.counters, result.cycles, cores,
        n_banks=config.tcdm_banks,
        tcdm_accesses=result.tcdm_accesses,
        tcdm_conflict_cycles=result.tcdm_conflict_cycles,
        dma_bytes=result.dma_bytes,
        dma_transfers=result.counters.dma_transfers,
        barriers=result.barrier_count,
        dma_active=any(i.dma_active for i in parted.instances),
    )
    return RequestProfile(
        name=cls.name,
        kernel=cls.kernel,
        variant=cls.variant,
        n=cls.n,
        cores=cores,
        cycles=result.cycles,
        dma_bytes=result.dma_bytes,
        transfers=tuple(
            (t.core_id, t.issue, t.dst, t.src, t.nbytes, t.done)
            for t in cluster.dma.transfers
        ),
        bandwidth=cluster.dma.bandwidth,
        setup_latency=cluster.dma.setup_latency,
        dynamic_energy_pj=power.dynamic_energy_pj,
        constant_pj_per_cycle=power.constant_energy_pj / result.cycles
        if result.cycles else 0.0,
        int_instructions=region.counters.int_issued,
        fp_instructions=region.counters.fp_issued,
    )


def replay_engine(profile: RequestProfile, stream_id: int,
                  arbiter) -> TransferEngine:
    """A transfer engine matching the profiling run's parameters.

    One per cluster; *arbiter* is the shared beat arbiter (the
    ``QosArbiter.transfer`` bound method, or ``None`` for uncontended
    replay).  Capacity checks are off — the profiled addresses were
    validated when the schedule was recorded.
    """
    return TransferEngine(
        bandwidth=profile.bandwidth,
        setup_latency=profile.setup_latency,
        tcdm_size=None,
        stream_id=stream_id,
        arbiter=arbiter,
    )
