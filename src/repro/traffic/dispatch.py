"""Request dispatcher: open-loop queueing onto free SoC clusters.

The dispatcher is a discrete-event simulation over integer cycles:
requests join a pending queue on arrival and are placed onto the
lowest-numbered free cluster under one of two policies —

* ``fifo`` — strict arrival order across classes;
* ``priority`` — descending :attr:`PriorityClass.priority`, FIFO
  within a class (a queued high-priority request always dispatches
  before any waiting low-priority one; running requests are never
  preempted).

Service time starts from the class's uncontended
:class:`~repro.traffic.model.RequestProfile` and is stretched by
whatever completion slip the shared beat arbiter adds when the
request's profiled DMA schedule is replayed through the cluster's
:class:`~repro.mem.TransferEngine` (see :mod:`repro.traffic.model`).
Every completed request keeps its three latency components — queue
wait, service, total — in cycles; the scenario layer folds them into
per-class histograms.

Event ordering is fully deterministic: completions at cycle *t* are
processed before arrivals at *t* (a cluster freed this cycle can
accept this cycle's arrival), pending ties break by request id, free
clusters by cluster id.  No randomness, no floats — two runs over the
same request list are bit-identical, which is what lets the
``streamscale`` artifact shard replications over processes and still
merge to one canonical payload.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .arrival import PriorityClass, Request, TrafficError
from .model import RequestProfile
from .qos import QosArbiter

__all__ = ["CompletedRequest", "Dispatcher", "POLICIES"]

#: Dispatch policies :class:`Dispatcher` accepts.
POLICIES = ("fifo", "priority")


@dataclass(frozen=True)
class CompletedRequest:
    """One served request with its latency decomposition."""

    rid: int
    cls: int
    arrival: int
    start: int
    finish: int
    cluster: int

    @property
    def queue_cycles(self) -> int:
        """Cycles spent waiting for a free cluster."""
        return self.start - self.arrival

    @property
    def service_cycles(self) -> int:
        """Cycles on the cluster (profile + arbitration slip)."""
        return self.finish - self.start

    @property
    def total_cycles(self) -> int:
        """Arrival-to-completion latency."""
        return self.finish - self.arrival


class Dispatcher:
    """Queue requests and schedule them onto free clusters.

    Args:
        classes: The scenario's priority classes.
        profiles: One :class:`RequestProfile` per class, same order.
        n_clusters: Clusters available for placement.
        policy: ``fifo`` or ``priority``.
        engines: Optional per-cluster transfer engines for DMA
            replay (one per cluster, ``stream_id == cluster id``).
            ``None`` serves every request in its uncontended profile
            time — the analytic baseline tests compare against.
        qos: The shared :class:`QosArbiter` behind *engines*, if any;
            the dispatcher re-binds a cluster's stream to the class it
            is about to serve.
    """

    def __init__(self, classes: tuple[PriorityClass, ...],
                 profiles: tuple[RequestProfile, ...],
                 n_clusters: int, policy: str = "fifo",
                 engines=None, qos: QosArbiter | None = None) -> None:
        if policy not in POLICIES:
            raise TrafficError(
                f"unknown dispatch policy {policy!r}; expected one "
                f"of {POLICIES}")
        if len(profiles) != len(classes):
            raise TrafficError(
                f"{len(classes)} class(es) but {len(profiles)} "
                f"profile(s)")
        if n_clusters < 1:
            raise TrafficError(
                f"n_clusters must be >= 1, got {n_clusters}")
        if engines is not None and len(engines) != n_clusters:
            raise TrafficError(
                f"{n_clusters} cluster(s) but {len(engines)} "
                f"engine(s)")
        self.classes = classes
        self.profiles = profiles
        self.n_clusters = n_clusters
        self.policy = policy
        self.engines = engines
        self.qos = qos
        #: Per-cluster busy cycles (service time summed per placement).
        self.cluster_busy = [0] * n_clusters
        #: Largest pending-queue depth observed.
        self.peak_queue_depth = 0

    # ------------------------------------------------------------------
    def _queue_key(self, request: Request) -> tuple:
        if self.policy == "priority":
            return (-self.classes[request.cls].priority,
                    request.arrival, request.rid)
        return (request.arrival, request.rid)

    def _serve(self, request: Request, cluster: int,
               start: int) -> int:
        """Place *request* on *cluster* at *start*; returns finish."""
        profile = self.profiles[request.cls]
        if self.engines is None:
            return start + profile.cycles
        engine = self.engines[cluster]
        if self.qos is not None:
            self.qos.bind(cluster, request.cls)
        # Replay the profiled DMA schedule at this request's offset;
        # the arbiter may slip completions past the uncontended
        # profile, and the worst slip extends the service time
        # one-for-one (the program's dma.wait fence gates its end).
        slip = 0
        for core, issue, dst, src, nbytes, done in profile.transfers:
            granted = engine.start(core, dst, src, nbytes,
                                   start + issue)
            slip = max(slip, granted - (start + done))
        return start + profile.cycles + max(0, slip)

    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> list[CompletedRequest]:
        """Serve *requests* to completion; returns them in finish
        order (ties by request id)."""
        pending: list[tuple] = []          # (policy key..., request)
        busy: list[tuple[int, int]] = []   # (finish, cluster)
        free = list(range(self.n_clusters))
        heapq.heapify(free)
        completed: list[CompletedRequest] = []
        index = 0
        now = 0
        n = len(requests)
        while index < n or pending or busy:
            if pending and free:
                *_, request = heapq.heappop(pending)
                cluster = heapq.heappop(free)
                finish = self._serve(request, cluster, now)
                self.cluster_busy[cluster] += finish - now
                heapq.heappush(busy, (finish, cluster))
                completed.append(CompletedRequest(
                    rid=request.rid, cls=request.cls,
                    arrival=request.arrival, start=now,
                    finish=finish, cluster=cluster,
                ))
                continue
            # Advance to the next event: the earliest completion or
            # arrival.  Completions at a cycle release their cluster
            # before that cycle's arrivals are considered.
            horizon = []
            if busy:
                horizon.append(busy[0][0])
            if index < n:
                horizon.append(requests[index].arrival)
            now = max(now, min(horizon))
            while busy and busy[0][0] <= now:
                _, cluster = heapq.heappop(busy)
                heapq.heappush(free, cluster)
            while index < n and requests[index].arrival <= now:
                request = requests[index]
                heapq.heappush(pending,
                               (*self._queue_key(request), request))
                index += 1
            self.peak_queue_depth = max(self.peak_queue_depth,
                                        len(pending))
        completed.sort(key=lambda c: (c.finish, c.rid))
        return completed
