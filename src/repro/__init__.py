"""COPIFT reproduction: dual-issue execution of mixed integer and
floating-point workloads on energy-efficient in-order RISC-V cores.

A full-system reproduction of Colagrande & Benini, DAC 2025
(arXiv:2503.20590), built on a cycle-level Python model of a Snitch-like
core with FREP pseudo dual-issue, SSR/ISSR stream semantic registers,
and the COPIFT custom-1 ISA extension.

Package map:

* :mod:`repro.isa`     -- registers, instruction set, assembler DSL.
* :mod:`repro.sim`     -- functional + cycle-level core model.
* :mod:`repro.mem`     -- unified memory-traffic engine shared by the
  cluster and SoC DMA layers (directions, beat model, stream stats).
* :mod:`repro.cluster` -- N-core cluster: banked TCDM, DMA, barriers.
* :mod:`repro.soc`     -- C-cluster SoC: shared L2, beat-arbitrated
  interconnect, SoC partitioning.
* :mod:`repro.energy`  -- activity-based power/energy model.
* :mod:`repro.copift`  -- the seven-step COPIFT methodology + Eqs. 1-3.
* :mod:`repro.kernels` -- the six evaluated kernels, baseline + COPIFT.
* :mod:`repro.api`     -- unified experiment API: Workload, backends,
  RunRecord, Sweep, the artifact registry.
* :mod:`repro.eval`    -- Table I, Figures 2-3, cluster scaling.

Quick start::

    from repro.api import Workload, parse_backend

    record = parse_backend("core").run(Workload("expf", "copift",
                                                n=4096))
    print(record.cycles, record.ipc, record.power_mw)
"""

from .api import (
    ClusterBackend,
    CoreBackend,
    RunRecord,
    SocBackend,
    Sweep,
    Workload,
    parse_backend,
)
from .eval import measure_instance, measure_kernel
from .kernels import KERNELS, kernel

__version__ = "1.3.0"

__all__ = ["KERNELS", "ClusterBackend", "CoreBackend", "RunRecord",
           "SocBackend", "Sweep", "Workload", "kernel",
           "measure_instance", "measure_kernel", "parse_backend",
           "__version__"]
