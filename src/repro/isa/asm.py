"""Textual RISC-V assembly parser.

Parses the subset of assembly syntax the ISA table defines, producing a
:class:`~repro.isa.program.Program`.  This is the front door for the COPIFT
methodology demos (e.g. the paper's Figure 1b listing) and for tests.

Supported syntax::

    loop:                       # labels
        fld   fa3, 0(a3)        # memory operands as imm(base)
        fmadd.d fa2, fa0, fa3, fa1
        addi  a3, a3, 8         # immediates in decimal or 0x hex
        bne   a3, a1, loop      # branch targets by label
        # full-line and trailing comments

Register operands accept ABI names and ``x``/``f`` numeric names.
"""

from __future__ import annotations

import re

from .instructions import spec as get_spec
from .program import Program, ProgramBuilder

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(([\w.]+)\)$")


class AsmSyntaxError(ValueError):
    """Raised for malformed assembly input, with line information."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line!r}")
        self.line_no = line_no
        self.line = line


def _parse_int(token: str) -> int:
    return int(token, 0)


def _split_operands(text: str) -> list[str]:
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


def parse(text: str, name: str = "") -> Program:
    """Parse assembly *text* into a :class:`Program`.

    Raises:
        AsmSyntaxError: on malformed lines, unknown mnemonics or operand
            count mismatches.
    """
    builder = ProgramBuilder(name)
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            try:
                builder.label(label_match.group(1))
            except ValueError as exc:
                raise AsmSyntaxError(line_no, raw_line, str(exc)) from exc
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1].strip() if len(parts) > 1 else ""
        try:
            spec = get_spec(mnemonic)
        except KeyError as exc:
            raise AsmSyntaxError(line_no, raw_line, str(exc)) from exc
        tokens = _split_operands(operand_text)
        try:
            operands = _tokens_to_operands(spec.roles, tokens,
                                           spec.mem_base_role)
            builder.emit(mnemonic, *operands)
        except (ValueError, TypeError, KeyError) as exc:
            raise AsmSyntaxError(line_no, raw_line, str(exc)) from exc
    try:
        return builder.build()
    except ValueError as exc:
        raise AsmSyntaxError(0, "", str(exc)) from exc


def _tokens_to_operands(
    roles: tuple[str, ...],
    tokens: list[str],
    mem_base_role: str | None,
) -> list:
    """Map comma-separated operand tokens onto spec roles.

    For memory-format instructions the textual form has one fewer token
    than the spec roles (``imm(base)`` covers both ``imm`` and the base
    register), so it is expanded here.  AMO-style instructions carry
    extra register tokens after the memory operand (``amoadd.w rd,
    imm(base), rs2``).
    """
    if mem_base_role is not None:
        if len(tokens) != len(roles) - 1:
            raise ValueError(
                f"memory instruction expects 'reg, imm(base)"
                f"{', ...' if len(roles) > 3 else ''}', got {tokens}"
            )
        mem_match = _MEM_RE.match(tokens[1])
        if not mem_match:
            raise ValueError(f"malformed memory operand {tokens[1]!r}")
        # Roles are (reg, imm, base[, extras...]) by construction of the
        # spec table.
        return [tokens[0], _parse_int(mem_match.group(1)),
                mem_match.group(2), *tokens[2:]]
    if len(tokens) != len(roles):
        raise ValueError(
            f"expected {len(roles)} operands for roles {roles}, "
            f"got {len(tokens)}"
        )
    operands = []
    for role, token in zip(roles, tokens):
        if role == "imm":
            operands.append(_parse_int(token))
        else:
            operands.append(token)  # registers & labels resolved downstream
    return operands
