"""Instruction-set specification for the RV32G subset Snitch executes.

Every mnemonic the simulator understands is described by an
:class:`InstrSpec` entry in :data:`SPECS`.  The spec captures the three
properties COPIFT and the timing model care about:

* **thread** — whether the instruction issues on the integer core
  (:attr:`Thread.INT`) or is offloaded to the FP subsystem
  (:attr:`Thread.FP`).  This is the partitioning axis of the whole paper.
* **operand roles** — which operands are integer/FP sources/destinations,
  from which per-instruction register reads/writes are derived.  FP
  instructions with integer-register operands (loads, stores, conversions,
  comparisons, moves) are exactly the cross-thread dependencies COPIFT has
  to eliminate.
* **latency class** — lookup key into the core's latency table.

Includes the COPIFT custom-1 extension instructions (``cfcvt.d.w`` & co.)
that re-encode conversion/comparison semantics to operate entirely on the
FP register file, plus Snitch's ``frep``/SSR control instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Thread(enum.Enum):
    """Issue engine an instruction executes on."""

    INT = "int"
    FP = "fp"


class OpClass(enum.Enum):
    """Coarse operation class, used for latency and energy lookup."""

    ALU = "alu"                # integer ALU op
    MUL = "mul"                # integer multiply (shared muldiv unit)
    LOAD = "load"              # integer load
    STORE = "store"            # integer store
    BRANCH = "branch"          # conditional branch
    JUMP = "jump"              # jal/jalr
    CSR = "csr"                # CSR access (SSR enable/config)
    FP_ADD = "fp_add"          # FP add/sub
    FP_MUL = "fp_mul"          # FP multiply
    FP_FMA = "fp_fma"          # fused multiply-add family
    FP_DIV = "fp_div"          # FP divide / sqrt
    FP_CMP = "fp_cmp"          # FP compare (writes int or FP RF)
    FP_CVT = "fp_cvt"          # FP conversion / classify
    FP_MV = "fp_mv"            # FP sign-inject / register move
    FP_LOAD = "fp_load"        # FP load
    FP_STORE = "fp_store"      # FP store
    FREP = "frep"              # FREP loop marker
    META = "meta"              # zero-cost simulator directives


#: Operand role vocabulary.  ``rd``/``rs*`` are integer registers,
#: ``frd``/``frs*`` are FP registers; ``imm`` is an integer literal and
#: ``label`` a branch/jump target resolved by the assembler.
Role = str

_INT_DST_ROLES = frozenset({"rd"})
_INT_SRC_ROLES = frozenset({"rs1", "rs2", "rs3"})
_FP_DST_ROLES = frozenset({"frd"})
_FP_SRC_ROLES = frozenset({"frs1", "frs2", "frs3"})


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    thread: Thread
    opclass: OpClass
    roles: tuple[Role, ...]
    #: True when the instruction reads memory.
    is_load: bool = False
    #: True when the instruction writes memory.
    is_store: bool = False
    #: Extension the mnemonic belongs to (rv32i, rv32m, rv32d, xfrep,
    #: xssr, xcopift, meta) — documentation and statistics only.
    extension: str = "rv32i"
    #: Operand index carrying a memory base register, if any.
    mem_base_role: str | None = None

    @property
    def int_dst_roles(self) -> frozenset[str]:
        return _INT_DST_ROLES & set(self.roles)

    @property
    def is_cross_rf(self) -> bool:
        """True when an FP-thread instruction touches the integer RF.

        These are the instructions that break the independent-thread
        abstraction (paper §II-A): FP loads/stores (integer address
        operand), conversions/moves between the files, and comparisons
        writing integer flags.
        """
        if self.thread is not Thread.FP:
            return False
        touches_int = any(
            r in _INT_DST_ROLES or r in _INT_SRC_ROLES for r in self.roles
        )
        return touches_int


def _spec(
    mnemonic: str,
    thread: Thread,
    opclass: OpClass,
    roles: tuple[Role, ...],
    **kwargs,
) -> InstrSpec:
    return InstrSpec(mnemonic, thread, opclass, roles, **kwargs)


_I = Thread.INT
_F = Thread.FP

#: All instruction specs, keyed by mnemonic.
SPECS: dict[str, InstrSpec] = {}


def _add(spec: InstrSpec) -> None:
    if spec.mnemonic in SPECS:
        raise ValueError(f"duplicate mnemonic {spec.mnemonic}")
    SPECS[spec.mnemonic] = spec


# --- RV32I integer computational --------------------------------------
for _m in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
           "slt", "sltu"):
    _add(_spec(_m, _I, OpClass.ALU, ("rd", "rs1", "rs2")))
for _m in ("addi", "andi", "ori", "xori", "slli", "srli", "srai",
           "slti", "sltiu"):
    _add(_spec(_m, _I, OpClass.ALU, ("rd", "rs1", "imm")))
_add(_spec("lui", _I, OpClass.ALU, ("rd", "imm")))
_add(_spec("li", _I, OpClass.ALU, ("rd", "imm")))      # pseudo
_add(_spec("mv", _I, OpClass.ALU, ("rd", "rs1")))      # pseudo
_add(_spec("not", _I, OpClass.ALU, ("rd", "rs1")))     # pseudo
_add(_spec("nop", _I, OpClass.ALU, ()))

# --- RV32I loads / stores ---------------------------------------------
_add(_spec("lw", _I, OpClass.LOAD, ("rd", "imm", "rs1"),
           is_load=True, mem_base_role="rs1"))
_add(_spec("lh", _I, OpClass.LOAD, ("rd", "imm", "rs1"),
           is_load=True, mem_base_role="rs1"))
_add(_spec("lbu", _I, OpClass.LOAD, ("rd", "imm", "rs1"),
           is_load=True, mem_base_role="rs1"))
_add(_spec("sw", _I, OpClass.STORE, ("rs2", "imm", "rs1"),
           is_store=True, mem_base_role="rs1"))
_add(_spec("sh", _I, OpClass.STORE, ("rs2", "imm", "rs1"),
           is_store=True, mem_base_role="rs1"))
_add(_spec("sb", _I, OpClass.STORE, ("rs2", "imm", "rs1"),
           is_store=True, mem_base_role="rs1"))

# --- RV32I control flow -------------------------------------------------
for _m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
    _add(_spec(_m, _I, OpClass.BRANCH, ("rs1", "rs2", "label")))
_add(_spec("beqz", _I, OpClass.BRANCH, ("rs1", "label")))  # pseudo
_add(_spec("bnez", _I, OpClass.BRANCH, ("rs1", "label")))  # pseudo
_add(_spec("j", _I, OpClass.JUMP, ("label",)))             # pseudo
_add(_spec("jal", _I, OpClass.JUMP, ("rd", "label")))
_add(_spec("jalr", _I, OpClass.JUMP, ("rd", "rs1", "imm")))
_add(_spec("ret", _I, OpClass.JUMP, ()))                   # pseudo

# --- RV32M ---------------------------------------------------------------
for _m in ("mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu"):
    _add(_spec(_m, _I, OpClass.MUL, ("rd", "rs1", "rs2"), extension="rv32m"))

# --- F/D loads & stores (FP thread, integer address: cross-RF Type 1/2) --
for _m, _ext in (("fld", "rv32d"), ("flw", "rv32f")):
    _add(_spec(_m, _F, OpClass.FP_LOAD, ("frd", "imm", "rs1"),
               is_load=True, extension=_ext, mem_base_role="rs1"))
for _m, _ext in (("fsd", "rv32d"), ("fsw", "rv32f")):
    _add(_spec(_m, _F, OpClass.FP_STORE, ("frs2", "imm", "rs1"),
               is_store=True, extension=_ext, mem_base_role="rs1"))

# --- D-extension arithmetic (pure FP thread) ----------------------------
for _m in ("fadd.d", "fsub.d", "fadd.s", "fsub.s"):
    _add(_spec(_m, _F, OpClass.FP_ADD, ("frd", "frs1", "frs2"),
               extension="rv32d"))
for _m in ("fmul.d", "fmul.s"):
    _add(_spec(_m, _F, OpClass.FP_MUL, ("frd", "frs1", "frs2"),
               extension="rv32d"))
for _m in ("fdiv.d", "fsqrt.d"):
    _roles = ("frd", "frs1", "frs2") if _m == "fdiv.d" else ("frd", "frs1")
    _add(_spec(_m, _F, OpClass.FP_DIV, _roles, extension="rv32d"))
for _m in ("fmadd.d", "fmsub.d", "fnmadd.d", "fnmsub.d",
           "fmadd.s", "fmsub.s"):
    _add(_spec(_m, _F, OpClass.FP_FMA, ("frd", "frs1", "frs2", "frs3"),
               extension="rv32d"))
for _m in ("fmin.d", "fmax.d"):
    _add(_spec(_m, _F, OpClass.FP_CMP, ("frd", "frs1", "frs2"),
               extension="rv32d"))
for _m in ("fsgnj.d", "fsgnjn.d", "fsgnjx.d"):
    _add(_spec(_m, _F, OpClass.FP_MV, ("frd", "frs1", "frs2"),
               extension="rv32d"))
_add(_spec("fmv.d", _F, OpClass.FP_MV, ("frd", "frs1"),
           extension="rv32d"))  # pseudo for fsgnj.d f,f,f
_add(_spec("fabs.d", _F, OpClass.FP_MV, ("frd", "frs1"), extension="rv32d"))
_add(_spec("fneg.d", _F, OpClass.FP_MV, ("frd", "frs1"), extension="rv32d"))

# --- D-extension cross-RF conversions / compares / moves (Type 3) -------
_add(_spec("fcvt.d.w", _F, OpClass.FP_CVT, ("frd", "rs1"), extension="rv32d"))
_add(_spec("fcvt.d.wu", _F, OpClass.FP_CVT, ("frd", "rs1"),
           extension="rv32d"))
_add(_spec("fcvt.w.d", _F, OpClass.FP_CVT, ("rd", "frs1"), extension="rv32d"))
_add(_spec("fcvt.wu.d", _F, OpClass.FP_CVT, ("rd", "frs1"),
           extension="rv32d"))
_add(_spec("fcvt.d.s", _F, OpClass.FP_CVT, ("frd", "frs1"),
           extension="rv32d"))
_add(_spec("fcvt.s.d", _F, OpClass.FP_CVT, ("frd", "frs1"),
           extension="rv32d"))
for _m in ("feq.d", "flt.d", "fle.d"):
    _add(_spec(_m, _F, OpClass.FP_CMP, ("rd", "frs1", "frs2"),
               extension="rv32d"))
_add(_spec("fclass.d", _F, OpClass.FP_CVT, ("rd", "frs1"),
           extension="rv32d"))
_add(_spec("fmv.x.w", _F, OpClass.FP_MV, ("rd", "frs1"), extension="rv32f"))
_add(_spec("fmv.w.x", _F, OpClass.FP_MV, ("frd", "rs1"), extension="rv32f"))

# --- COPIFT custom-1 extension ------------------------------------------
# FREP-compatible re-encodings of the cross-RF conversion / comparison
# instructions.  Sources previously in the integer RF arrive through the
# FP RF (typically streamed in by an SSR); results previously written to
# the integer RF land in the FP RF (as 0.0 / 1.0 for comparisons, or the
# integer bit pattern in the low word for fcvt.w-class results).
_add(_spec("cfcvt.d.w", _F, OpClass.FP_CVT, ("frd", "frs1"),
           extension="xcopift"))
_add(_spec("cfcvt.d.wu", _F, OpClass.FP_CVT, ("frd", "frs1"),
           extension="xcopift"))
_add(_spec("cfcvt.w.d", _F, OpClass.FP_CVT, ("frd", "frs1"),
           extension="xcopift"))
_add(_spec("cfcvt.wu.d", _F, OpClass.FP_CVT, ("frd", "frs1"),
           extension="xcopift"))
for _m in ("cfeq.d", "cflt.d", "cfle.d"):
    _add(_spec(_m, _F, OpClass.FP_CMP, ("frd", "frs1", "frs2"),
               extension="xcopift"))
_add(_spec("cfclass.d", _F, OpClass.FP_CVT, ("frd", "frs1"),
           extension="xcopift"))

# --- Snitch Xfrep / Xssr ---------------------------------------------------
# frep.o rs1, n_instrs: repeat the next n_instrs FP instructions
# (rs1) + 1 times; iterations after the first are issued by the FPSS
# sequencer, concurrently with the integer core.
_add(_spec("frep.o", _I, OpClass.FREP, ("rs1", "imm"), extension="xfrep"))
# scfgwi rs1, imm: write SSR configuration word (imm encodes ssr + field).
_add(_spec("scfgwi", _I, OpClass.CSR, ("rs1", "imm"), extension="xssr"))
# csrsi/csrci on the SSR enable CSR, modelled as dedicated mnemonics.
_add(_spec("ssr.enable", _I, OpClass.CSR, (), extension="xssr"))
_add(_spec("ssr.disable", _I, OpClass.CSR, (), extension="xssr"))

# --- DMA engine -----------------------------------------------------------
# dma.copy rs1(dst), rs2(src), rs3(len): program a background DMA
# transfer.  The engine runs concurrently with both threads; in this
# model the copy is applied immediately (program order) and costs one
# issue cycle — the timing approximation is documented in DESIGN.md §2
# (TCDM bandwidth is ample for the evaluated kernels).  Bytes moved are
# counted for the energy model.
_add(_spec("dma.copy", _I, OpClass.CSR, ("rs1", "rs2", "rs3"),
           extension="xdma"))
# dma.start rs1(dst), rs2(src), rs3(len): asynchronous tile transfer on
# the cluster DMA engine.  Functionally the copy lands immediately (in
# program order); its *timing* completion is modelled by the cluster's
# bandwidth/latency engine, and consumers of the destination range stall
# through the memory-RAW machinery until the transfer drains.  Without a
# cluster DMA engine attached it degrades to dma.copy semantics.
_add(_spec("dma.start", _I, OpClass.CSR, ("rs1", "rs2", "rs3"),
           extension="xdma"))
# dma.wait: stall the integer core until every transfer this core has
# started on the cluster DMA engine has completed (a DMA fence).
_add(_spec("dma.wait", _I, OpClass.CSR, (), extension="xdma"))

# --- Cluster synchronization (Xcluster) -----------------------------------
# cluster.barrier: hardware barrier across all cores of a cluster.  The
# core arrives once its FP subsystem has drained (implicit FPU fence)
# and resumes when every active core in the cluster has arrived.  On a
# single Machine (no cluster attached) it costs one issue cycle.
_add(_spec("cluster.barrier", _I, OpClass.CSR, (), extension="xcluster"))
# amoadd.w rd, imm(rs1), rs2: atomic fetch-and-add on a TCDM word
# (cluster atomics, serviced by the TCDM interconnect).  rd receives
# the old value; memory receives old + rs2.  Atomicity across cores
# holds by construction in the cluster model (one core steps at a
# time); timing is a load-class TCDM round trip.
_add(_spec("amoadd.w", _I, OpClass.LOAD, ("rd", "imm", "rs1", "rs2"),
           is_load=True, is_store=True, extension="xcluster",
           mem_base_role="rs1"))

# --- Simulator meta directives -----------------------------------------
# mark <label>: zero-cost region marker for performance counters.
_add(_spec("mark", _I, OpClass.META, ("label",), extension="meta"))


def spec(mnemonic: str) -> InstrSpec:
    """Look up the spec for *mnemonic*.

    Raises:
        KeyError: for unknown mnemonics.
    """
    try:
        return SPECS[mnemonic]
    except KeyError:
        raise KeyError(f"unknown mnemonic: {mnemonic!r}") from None


#: Mnemonics whose cross-RF semantics COPIFT re-encodes (paper §II-B),
#: mapping the original "D" instruction to its custom-1 replacement.
COPIFT_REENCODINGS: dict[str, str] = {
    "fcvt.w.d": "cfcvt.w.d",
    "fcvt.wu.d": "cfcvt.wu.d",
    "fcvt.d.w": "cfcvt.d.w",
    "fcvt.d.wu": "cfcvt.d.wu",
    "feq.d": "cfeq.d",
    "flt.d": "cflt.d",
    "fle.d": "cfle.d",
    "fclass.d": "cfclass.d",
}
