"""Register-file model for the RV32G + Snitch ISA.

RISC-V defines two architectural register files: the 32 ``x`` integer
registers of RV32I and the 32 ``f`` floating-point registers of the "F"/"D"
extensions.  COPIFT's central observation is that these two files give two
threads with (mostly) independent state, so the classification of every
operand as *integer* or *floating point* is load-bearing throughout this
package.

Registers are represented as small frozen dataclasses interned in module
level tables, so identity comparison works and sets/dicts are cheap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Which architectural register file a register belongs to."""

    INT = "int"
    FP = "fp"


@dataclass(frozen=True)
class Register:
    """One architectural register.

    Attributes:
        cls: Register file this register belongs to.
        index: Architectural index, 0-31.
        name: Canonical ABI name (``a0``, ``ft3``, ...).
    """

    cls: RegClass
    index: int
    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Register({self.name})"

    @property
    def is_zero(self) -> bool:
        """True for ``x0``/``zero``, which reads 0 and ignores writes."""
        return self.cls is RegClass.INT and self.index == 0


#: ABI names for the integer registers, indexed by architectural number.
INT_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

#: ABI names for the floating-point registers.
FP_ABI_NAMES = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
)

INT_REGS = tuple(
    Register(RegClass.INT, i, name) for i, name in enumerate(INT_ABI_NAMES)
)
FP_REGS = tuple(
    Register(RegClass.FP, i, name) for i, name in enumerate(FP_ABI_NAMES)
)

#: Lookup from any accepted spelling (ABI name, ``x7``, ``f12``, ``fp``) to
#: the interned :class:`Register`.
_REG_BY_NAME: dict[str, Register] = {}
for _reg in INT_REGS:
    _REG_BY_NAME[_reg.name] = _reg
    _REG_BY_NAME[f"x{_reg.index}"] = _reg
for _reg in FP_REGS:
    _REG_BY_NAME[_reg.name] = _reg
    _REG_BY_NAME[f"f{_reg.index}"] = _reg
_REG_BY_NAME["fp"] = INT_REGS[8]  # frame pointer alias for s0

#: Snitch binds SSR data movers to the first three FP temporaries.
SSR_REGS = (FP_REGS[0], FP_REGS[1], FP_REGS[2])  # ft0, ft1, ft2


def reg(name: str | Register) -> Register:
    """Resolve a register by name.

    Accepts ABI names (``a0``, ``fa3``), numeric names (``x10``, ``f13``)
    and :class:`Register` instances (returned unchanged).

    Raises:
        KeyError: if the name does not denote an architectural register.
    """
    if isinstance(name, Register):
        return name
    try:
        return _REG_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown register name: {name!r}") from None


def int_reg(name: str | Register) -> Register:
    """Resolve *name* and check it is an integer register."""
    r = reg(name)
    if r.cls is not RegClass.INT:
        raise ValueError(f"expected an integer register, got {r.name}")
    return r


def fp_reg(name: str | Register) -> Register:
    """Resolve *name* and check it is a floating-point register."""
    r = reg(name)
    if r.cls is not RegClass.FP:
        raise ValueError(f"expected an FP register, got {r.name}")
    return r
