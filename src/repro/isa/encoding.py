"""Binary instruction encoding for the modelled ISA.

Encodes programs to their 32-bit RISC-V representations and decodes
them back.  This serves two purposes:

* it pins down the **custom-1 opcode allocation** of the COPIFT
  extension exactly as the paper specifies (§II-B: "We copy the
  original encodings, allocating the new instructions in the custom-1
  opcode space") — each ``cf*`` instruction keeps its parent's funct
  fields and register slots, with only the major opcode moved from
  OP-FP (0b1010011) to custom-1 (0b0101011);
* it lets tests round-trip programs through bits, catching operand
  misassignments that a purely symbolic representation would hide.

The encoder covers the subset the kernels use; Snitch's ``frep.o`` and
``scfgwi`` follow the published Xfrep/Xssr encodings in spirit (exact
bit layouts of those vendor extensions vary between Snitch releases;
ours are documented below and round-trip by construction).
"""

from __future__ import annotations

from .instructions import OpClass, spec as get_spec
from .program import Instruction, Program, make_instruction
from .registers import FP_REGS, INT_REGS

# Major opcodes (RISC-V base + the extension spaces we use).
OP = 0b0110011
OP_IMM = 0b0010011
LOAD = 0b0000011
STORE = 0b0100011
BRANCH = 0b1100011
LUI = 0b0110111
JAL = 0b1101111
JALR = 0b1100111
LOAD_FP = 0b0000111
STORE_FP = 0b0100111
OP_FP = 0b1010011
MADD = 0b1000011
MSUB = 0b1000111
NMSUB = 0b1001011
NMADD = 0b1001111
#: The paper's extension lives here (custom-1, §II-B).
CUSTOM_1 = 0b0101011
#: Snitch Xfrep/Xssr control (custom-0 in our layout).
CUSTOM_0 = 0b0001011


class EncodingError(ValueError):
    """Instruction cannot be encoded (unsupported or out-of-range)."""


def _imm12(value: int, mnemonic: str) -> int:
    if not -2048 <= value <= 2047:
        raise EncodingError(
            f"{mnemonic}: immediate {value} does not fit 12 bits"
        )
    return value & 0xFFF

# (funct3, funct7) for R-type integer ops.
_R_FUNCT = {
    "add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000), "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000), "and": (0b111, 0b0000000),
    "mul": (0b000, 0b0000001), "mulh": (0b001, 0b0000001),
    "mulhsu": (0b010, 0b0000001), "mulhu": (0b011, 0b0000001),
    "div": (0b100, 0b0000001), "divu": (0b101, 0b0000001),
    "rem": (0b110, 0b0000001), "remu": (0b111, 0b0000001),
}

_I_FUNCT = {
    "addi": 0b000, "slti": 0b010, "sltiu": 0b011, "xori": 0b100,
    "ori": 0b110, "andi": 0b111,
}
_SHIFT_FUNCT = {"slli": (0b001, 0), "srli": (0b101, 0),
                "srai": (0b101, 0b0100000)}
_LOAD_FUNCT = {"lw": 0b010, "lh": 0b001, "lbu": 0b100}
_STORE_FUNCT = {"sw": 0b010, "sh": 0b001, "sb": 0b000}
_BRANCH_FUNCT = {"beq": 0b000, "bne": 0b001, "blt": 0b100,
                 "bge": 0b101, "bltu": 0b110, "bgeu": 0b111}

#: OP-FP funct7 (rs2 field holds a sub-opcode for conversions).
_FP_R = {
    "fadd.d": 0b0000001, "fsub.d": 0b0000101, "fmul.d": 0b0001001,
    "fdiv.d": 0b0001101,
    "fadd.s": 0b0000000, "fsub.s": 0b0000100, "fmul.s": 0b0001000,
}
_FP_CVT = {
    # mnemonic: (funct7, rs2 sub-opcode)
    "fcvt.w.d": (0b1100001, 0b00000),
    "fcvt.wu.d": (0b1100001, 0b00001),
    "fcvt.d.w": (0b1101001, 0b00000),
    "fcvt.d.wu": (0b1101001, 0b00001),
    "fcvt.s.d": (0b0100000, 0b00001),
    "fcvt.d.s": (0b0100001, 0b00000),
    "fsqrt.d": (0b0101101, 0b00000),
    "fclass.d": (0b1110001, 0b00000),
}
_FP_CMP = {"feq.d": 0b010, "flt.d": 0b001, "fle.d": 0b000}
_FP_SGNJ = {"fsgnj.d": 0b000, "fsgnjn.d": 0b001, "fsgnjx.d": 0b010}
_FP_MINMAX = {"fmin.d": 0b000, "fmax.d": 0b001}
_FMA = {"fmadd.d": MADD, "fmsub.d": MSUB, "fnmsub.d": NMSUB,
        "fnmadd.d": NMADD, "fmadd.s": MADD, "fmsub.s": MSUB}

#: COPIFT custom-1 re-encodings: identical funct fields to the parent
#: OP-FP instruction, major opcode moved to CUSTOM_1 (paper §II-B).
_COPIFT_PARENT = {
    "cfcvt.w.d": "fcvt.w.d", "cfcvt.wu.d": "fcvt.wu.d",
    "cfcvt.d.w": "fcvt.d.w", "cfcvt.d.wu": "fcvt.d.wu",
    "cfeq.d": "feq.d", "cflt.d": "flt.d", "cfle.d": "fle.d",
    "cfclass.d": "fclass.d",
}

_RM = 0b111  # rounding mode field: DYN


def encode(instr: Instruction) -> int:
    """Encode one instruction to its 32-bit representation.

    Branch/jump label displacements must already be resolved — use
    :func:`encode_program` for whole programs.

    Raises:
        EncodingError: for meta/pseudo instructions with no encoding.
    """
    return _encode_with_target(instr, displacement=0)


def _encode_with_target(instr: Instruction, displacement: int) -> int:
    m = instr.mnemonic
    ops = instr.operands

    if m in _R_FUNCT:
        funct3, funct7 = _R_FUNCT[m]
        return (funct7 << 25 | ops[2].index << 20 | ops[1].index << 15
                | funct3 << 12 | ops[0].index << 7 | OP)
    if m in _I_FUNCT:
        imm = _imm12(instr.imm, m)
        return (imm << 20 | ops[1].index << 15 | _I_FUNCT[m] << 12
                | ops[0].index << 7 | OP_IMM)
    if m in _SHIFT_FUNCT:
        funct3, funct7 = _SHIFT_FUNCT[m]
        shamt = instr.imm & 0x1F
        return (funct7 << 25 | shamt << 20 | ops[1].index << 15
                | funct3 << 12 | ops[0].index << 7 | OP_IMM)
    if m in _LOAD_FUNCT:
        imm = _imm12(instr.imm, m)
        return (imm << 20 | ops[2].index << 15 | _LOAD_FUNCT[m] << 12
                | ops[0].index << 7 | LOAD)
    if m in _STORE_FUNCT:
        imm = _imm12(instr.imm, m)
        return ((imm >> 5) << 25 | ops[0].index << 20
                | ops[2].index << 15 | _STORE_FUNCT[m] << 12
                | (imm & 0x1F) << 7 | STORE)
    if m in _BRANCH_FUNCT:
        imm = displacement & 0x1FFF
        return (((imm >> 12) & 1) << 31 | ((imm >> 5) & 0x3F) << 25
                | ops[1].index << 20 | ops[0].index << 15
                | _BRANCH_FUNCT[m] << 12 | ((imm >> 1) & 0xF) << 8
                | ((imm >> 11) & 1) << 7 | BRANCH)
    if m == "lui":
        return (instr.imm & 0xFFFFF) << 12 | ops[0].index << 7 | LUI
    if m in ("fld", "flw"):
        imm = _imm12(instr.imm, m)
        width = 0b011 if m == "fld" else 0b010
        return (imm << 20 | ops[2].index << 15 | width << 12
                | ops[0].index << 7 | LOAD_FP)
    if m in ("fsd", "fsw"):
        imm = _imm12(instr.imm, m)
        width = 0b011 if m == "fsd" else 0b010
        return ((imm >> 5) << 25 | ops[0].index << 20
                | ops[2].index << 15 | width << 12
                | (imm & 0x1F) << 7 | STORE_FP)
    if m in _FP_R:
        return (_FP_R[m] << 25 | ops[2].index << 20
                | ops[1].index << 15 | _RM << 12
                | ops[0].index << 7 | OP_FP)
    if m in _FMA:
        fmt = 0b01 if m.endswith(".d") else 0b00
        return (ops[3].index << 27 | fmt << 25 | ops[2].index << 20
                | ops[1].index << 15 | _RM << 12
                | ops[0].index << 7 | _FMA[m])
    if m in _FP_CVT:
        funct7, sub = _FP_CVT[m]
        return (funct7 << 25 | sub << 20 | ops[1].index << 15
                | _RM << 12 | ops[0].index << 7 | OP_FP)
    if m in _FP_CMP:
        return (0b1010001 << 25 | ops[2].index << 20
                | ops[1].index << 15 | _FP_CMP[m] << 12
                | ops[0].index << 7 | OP_FP)
    if m in _FP_SGNJ:
        return (0b0010001 << 25 | ops[2].index << 20
                | ops[1].index << 15 | _FP_SGNJ[m] << 12
                | ops[0].index << 7 | OP_FP)
    if m in _FP_MINMAX:
        return (0b0010101 << 25 | ops[2].index << 20
                | ops[1].index << 15 | _FP_MINMAX[m] << 12
                | ops[0].index << 7 | OP_FP)
    if m in _COPIFT_PARENT:
        parent = _COPIFT_PARENT[m]
        # Re-encode via the parent, then move the opcode to custom-1
        # and repoint register fields at the FP register file (the
        # whole point of the extension: all operands live in the FP RF).
        if parent in _FP_CVT:
            funct7, sub = _FP_CVT[parent]
            return (funct7 << 25 | sub << 20 | ops[1].index << 15
                    | _RM << 12 | ops[0].index << 7 | CUSTOM_1)
        funct3 = _FP_CMP[parent]
        return (0b1010001 << 25 | ops[2].index << 20
                | ops[1].index << 15 | funct3 << 12
                | ops[0].index << 7 | CUSTOM_1)
    if m == "frep.o":
        # Xfrep: [imm12 = body length][rs1 = max_rpt][funct3=0][custom-0]
        return (_imm12(instr.imm, m) << 20 | ops[0].index << 15
                | 0b000 << 12 | CUSTOM_0)
    if m == "scfgwi":
        return (_imm12(instr.imm, m) << 20 | ops[0].index << 15
                | 0b001 << 12 | CUSTOM_0)
    if m == "ssr.enable":
        return 0b010 << 12 | 1 << 7 | CUSTOM_0
    if m == "ssr.disable":
        return 0b010 << 12 | CUSTOM_0
    if m == "dma.copy":
        return (ops[2].index << 20 | ops[1].index << 15 | 0b011 << 12
                | ops[0].index << 7 | CUSTOM_0)
    raise EncodingError(f"no binary encoding for {m!r}")


def encode_program(program: Program) -> list[int]:
    """Encode a whole program, resolving branch displacements.

    META directives (``mark``) and pseudo-instructions without a single
    machine encoding (``li``, ``mv``, ``j``, ``ret``...) are rejected —
    lower them first (they exist for the simulator's convenience).
    """
    words = []
    for index, instr in enumerate(program.instructions):
        displacement = 0
        if instr.label is not None and instr.spec.opclass in (
                OpClass.BRANCH, OpClass.JUMP):
            displacement = (program.target(instr.label) - index) * 4
        words.append(_encode_with_target(instr, displacement))
    return words


# ---------------------------------------------------------------------------
# Decoding (subset: enough for round-trip tests and disassembly)
# ---------------------------------------------------------------------------

def _sx(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def decode(word: int) -> Instruction:
    """Decode one 32-bit word back to an :class:`Instruction`.

    Branches decode with a placeholder label encoding their
    displacement (``.+<offset>``).

    Raises:
        EncodingError: for unrecognized encodings.
    """
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    def ireg(i):
        return INT_REGS[i]

    def freg(i):
        return FP_REGS[i]

    if opcode == OP:
        for m, (f3, f7) in _R_FUNCT.items():
            if (f3, f7) == (funct3, funct7):
                return make_instruction(m, ireg(rd), ireg(rs1),
                                        ireg(rs2))
    if opcode == OP_IMM:
        imm = _sx(word >> 20, 12)
        for m, f3 in _I_FUNCT.items():
            if f3 == funct3:
                return make_instruction(m, ireg(rd), ireg(rs1), imm)
        for m, (f3, f7) in _SHIFT_FUNCT.items():
            if f3 == funct3 and f7 == funct7:
                return make_instruction(m, ireg(rd), ireg(rs1),
                                        rs2)
    if opcode == LOAD:
        for m, f3 in _LOAD_FUNCT.items():
            if f3 == funct3:
                return make_instruction(m, ireg(rd),
                                        _sx(word >> 20, 12), ireg(rs1))
    if opcode == STORE:
        imm = _sx((funct7 << 5) | rd, 12)
        for m, f3 in _STORE_FUNCT.items():
            if f3 == funct3:
                return make_instruction(m, ireg(rs2), imm, ireg(rs1))
    if opcode == LOAD_FP:
        m = "fld" if funct3 == 0b011 else "flw"
        return make_instruction(m, freg(rd), _sx(word >> 20, 12),
                                ireg(rs1))
    if opcode == STORE_FP:
        imm = _sx((funct7 << 5) | rd, 12)
        m = "fsd" if funct3 == 0b011 else "fsw"
        return make_instruction(m, freg(rs2), imm, ireg(rs1))
    if opcode in (MADD, MSUB, NMSUB, NMADD):
        fmt = (word >> 25) & 0x3
        rs3 = (word >> 27) & 0x1F
        table = {MADD: "fmadd", MSUB: "fmsub", NMSUB: "fnmsub",
                 NMADD: "fnmadd"}
        suffix = ".d" if fmt == 0b01 else ".s"
        return make_instruction(table[opcode] + suffix, freg(rd),
                                freg(rs1), freg(rs2), freg(rs3))
    if opcode in (OP_FP, CUSTOM_1):
        custom = opcode == CUSTOM_1
        for m, f7 in _FP_R.items():
            if f7 == funct7 and not custom:
                return make_instruction(m, freg(rd), freg(rs1),
                                        freg(rs2))
        for m, (f7, sub) in _FP_CVT.items():
            if f7 == funct7 and sub == rs2:
                if custom:
                    cm = "c" + m
                    return make_instruction(cm, freg(rd), freg(rs1))
                s = get_spec(m)
                dst = freg(rd) if s.roles[0] == "frd" else ireg(rd)
                src = freg(rs1) if s.roles[1].startswith("f") \
                    else ireg(rs1)
                return make_instruction(m, dst, src)
        if funct7 == 0b1010001:
            for m, f3 in _FP_CMP.items():
                if f3 == funct3:
                    if custom:
                        return make_instruction("c" + m, freg(rd),
                                                freg(rs1), freg(rs2))
                    return make_instruction(m, ireg(rd), freg(rs1),
                                            freg(rs2))
        if funct7 == 0b0010001 and not custom:
            for m, f3 in _FP_SGNJ.items():
                if f3 == funct3:
                    return make_instruction(m, freg(rd), freg(rs1),
                                            freg(rs2))
        if funct7 == 0b0010101 and not custom:
            for m, f3 in _FP_MINMAX.items():
                if f3 == funct3:
                    return make_instruction(m, freg(rd), freg(rs1),
                                            freg(rs2))
    if opcode == LUI:
        return make_instruction("lui", ireg(rd), word >> 12)
    if opcode == CUSTOM_0:
        if funct3 == 0b000:
            return make_instruction("frep.o", ireg(rs1),
                                    _sx(word >> 20, 12))
        if funct3 == 0b001:
            return make_instruction("scfgwi", ireg(rs1),
                                    _sx(word >> 20, 12))
        if funct3 == 0b010:
            return make_instruction(
                "ssr.enable" if rd == 1 else "ssr.disable")
        if funct3 == 0b011:
            return make_instruction("dma.copy", ireg(rd), ireg(rs1),
                                    ireg(rs2))
    raise EncodingError(f"cannot decode 0x{word:08x}")
