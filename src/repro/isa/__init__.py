"""ISA layer: registers, instruction specs, programs and the assembler.

The public surface most users need:

* :func:`reg` / :data:`INT_REGS` / :data:`FP_REGS` — register lookup.
* :data:`SPECS` / :func:`spec` — the instruction-set table.
* :class:`ProgramBuilder` / :class:`Program` — building programs in Python.
* :func:`parse` — assembling textual RISC-V assembly.
"""

from .asm import AsmSyntaxError, parse
from .instructions import (
    COPIFT_REENCODINGS,
    InstrSpec,
    OpClass,
    SPECS,
    Thread,
    spec,
)
from .program import Instruction, Program, ProgramBuilder, make_instruction
from .registers import (
    FP_REGS,
    INT_REGS,
    RegClass,
    Register,
    SSR_REGS,
    fp_reg,
    int_reg,
    reg,
)

__all__ = [
    "AsmSyntaxError",
    "COPIFT_REENCODINGS",
    "FP_REGS",
    "INT_REGS",
    "InstrSpec",
    "Instruction",
    "OpClass",
    "Program",
    "ProgramBuilder",
    "RegClass",
    "Register",
    "SPECS",
    "SSR_REGS",
    "Thread",
    "fp_reg",
    "int_reg",
    "make_instruction",
    "parse",
    "reg",
    "spec",
]
