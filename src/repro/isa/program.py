"""Program representation: instructions, labels and the builder DSL.

An :class:`Instruction` binds an :class:`~repro.isa.instructions.InstrSpec`
to concrete operands and precomputes the register read/write sets the
simulator and the COPIFT data-flow analysis need, so the per-instruction
hot path does no string processing.

:class:`ProgramBuilder` is the assembler DSL the kernel generators use::

    b = ProgramBuilder()
    b.label("loop")
    b.fld("fa3", 0, "a3")
    b.fmul_d("fa3", "fa3", "fa4")
    b.addi("a3", "a3", 8)
    b.bne("a3", "a1", "loop")
    program = b.build()

Mnemonic methods are derived from the ISA spec table (``.`` becomes ``_``),
with :meth:`ProgramBuilder.emit` as the explicit underlying entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .instructions import InstrSpec, OpClass, SPECS, Thread, spec as get_spec
from .registers import Register, fp_reg, int_reg


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction with resolved operands.

    Operand values are stored aligned with ``spec.roles``:  register roles
    hold :class:`Register`, ``imm`` holds ``int`` and ``label`` holds
    ``str``.
    """

    spec: InstrSpec
    operands: tuple

    # Precomputed accessors (derived in __post_init__, cached as object
    # attributes despite the frozen dataclass, via object.__setattr__).
    int_reads: tuple[Register, ...] = field(init=False, repr=False)
    int_writes: tuple[Register, ...] = field(init=False, repr=False)
    fp_reads: tuple[Register, ...] = field(init=False, repr=False)
    fp_writes: tuple[Register, ...] = field(init=False, repr=False)
    imm: int | None = field(init=False, repr=False)
    label: str | None = field(init=False, repr=False)
    mem_base: Register | None = field(init=False, repr=False)

    def __post_init__(self) -> None:
        int_reads: list[Register] = []
        int_writes: list[Register] = []
        fp_reads: list[Register] = []
        fp_writes: list[Register] = []
        imm: int | None = None
        label: str | None = None
        mem_base: Register | None = None
        for role, value in zip(self.spec.roles, self.operands):
            if role == "imm":
                imm = value
            elif role == "label":
                label = value
            elif role == "rd":
                if not value.is_zero:
                    int_writes.append(value)
            elif role.startswith("rs"):
                if not value.is_zero:
                    int_reads.append(value)
                if role == self.spec.mem_base_role:
                    mem_base = value
            elif role == "frd":
                fp_writes.append(value)
            elif role.startswith("frs"):
                fp_reads.append(value)
            else:  # pragma: no cover - guarded by spec construction
                raise ValueError(f"unknown operand role {role!r}")
        object.__setattr__(self, "int_reads", tuple(int_reads))
        object.__setattr__(self, "int_writes", tuple(int_writes))
        object.__setattr__(self, "fp_reads", tuple(fp_reads))
        object.__setattr__(self, "fp_writes", tuple(fp_writes))
        object.__setattr__(self, "imm", imm)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "mem_base", mem_base)

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def thread(self) -> Thread:
        return self.spec.thread

    @property
    def reads(self) -> tuple[Register, ...]:
        return self.int_reads + self.fp_reads

    @property
    def writes(self) -> tuple[Register, ...]:
        return self.int_writes + self.fp_writes

    def operand(self, role: str):
        """Return the operand bound to *role*.

        Raises:
            KeyError: if the spec has no such role.
        """
        for r, value in zip(self.spec.roles, self.operands):
            if r == role:
                return value
        raise KeyError(f"{self.mnemonic} has no operand role {role!r}")

    def render(self) -> str:
        """Render to assembly text (inverse of :func:`repro.isa.asm.parse`)."""
        spec = self.spec
        if not spec.roles:
            return spec.mnemonic
        if spec.mem_base_role is not None:
            # Memory format: op reg, imm(base)[, extra...] — the extra
            # tail covers AMO-style value operands (amoadd.w).
            reg_role = spec.roles[0]
            reg = self.operand(reg_role)
            text = f"{spec.mnemonic} {reg}, {self.imm}({self.mem_base})"
            extras = [
                str(value)
                for role, value in zip(spec.roles[1:], self.operands[1:])
                if role not in ("imm", spec.mem_base_role)
            ]
            if extras:
                text += ", " + ", ".join(extras)
            return text
        parts = []
        for role, value in zip(spec.roles, self.operands):
            parts.append(str(value))
        return f"{spec.mnemonic} " + ", ".join(parts)

    def __str__(self) -> str:
        return self.render()


def make_instruction(mnemonic: str, *operands) -> Instruction:
    """Build an :class:`Instruction`, validating operand kinds.

    Register operands may be given as names or :class:`Register` objects.
    """
    spec = get_spec(mnemonic)
    if len(operands) != len(spec.roles):
        raise ValueError(
            f"{mnemonic} expects {len(spec.roles)} operands "
            f"{spec.roles}, got {len(operands)}"
        )
    resolved = []
    for role, value in zip(spec.roles, operands):
        if role == "imm":
            if not isinstance(value, int):
                raise TypeError(f"{mnemonic}: imm must be int, got {value!r}")
            resolved.append(value)
        elif role == "label":
            if not isinstance(value, str):
                raise TypeError(
                    f"{mnemonic}: label must be str, got {value!r}"
                )
            resolved.append(value)
        elif role in ("rd", "rs1", "rs2", "rs3"):
            resolved.append(int_reg(value))
        elif role in ("frd", "frs1", "frs2", "frs3"):
            resolved.append(fp_reg(value))
        else:  # pragma: no cover
            raise ValueError(f"unknown role {role!r}")
    return Instruction(spec, tuple(resolved))


@dataclass
class Program:
    """A sequence of instructions with resolved label positions.

    Attributes:
        instructions: The instruction sequence.
        labels: Mapping from label name to instruction index (the index of
            the instruction the label precedes; may equal
            ``len(instructions)`` for an end label).
        name: Optional program name for reports.
    """

    instructions: list[Instruction]
    labels: dict[str, int]
    name: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def target(self, label: str) -> int:
        """Instruction index a label resolves to."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"undefined label: {label!r}") from None

    def render(self) -> str:
        """Render the whole program as assembly text."""
        by_index: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines: list[str] = []
        for i, instr in enumerate(self.instructions):
            for label in sorted(by_index.get(i, [])):
                lines.append(f"{label}:")
            lines.append(f"    {instr.render()}")
        for label in sorted(by_index.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def count_by_thread(self) -> dict[Thread, int]:
        """Static instruction count per issue thread (META excluded)."""
        counts = {Thread.INT: 0, Thread.FP: 0}
        for instr in self.instructions:
            if instr.spec.opclass is OpClass.META:
                continue
            counts[instr.thread] += 1
        return counts


class ProgramBuilder:
    """Incremental program construction with label support.

    Besides :meth:`emit`, every mnemonic in the ISA table is available as a
    method (``.`` replaced by ``_``): ``b.fadd_d("fa0", "fa1", "fa2")``.
    """

    def __init__(self, name: str = "") -> None:
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._name = name
        self._auto_label = 0

    def emit(self, mnemonic: str, *operands) -> Instruction:
        """Append one instruction and return it."""
        instr = make_instruction(mnemonic, *operands)
        self._instructions.append(instr)
        return instr

    def append(self, instr: Instruction) -> Instruction:
        """Append an already-built instruction."""
        self._instructions.append(instr)
        return instr

    def extend(self, instrs: Iterable[Instruction]) -> None:
        for instr in instrs:
            self._instructions.append(instr)

    def label(self, name: str) -> str:
        """Define *name* at the current position and return it."""
        if name in self._labels:
            raise ValueError(f"label {name!r} defined twice")
        self._labels[name] = len(self._instructions)
        return name

    def fresh_label(self, stem: str = "L") -> str:
        """Return a unique label name (not yet placed)."""
        self._auto_label += 1
        return f"{stem}_{self._auto_label}"

    @property
    def position(self) -> int:
        """Index the next instruction will occupy."""
        return len(self._instructions)

    def build(self) -> Program:
        """Finalize into a :class:`Program`, checking label references."""
        program = Program(
            list(self._instructions), dict(self._labels), self._name
        )
        for instr in program.instructions:
            if instr.label is not None and instr.spec.opclass in (
                OpClass.BRANCH,
                OpClass.JUMP,
            ):
                if instr.label not in program.labels:
                    raise ValueError(
                        f"undefined label {instr.label!r} in "
                        f"'{instr.render()}'"
                    )
        return program

    def __getattr__(self, name: str):
        mnemonic = name.replace("_", ".")
        if mnemonic in SPECS:
            def emitter(*operands, _m=mnemonic):
                return self.emit(_m, *operands)
            return emitter
        if name in SPECS:  # mnemonics without dots (add, lw, ...)
            def emitter(*operands, _m=name):
                return self.emit(_m, *operands)
            return emitter
        raise AttributeError(
            f"{type(self).__name__!s} has no attribute or mnemonic {name!r}"
        )
