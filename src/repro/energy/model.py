"""Activity-based energy and power estimation.

Consumes the simulator's :class:`~repro.sim.counters.Counters` plus run
metadata (cycle count, DMA activity) and produces a :class:`PowerReport`
with the quantities Figure 2b/2c of the paper plot: average power in mW
and total energy.

The substitution rationale (DESIGN.md §2): the paper's PrimeTime flow
integrates switching activity against post-layout capacitances; our model
integrates *event counts* against per-event energies.  Both reduce to
``P = E_activity / T + P_constant`` — the shape of every power result in
the paper (power tracking IPC, the I$-thrashing exception, energy
improvements despite higher power) comes from the event counts, which the
simulator measures rather than assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.counters import Counters
from .constants import ClusterEnergyParams, EnergyParams, SocEnergyParams


@dataclass(frozen=True)
class PowerReport:
    """Energy/power breakdown of one run (or one region).

    Attributes:
        cycles: Region duration in cycles (== nanoseconds at 1 GHz).
        dynamic_energy_pj: Activity energy integrated over the region.
        constant_energy_pj: Background (clock/leakage/DMA) energy.
        breakdown_pj: Dynamic energy per component group.
    """

    cycles: int
    dynamic_energy_pj: float
    constant_energy_pj: float
    breakdown_pj: dict[str, float]

    @property
    def total_energy_pj(self) -> float:
        return self.dynamic_energy_pj + self.constant_energy_pj

    @property
    def power_mw(self) -> float:
        """Average power in milliwatts (pJ / ns at 1 GHz)."""
        if self.cycles == 0:
            return 0.0
        return self.total_energy_pj / self.cycles

    @property
    def energy_uj(self) -> float:
        return self.total_energy_pj * 1e-6


class EnergyModel:
    """Maps activity counters to energy and power."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def report(self, counters: Counters, cycles: int,
               dma_active: bool = False,
               dma_bytes: int = 0) -> PowerReport:
        """Estimate energy/power for a region.

        Args:
            counters: Activity accumulated in the region.
            cycles: Region duration.
            dma_active: Whether the DMA engine was powered (vector
                kernels stream arrays through it; Monte Carlo kernels
                leave it clock-gated — the paper's §III-B base-power
                difference).
            dma_bytes: Bytes moved by the DMA inside the region.
        """
        p = self.params
        c = counters
        breakdown = {
            "int_core": (
                c.int_alu_ops * p.int_alu_pj
                + c.int_mul_ops * p.int_mul_pj
                + c.branches * p.branch_pj
                + c.csr_ops * p.csr_pj
            ),
            "int_lsu": (
                c.int_loads * p.int_load_pj
                + c.int_stores * p.int_store_pj
            ),
            "fpu": (
                c.fp_adds * p.fp_add_pj
                + c.fp_muls * p.fp_mul_pj
                + c.fp_fmas * p.fp_fma_pj
                + c.fp_divs * p.fp_div_pj
                + c.fp_cmps * p.fp_cmp_pj
                + c.fp_cvts * p.fp_cvt_pj
                + c.fp_mvs * p.fp_mv_pj
            ),
            "fp_lsu": (
                c.fp_loads * p.fp_load_pj
                + c.fp_stores * p.fp_store_pj
            ),
            "ssr": (
                (c.ssr_reads + c.ssr_writes) * p.ssr_elem_pj
                + c.ssr_index_fetches * p.ssr_index_pj
            ),
            "sequencer": c.sequencer_issued * p.sequencer_issue_pj,
            "icache": (
                c.icache_l0_hits * p.icache_hit_pj
                + c.icache_l0_misses * p.icache_miss_pj
            ),
            "dma": dma_bytes * p.dma_byte_pj if dma_active else 0.0,
        }
        dynamic = sum(breakdown.values())
        dma_mw = p.dma_active_mw if dma_active else p.dma_idle_mw
        constant = (p.constant_mw + dma_mw) * cycles
        return PowerReport(
            cycles=cycles,
            dynamic_energy_pj=dynamic,
            constant_energy_pj=constant,
            breakdown_pj=breakdown,
        )


class ClusterEnergyModel:
    """Energy/power for an N-core cluster run.

    Reuses the per-core activity model on the cluster's *aggregate*
    counters (activity energy is additive), then swaps the single-core
    constant term for the cluster decomposition — shared power once,
    per-core slices N times, per-bank TCDM static power — and adds the
    shared-resource activity the cores cannot see: crossbar bank
    grants, arbitration retries, DMA descriptors and beats, barrier
    episodes.
    """

    def __init__(self, params: EnergyParams | None = None,
                 cluster_params: ClusterEnergyParams | None = None)\
            -> None:
        self.core_model = EnergyModel(params)
        self.params = self.core_model.params
        self.cluster_params = cluster_params or ClusterEnergyParams()

    def report(self, counters: Counters, cycles: int, n_cores: int,
               n_banks: int = 32,
               tcdm_accesses: int = 0,
               tcdm_conflict_cycles: int = 0,
               dma_bytes: int = 0,
               dma_transfers: int = 0,
               barriers: int = 0,
               dma_active: bool = True) -> PowerReport:
        """Estimate cluster energy/power over a region.

        Args:
            counters: Aggregate (summed) per-core activity.
            cycles: Cluster makespan of the region.
            n_cores: Active cores.
            n_banks: TCDM banks (static power).
            tcdm_accesses: Bank grants over the region.
            tcdm_conflict_cycles: Arbitration retries over the region.
            dma_bytes: Bytes moved by the shared DMA engine.  Callers
                choose the accounting mode: with output write-back
                *off* this is the kernels' conceptual traffic (staged
                inputs + priced-but-unsimulated drains, matching the
                single-core model); with write-back *on* it is the
                transfer engine's measured per-beat traffic, staging
                and simulated drains alike.
            dma_transfers: Transfer descriptors processed.
            barriers: Barrier episodes (cluster-wide, not per core).
            dma_active: Whether the DMA engine was powered.
        """
        cp = self.cluster_params
        core = self.core_model.report(counters, cycles,
                                      dma_active=False, dma_bytes=0)
        breakdown = dict(core.breakdown_pj)
        breakdown["tcdm_xbar"] = (
            tcdm_accesses * cp.tcdm_bank_access_pj
            + tcdm_conflict_cycles * cp.tcdm_conflict_pj
        )
        breakdown["dma"] = (
            dma_bytes * cp.dma_byte_pj
            + dma_transfers * cp.dma_setup_pj
        ) if dma_active else 0.0
        breakdown["barrier"] = barriers * cp.barrier_pj
        dynamic = sum(breakdown.values())
        p = self.params
        dma_mw = p.dma_active_mw if dma_active else p.dma_idle_mw
        constant_mw = (
            cp.shared_constant_mw
            + n_cores * cp.per_core_constant_mw
            + n_banks * cp.tcdm_bank_static_mw
            + dma_mw
        )
        return PowerReport(
            cycles=cycles,
            dynamic_energy_pj=dynamic,
            constant_energy_pj=constant_mw * cycles,
            breakdown_pj=breakdown,
        )


class SocEnergyModel:
    """Energy/power for a C-cluster SoC run.

    Layered on :class:`ClusterEnergyModel` exactly as that model layers
    on the per-core one: each cluster's activity is priced by the
    cluster model over its *own* counters (dynamic energy is additive),
    every cluster pays its full constant decomposition for the whole
    SoC makespan, and the SoC level adds what only it can see — beats
    crossing the shared interconnect, link-arbitration retries, L2
    accesses, and the interconnect + L2 static power.
    """

    def __init__(self, params: EnergyParams | None = None,
                 cluster_params: ClusterEnergyParams | None = None,
                 soc_params: SocEnergyParams | None = None) -> None:
        self.cluster_model = ClusterEnergyModel(params, cluster_params)
        self.params = self.cluster_model.params
        self.cluster_params = self.cluster_model.cluster_params
        self.soc_params = soc_params or SocEnergyParams()

    def report(self, cluster_reports: list[PowerReport], cycles: int,
               link_beats: int = 0,
               link_stall_cycles: int = 0,
               l2_bytes: int = 0) -> PowerReport:
        """Combine per-cluster reports with the SoC-level activity.

        Args:
            cluster_reports: One :meth:`ClusterEnergyModel.report` per
                cluster, each priced over that cluster's counters with
                ``cycles`` set to the **SoC makespan** (every cluster
                is powered for the whole run).
            cycles: SoC makespan of the region.
            link_beats: DMA beats granted over the L2 link.
            link_stall_cycles: Beat-arbitration retry cycles.
            l2_bytes: Bytes read from plus written to the L2.
        """
        sp = self.soc_params
        breakdown: dict[str, float] = {}
        for report in cluster_reports:
            for component, energy in report.breakdown_pj.items():
                breakdown[component] = \
                    breakdown.get(component, 0.0) + energy
        breakdown["soc_interconnect"] = (
            link_beats * sp.interconnect_beat_pj
            + link_stall_cycles * sp.link_stall_pj
        )
        breakdown["l2"] = l2_bytes * sp.l2_byte_pj
        constant = sum(r.constant_energy_pj for r in cluster_reports) \
            + (sp.soc_constant_mw + sp.l2_static_mw) * cycles
        return PowerReport(
            cycles=cycles,
            dynamic_energy_pj=sum(breakdown.values()),
            constant_energy_pj=constant,
            breakdown_pj=breakdown,
        )
