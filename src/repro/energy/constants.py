"""Energy-model constants.

Per-event energies (picojoules) and constant power components
(milliwatts) for the simulated cluster in a 12 nm-class FinFET node at
1 GHz and 0.8 V — the paper's operating point.  At 1 GHz one cycle is one
nanosecond, so ``power_mW = energy_pJ / cycles + constant_mW``.

These constants are *calibrated*, not measured: they are chosen so the
baseline kernels land in the paper's 37–44 mW range with the documented
relative costs (an FP64 FMA is the most expensive event; TCDM accesses
cost more than register-file ops; an L1 instruction fetch costs an order
of magnitude more than an L0 loop-buffer hit; sequencer-issued
instructions skip fetch/decode entirely).  The paper's power narrative —
constant clock/leakage power dominating, activity tracking IPC, and the
L0 thrashing penalty on large loop bodies — is carried by the *structure*
of the model, not the absolute values.  See EXPERIMENTS.md for the
calibration notes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """All tunables of the activity-based energy model."""

    # -- constant power [mW] ------------------------------------------------
    #: Clock tree, sequential leakage, always-on control: the dominant
    #: term the paper identifies ("power consumption is dominated by
    #: constant components such as the clock network activity").
    constant_mw: float = 30.5
    #: Extra constant power while the DMA engine is active (vector
    #: kernels double-buffer their input/output arrays through it).
    dma_active_mw: float = 2.6
    #: Idle (clock-gated) DMA engine.
    dma_idle_mw: float = 0.1

    # -- per-event energy [pJ] ----------------------------------------------
    int_alu_pj: float = 1.1
    int_mul_pj: float = 3.0
    int_load_pj: float = 3.6       # AGU + TCDM access + RF writeback
    int_store_pj: float = 3.2
    branch_pj: float = 1.3
    csr_pj: float = 1.0
    fp_add_pj: float = 3.6         # FP64 add/sub
    fp_mul_pj: float = 4.6
    fp_fma_pj: float = 6.8
    fp_div_pj: float = 14.0
    fp_cmp_pj: float = 1.8
    fp_cvt_pj: float = 2.2
    fp_mv_pj: float = 1.2
    fp_load_pj: float = 4.4        # 64-bit TCDM access
    fp_store_pj: float = 4.0
    ssr_elem_pj: float = 3.0       # address generation + TCDM access
    ssr_index_pj: float = 1.6      # extra index fetch in ISSR mode
    sequencer_issue_pj: float = 0.4  # issue from the FREP buffer
    icache_hit_pj: float = 0.4     # L0 loop-buffer read
    icache_miss_pj: float = 4.2    # L1 I$ fetch (thrashing cost)
    dma_byte_pj: float = 0.35      # per byte moved by the DMA engine


@dataclass(frozen=True)
class ClusterEnergyParams:
    """Cluster-level additions to the per-core activity model.

    The single-core :class:`EnergyParams` fold the whole cluster's
    constant power into ``constant_mw`` (the paper measures a one-core
    cluster).  For N-core runs that constant splits into a *shared*
    component (clock tree, interconnect, L2 controller — paid once), a
    *per-core* slice, and a per-bank TCDM slice, calibrated so one
    active core at the default 32-bank configuration reproduces the
    single-core 30.5 mW: ``shared + 1 x per_core + 32 x bank = 30.5``.
    The *dynamic* crossbar pricing (``tcdm_bank_access_pj``) has no
    single-core counterpart — the per-core model folds that activity
    into its load/store/SSR energies — so a 1-core cluster reads a few
    percent above the Figure-2 power column while its cycle counts
    match exactly.
    """

    # -- constant power [mW] ------------------------------------------------
    #: Cluster-shared clock/interconnect/control power, paid once.
    shared_constant_mw: float = 24.4
    #: Additional constant power per active core.
    per_core_constant_mw: float = 4.5
    #: Leakage/clock slice of one TCDM bank.
    tcdm_bank_static_mw: float = 0.05

    # -- per-event energy [pJ] ----------------------------------------------
    #: One granted bank-word access (arbitration + row cycle).  The
    #: per-core load/store/SSR energies already include their own TCDM
    #: share; this prices the *extra* interconnect activity of the
    #: multi-bank crossbar.
    tcdm_bank_access_pj: float = 0.6
    #: One retried (conflicted) bank request.
    tcdm_conflict_pj: float = 0.3
    #: Per byte moved by the cluster DMA engine.
    dma_byte_pj: float = 0.35
    #: Fixed cost of one DMA transfer descriptor.
    dma_setup_pj: float = 6.0
    #: One barrier episode (tree toggle + wakeup broadcast).
    barrier_pj: float = 8.0


@dataclass(frozen=True)
class SocEnergyParams:
    """SoC-level additions layered over the per-cluster model.

    A multi-cluster SoC pays the cluster decomposition C times (each
    cluster keeps its own clock tree, cores and TCDM banks) plus the
    resources only the SoC level owns: the shared L2 macro and the
    cluster-to-L2 interconnect.  Constants are calibrated in the same
    spirit as :class:`ClusterEnergyParams` — an L2 access costs several
    times a TCDM bank access (bigger macro, longer wires), moving a
    beat across the SoC interconnect costs more than a TCDM crossbar
    grant, and the L2 + interconnect static power is a visible but
    non-dominant slice of one cluster's constant power.
    """

    # -- constant power [mW] ------------------------------------------------
    #: Interconnect clock/leakage plus the L2 controller, paid once.
    soc_constant_mw: float = 6.5
    #: Leakage/clock of the L2 macro itself.
    l2_static_mw: float = 5.0

    # -- per-event energy [pJ] ----------------------------------------------
    #: One DMA beat traversing the SoC interconnect.
    interconnect_beat_pj: float = 1.8
    #: One retried (link-stalled) beat arbitration cycle.
    link_stall_pj: float = 0.4
    #: Per byte read from or written to the L2 macro.
    l2_byte_pj: float = 0.9
