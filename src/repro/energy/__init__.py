"""Activity-based energy and power model (paper Fig. 2b/2c substitute)."""

from .constants import EnergyParams
from .model import EnergyModel, PowerReport

__all__ = ["EnergyModel", "EnergyParams", "PowerReport"]
