"""Activity-based energy and power model (paper Fig. 2b/2c substitute)."""

from .constants import ClusterEnergyParams, EnergyParams, SocEnergyParams
from .model import (
    ClusterEnergyModel,
    EnergyModel,
    PowerReport,
    SocEnergyModel,
)

__all__ = [
    "ClusterEnergyModel",
    "ClusterEnergyParams",
    "EnergyModel",
    "EnergyParams",
    "PowerReport",
    "SocEnergyModel",
    "SocEnergyParams",
]
