"""Shared L2 memory: the SoC-level backing store for DMA staging.

Functionally the L2 is one flat image shared by every cluster: the SoC
partitioner stages each core's input chunk here (a bump allocator hands
out regions, capacity is enforced), and the per-cluster DMA channels
count their L2-side traffic against it.  The *data path* of a transfer
stays the per-core mirror window the core model already executes
(keeping the single-core simulator untouched and functional state
per-core); tests assert the shared image and the mirrors hold the same
bytes, so the L2 is the authoritative copy in everything but plumbing.

Timing lives elsewhere: per-beat link arbitration in
:class:`~repro.soc.interconnect.SocInterconnect`, L2 access latency in
:class:`~repro.soc.config.SocConfig.l2_latency`.
"""

from __future__ import annotations

import numpy as np

from ..sim.memory import Memory, MemoryError_


class L2Memory:
    """Flat shared L2 image with a bump allocator and traffic stats."""

    def __init__(self, size: int = 1 << 22) -> None:
        self.memory = Memory(size)
        self._next = 0
        #: name -> (addr, nbytes) of every staged region.
        self.regions: dict[str, tuple[int, int]] = {}
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0

    @property
    def size(self) -> int:
        return self.memory.size

    @property
    def used(self) -> int:
        return self._next

    # ------------------------------------------------------------------
    def alloc(self, name: str, nbytes: int, align: int = 8) -> int:
        """Reserve *nbytes* for *name*; raises when the L2 overflows."""
        if name in self.regions:
            raise ValueError(f"L2 region {name!r} already allocated")
        addr = -(-self._next // align) * align
        if addr + nbytes > self.size:
            raise MemoryError_(
                f"L2 region {name!r} of {nbytes} bytes does not fit: "
                f"{self.size - addr} of 0x{self.size:x} bytes free"
            )
        self._next = addr + nbytes
        self.regions[name] = (addr, nbytes)
        return addr

    def stage(self, name: str, array: np.ndarray) -> int:
        """Allocate a region for *array* and write it; returns its addr."""
        addr = self.alloc(name, array.nbytes)
        self.memory.write_array(addr, array)
        return addr

    def region_bytes(self, name: str) -> bytes:
        """The current contents of a staged region (for verification)."""
        addr, nbytes = self.regions[name]
        return bytes(self.memory.data[addr:addr + nbytes])

    # ------------------------------------------------------------------
    # traffic accounting (driven by the SoC DMA channels)
    def note_read(self, nbytes: int) -> None:
        self.bytes_read += nbytes
        self.reads += 1

    def note_write(self, nbytes: int) -> None:
        self.bytes_written += nbytes
        self.writes += 1

    @property
    def bytes_touched(self) -> int:
        return self.bytes_read + self.bytes_written
