"""Multi-cluster SoC simulation: C ClusterMachines over a shared L2.

A :class:`SocMachine` composes C :class:`~repro.cluster.machine.
ClusterMachine` clusters with the SoC-level shared resources of this
package:

* every cluster's DMA transfers move their beats through one
  :class:`~repro.soc.interconnect.SocInterconnect` (bandwidth-limited
  link to the L2, round-robin beat arbitration, per-link stats),
* staged data lives in one shared :class:`~repro.soc.l2.L2Memory`
  (capacity enforcement, read/write traffic accounting).

Execution is event-driven the same way a cluster steps its cores: the
driver repeatedly steps the *cluster* whose laggard core is furthest
behind in simulated time, and that cluster in turn steps its own
laggard core — so interconnect claims line up with the cycles they
model across the whole SoC.  Functional state stays per-core, exactly
as in the cluster layer, so correctness is independent of the stepping
interleave; only timing couples the clusters.  With a single cluster
and the default (uncontended) interconnect the composition is
cycle-identical to a bare ``ClusterMachine``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..cluster.machine import ClusterMachine, ClusterRunResult
from ..cluster.partition import L2_BASE
from ..mem import Transfer, TransferEngine
from ..sim.config import CoreConfig
from ..sim.counters import Counters, RegionMeasurement
from .config import SocConfig
from .interconnect import SocInterconnect
from .l2 import L2Memory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.config import ClusterConfig


def _sum_counters(parts: list[Counters]) -> Counters:
    total = Counters()
    for part in parts:
        for name, value in vars(part).items():
            setattr(total, name, getattr(total, name) + value)
    return total


class SocDmaChannel(TransferEngine):
    """One cluster's DMA engine with its beats arbitrated SoC-wide.

    The SoC *configuration* of the unified
    :class:`~repro.mem.TransferEngine` — the same engine model as
    :class:`~repro.cluster.dma.ClusterDma` (program-order transfers,
    per-transfer setup latency, ``bandwidth`` bytes per beat), wired
    to the SoC's shared resources through the engine's hooks instead
    of overriding any timing logic:

    * the beat ``arbiter`` is :meth:`SocInterconnect.transfer`, so
      data beats are granted by the shared link instead of landing
      unconditionally one per cycle — contention from other clusters
      stretches the transfer, and ``dma.wait`` fences charge the
      stretch to the waiting core's ``stall_dma``;
    * the ``on_complete`` hook tallies L2-window endpoints against the
      shared :class:`L2Memory`;
    * ``extra_latency`` carries the configured L2 access latency.
    """

    def __init__(self, cluster_id: int, interconnect: SocInterconnect,
                 l2: L2Memory | None = None,
                 l2_latency: int = 0,
                 l2_window_base: int = L2_BASE,
                 **kwargs) -> None:
        # l2_latency / l2_window_base live on as the engine's
        # extra_latency / window_base — single storage, so endpoint
        # classification and direction accounting can never diverge.
        super().__init__(stream_id=cluster_id,
                         arbiter=interconnect.transfer,
                         extra_latency=l2_latency,
                         window_base=l2_window_base,
                         on_complete=self._note_l2,
                         **kwargs)
        self.cluster_id = cluster_id
        self.interconnect = interconnect
        self.l2 = l2

    def _note_l2(self, transfer: Transfer) -> None:
        """Tally a transfer's L2-window endpoints on the shared L2."""
        if self.l2 is None:
            return
        obs = self.interconnect.obs
        if transfer.src >= self.window_base:
            self.l2.note_read(transfer.nbytes)
            if obs is not None:
                obs.emit(self.interconnect.obs_scope, "l2", "l2.read",
                         transfer.done, 0, "l2",
                         {"bytes": transfer.nbytes,
                          "cluster": self.cluster_id})
        if transfer.dst >= self.window_base:
            self.l2.note_write(transfer.nbytes)
            if obs is not None:
                obs.emit(self.interconnect.obs_scope, "l2", "l2.write",
                         transfer.done, 0, "l2",
                         {"bytes": transfer.nbytes,
                          "cluster": self.cluster_id})


@dataclass
class SocRunResult:
    """Aggregate measurements of one SoC simulation.

    Attributes:
        cycles: SoC makespan — the slowest cluster's elapsed cycles.
        cluster_results: Per-cluster :class:`ClusterRunResult`, in
            cluster order.
        counters: Field-wise sum of the per-cluster counters.
        link_beats: Per-cluster beats granted over the L2 link.
        link_stall_cycles: Per-cluster beat-arbitration stall cycles.
        l2_bytes_read: Bytes the DMA channels read from the L2 window.
        l2_bytes_written: Bytes written to the L2 window.
        dma_bytes: Bytes moved by all cluster DMA channels.
        dma_bytes_read: Bytes staged into the TCDMs (READ direction).
        dma_bytes_written: Bytes drained out of the TCDMs (WRITE
            direction; non-zero only in write-back simulation mode).
        dma_busy_cycles: Summed busy cycles of all DMA channels.
        barrier_count: Barrier episodes across every cluster.
    """

    cycles: int
    cluster_results: list[ClusterRunResult]
    counters: Counters
    link_beats: list[int] = field(default_factory=list)
    link_stall_cycles: list[int] = field(default_factory=list)
    l2_bytes_read: int = 0
    l2_bytes_written: int = 0
    dma_bytes: int = 0
    dma_bytes_read: int = 0
    dma_bytes_written: int = 0
    dma_busy_cycles: int = 0
    barrier_count: int = 0

    @property
    def n_clusters(self) -> int:
        return len(self.cluster_results)

    @property
    def cluster_cycles(self) -> list[int]:
        return [r.cycles for r in self.cluster_results]

    @property
    def cluster_dma_stall_cycles(self) -> list[int]:
        """Per-cluster ``dma.wait`` fence stalls (link contention shows
        up here: stretched transfers push the fences out)."""
        return [r.counters.stall_dma for r in self.cluster_results]

    def region(self, name: str) -> RegionMeasurement:
        """SoC-level view of a marked region (makespan + summed
        counters), mirroring :meth:`ClusterRunResult.region`."""
        parts = []
        for r in self.cluster_results:
            try:
                parts.append(r.region(name))
            except KeyError:
                continue
        if not parts:
            raise KeyError(f"no region {name!r} in any cluster")
        return RegionMeasurement(
            name,
            max(p.cycles for p in parts),
            _sum_counters([p.counters for p in parts]),
        )


class SocMachine:
    """C clusters, one shared L2, one beat-arbitrated interconnect."""

    def __init__(self, config: SocConfig | None = None,
                 core_config: CoreConfig | None = None) -> None:
        self.config = config or SocConfig()
        self.core_config = core_config
        self.interconnect = SocInterconnect(
            n_clusters=self.config.n_clusters,
            link_beats_per_cycle=self.config.link_beats_per_cycle,
            max_beats_per_cluster=self.config.max_beats_per_cluster,
            enabled=self.config.model_contention,
        )
        self.l2 = L2Memory(self.config.l2_size)
        self.clusters: list[ClusterMachine] = []
        #: Structured-event sink (repro.obs.ObsSink); None when off.
        self.obs = None
        #: Scope this SoC emits under (root of the hierarchy).
        self.obs_scope = "soc"
        self._tracing = False

    # ------------------------------------------------------------------
    def attach_obs(self, sink, scope: str = "soc") -> None:
        """Observe the whole SoC: interconnect links, L2 traffic and
        every cluster (present and future) with its cores, banks and
        DMA channel.  Pass ``None`` to detach."""
        self.obs = sink
        self.obs_scope = scope
        self.interconnect.obs = sink
        self.interconnect.obs_scope = scope
        for cluster in self.clusters:
            cluster.attach_obs(
                sink, f"{scope}/cluster{cluster.cluster_id}")

    def enable_trace(self) -> list[list[list]]:
        """Record issue events on every core of every cluster (present
        and future); returns the per-cluster, per-core event lists."""
        self._tracing = True
        return [cluster.enable_trace() for cluster in self.clusters]

    # ------------------------------------------------------------------
    def add_cluster(self, cluster_config: "ClusterConfig | None" = None
                    ) -> ClusterMachine:
        """Create and register the next cluster.

        Cores are added to the returned :class:`ClusterMachine` exactly
        as in a standalone cluster; its DMA engine is already a
        :class:`SocDmaChannel` wired to this SoC's interconnect/L2.
        """
        if len(self.clusters) >= self.config.n_clusters:
            raise ValueError(
                f"SoC is configured for {self.config.n_clusters} "
                f"clusters"
            )
        cc = cluster_config or self.config.cluster
        cluster_id = len(self.clusters)
        channel = SocDmaChannel(
            cluster_id=cluster_id,
            interconnect=self.interconnect,
            l2=self.l2,
            l2_latency=self.config.l2_latency,
            bandwidth=cc.dma_bandwidth,
            setup_latency=cc.dma_setup_latency,
            tcdm_size=cc.tcdm_size,
        )
        cluster = ClusterMachine(config=cc,
                                 core_config=self.core_config,
                                 dma=channel)
        cluster.cluster_id = cluster_id
        if self.obs is not None:
            cluster.attach_obs(self.obs,
                               f"{self.obs_scope}/cluster{cluster_id}")
        if self._tracing:
            cluster.enable_trace()
        self.clusters.append(cluster)
        return cluster

    # ------------------------------------------------------------------
    def run(self, max_steps: int = 200_000_000) -> SocRunResult:
        """Run every cluster to completion and aggregate measurements."""
        if not self.clusters:
            raise ValueError("SoC has no clusters; call add_cluster "
                             "first")
        for cluster in self.clusters:
            cluster.bind(max_steps)
        active = list(self.clusters)
        # Step the cluster whose laggard core is furthest behind, so
        # cross-cluster interconnect claims happen in (approximate)
        # cycle order.  Ties break by cluster id: deterministic.
        while active:
            cluster = min(active,
                          key=lambda c: (c.laggard_time, c.cluster_id))
            if not cluster.step():
                active.remove(cluster)
        results = [c.result() for c in self.clusters]
        stats = self.interconnect.stats
        return SocRunResult(
            cycles=max(r.cycles for r in results),
            cluster_results=results,
            counters=_sum_counters([r.counters for r in results]),
            link_beats=[s.beats for s in stats],
            link_stall_cycles=[s.stall_cycles for s in stats],
            l2_bytes_read=self.l2.bytes_read,
            l2_bytes_written=self.l2.bytes_written,
            dma_bytes=sum(r.dma_bytes for r in results),
            dma_bytes_read=sum(r.dma_bytes_read for r in results),
            dma_bytes_written=sum(r.dma_bytes_written
                                  for r in results),
            dma_busy_cycles=sum(r.dma_busy_cycles for r in results),
            barrier_count=sum(r.barrier_count for r in results),
        )
