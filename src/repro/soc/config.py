"""SoC-level configuration: clusters, L2 interconnect, L2 capacity.

Defaults model the next level of the Snitch hierarchy: several compute
clusters hanging off one shared L2 behind a bandwidth-limited
interconnect.  The link serves fewer beats per cycle than the clusters
can collectively demand (2 beats/cycle against one beat per cluster per
cycle), so DMA-bound kernels start contending at 3+ clusters — the
regime the ``socscale`` artifact sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.config import ClusterConfig


@dataclass
class SocConfig:
    """Tunable SoC parameters.

    Attributes:
        n_clusters: Number of compute clusters sharing the L2.
        link_beats_per_cycle: Aggregate L2-link capacity in DMA beats
            (one beat = one cluster-DMA bandwidth quantum, i.e.
            ``ClusterConfig.dma_bandwidth`` bytes) granted per cycle
            across all clusters.
        max_beats_per_cluster: Beats a single cluster may claim in any
            one cycle — the round-robin fairness cap.  The default of 1
            gives every cluster the same uncontended beat rate as the
            standalone :class:`~repro.cluster.dma.ClusterDma` engine,
            which is what keeps a 1-cluster SoC cycle-identical to a
            bare :class:`~repro.cluster.machine.ClusterMachine`.
        l2_size: Shared L2 capacity in bytes; staged workloads must fit.
        l2_latency: Extra cycles added to every transfer for the L2
            access itself (row activation + interconnect traversal
            beyond the per-cluster DMA setup).  Default 0: the
            single-cluster default SoC stays cycle-identical to the
            bare cluster; raise it to study L2-latency sensitivity.
        model_contention: Ablation switch for the interconnect
            arbiter.  False grants every beat immediately (ideal
            crossbar), isolating the bandwidth-sharing effect.
        cluster: Per-cluster configuration (every cluster is
            identical).
    """

    n_clusters: int = 2
    link_beats_per_cycle: int = 2
    max_beats_per_cluster: int = 1
    l2_size: int = 1 << 22
    l2_latency: int = 0
    model_contention: bool = True
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError(
                f"n_clusters must be >= 1, got {self.n_clusters}"
            )
        if self.link_beats_per_cycle < 1:
            raise ValueError(
                f"link_beats_per_cycle must be >= 1, got "
                f"{self.link_beats_per_cycle}"
            )
        if self.max_beats_per_cluster < 1:
            raise ValueError(
                f"max_beats_per_cluster must be >= 1, got "
                f"{self.max_beats_per_cluster}"
            )
        if self.l2_latency < 0:
            raise ValueError(
                f"l2_latency must be >= 0, got {self.l2_latency}"
            )
