"""Multi-cluster SoC simulation layer.

Composes C :class:`~repro.cluster.machine.ClusterMachine` clusters into
an SoC sharing one L2 behind a bandwidth-limited interconnect:

* :class:`SocInterconnect` — cycle-by-cycle beat arbitration between
  the per-cluster DMA channels and the shared L2 link (round-robin
  fairness cap, per-link stats sharing the TCDM arbiter's
  :class:`~repro.mem.StreamStats` shape).
* :class:`L2Memory` — the shared staging store: bump allocator,
  capacity enforcement, read/write traffic accounting.
* :class:`SocDmaChannel` — the SoC configuration of the unified
  :class:`~repro.mem.TransferEngine`: beats granted by the
  interconnect instead of landing one per cycle, L2 endpoints tallied
  on the shared store.
* :class:`SocMachine` — event-driven C-cluster driver stepping the
  laggard cluster first, exactly as a cluster steps its cores.
* :func:`partition_soc_kernel` — static chunking of the six registered
  kernels across clusters, then cores (globally unique seeds,
  L2-sourced DMA staging).

A 1-cluster SoC with the default (uncontended) interconnect is
cycle-identical to the equivalent bare ``ClusterMachine``.
"""

from .config import SocConfig
from .interconnect import LinkStats, SocInterconnect
from .l2 import L2Memory
from .machine import SocDmaChannel, SocMachine, SocRunResult
from .partition import SocWorkload, partition_soc_kernel, soc_config_for

__all__ = [
    "L2Memory",
    "LinkStats",
    "SocConfig",
    "SocDmaChannel",
    "SocInterconnect",
    "SocMachine",
    "SocRunResult",
    "SocWorkload",
    "partition_soc_kernel",
    "soc_config_for",
]
