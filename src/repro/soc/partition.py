"""Static work partitioning across clusters, then cores.

The SoC splits a problem of *n* elements/samples over C clusters of M
cores each: cluster *c* takes an ``n / C`` slice, and the cluster
partitioner (:func:`repro.cluster.partition.partition_kernel`) chunks
that slice over its M cores exactly as a standalone cluster would.
Per-core PRNG/input seeds are derived from the *global* core index
(``c * M + m``), so no two cores anywhere in the SoC share a stream —
and a 1-cluster SoC builds byte-identical instances to the equivalent
standalone cluster workload.

DMA staging is sourced from the shared L2: every staged input chunk is
written into the :class:`~repro.soc.l2.L2Memory` image (capacity
enforced by its allocator) as the authoritative copy, with the per-core
L2 *window* acting as the mirror the core model's functional data path
reads (see :mod:`repro.soc.l2`).  The transfers' beats then contend on
the SoC interconnect, which is where multi-cluster bandwidth limits
show up.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.config import ClusterConfig
from ..cluster.partition import ClusterWorkload, partition_kernel
from ..kernels.common import KernelInstance
from ..kernels.registry import KernelDef
from ..sim.config import CoreConfig
from .config import SocConfig
from .machine import SocMachine, SocRunResult


@dataclass
class SocWorkload:
    """One kernel, one variant, chunked over C clusters x M cores."""

    name: str
    variant: str
    n: int
    n_clusters: int
    n_cores: int
    block: int | None
    cluster_workloads: list[ClusterWorkload]
    #: Whether the per-core instances carry write-back drain epilogues
    #: (see :func:`repro.cluster.partition.partition_kernel`).
    writeback: bool = False

    @property
    def instances(self) -> list[KernelInstance]:
        """Every core's instance, cluster-major, in core order."""
        return [instance
                for workload in self.cluster_workloads
                for instance in workload.instances]

    def run(self, config: SocConfig | None = None,
            core_config: CoreConfig | None = None,
            check: bool = True,
            max_steps: int = 200_000_000,
            obs=None) -> SocRunResult:
        """Simulate the workload on an SoC sized to fit it.

        *obs* is an optional :class:`repro.obs.ObsSink` observing the
        whole hierarchy (interconnect links, L2, every cluster's
        cores/banks/DMA) under the ``soc`` scope.
        """
        config = config or SocConfig()
        if config.n_clusters != self.n_clusters:
            config = replace(config, n_clusters=self.n_clusters)
        if config.cluster.n_cores != self.n_cores \
                or config.cluster.writeback != self.writeback:
            config = replace(
                config,
                cluster=replace(config.cluster, n_cores=self.n_cores,
                                writeback=self.writeback),
            )
        soc = SocMachine(config=config, core_config=core_config)
        if obs is not None:
            soc.attach_obs(obs, "soc")
        for c, workload in enumerate(self.cluster_workloads):
            cluster = soc.add_cluster()
            for m, instance in enumerate(workload.instances):
                cluster.add_core(instance.program, instance.memory)
                self._stage_into_l2(soc, c, m, instance)
        result = soc.run(max_steps=max_steps)
        self._writeback_into_l2(soc)
        if check:
            self.verify(soc)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _stage_into_l2(soc: SocMachine, cluster: int, core: int,
                       instance: KernelInstance) -> None:
        """Reserve a core's shared-L2 regions before the run.

        Staged input chunks are written up front (the L2 is the
        authoritative source the DMA reads from); drain regions are
        allocated empty — capacity enforced now, bytes landing at
        :meth:`_writeback_into_l2` time.
        """
        if instance.notes.get("dma_staged"):
            soc.l2.stage(f"c{cluster}/m{core}/{instance.name}",
                         instance.notes["inputs"])
        if instance.notes.get("dma_drained"):
            _, nbytes = instance.notes["drain_region"]
            soc.l2.alloc(f"c{cluster}/m{core}/{instance.name}/out",
                         nbytes)

    def _writeback_into_l2(self, soc: SocMachine) -> None:
        """Land every core's drained bytes in the shared L2 image.

        The drain window inside each core's memory image is the data
        path (mirroring how staging reads work in the other
        direction); the shared L2 region is the authoritative copy
        consumers of the SoC would read.
        """
        iterator = iter(self.instances)
        for c in range(self.n_clusters):
            for m in range(self.n_cores):
                instance = next(iterator)
                if not instance.notes.get("dma_drained"):
                    continue
                drain_base, nbytes = instance.notes["drain_region"]
                addr, _ = soc.l2.regions[
                    f"c{c}/m{m}/{instance.name}/out"]
                soc.l2.memory.data[addr:addr + nbytes] = \
                    instance.memory.data[drain_base:drain_base + nbytes]

    def verify(self, soc: SocMachine) -> None:
        """Check every core's results and the L2/TCDM data agreement."""
        iterator = iter(self.instances)
        for c, cluster in enumerate(soc.clusters):
            for m, machine in enumerate(cluster.cores):
                instance = next(iterator)
                instance.verify(instance.memory, machine)
                if instance.notes.get("dma_staged"):
                    # The chunk that arrived in the TCDM must be the
                    # bytes the shared L2 holds (the mirror window is
                    # the data path; the L2 is the authority).
                    x_addr = instance.notes["x_addr"]
                    staged = soc.l2.region_bytes(
                        f"c{c}/m{m}/{instance.name}")
                    got = bytes(instance.memory.data[
                        x_addr:x_addr + len(staged)])
                    if got != staged:
                        raise AssertionError(
                            f"cluster {c} core {m}: TCDM data diverged "
                            f"from the shared L2 copy"
                        )
                if instance.notes.get("dma_drained"):
                    # The drained L2 copy must be the outputs the core
                    # computed (write-back made the L2 authoritative
                    # for results too).
                    _, nbytes = instance.notes["drain_region"]
                    src = instance.notes["drain_src"]
                    drained = soc.l2.region_bytes(
                        f"c{c}/m{m}/{instance.name}/out")
                    expect = bytes(instance.memory.data[
                        src:src + nbytes])
                    if drained != expect:
                        raise AssertionError(
                            f"cluster {c} core {m}: shared-L2 drain "
                            f"region diverged from the computed "
                            f"outputs"
                        )


def partition_soc_kernel(kernel_def: KernelDef, n: int,
                         n_clusters: int, n_cores: int,
                         variant: str = "baseline",
                         block: int | None = None,
                         stage_dma: bool | None = None,
                         writeback: bool = False) -> SocWorkload:
    """Chunk one registered kernel over *n_clusters* x *n_cores*.

    Args:
        kernel_def: Registry entry to partition.
        n: Total problem size (must divide evenly over all cores).
        n_clusters: SoC width in clusters.
        n_cores: Cores per cluster.
        variant: ``baseline`` or ``copift``.
        block: Requested COPIFT block size (auto-shrunk per chunk).
        stage_dma: Forwarded to the cluster partitioner (None keeps
            its per-kernel default).
        writeback: Simulate output write-back: cores drain their
            output regions to the shared L2 through their cluster's
            DMA channel, the drain beats contending on the SoC
            interconnect and in the TCDM bank arbiters exactly like
            staging reads (forwarded to the cluster partitioner).
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    if n % (n_clusters * n_cores):
        raise ValueError(
            f"problem size {n} does not chunk evenly over "
            f"{n_clusters} clusters x {n_cores} cores"
        )
    slice_n = n // n_clusters
    cluster_workloads = [
        partition_kernel(kernel_def, slice_n, n_cores,
                         variant=variant, block=block,
                         stage_dma=stage_dma,
                         first_core=cluster * n_cores,
                         writeback=writeback)
        for cluster in range(n_clusters)
    ]
    return SocWorkload(
        name=kernel_def.name, variant=variant, n=n,
        n_clusters=n_clusters, n_cores=n_cores,
        block=cluster_workloads[0].block,
        cluster_workloads=cluster_workloads,
        writeback=writeback,
    )


def soc_config_for(workload: SocWorkload,
                   base: SocConfig | None = None,
                   cluster: ClusterConfig | None = None) -> SocConfig:
    """A :class:`SocConfig` resized to fit *workload* exactly."""
    config = base or SocConfig()
    cc = cluster or config.cluster
    return replace(
        config,
        n_clusters=workload.n_clusters,
        cluster=replace(cc, n_cores=workload.n_cores),
    )
