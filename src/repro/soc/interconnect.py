"""Cluster-to-L2 interconnect: cycle-by-cycle beat arbitration.

The shared L2 sits behind one bandwidth-limited link.  Every cluster's
DMA engine moves data in *beats* (one beat = the cluster DMA's per-cycle
bandwidth quantum); the link grants at most ``link_beats_per_cycle``
beats per cycle across all clusters, and at most
``max_beats_per_cluster`` of those to any one cluster — the round-robin
fairness cap that stops one cluster's burst from starving its peers.

Like the banked-TCDM arbiter this is a claim-table model: requests are
serviced first-come-first-served in *simulation* order, and the SoC
driver steps the cluster furthest behind in time first, so claim order
tracks cycle order closely (exact for lock-step clusters).  Per-link
statistics share the :class:`~repro.mem.StreamStats` shape with the
banked-TCDM arbiter: granted beats and the stall cycles contention
added versus each cluster's own uncontended schedule.
"""

from __future__ import annotations

from ..mem import StreamStats, stat_alias


class LinkStats(StreamStats):
    """Per-cluster link activity — the interconnect's view of the
    shared :class:`~repro.mem.StreamStats` shape.

    ``beats`` is the historical name for ``grants``; it aliases the
    same storage, so the two spellings can never diverge.
    """

    beats = stat_alias("grants")


class SocInterconnect:
    """Per-cycle beat arbiter between cluster DMA channels and the L2."""

    def __init__(self, n_clusters: int = 2,
                 link_beats_per_cycle: int = 2,
                 max_beats_per_cluster: int = 1,
                 enabled: bool = True) -> None:
        self.n_clusters = n_clusters
        self.link_beats_per_cycle = link_beats_per_cycle
        self.max_beats_per_cluster = max_beats_per_cluster
        self.enabled = enabled
        self.stats = [LinkStats() for _ in range(n_clusters)]
        #: claims[cycle] -> total beats granted that cycle.
        self._claims: dict[int, int] = {}
        #: per-cluster claims[cycle] -> beats granted to that cluster.
        self._cluster_claims: list[dict[int, int]] = [
            {} for _ in range(n_clusters)
        ]
        self._claim_count = 0
        #: Structured-event sink (repro.obs.ObsSink); None when off.
        self.obs = None
        #: Scope link events are emitted under (the owning SoC).
        self.obs_scope = "soc"

    # ------------------------------------------------------------------
    def _ideal_done(self, nbeats: int, start: int) -> int:
        """Completion with the link all to ourselves (no contention)."""
        per_cycle = min(self.max_beats_per_cluster,
                        self.link_beats_per_cycle)
        return start + -(-nbeats // per_cycle)

    def transfer(self, cluster_id: int, nbeats: int, start: int) -> int:
        """Arbitrate one transfer of *nbeats* beats issued at *start*.

        Returns the cycle the last beat lands in the TCDM (>= *start*).
        Claims link slots cycle by cycle; a beat is granted at the
        first cycle after its predecessor where both the link and the
        cluster's fairness cap have room.
        """
        stats = self.stats[cluster_id]
        stats.transfers += 1
        if nbeats <= 0:
            return start
        if not self.enabled:
            stats.beats += nbeats
            done = self._ideal_done(nbeats, start)
            obs = self.obs
            if obs is not None:
                obs.emit(self.obs_scope, f"link{cluster_id}",
                         "link.grant", start, done - start, "link",
                         {"beats": nbeats, "stall": 0})
            return done
        link_cap = self.link_beats_per_cycle
        cluster_cap = self.max_beats_per_cluster
        claims = self._claims
        mine = self._cluster_claims[cluster_id]
        t = start + 1                       # first beat lands next cycle
        for _ in range(nbeats):
            while claims.get(t, 0) >= link_cap \
                    or mine.get(t, 0) >= cluster_cap:
                t += 1
            claims[t] = claims.get(t, 0) + 1
            mine[t] = mine.get(t, 0) + 1
            self._claim_count += 1
        stats.beats += nbeats
        stall = t - self._ideal_done(nbeats, start)
        stats.stall_cycles += stall
        obs = self.obs
        if obs is not None:
            obs.emit(self.obs_scope, f"link{cluster_id}",
                     "link.retry" if stall else "link.grant", start,
                     t - start, "link",
                     {"beats": nbeats, "stall": stall})
        if self._claim_count > (1 << 20):
            self._prune(t)
        return t

    def _prune(self, now: int, horizon: int = 1 << 16) -> None:
        """Drop claims far in the past to bound memory."""
        floor = now - horizon
        for table in [self._claims, *self._cluster_claims]:
            for cycle in [c for c in table if c < floor]:
                del table[cycle]
        self._claim_count = sum(len(t) for t in self._cluster_claims)

    # ------------------------------------------------------------------
    @property
    def total_beats(self) -> int:
        return sum(s.beats for s in self.stats)

    @property
    def total_stall_cycles(self) -> int:
        return sum(s.stall_cycles for s in self.stats)

    def stall_rate(self) -> float:
        """Stall cycles per granted beat (0.0 when idle)."""
        beats = self.total_beats
        if beats == 0:
            return 0.0
        return self.total_stall_cycles / beats
