"""Pre-decoded micro-op programs.

The simulator used to re-derive everything about an instruction on every
dynamic execution: dict lookups into the handler tables, ``zip`` walks
over operand roles, attribute chains through ``instr.spec``.  A
:class:`DecodedProgram` does all of that exactly once per *static*
instruction, producing a flat list of :class:`MicroOp` records the hot
loop consumes with plain list indexing:

* the functional handler is resolved and *bound* — operand register
  indices and immediates are baked into a closure
  (:data:`~repro.sim.exec_ops.INT_BINDERS`);
* operand read/write register index tuples are pre-extracted;
* branch/jump targets are resolved to instruction indices;
* FP operand gathering is compiled to a ``(is_fp, index)`` plan;
* FREP bodies are pre-sliced and statically validated;
* the activity-counter field name for the op's class is attached.

Decoding is cached on the :class:`~repro.isa.program.Program` object, so
a program bound to N cluster cores (or re-run across sweep variants) is
decoded once, not N times.  A decoded program is config-independent:
per-config latencies are resolved by the scheduler at bind time.
Programs are treated as immutable after first decode (nothing in the
repo mutates a built ``Program``).

Bit-for-bit timing compatibility with the original interpreter is a hard
requirement (locked in by ``tests/test_golden.py``); every precomputed
field mirrors the expression the interpreter used to evaluate in-line.
"""

from __future__ import annotations

from ..isa.instructions import OpClass, Thread
from ..isa.program import Instruction, Program
from .exec_ops import FP_COMPUTE, FP_TO_INT, INT_BINDERS
from .ssr import F_RPTR, F_WPTR, decode_cfg_imm

# -- micro-op kinds (MicroOp.kind) ------------------------------------------
K_INT = 0     # integer-core instruction
K_FP = 1      # FP-subsystem instruction
K_FREP = 2    # FREP loop marker
K_META = 3    # zero-cost simulator directive (mark)

# -- integer specials (MicroOp.special) -------------------------------------
S_HANDLER = 0   # plain functional handler (the common case)
S_SCFGWI = 1    # SSR configuration write
S_SSR_EN = 2    # ssr.enable
S_SSR_DIS = 3   # ssr.disable
S_DMA_START = 4  # asynchronous cluster DMA transfer
S_DMA_WAIT = 5  # DMA fence
S_BARRIER = 6   # cluster hardware barrier
S_RET = 7       # halt
S_JUMP = 8      # j / jal / jalr

# -- FP dispatch (MicroOp.fp_op) --------------------------------------------
F_LOAD = 0    # FP load (fld/flw)
F_STORE = 1   # FP store (fsd/fsw)
F_COMPUTE = 2  # writes the FP RF through FP_COMPUTE
F_TO_INT = 3   # writes the integer RF through FP_TO_INT
F_BAD = 4      # decode error, raised on execution

#: Activity counter incremented per issued instruction of each class.
ACTIVITY_COUNTER = {
    OpClass.ALU: "int_alu_ops",
    OpClass.MUL: "int_mul_ops",
    OpClass.LOAD: "int_loads",
    OpClass.STORE: "int_stores",
    OpClass.BRANCH: "branches",
    OpClass.JUMP: "branches",
    OpClass.CSR: "csr_ops",
    OpClass.FREP: "csr_ops",
    OpClass.FP_ADD: "fp_adds",
    OpClass.FP_MUL: "fp_muls",
    OpClass.FP_FMA: "fp_fmas",
    OpClass.FP_DIV: "fp_divs",
    OpClass.FP_CMP: "fp_cmps",
    OpClass.FP_CVT: "fp_cvts",
    OpClass.FP_MV: "fp_mvs",
    OpClass.FP_LOAD: "fp_loads",
    OpClass.FP_STORE: "fp_stores",
}


class MicroOp:
    """One pre-decoded instruction (flat record, no per-step derivation)."""

    __slots__ = (
        "index", "instr", "mnemonic", "kind", "opclass", "counter",
        # integer side
        "special", "handler", "int_read_idx", "int_write_idx",
        "is_load", "is_store", "is_branch", "mem_base_idx", "imm",
        "target", "jump_direct", "error",
        # scfgwi / dma.start / frep scalar operands
        "aux0", "aux1", "aux2", "cfg_arm",
        # FP side
        "gather", "fp_op", "compute", "dest_idx", "width",
        # FREP
        "frep_n", "frep_body", "frep_error",
    )

    def __init__(self, index: int, instr: Instruction) -> None:
        spec = instr.spec
        self.index = index
        self.instr = instr
        self.mnemonic = spec.mnemonic
        self.opclass = spec.opclass
        self.counter = ACTIVITY_COUNTER.get(spec.opclass)
        self.special = S_HANDLER
        self.handler = None
        self.int_read_idx = tuple(r.index for r in instr.int_reads)
        self.int_write_idx = tuple(r.index for r in instr.int_writes)
        self.is_load = spec.is_load
        self.is_store = spec.is_store
        self.is_branch = spec.opclass is OpClass.BRANCH
        self.mem_base_idx = (instr.mem_base.index
                             if instr.mem_base is not None else 0)
        self.imm = instr.imm
        self.target = None
        self.jump_direct = False
        self.error = None
        self.aux0 = self.aux1 = self.aux2 = 0
        self.cfg_arm = False
        self.gather = ()
        self.fp_op = F_BAD
        self.compute = None
        self.dest_idx = 0
        self.width = 8
        self.frep_n = 0
        self.frep_body = ()
        self.frep_error = None

        opclass = spec.opclass
        if opclass is OpClass.META:
            self.kind = K_META
        elif opclass is OpClass.FREP:
            self.kind = K_FREP
            self.aux0 = instr.operands[0].index      # rs1 (repeat count)
            self.frep_n = instr.imm
        elif spec.thread is Thread.INT:
            self.kind = K_INT
            self._decode_int(instr)
        else:
            self.kind = K_FP
            self._decode_fp(instr)

    # ------------------------------------------------------------------
    def _decode_int(self, instr: Instruction) -> None:
        mnemonic = self.mnemonic
        if mnemonic == "scfgwi":
            self.special = S_SCFGWI
            field_code, ssr_index = decode_cfg_imm(instr.imm)
            self.aux0 = field_code
            self.aux1 = ssr_index
            self.aux2 = instr.operands[0].index      # value source
            self.cfg_arm = field_code in (F_RPTR, F_WPTR)
        elif mnemonic == "ssr.enable":
            self.special = S_SSR_EN
        elif mnemonic == "ssr.disable":
            self.special = S_SSR_DIS
        elif mnemonic == "dma.start":
            self.special = S_DMA_START
            self.aux0 = instr.operands[0].index
            self.aux1 = instr.operands[1].index
            self.aux2 = instr.operands[2].index
        elif mnemonic == "dma.wait":
            self.special = S_DMA_WAIT
        elif mnemonic == "cluster.barrier":
            self.special = S_BARRIER
        elif mnemonic == "ret":
            self.special = S_RET
        elif self.opclass is OpClass.JUMP:
            self.special = S_JUMP
            self.jump_direct = mnemonic in ("j", "jal")
        else:
            binder = INT_BINDERS.get(mnemonic)
            if binder is None:
                self.error = (
                    f"unsupported instruction {instr.render()!r}"
                )
            else:
                self.handler = binder(instr)

    # ------------------------------------------------------------------
    def _decode_fp(self, instr: Instruction) -> None:
        spec = instr.spec
        gather = []
        for role, operand in zip(spec.roles, instr.operands):
            if role.startswith("frs"):
                gather.append((True, operand.index))
            elif role.startswith("rs") and role != spec.mem_base_role:
                gather.append((False, operand.index))
        self.gather = tuple(gather)

        mnemonic = self.mnemonic
        opclass = self.opclass
        if opclass is OpClass.FP_LOAD:
            self.fp_op = F_LOAD
            self.dest_idx = instr.operands[0].index
            self.width = 8 if mnemonic == "fld" else 4
        elif opclass is OpClass.FP_STORE:
            self.fp_op = F_STORE
            self.width = 8 if mnemonic == "fsd" else 4
        elif instr.fp_writes:
            compute = FP_COMPUTE.get(mnemonic)
            if compute is None:
                self.error = (
                    f"unsupported FP instruction {instr.render()!r}"
                )
            else:
                self.fp_op = F_COMPUTE
                self.compute = compute
                self.dest_idx = instr.operands[0].index
        elif instr.int_writes:
            to_int = FP_TO_INT.get(mnemonic)
            if to_int is None:
                self.error = (
                    f"unsupported FP instruction {instr.render()!r}"
                )
            else:
                self.fp_op = F_TO_INT
                self.compute = to_int
                self.dest_idx = instr.operands[0].index
        else:
            self.error = (
                f"FP instruction with no destination: {instr.render()!r}"
            )


class DecodedProgram:
    """A program resolved to micro-ops, cached on the Program object."""

    __slots__ = ("program", "ops")

    def __init__(self, program: Program) -> None:
        self.program = program
        ops = [MicroOp(i, instr)
               for i, instr in enumerate(program.instructions)]
        self.ops = ops
        n_ops = len(ops)
        for op in ops:
            instr = op.instr
            # Branch/jump targets (the interpreter resolved these on
            # every bind; undefined labels raise the same KeyError).
            if instr.label is not None and op.opclass in (
                    OpClass.BRANCH, OpClass.JUMP):
                op.target = program.target(instr.label)
            # FREP bodies: pre-slice and statically validate.  The
            # config-dependent buffer-size check stays with the
            # scheduler; error precedence there matches the original
            # interpreter (n <= 0, buffer size, then these).
            if op.kind == K_FREP:
                n = op.frep_n
                if n <= 0:
                    continue
                if op.index + 1 + n > n_ops:
                    op.frep_error = "frep body runs past the program end"
                    continue
                body = ops[op.index + 1:op.index + 1 + n]
                for bop in body:
                    binstr = bop.instr
                    if binstr.spec.thread is not Thread.FP \
                            or bop.kind != K_FP:
                        op.frep_error = (
                            f"non-FP instruction in frep body: "
                            f"{binstr.render()!r}"
                        )
                        break
                    if binstr.int_reads or binstr.int_writes:
                        op.frep_error = (
                            f"frep body instruction touches the integer "
                            f"RF (use SSRs / the COPIFT custom "
                            f"extension): {binstr.render()!r}"
                        )
                        break
                else:
                    op.frep_body = tuple(body)

    @classmethod
    def of(cls, program: Program) -> "DecodedProgram":
        """Decode *program*, reusing a previous decode when available.

        The cache rides on the Program instance itself, so its lifetime
        is exactly the program's and cluster cores sharing one Program
        decode it once.
        """
        cached = program.__dict__.get("_decoded_cache")
        if cached is None:
            cached = cls(program)
            program.__dict__["_decoded_cache"] = cached
        return cached
