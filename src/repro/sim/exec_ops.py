"""Functional (architectural) semantics of every supported instruction.

Split by execution engine:

* :data:`INT_HANDLERS` — integer-core instructions, as functions
  ``(machine, instr) -> taken`` mutating machine state; branches return
  whether they were taken.
* :data:`INT_BINDERS` — the micro-op form of the same semantics: a
  binder ``(instr) -> (machine) -> taken`` that extracts the operand
  register indices and immediate *once*, at decode time, and returns a
  closure the hot loop calls with zero per-step operand resolution
  (see :mod:`repro.sim.decode`).  Both tables are generated from one
  set of pure operation functions, so they cannot drift apart.
* :data:`FP_COMPUTE` — pure value functions for FP-thread instructions
  that write an FP register.  Operand values arrive in role order (FP
  sources first, then integer sources for cross-RF conversions).
* :data:`FP_TO_INT` — FP-thread instructions producing an integer-RF
  result (comparisons, ``fcvt.w.d``, ``fclass.d``, ``fmv.x.w``).

Doubles are modelled with native Python floats (IEEE binary64 on all
supported platforms); raw-bit views use ``struct`` so the paper's
bit-manipulation tricks (e.g. glibc ``expf``'s shift-and-extract through
an ``fsd``/``lw`` pair) behave exactly as on hardware.  ``fmadd``-family
results are computed unfused (two roundings); kernel verification uses
tolerances accordingly.
"""

from __future__ import annotations

import math
import struct

import numpy as np

_MASK32 = 0xFFFFFFFF
_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1


def s32(value: int) -> int:
    """Interpret a 32-bit unsigned value as signed."""
    return value - (1 << 32) if value >= (1 << 31) else value


def u32(value: int) -> int:
    """Truncate a Python int to 32-bit unsigned."""
    return value & _MASK32


def f64_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_f64(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q",
                                           bits & (1 << 64) - 1))[0]


def f32_to_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _to_f32(value: float) -> float:
    """Round a double to the nearest binary32, returned as a double."""
    return float(np.float32(value))


# ---------------------------------------------------------------------------
# Integer-core handlers
# ---------------------------------------------------------------------------
#
# The pure operation tables (_RR_OPS/_RI_OPS/_BRANCH_OPS) are the single
# source of truth for the register-register/-immediate/branch semantics.
# They are compiled into two callable forms that cannot drift apart:
#
# * ``INT_HANDLERS[mnemonic](machine, instr)`` — the interpreter form,
#   resolving operands on every call (tests, tooling, ad-hoc use);
# * ``INT_BINDERS[mnemonic](instr) -> (machine)`` — the micro-op form:
#   operand indices and immediates are extracted once per static
#   instruction and baked into the returned closure, so the simulator's
#   hot loop does no per-step operand resolution at all.

def _div(a: int, b: int) -> int:
    if b == 0:
        return _MASK32
    sa, sb = s32(a), s32(b)
    if sa == _INT32_MIN and sb == -1:
        return u32(_INT32_MIN)
    return u32(int(math.trunc(sa / sb)))


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    sa, sb = s32(a), s32(b)
    if sa == _INT32_MIN and sb == -1:
        return 0
    return u32(sa - sb * int(math.trunc(sa / sb)))


#: Register-register ops: pure (a, b) -> int (result masked on write).
_RR_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: s32(a) >> (b & 31),
    "slt": lambda a, b: int(s32(a) < s32(b)),
    "sltu": lambda a, b: int(a < b),
    "mul": lambda a, b: a * b,
    "mulh": lambda a, b: (s32(a) * s32(b)) >> 32,
    "mulhu": lambda a, b: (a * b) >> 32,
    "mulhsu": lambda a, b: (s32(a) * b) >> 32,
    "div": _div,
    "divu": lambda a, b: _MASK32 if b == 0 else a // b,
    "rem": _rem,
    "remu": lambda a, b: a if b == 0 else a % b,
}

#: Register-immediate ops: pure (a, imm) -> int.
_RI_OPS = {
    "addi": lambda a, i: a + i,
    "andi": lambda a, i: a & u32(i),
    "ori": lambda a, i: a | u32(i),
    "xori": lambda a, i: a ^ u32(i),
    "slli": lambda a, i: a << (i & 31),
    "srli": lambda a, i: a >> (i & 31),
    "srai": lambda a, i: s32(a) >> (i & 31),
    "slti": lambda a, i: int(s32(a) < i),
    "sltiu": lambda a, i: int(a < u32(i)),
}

#: Two-source branches: pure (a, b) -> taken.
_BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: s32(a) < s32(b),
    "bge": lambda a, b: s32(a) >= s32(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


def _rr(op):
    """Register-register ALU op from a pure (a, b) -> int function."""
    def handler(m, instr):
        a = m.iregs[instr.operands[1].index]
        b = m.iregs[instr.operands[2].index]
        m.write_ireg(instr.operands[0], op(a, b))
        return None
    return handler


def _ri(op):
    """Register-immediate ALU op."""
    def handler(m, instr):
        a = m.iregs[instr.operands[1].index]
        m.write_ireg(instr.operands[0], op(a, instr.imm))
        return None
    return handler


def _branch(cond):
    def handler(m, instr):
        a = m.iregs[instr.operands[0].index]
        b = m.iregs[instr.operands[1].index]
        return cond(a, b)
    return handler


INT_HANDLERS = {}
INT_HANDLERS.update({m: _rr(op) for m, op in _RR_OPS.items()})
INT_HANDLERS.update({m: _ri(op) for m, op in _RI_OPS.items()})
INT_HANDLERS.update({m: _branch(op) for m, op in _BRANCH_OPS.items()})


def _h_lui(m, instr):
    m.write_ireg(instr.operands[0], instr.imm << 12)
    return None


def _h_li(m, instr):
    m.write_ireg(instr.operands[0], instr.imm)
    return None


def _h_mv(m, instr):
    m.write_ireg(instr.operands[0], m.iregs[instr.operands[1].index])
    return None


def _h_not(m, instr):
    m.write_ireg(instr.operands[0], ~m.iregs[instr.operands[1].index])
    return None


def _h_nop(m, instr):
    return None


def _h_beqz(m, instr):
    return m.iregs[instr.operands[0].index] == 0


def _h_bnez(m, instr):
    return m.iregs[instr.operands[0].index] != 0


def _h_lw(m, instr):
    addr = u32(m.iregs[instr.operands[2].index] + instr.imm)
    m.write_ireg(instr.operands[0], m.memory.read_u32(addr))
    return None


def _h_lh(m, instr):
    addr = u32(m.iregs[instr.operands[2].index] + instr.imm)
    value = m.memory.read_u16(addr)
    if value >= 1 << 15:
        value -= 1 << 16
    m.write_ireg(instr.operands[0], value)
    return None


def _h_lbu(m, instr):
    addr = u32(m.iregs[instr.operands[2].index] + instr.imm)
    m.write_ireg(instr.operands[0], m.memory.read_u8(addr))
    return None


def _h_sw(m, instr):
    addr = u32(m.iregs[instr.operands[2].index] + instr.imm)
    m.memory.write_u32(addr, m.iregs[instr.operands[0].index])
    return None


def _h_sh(m, instr):
    addr = u32(m.iregs[instr.operands[2].index] + instr.imm)
    m.memory.write_u16(addr, m.iregs[instr.operands[0].index])
    return None


def _h_sb(m, instr):
    addr = u32(m.iregs[instr.operands[2].index] + instr.imm)
    m.memory.write_u8(addr, m.iregs[instr.operands[0].index])
    return None


def _h_amoadd_w(m, instr):
    """Atomic fetch-and-add on a TCDM word (cluster atomics).

    Atomic by construction: the cluster driver steps one core at a
    time, so the read-modify-write never interleaves with another
    core's access to the same word.
    """
    addr = u32(m.iregs[instr.operands[2].index] + instr.imm)
    old = m.memory.read_u32(addr)
    m.memory.write_u32(addr, u32(old + m.iregs[instr.operands[3].index]))
    m.write_ireg(instr.operands[0], old)
    m.counters.amo_ops += 1
    return None


def _h_dma_copy(m, instr):
    dst = m.iregs[instr.operands[0].index]
    src = m.iregs[instr.operands[1].index]
    length = m.iregs[instr.operands[2].index]
    m.memory.copy_within(dst, src, length)
    m.counters.dma_bytes_moved += length
    return None


INT_HANDLERS.update({
    "dma.copy": _h_dma_copy,
    "amoadd.w": _h_amoadd_w,
    "lui": _h_lui, "li": _h_li, "mv": _h_mv, "not": _h_not, "nop": _h_nop,
    "beqz": _h_beqz, "bnez": _h_bnez,
    "lw": _h_lw, "lh": _h_lh, "lbu": _h_lbu,
    "sw": _h_sw, "sh": _h_sh, "sb": _h_sb,
})


# ---------------------------------------------------------------------------
# Micro-op binders (decode-time operand extraction)
# ---------------------------------------------------------------------------

def _bind_rr(op):
    def bind(instr):
        d = instr.operands[0].index
        a = instr.operands[1].index
        b = instr.operands[2].index

        def run(m):
            iregs = m.iregs
            value = op(iregs[a], iregs[b]) & _MASK32
            if d:
                iregs[d] = value
            return None
        return run
    return bind


def _bind_ri(op):
    def bind(instr):
        d = instr.operands[0].index
        a = instr.operands[1].index
        imm = instr.imm

        def run(m):
            iregs = m.iregs
            value = op(iregs[a], imm) & _MASK32
            if d:
                iregs[d] = value
            return None
        return run
    return bind


def _bind_branch(cond):
    def bind(instr):
        a = instr.operands[0].index
        b = instr.operands[1].index

        def run(m):
            iregs = m.iregs
            return cond(iregs[a], iregs[b])
        return run
    return bind


def _bind_const(value_of):
    """Destination <- compile-time constant (lui / li)."""
    def bind(instr):
        d = instr.operands[0].index
        value = value_of(instr.imm) & _MASK32

        def run(m):
            if d:
                m.iregs[d] = value
            return None
        return run
    return bind


def _bind_unary(op):
    """Destination <- pure function of one source register (mv / not)."""
    def bind(instr):
        d = instr.operands[0].index
        a = instr.operands[1].index

        def run(m):
            iregs = m.iregs
            value = op(iregs[a]) & _MASK32
            if d:
                iregs[d] = value
            return None
        return run
    return bind


def _bind_nop(instr):
    def run(m):
        return None
    return run


def _bind_branchz(cond):
    def bind(instr):
        a = instr.operands[0].index

        def run(m):
            return cond(m.iregs[a])
        return run
    return bind


def _bind_load(read):
    """rd <- read(memory, addr); read returns a 32-bit-clean value."""
    def bind(instr):
        d = instr.operands[0].index
        base = instr.operands[2].index
        imm = instr.imm

        def run(m):
            value = read(m.memory, (m.iregs[base] + imm) & _MASK32)
            if d:
                m.iregs[d] = value & _MASK32
            return None
        return run
    return bind


def _bind_store(write):
    def bind(instr):
        src = instr.operands[0].index
        base = instr.operands[2].index
        imm = instr.imm

        def run(m):
            iregs = m.iregs
            write(m.memory, (iregs[base] + imm) & _MASK32, iregs[src])
            return None
        return run
    return bind


def _read_lh(memory, addr):
    value = memory.read_u16(addr)
    if value >= 1 << 15:
        value -= 1 << 16
    return value


def _bind_amoadd_w(instr):
    d = instr.operands[0].index
    base = instr.operands[2].index
    src = instr.operands[3].index
    imm = instr.imm

    def run(m):
        iregs = m.iregs
        memory = m.memory
        addr = (iregs[base] + imm) & _MASK32
        old = memory.read_u32(addr)
        memory.write_u32(addr, (old + iregs[src]) & _MASK32)
        if d:
            iregs[d] = old
        m.counters.amo_ops += 1
        return None
    return run


def _bind_dma_copy(instr):
    dst = instr.operands[0].index
    src = instr.operands[1].index
    length = instr.operands[2].index

    def run(m):
        iregs = m.iregs
        nbytes = iregs[length]
        m.memory.copy_within(iregs[dst], iregs[src], nbytes)
        m.counters.dma_bytes_moved += nbytes
        return None
    return run


#: Micro-op binders: mnemonic -> binder(instr) -> callable(machine).
INT_BINDERS = {}
INT_BINDERS.update({m: _bind_rr(op) for m, op in _RR_OPS.items()})
INT_BINDERS.update({m: _bind_ri(op) for m, op in _RI_OPS.items()})
INT_BINDERS.update({m: _bind_branch(op) for m, op in _BRANCH_OPS.items()})
INT_BINDERS.update({
    "lui": _bind_const(lambda imm: imm << 12),
    "li": _bind_const(lambda imm: imm),
    "mv": _bind_unary(lambda a: a),
    "not": _bind_unary(lambda a: ~a),
    "nop": _bind_nop,
    "beqz": _bind_branchz(lambda a: a == 0),
    "bnez": _bind_branchz(lambda a: a != 0),
    "lw": _bind_load(lambda memory, addr: memory.read_u32(addr)),
    "lh": _bind_load(_read_lh),
    "lbu": _bind_load(lambda memory, addr: memory.read_u8(addr)),
    "sw": _bind_store(lambda memory, addr, v: memory.write_u32(addr, v)),
    "sh": _bind_store(lambda memory, addr, v: memory.write_u16(addr, v)),
    "sb": _bind_store(lambda memory, addr, v: memory.write_u8(addr, v)),
    "amoadd.w": _bind_amoadd_w,
    "dma.copy": _bind_dma_copy,
})


# ---------------------------------------------------------------------------
# FP value functions
# ---------------------------------------------------------------------------

def _fsgnjx(a: float, b: float) -> float:
    sign = math.copysign(1.0, a) * math.copysign(1.0, b)
    return math.copysign(a, sign)


def _fcvt_w_d(x: float) -> int:
    """RISC-V fcvt.w.d with round-toward-zero, saturating."""
    if math.isnan(x):
        return u32(_INT32_MAX)
    if x <= _INT32_MIN:
        return u32(_INT32_MIN)
    if x >= _INT32_MAX:
        return u32(_INT32_MAX)
    return u32(int(x))


def _fcvt_wu_d(x: float) -> int:
    if math.isnan(x):
        return _MASK32
    if x <= 0:
        return 0
    if x >= _MASK32:
        return _MASK32
    return int(x)


def fclass_d(x: float) -> int:
    """RISC-V fclass.d classification mask."""
    if math.isnan(x):
        return 1 << 9  # we model all NaNs as quiet
    bits = f64_to_bits(x)
    negative = bits >> 63
    exponent = (bits >> 52) & 0x7FF
    mantissa = bits & ((1 << 52) - 1)
    if math.isinf(x):
        return 1 << (0 if negative else 7)
    if exponent == 0 and mantissa == 0:
        return 1 << (3 if negative else 4)
    if exponent == 0:
        return 1 << (2 if negative else 5)
    return 1 << (1 if negative else 6)


#: FP instructions writing an FP register: mnemonic -> pure value function.
#: Operand order matches spec roles (FP sources, then integer sources).
FP_COMPUTE = {
    "fadd.d": lambda a, b: a + b,
    "fsub.d": lambda a, b: a - b,
    "fmul.d": lambda a, b: a * b,
    "fdiv.d": lambda a, b: a / b if b != 0 else math.copysign(
        math.inf, a) * math.copysign(1.0, b),
    "fsqrt.d": math.sqrt,
    "fmadd.d": lambda a, b, c: a * b + c,
    "fmsub.d": lambda a, b, c: a * b - c,
    "fnmadd.d": lambda a, b, c: -(a * b) - c,
    "fnmsub.d": lambda a, b, c: -(a * b) + c,
    "fadd.s": lambda a, b: _to_f32(a + b),
    "fsub.s": lambda a, b: _to_f32(a - b),
    "fmul.s": lambda a, b: _to_f32(a * b),
    "fmadd.s": lambda a, b, c: _to_f32(a * b + c),
    "fmsub.s": lambda a, b, c: _to_f32(a * b - c),
    "fmin.d": min,
    "fmax.d": max,
    "fsgnj.d": lambda a, b: math.copysign(a, b),
    "fsgnjn.d": lambda a, b: math.copysign(a, -b),
    "fsgnjx.d": _fsgnjx,
    "fmv.d": lambda a: a,
    "fabs.d": abs,
    "fneg.d": lambda a: -a,
    "fcvt.d.s": lambda a: a,            # register already holds a double
    "fcvt.s.d": _to_f32,
    # Cross-RF conversions consuming an *integer* source value:
    "fcvt.d.w": lambda i: float(s32(i)),
    "fcvt.d.wu": lambda i: float(i),
    "fmv.w.x": lambda i: struct.unpack("<f", struct.pack("<I", u32(i)))[0],
    # COPIFT custom-1: same conversions, sourced from the FP RF.  The
    # integer payload is the low 32 bits of the register's raw pattern
    # (how an integer-thread `sw` into a streamed buffer arrives here).
    "cfcvt.d.w": lambda a: float(s32(f64_to_bits(a) & _MASK32)),
    "cfcvt.d.wu": lambda a: float(f64_to_bits(a) & _MASK32),
    # COPIFT custom-1 conversions *to* integer leave the int32 bit
    # pattern in the low word of the FP destination (for spilling to the
    # integer thread through memory).
    "cfcvt.w.d": lambda a: bits_to_f64(_fcvt_w_d(a)),
    "cfcvt.wu.d": lambda a: bits_to_f64(_fcvt_wu_d(a)),
    # COPIFT custom-1 comparisons produce 0.0 / 1.0 in the FP RF so the
    # FP thread can accumulate them directly (hit-or-miss Monte Carlo).
    "cfeq.d": lambda a, b: 1.0 if a == b else 0.0,
    "cflt.d": lambda a, b: 1.0 if a < b else 0.0,
    "cfle.d": lambda a, b: 1.0 if a <= b else 0.0,
    "cfclass.d": lambda a: float(fclass_d(a)),
}

#: FP instructions producing an integer-RF result (Type 3 dependencies).
FP_TO_INT = {
    "feq.d": lambda a, b: int(a == b),
    "flt.d": lambda a, b: int(a < b),
    "fle.d": lambda a, b: int(a <= b),
    "fcvt.w.d": _fcvt_w_d,
    "fcvt.wu.d": _fcvt_wu_d,
    "fclass.d": fclass_d,
    "fmv.x.w": f32_to_bits,
}
