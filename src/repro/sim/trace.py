"""Deprecated shim: issue tracing moved to :mod:`repro.obs`.

``repro.sim.trace`` grew into the unified observability layer —
import :class:`TraceEvent`, :func:`render_timeline`,
:func:`dual_issue_cycles` and :func:`lane_utilization` from
``repro.obs`` (or ``repro.obs.timeline``) instead.  This module
re-exports them unchanged and will be removed.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.sim.trace is deprecated; import TraceEvent, "
    "render_timeline, dual_issue_cycles and lane_utilization from "
    "repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)

from ..obs.timeline import (  # noqa: E402,F401
    TraceEvent,
    dual_issue_cycles,
    lane_utilization,
    render_timeline,
)

__all__ = [
    "TraceEvent",
    "dual_issue_cycles",
    "lane_utilization",
    "render_timeline",
]
