"""Byte-addressable scratchpad memory (TCDM) and a bump allocator.

The Snitch cluster's L1 is a banked scratchpad (TCDM).  Functionally we
model it as a flat bytearray with typed accessors; NumPy helpers move whole
arrays in and out for test setup and verification.  Timing effects live
elsewhere: per-access latency in the core timing model, bank arbitration
in :mod:`repro.cluster.tcdm`.  Scalar accessors require natural alignment
(2/4/8-byte accesses on matching boundaries), as the TCDM interconnect
does; the bulk NumPy helpers are host-side conveniences and only
range-check.
"""

from __future__ import annotations

import struct

import numpy as np

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")


class MemoryError_(Exception):
    """Out-of-range or misaligned memory access."""


class Memory:
    """Flat little-endian byte-addressable memory.

    The word-size scalar accessors inline their bounds/alignment test
    (falling back to :meth:`_check` only to raise the detailed error) —
    they run once per simulated load/store, making them part of the
    simulator's hot path.

    Args:
        size: Capacity in bytes (default 1 MiB: generous so experiment
            sweeps are not artificially limited; the architectural TCDM
            budget is enforced separately by the kernel layer).
    """

    __slots__ = ("size", "data")

    def __init__(self, size: int = 1 << 20) -> None:
        self.size = size
        self.data = bytearray(size)

    def _check(self, addr: int, width: int, align: int = 1) -> None:
        if addr < 0 or addr + width > self.size:
            raise MemoryError_(
                f"access of {width} bytes at 0x{addr:x} outside "
                f"memory of size 0x{self.size:x}"
            )
        if align > 1 and addr % align:
            raise MemoryError_(
                f"misaligned access of {width} bytes at 0x{addr:x} "
                f"(requires {align}-byte alignment)"
            )

    def check_range(self, addr: int, nbytes: int) -> None:
        """Validate a bulk [addr, addr+nbytes) range (DMA transfers)."""
        self._check(addr, nbytes)

    def copy_within(self, dst: int, src: int, nbytes: int) -> None:
        """Checked bulk copy (the DMA engines' functional data path).

        Bounds-checks both ranges first: a raw bytearray slice
        assignment would silently grow or shrink the image on an
        out-of-range destination.
        """
        self._check(src, nbytes)
        self._check(dst, nbytes)
        self.data[dst:dst + nbytes] = self.data[src:src + nbytes]

    # -- scalar accessors --------------------------------------------------
    def read_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self.data[addr]

    def write_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self.data[addr] = value & 0xFF

    def read_u16(self, addr: int) -> int:
        self._check(addr, 2, align=2)
        return int.from_bytes(self.data[addr:addr + 2], "little")

    def write_u16(self, addr: int, value: int) -> None:
        self._check(addr, 2, align=2)
        self.data[addr:addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def read_u32(self, addr: int) -> int:
        if addr < 0 or addr + 4 > self.size or addr & 3:
            self._check(addr, 4, align=4)
        return _U32.unpack_from(self.data, addr)[0]

    def write_u32(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 4 > self.size or addr & 3:
            self._check(addr, 4, align=4)
        _U32.pack_into(self.data, addr, value & 0xFFFFFFFF)

    def read_u64(self, addr: int) -> int:
        if addr < 0 or addr + 8 > self.size or addr & 7:
            self._check(addr, 8, align=8)
        return _U64.unpack_from(self.data, addr)[0]

    def write_u64(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 8 > self.size or addr & 7:
            self._check(addr, 8, align=8)
        _U64.pack_into(self.data, addr, value & 0xFFFFFFFFFFFFFFFF)

    def read_f32(self, addr: int) -> float:
        if addr < 0 or addr + 4 > self.size or addr & 3:
            self._check(addr, 4, align=4)
        return _F32.unpack_from(self.data, addr)[0]

    def write_f32(self, addr: int, value: float) -> None:
        if addr < 0 or addr + 4 > self.size or addr & 3:
            self._check(addr, 4, align=4)
        _F32.pack_into(self.data, addr, value)

    def read_f64(self, addr: int) -> float:
        if addr < 0 or addr + 8 > self.size or addr & 7:
            self._check(addr, 8, align=8)
        return _F64.unpack_from(self.data, addr)[0]

    def write_f64(self, addr: int, value: float) -> None:
        if addr < 0 or addr + 8 > self.size or addr & 7:
            self._check(addr, 8, align=8)
        _F64.pack_into(self.data, addr, value)

    # -- bulk NumPy helpers --------------------------------------------------
    def write_array(self, addr: int, array: np.ndarray) -> None:
        """Copy *array* (C-contiguous view) into memory at *addr*."""
        raw = np.ascontiguousarray(array).tobytes()
        self._check(addr, len(raw))
        self.data[addr:addr + len(raw)] = raw

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        """Read *count* elements of *dtype* starting at *addr*."""
        nbytes = np.dtype(dtype).itemsize * count
        self._check(addr, nbytes)
        return np.frombuffer(
            bytes(self.data[addr:addr + nbytes]), dtype=dtype
        ).copy()


class Allocator:
    """Bump allocator for laying out kernel data in the scratchpad.

    Keeps a symbol table so reports and tests can refer to buffers by name.
    """

    def __init__(self, memory: Memory, base: int = 0x1000,
                 align: int = 8) -> None:
        self.memory = memory
        self._next = base
        self._align = align
        self.symbols: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, nbytes: int) -> int:
        """Reserve *nbytes*, returning the base address."""
        if name in self.symbols:
            raise ValueError(f"symbol {name!r} allocated twice")
        mask = self._align - 1
        addr = (self._next + mask) & ~mask
        if addr + nbytes > self.memory.size:
            raise MemoryError_(
                f"allocation {name!r} of {nbytes} bytes does not fit "
                f"(next free 0x{addr:x}, size 0x{self.memory.size:x})"
            )
        self._next = addr + nbytes
        self.symbols[name] = (addr, nbytes)
        return addr

    def alloc_array(self, name: str, array: np.ndarray) -> int:
        """Reserve space for *array*, copy it in, return the address."""
        addr = self.alloc(name, array.nbytes)
        self.memory.write_array(addr, array)
        return addr

    def address(self, name: str) -> int:
        return self.symbols[name][0]

    @property
    def bytes_used(self) -> int:
        """Total bytes from the heap base to the high-water mark."""
        return self._next
