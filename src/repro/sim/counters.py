"""Performance and activity counters.

The timing model increments these as it processes dynamic instructions;
the energy model consumes the activity counts, and the evaluation harness
reads cycles/instruction counts for IPC, speedup and region measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counters:
    """Aggregate activity of one simulation (or one region snapshot)."""

    #: Integer-thread instructions issued by the integer core.
    int_issued: int = 0
    #: FP instructions dispatched through the core (each occupies one
    #: integer issue slot, but is counted as an instruction only once,
    #: in fp_issued).
    fp_dispatched: int = 0
    #: Dynamic instructions issued by the FPSS (first iterations come
    #: through the dispatch queue; FREP replays from the sequencer).
    fp_issued: int = 0
    #: FP instructions replayed by the FREP sequencer (subset of
    #: fp_issued that never consumed a fetch or an integer issue slot).
    sequencer_issued: int = 0

    # -- stall accounting (integer core) ------------------------------------
    stall_raw_int: int = 0        # waiting on integer operands
    stall_wb_port: int = 0        # integer RF writeback-port conflicts
    stall_queue_full: int = 0     # FPSS dispatch queue backpressure
    stall_branch: int = 0         # taken-branch bubbles
    stall_fp_response: int = 0    # waiting on an FPSS→int result (Type 3)
    stall_mem_raw: int = 0        # load waiting on an in-flight store
    stall_ssr_sync: int = 0       # re-arming an SSR before it drained
    stall_tcdm: int = 0           # TCDM bank-conflict stalls (int LSU)
    stall_barrier: int = 0        # waiting at a cluster hardware barrier
    stall_dma: int = 0            # dma.wait fence stalls

    # -- stall accounting (FPSS) --------------------------------------------
    fp_stall_raw: int = 0         # waiting on FP operands
    fp_stall_ssr: int = 0         # waiting on SSR stream data
    fp_stall_wb_port: int = 0     # FP RF writeback-port conflicts
    fp_stall_tcdm: int = 0        # TCDM bank-conflict stalls (FP/SSR side)

    # -- activity (for the energy model) ------------------------------------
    int_alu_ops: int = 0
    int_mul_ops: int = 0
    int_loads: int = 0
    int_stores: int = 0
    branches: int = 0
    csr_ops: int = 0
    fp_adds: int = 0
    fp_muls: int = 0
    fp_fmas: int = 0
    fp_divs: int = 0
    fp_cmps: int = 0
    fp_cvts: int = 0
    fp_mvs: int = 0
    fp_loads: int = 0
    fp_stores: int = 0
    ssr_reads: int = 0
    ssr_writes: int = 0
    ssr_index_fetches: int = 0
    icache_l0_hits: int = 0
    icache_l0_misses: int = 0
    dma_bytes_moved: int = 0
    dma_transfers: int = 0
    barriers: int = 0
    amo_ops: int = 0

    #: Integer-core stall classes, in declaration order.  The profile
    #: layer (``repro.obs.profile``) attributes cycles bucket-by-bucket
    #: from these tuples, and ``tests/test_obs.py`` cross-checks them
    #: against dataclass-field introspection — a new ``stall_*`` /
    #: ``fp_stall_*`` field that is not added here fails that test
    #: instead of silently missing the profile.
    INT_STALL_FIELDS = (
        "stall_raw_int", "stall_wb_port", "stall_queue_full",
        "stall_branch", "stall_fp_response", "stall_mem_raw",
        "stall_ssr_sync", "stall_tcdm", "stall_barrier", "stall_dma",
    )
    #: FPSS stall classes, in declaration order.
    FP_STALL_FIELDS = (
        "fp_stall_raw", "fp_stall_ssr", "fp_stall_wb_port",
        "fp_stall_tcdm",
    )

    @classmethod
    def int_stall_fields(cls) -> tuple[str, ...]:
        """Integer-core stall counter names (profile sum buckets)."""
        return cls.INT_STALL_FIELDS

    @classmethod
    def fp_stall_fields(cls) -> tuple[str, ...]:
        """FPSS stall counter names (overlapped, not summed)."""
        return cls.FP_STALL_FIELDS

    @classmethod
    def stall_fields(cls) -> tuple[str, ...]:
        """All stall counter names, integer core first."""
        return cls.INT_STALL_FIELDS + cls.FP_STALL_FIELDS

    def total_stalls(self) -> int:
        """Sum of every stall counter on both issue engines."""
        return sum(getattr(self, name) for name in self.stall_fields())

    def copy(self) -> "Counters":
        return Counters(**vars(self))

    def delta(self, earlier: "Counters") -> "Counters":
        """Counters accumulated since *earlier* (field-wise difference)."""
        return Counters(**{
            name: value - getattr(earlier, name)
            for name, value in vars(self).items()
        })

    @property
    def total_issued(self) -> int:
        return self.int_issued + self.fp_issued

    @property
    def tcdm_accesses(self) -> int:
        """All L1 data accesses: explicit loads/stores plus SSR traffic."""
        return (self.int_loads + self.int_stores + self.fp_loads
                + self.fp_stores + self.ssr_reads + self.ssr_writes
                + self.ssr_index_fetches)


@dataclass
class RegionMeasurement:
    """Measurement of a marked program region.

    Attributes:
        name: Region name (from ``mark <name>_start`` / ``_end``).
        cycles: Elapsed cycles, accounting for integer/FP overlap.
        counters: Activity accumulated inside the region.
    """

    name: str
    cycles: int
    counters: Counters

    @property
    def ipc(self) -> float:
        """Instructions per cycle over both issue engines."""
        if self.cycles == 0:
            return 0.0
        return self.counters.total_issued / self.cycles


@dataclass
class RunResult:
    """Result of one complete program simulation."""

    cycles: int
    counters: Counters
    regions: dict[str, RegionMeasurement] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.counters.total_issued / self.cycles

    def region(self, name: str) -> RegionMeasurement:
        try:
            return self.regions[name]
        except KeyError:
            raise KeyError(
                f"no region {name!r}; available: {sorted(self.regions)}"
            ) from None
