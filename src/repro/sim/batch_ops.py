"""Vectorized operation tables for the batch simulation engine.

Every entry mirrors one scalar binder/compute function from
:mod:`repro.sim.exec_ops`, lifted to operate on numpy arrays — one
element per batch lane.  The contract is **bit-exactness**: for every
input a scalar handler accepts, the vector form must produce the same
32-bit integer (or the same float64 down to the last ulp and NaN
payload).  Opcodes whose scalar semantics cannot be reproduced exactly
with array primitives (``div``/``rem`` raise on zero per-lane,
``fsqrt.d`` raises on negative operands, ``fclass.d`` is table-driven)
are deliberately **absent** from these tables — the engine demotes any
lane that reaches them to the scalar :class:`~repro.sim.scheduler.
Scheduler`, which stays the golden reference.

Integer convention: register values live in ``int64`` arrays holding
canonical unsigned words (``0 <= v <= 2**32 - 1``).  Table entries may
return values outside that range; the engine masks results with
``& 0xFFFF_FFFF`` exactly where the scalar binders do.  All
intermediates provably fit in int64 (the widest, ``mulhu``, wraps mod
2**64 in numpy — and ``((a*b) mod 2**64 as signed) >> 32 & MASK``
equals ``(a*b) >> 32 & MASK`` for 32-bit inputs, so wraparound is
harmless).

Float convention: ``float64`` arrays.  The scalar FP pipeline is
unfused (``fmadd`` rounds ``a*b`` then the add, matching the two-op
Python expression), so numpy elementwise arithmetic reproduces it
exactly; ``.s`` ops round through ``float32`` just like the scalar
``struct``-based helpers.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:          # pragma: no cover - numpy is a hard dep
    np = None

MASK32 = 0xFFFF_FFFF
_INT32_MIN = -(2 ** 31)
_INT32_MAX = 2 ** 31 - 1
#: Unsigned encodings of the saturation bounds (what u32() yields).
_U32_INT32_MIN = _INT32_MIN & MASK32
_U32_INT32_MAX = _INT32_MAX & MASK32


def s32v(a):
    """Signed interpretation of canonical unsigned words (vector s32)."""
    return np.where(a >= 2 ** 31, a - 2 ** 32, a)


def _f32r(a):
    """Round float64 lanes through IEEE float32 (vector _to_f32)."""
    return a.astype(np.float32).astype(np.float64)


def _u32i(imm: int) -> int:
    return imm & MASK32


# ----------------------------------------------------------------------
# integer register-register / register-immediate ops
# ----------------------------------------------------------------------
# div/divu/rem/remu are absent on purpose: their scalar binders raise
# SimulationError on a zero divisor, a per-lane control-flow effect the
# engine handles by demotion instead.

VEC_RR = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: s32v(a) >> (b & 31),
    "slt": lambda a, b: (s32v(a) < s32v(b)).astype(np.int64),
    "sltu": lambda a, b: (a < b).astype(np.int64),
    "mul": lambda a, b: a * b,
    "mulh": lambda a, b: (s32v(a) * s32v(b)) >> 32,
    "mulhu": lambda a, b: (a * b) >> 32,
    "mulhsu": lambda a, b: (s32v(a) * b) >> 32,
}

VEC_RI = {
    "addi": lambda a, imm: a + imm,
    "andi": lambda a, imm: a & _u32i(imm),
    "ori": lambda a, imm: a | _u32i(imm),
    "xori": lambda a, imm: a ^ _u32i(imm),
    "slli": lambda a, imm: a << (imm & 31),
    "srli": lambda a, imm: a >> (imm & 31),
    "srai": lambda a, imm: s32v(a) >> (imm & 31),
    "slti": lambda a, imm: (s32v(a) < imm).astype(np.int64),
    "sltiu": lambda a, imm: (a < _u32i(imm)).astype(np.int64),
}

#: No register operands; the result is a compile-time constant.
VEC_CONST = {
    "lui": lambda imm: (imm << 12) & MASK32,
    "li": lambda imm: imm & MASK32,
}

VEC_UNARY = {
    "mv": lambda a: a,
    "not": lambda a: ~a,
}

VEC_BRANCH = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: s32v(a) < s32v(b),
    "bge": lambda a, b: s32v(a) >= s32v(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

VEC_BRANCHZ = {
    "beqz": lambda a: a == 0,
    "bnez": lambda a: a != 0,
}

# ----------------------------------------------------------------------
# memory access (per-lane scalar helpers; addresses diverge by lane)
# ----------------------------------------------------------------------


def _read_lh(memory, addr: int) -> int:
    value = memory.read_u16(addr)
    return value - 0x1_0000 if value & 0x8000 else value


#: mnemonic -> (memory, addr) -> canonical unsigned word.
LOAD_READERS = {
    "lw": lambda memory, addr: memory.read_u32(addr),
    "lh": lambda memory, addr: _read_lh(memory, addr) & MASK32,
    "lbu": lambda memory, addr: memory.read_u8(addr),
}

#: mnemonic -> (memory, addr, value) writer.  The value is the full
#: canonical word, exactly as the scalar binders pass it — a too-wide
#: value must raise the same error the scalar path raises.
STORE_WRITERS = {
    "sw": lambda memory, addr, value: memory.write_u32(addr, value),
    "sh": lambda memory, addr, value: memory.write_u16(addr, value),
    "sb": lambda memory, addr, value: memory.write_u8(addr, value),
}


# ----------------------------------------------------------------------
# floating point
# ----------------------------------------------------------------------


def _vfdiv(a, b):
    # Scalar: a / b if b != 0.0 else copysign(inf, a) * copysign(1, b).
    safe = np.where(b != 0.0, b, 1.0)
    quotient = a / safe
    signed_inf = np.copysign(np.inf, a) * np.copysign(1.0, b)
    return np.where(b != 0.0, quotient, signed_inf)


def _vfmin(a, b):
    # Python min(a, b): returns a unless b < a (NaN comparisons false).
    return np.where(b < a, b, a)


def _vfmax(a, b):
    return np.where(b > a, b, a)


def _vfsgnjx(a, b):
    sign = np.copysign(1.0, a) * np.copysign(1.0, b)
    return np.copysign(a, sign)


def _bits_of(a):
    """Raw IEEE-754 bit pattern of float64 lanes, as uint64."""
    return a.view(np.uint64) if a.flags.c_contiguous \
        else np.ascontiguousarray(a).view(np.uint64)


def _vbits_to_f64(u):
    """int64 lanes holding u64 bit patterns -> float64 values."""
    return u.astype(np.uint64).view(np.float64)


def _vfcvt_w_d(x):
    """fcvt.w.d: truncate to i32, saturating; NaN -> INT32_MAX (u32)."""
    nan = np.isnan(x)
    lo = x <= _INT32_MIN
    hi = x >= _INT32_MAX
    safe = np.where(nan | lo | hi, 0.0, x)
    result = safe.astype(np.int64) & MASK32     # trunc toward zero
    result = np.where(lo, _U32_INT32_MIN, result)
    result = np.where(hi, _U32_INT32_MAX, result)
    return np.where(nan, _U32_INT32_MAX, result)


def _vfcvt_wu_d(x):
    """fcvt.wu.d: truncate to u32, saturating; NaN -> UINT32_MAX."""
    nan = np.isnan(x)
    lo = x <= 0.0
    hi = x >= MASK32
    safe = np.where(nan | lo | hi, 0.0, x)
    result = safe.astype(np.int64)
    result = np.where(lo, 0, result)
    result = np.where(hi, MASK32, result)
    return np.where(nan, MASK32, result)


def _vfcvt_d_w_bits(a):
    """cfcvt.d.w: reinterpret f64 bits as i32, convert to double."""
    word = (_bits_of(a) & np.uint64(MASK32)).astype(np.int64)
    return s32v(word).astype(np.float64)


def _vfcvt_d_wu_bits(a):
    word = (_bits_of(a) & np.uint64(MASK32)).astype(np.int64)
    return word.astype(np.float64)


def _vfmv_w_x(i):
    """fmv.w.x: i32 bit pattern -> float32 value, widened to f64."""
    return (i & MASK32).astype(np.uint32).view(np.float32) \
        .astype(np.float64)


def _vfmv_x_w(a):
    """fmv.x.w: round to f32, return the raw 32-bit pattern."""
    return a.astype(np.float32).view(np.uint32).astype(np.int64)


#: mnemonic -> vector compute over gathered operand columns (float64
#: for FP operands, int64 canonical words for integer operands); the
#: result is written to the FP destination register.  fsqrt.d,
#: fclass.d and cfclass.d are absent (demotion — see module docstring).
VEC_FP_COMPUTE = {
    "fadd.d": lambda a, b: a + b,
    "fsub.d": lambda a, b: a - b,
    "fmul.d": lambda a, b: a * b,
    "fdiv.d": _vfdiv,
    "fmadd.d": lambda a, b, c: a * b + c,
    "fmsub.d": lambda a, b, c: a * b - c,
    "fnmadd.d": lambda a, b, c: -(a * b) - c,
    "fnmsub.d": lambda a, b, c: -(a * b) + c,
    "fadd.s": lambda a, b: _f32r(a + b),
    "fsub.s": lambda a, b: _f32r(a - b),
    "fmul.s": lambda a, b: _f32r(a * b),
    "fmadd.s": lambda a, b, c: _f32r(a * b + c),
    "fmsub.s": lambda a, b, c: _f32r(a * b - c),
    "fmin.d": _vfmin,
    "fmax.d": _vfmax,
    "fsgnj.d": lambda a, b: np.copysign(a, b),
    "fsgnjn.d": lambda a, b: np.copysign(a, -b),
    "fsgnjx.d": _vfsgnjx,
    "fmv.d": lambda a: a,
    "fabs.d": lambda a: np.abs(a),
    "fneg.d": lambda a: -a,
    "fcvt.d.s": lambda a: a,
    "fcvt.s.d": _f32r,
    "fcvt.d.w": lambda i: s32v(i).astype(np.float64),
    "fcvt.d.wu": lambda i: i.astype(np.float64),
    "fmv.w.x": _vfmv_w_x,
    "cfcvt.d.w": _vfcvt_d_w_bits,
    "cfcvt.d.wu": _vfcvt_d_wu_bits,
    "cfcvt.w.d": lambda a: _vbits_to_f64(_vfcvt_w_d(a)),
    "cfcvt.wu.d": lambda a: _vbits_to_f64(_vfcvt_wu_d(a)),
    "cfeq.d": lambda a, b: (a == b).astype(np.float64),
    "cflt.d": lambda a, b: (a < b).astype(np.float64),
    "cfle.d": lambda a, b: (a <= b).astype(np.float64),
}

#: mnemonic -> vector compute whose int64 result lands in the integer
#: RF (masked by the engine).  fclass.d is absent (demotion).
VEC_FP_TO_INT = {
    "feq.d": lambda a, b: (a == b).astype(np.int64),
    "flt.d": lambda a, b: (a < b).astype(np.int64),
    "fle.d": lambda a, b: (a <= b).astype(np.int64),
    "fcvt.w.d": _vfcvt_w_d,
    "fcvt.wu.d": _vfcvt_wu_d,
    "fmv.x.w": _vfmv_x_w,
}

#: Per-lane float readers/writers for the FP load/store paths.
FP_LOAD_READERS = {
    8: lambda memory, addr: memory.read_f64(addr),
    4: lambda memory, addr: memory.read_f32(addr),
}

FP_STORE_WRITERS = {
    8: lambda memory, addr, value: memory.write_f64(addr, value),
    4: lambda memory, addr, value: memory.write_f32(addr, value),
}
