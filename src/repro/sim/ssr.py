"""Stream Semantic Register (SSR) and ISSR data movers.

SSRs stream data between memory and the FP register file without explicit
load/store instructions: while enabled, reads of ``ft0``/``ft1``/``ft2``
pop the next element of the bound read stream and writes push onto the
bound write stream.  Address patterns are affine functions of up to four
nested loop induction variables (paper §II-A); ISSR mode adds one level of
indirection through an index array for arbitrary gather patterns.

Configuration happens through ``scfgwi rs1, imm`` writes where the
immediate encodes ``(field << 4) | ssr_index``:

====== ============ ========================================================
field  name         meaning of the written value
====== ============ ========================================================
0      STATUS       number of active dimensions (1-4)
1      REPEAT       each element is delivered (value+1) times
2-5    BOUND0-3     iterations in dimension d, minus one (Snitch style)
6-9    STRIDE0-3    byte stride of dimension d
10     RPTR         base address; arms the SSR as a *read* stream
11     WPTR         base address; arms the SSR as a *write* stream
12     IDX_BASE     index-array base address; next RPTR arms *indirect*
13     IDX_CFG      bits[2:0] index element size in bytes, bits[7:3] shift
====== ============ ========================================================

Arming resets the iteration state.  The generated address for linear
position ``(i3, i2, i1, i0)`` is ``base + sum_d i_d * stride_d`` (indirect
streams instead fetch ``index[pos]`` and access ``base + (index <<
shift)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Configuration field codes (the imm's upper bits in scfgwi).
F_STATUS = 0
F_REPEAT = 1
F_BOUND0 = 2
F_BOUND1 = 3
F_BOUND2 = 4
F_BOUND3 = 5
F_STRIDE0 = 6
F_STRIDE1 = 7
F_STRIDE2 = 8
F_STRIDE3 = 9
F_RPTR = 10
F_WPTR = 11
F_IDX_BASE = 12
F_IDX_CFG = 13

FIELD_NAMES = {
    F_STATUS: "status", F_REPEAT: "repeat",
    F_BOUND0: "bound0", F_BOUND1: "bound1",
    F_BOUND2: "bound2", F_BOUND3: "bound3",
    F_STRIDE0: "stride0", F_STRIDE1: "stride1",
    F_STRIDE2: "stride2", F_STRIDE3: "stride3",
    F_RPTR: "rptr", F_WPTR: "wptr",
    F_IDX_BASE: "idx_base", F_IDX_CFG: "idx_cfg",
}


def encode_cfg_imm(field_code: int, ssr_index: int) -> int:
    """Encode the scfgwi immediate for (*field_code*, *ssr_index*)."""
    if not 0 <= ssr_index < 16:
        raise ValueError(f"ssr index out of range: {ssr_index}")
    if field_code not in FIELD_NAMES:
        raise ValueError(f"unknown SSR config field: {field_code}")
    return (field_code << 4) | ssr_index


def decode_cfg_imm(imm: int) -> tuple[int, int]:
    """Inverse of :func:`encode_cfg_imm`: returns (field, ssr_index)."""
    return imm >> 4, imm & 0xF


class SSRError(Exception):
    """Illegal SSR use: popping an exhausted or unarmed stream, etc."""


@dataclass(slots=True)
class _Config:
    """Raw configuration registers of one SSR."""

    dims: int = 1
    repeat: int = 0
    bounds: list[int] = field(default_factory=lambda: [0, 0, 0, 0])
    strides: list[int] = field(default_factory=lambda: [0, 0, 0, 0])
    idx_base: int = 0
    idx_size: int = 0          # 0 = affine mode; 2/4 = indirect mode
    idx_shift: int = 0


class SSR:
    """One stream semantic register data mover."""

    __slots__ = (
        "index", "cfg", "armed", "is_write", "indirect", "base",
        "seq", "arm_time", "last_pop_time", "_counters",
        "_repeat_left", "_done", "total_elements", "_offset",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.cfg = _Config()
        self.armed = False
        self.is_write = False
        self.indirect = False
        self.base = 0
        #: Elements delivered since arming (for prefetch timing).
        self.seq = 0
        #: Simulation time at which the stream was armed.
        self.arm_time = 0
        #: Issue time of the most recent element pop (FPSS timeline);
        #: re-arming must wait for the previous stream to drain.
        self.last_pop_time = 0
        self._counters = [0, 0, 0, 0]
        self._repeat_left = 0
        self._done = False
        self.total_elements = 0
        #: Current iteration-space byte offset
        #: (sum of counter[d] * stride[d] over the active dimensions),
        #: maintained incrementally by advance().
        self._offset = 0

    # -- configuration -------------------------------------------------------
    def write_config(self, field_code: int, value: int, now: int) -> None:
        """Apply one ``scfgwi`` write at simulation time *now*."""
        cfg = self.cfg
        if field_code == F_STATUS:
            if not 1 <= value <= 4:
                raise SSRError(f"ssr{self.index}: dims must be 1-4, "
                               f"got {value}")
            cfg.dims = value
        elif field_code == F_REPEAT:
            cfg.repeat = value
        elif F_BOUND0 <= field_code <= F_BOUND3:
            cfg.bounds[field_code - F_BOUND0] = value
        elif F_STRIDE0 <= field_code <= F_STRIDE3:
            # Strides are signed byte offsets; sign-extend from 32 bits.
            if value >= 1 << 31:
                value -= 1 << 32
            cfg.strides[field_code - F_STRIDE0] = value
        elif field_code == F_IDX_BASE:
            cfg.idx_base = value
        elif field_code == F_IDX_CFG:
            cfg.idx_size = value & 0x7
            cfg.idx_shift = (value >> 3) & 0x1F
        elif field_code == F_RPTR:
            self._arm(base=value, is_write=False, now=now)
        elif field_code == F_WPTR:
            self._arm(base=value, is_write=True, now=now)
        else:
            raise SSRError(f"unknown SSR config field {field_code}")

    def _arm(self, base: int, is_write: bool, now: int) -> None:
        self.base = base
        self.is_write = is_write
        self.indirect = self.cfg.idx_size != 0 and not is_write
        self.armed = True
        self.seq = 0
        self.arm_time = now
        self._counters = [0, 0, 0, 0]
        self._repeat_left = self.cfg.repeat
        self._done = False
        self._offset = 0
        n = 1
        for d in range(self.cfg.dims):
            n *= self.cfg.bounds[d] + 1
        self.total_elements = n * (self.cfg.repeat + 1)
        # Indirect streams consume configuration for the *index* pattern;
        # the data access is base + (index << shift).

    # -- streaming -----------------------------------------------------------
    def current_index_address(self) -> int:
        """Address of the index element about to be consumed (ISSR)."""
        if not self.indirect:
            raise SSRError(f"ssr{self.index} is not in indirect mode")
        return self.cfg.idx_base + self._offset

    def peek_address(self, read_index) -> int:
        """Address of the next element, without consuming it.

        Args:
            read_index: Callable ``(addr, size) -> int`` used to fetch the
                index element in ISSR mode (indices live in simulated
                memory).
        """
        if not self.armed:
            raise SSRError(f"ssr{self.index} accessed while not armed")
        if self._done:
            raise SSRError(
                f"ssr{self.index} exhausted after "
                f"{self.total_elements} elements"
            )
        if self.indirect:
            idx = read_index(self.current_index_address(),
                             self.cfg.idx_size)
            return self.base + (idx << self.cfg.idx_shift)
        return self.base + self._offset

    def advance(self) -> None:
        """Consume the current element, stepping the iteration space.

        The iteration-space byte offset is maintained incrementally
        (``_offset``), saving the per-element dimension walk the
        original recomputation did; a stream's stride/bound
        configuration is fixed while armed (re-arming resets it), so
        the incremental form is exact.
        """
        self.seq += 1
        if self._repeat_left > 0:
            self._repeat_left -= 1
            return
        cfg = self.cfg
        self._repeat_left = cfg.repeat
        counters = self._counters
        bounds = cfg.bounds
        strides = cfg.strides
        for d in range(cfg.dims):
            if counters[d] < bounds[d]:
                counters[d] += 1
                self._offset += strides[d]
                return
            counters[d] = 0
            self._offset -= bounds[d] * strides[d]
        self._done = True

    @property
    def exhausted(self) -> bool:
        return self._done

    @property
    def elements_remaining(self) -> int:
        return self.total_elements - self.seq
