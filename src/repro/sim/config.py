"""Microarchitectural configuration of the simulated Snitch-like core.

All timing parameters live here so experiments (and ablations) can vary
them without touching the model.  Defaults approximate the Snitch cluster
evaluated in the paper: a single-issue in-order RV32 integer core with a
shared-writeback-port register file, an FP subsystem (FPSS) with its own
issue port fed by a small dispatch queue, a 16-entry FREP sequencer buffer,
three SSR data movers, and a 64-entry L0 instruction loop buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import OpClass

#: Default result latencies (issue → writeback) per operation class,
#: in cycles.  Integer ALU results forward in 1 cycle; the shared muldiv
#: unit takes 3, which is what makes multiply-heavy PRNGs (LCG) collide
#: with ALU writebacks on the single integer-RF write port (paper §III-A).
DEFAULT_LATENCIES: dict[OpClass, int] = {
    OpClass.ALU: 1,
    OpClass.MUL: 3,
    OpClass.LOAD: 2,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CSR: 1,
    OpClass.FP_ADD: 1,
    OpClass.FP_MUL: 1,
    OpClass.FP_FMA: 3,
    OpClass.FP_DIV: 14,
    OpClass.FP_CMP: 1,
    OpClass.FP_CVT: 1,
    OpClass.FP_MV: 1,
    OpClass.FP_LOAD: 2,
    OpClass.FP_STORE: 1,
    OpClass.FREP: 1,
    OpClass.META: 0,
}


@dataclass
class CoreConfig:
    """Tunable microarchitecture parameters.

    Attributes:
        latencies: Result latency per operation class.
        fpss_queue_depth: Core→FPSS dispatch FIFO depth.  Backpressure on
            this queue is what bounds the skew between the integer and FP
            threads.
        frep_buffer_size: Maximum FREP loop body length, in instructions.
        taken_branch_penalty: Extra cycles after a taken branch.
        int_wb_ports: Write ports into the integer RF.  1 reproduces the
            paper's structural-hazard stalls on multiply-heavy code;
            ablations can raise it.
        fp_wb_ports: Write ports into the FP RF.
        ssr_count: Number of SSR data movers.
        ssr_fill_latency: Cycles from stream configuration to first
            element available (prefetch pipeline depth).
        ssr_index_width: Bytes per index element in ISSR mode.
        l0_icache_entries: L0 loop-buffer capacity in instructions.
        fp_response_latency: Extra cycles for an FPSS result to travel
            back to the integer RF (cross-RF writes such as ``flt.d``).
        model_int_wb_hazard: Enable the integer writeback-port structural
            hazard (ablation switch, paper §III-A).
        model_l0_icache: Enable the L0 loop-buffer model (ablation switch,
            paper §III-B).
    """

    latencies: dict[OpClass, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES)
    )
    fpss_queue_depth: int = 8
    frep_buffer_size: int = 16
    taken_branch_penalty: int = 1
    int_wb_ports: int = 1
    fp_wb_ports: int = 1
    ssr_count: int = 3
    ssr_fill_latency: int = 3
    ssr_index_width: int = 4
    l0_icache_entries: int = 64
    fp_response_latency: int = 1
    model_int_wb_hazard: bool = True
    model_l0_icache: bool = True

    def latency(self, opclass: OpClass) -> int:
        return self.latencies[opclass]
