"""Vectorized batch simulation engine: lockstep stepping of many cores.

Single-stream simulation throughput is the binding constraint on every
sweep: each :class:`~repro.sim.scheduler.Scheduler` step costs a few
microseconds of interpreter time regardless of how many independent
cells a parameter study wants.  This engine holds the state of B
independent :class:`~repro.sim.machine.Machine` instances in flat
numpy arrays — ``(B, 32)`` register files, scoreboards and both issue
timelines as integer vectors, one PC per lane — and advances the whole
fleet with one vectorized update per *static* instruction, following
the BlueSky idiom (per-agent state in arrays, one step for the fleet).

Design rules, in order of precedence:

1. **The scalar scheduler stays golden.**  Per-cell results must be
   bit-identical to a scalar run: same cycles, same counters, same
   regions, same memory image, same raised errors.  Everything below
   exists in service of this.
2. **Demote, don't emulate.**  Lanes are advanced vectorially only
   through operations whose scalar semantics are exactly expressible
   as array updates (integer ALU/branch/load/store, the FP timeline
   with its dispatch queue and writeback ports — the ~80% common
   path).  The first time a lane reaches an *edge op* — FREP entry,
   SSR configuration, DMA/barrier cluster ops, ``div``-family or
   ``fsqrt`` (which raise per-lane), a computed jump, any undecodable
   instruction — the lane's array state is flushed into a freshly
   built ``Machine`` and the scalar :class:`Scheduler` finishes the
   run from that exact point.  Demotion is transparent: the handover
   state is, field for field, what a scalar run would hold at that pc.
3. **Divergence by grouping.**  Each iteration selects the lanes
   sharing the minimum PC and steps them together; cells in a sweep
   share the kernel, so lanes stay convergent for most of the run and
   the engine keeps a fast path (no index arrays at all) while every
   lane is live and at the same PC.
4. **Errors stay per-lane.**  A lane that faults (unaligned access,
   ``max_steps``, a never-opened region mark) records its exception
   and deactivates; sibling lanes are unaffected.

Lanes are grouped into *cohorts* by the structural signature of their
decoded program — immediate *values* excluded — so a sweep over seeds
or problem sizes (same code, different ``li`` constants, offsets and
memory images) shares one vector fleet: per-op immediates that differ
across lanes are carried as per-lane data vectors.
"""

from __future__ import annotations

from collections import deque

try:
    import numpy as np
except ImportError:          # pragma: no cover - numpy is a hard dep
    np = None

from . import batch_ops as vo
from .config import CoreConfig
from .counters import Counters, RegionMeasurement, RunResult
from .decode import (
    DecodedProgram,
    F_COMPUTE,
    F_LOAD,
    F_STORE,
    F_TO_INT,
    K_FP,
    K_INT,
    K_META,
    S_HANDLER,
    S_JUMP,
    S_RET,
)
from .errors import SimulationError
from .machine import Machine

__all__ = ["BatchEngine", "require_numpy"]

_MASK32 = 0xFFFF_FFFF
_HALT_PC = 1 << 60
_WB_TRIM_THRESHOLD = 8192
_FULL = slice(None)


def require_numpy() -> None:
    """One-line actionable gate for the optional-at-runtime numpy dep."""
    if np is None:
        raise RuntimeError(
            "the batch engine requires numpy (`pip install numpy`); "
            "re-run without batch=/--batch to use the scalar engine"
        )


def _op_signature(op) -> tuple:
    """Structural identity of one micro-op for cohort grouping.

    Two programs whose ops are pairwise signature-equal execute
    identically through the vector path (functional handlers are
    closures and never compared — the vector tables are keyed by
    mnemonic, and lanes demote with their *own* program).  Immediate
    *values* are deliberately excluded (only their presence counts):
    a sweep over seeds or problem sizes bakes those into ``li``
    constants and load/store offsets, and the cohort treats them as
    per-lane data so such sweeps still share one vector fleet.
    Branch/jump *targets* stay in the signature — control flow must
    be structurally identical.
    """
    return (
        op.mnemonic, op.kind, op.special, op.fp_op,
        op.int_read_idx, op.int_write_idx, op.is_load, op.is_store,
        op.is_branch, op.mem_base_idx, op.imm is None, op.target,
        op.jump_direct, op.aux0, op.aux1, op.aux2, op.cfg_arm,
        op.gather, op.dest_idx, op.width, op.opclass,
        op.counter, op.error is None, op.frep_error is None,
        op.instr.label,
        tuple(str(operand) for operand in op.instr.operands
              if not isinstance(operand, int)),
    )


def program_signature(program) -> tuple:
    """Cohort key: the per-op structural signature of *program*."""
    return tuple(_op_signature(op)
                 for op in DecodedProgram.of(program).ops)


class BatchEngine:
    """Run B independent kernel instances in vectorized lockstep.

    Args:
        instances: :class:`~repro.kernels.common.KernelInstance` list;
            each lane simulates one instance against its own memory
            image (shared with the instance, so verifiers see the
            writes).
        config: Core configuration applied to every lane (as
            ``KernelInstance.run(config=...)`` would).
        max_steps: Per-lane dynamic instruction budget, as in
            :meth:`Machine.run`.

    After :meth:`run`, ``results[i]`` holds lane *i*'s
    :class:`RunResult` (or ``None`` if it errored) and ``errors[i]``
    the exception a scalar run would have raised (or ``None``).
    """

    def __init__(self, instances, config: CoreConfig | None = None,
                 max_steps: int = 200_000_000) -> None:
        require_numpy()
        self.instances = list(instances)
        self.config = config
        self.max_steps = max_steps
        n = len(self.instances)
        self.results: list[RunResult | None] = [None] * n
        self.errors: list[Exception | None] = [None] * n
        self.demoted = [False] * n
        self._machines: list[Machine | None] = [None] * n
        self._lane_of: dict[int, tuple["_Cohort", int]] = {}
        groups: dict[tuple, list[int]] = {}
        for i, instance in enumerate(self.instances):
            groups.setdefault(
                program_signature(instance.program), []).append(i)
        self._cohorts = [_Cohort(self, lanes)
                         for lanes in groups.values()]

    def run(self) -> "BatchEngine":
        """Advance every lane to completion (or its per-lane error)."""
        # Silence numpy float warnings: the scalar engine's Python
        # arithmetic produces inf/nan silently and so must the vector
        # path (values are identical either way).
        with np.errstate(all="ignore"):
            for cohort in self._cohorts:
                cohort.run()
        return self

    def machine(self, i: int) -> Machine:
        """A Machine holding lane *i*'s final architectural state.

        Demoted lanes return the machine that finished the run; vector
        lanes get a lazily built one with the array state flushed into
        it.  This is what kernel verifiers receive in place of the
        scalar path's ``Machine``.
        """
        cached = self._machines[i]
        if cached is None:
            cohort, k = self._lane_of[i]
            cached = cohort.flush_machine(k)
            self._machines[i] = cached
        return cached


class _Cohort:
    """Lanes sharing one decoded-program signature, stepped together."""

    def __init__(self, engine: BatchEngine, lanes: list[int]) -> None:
        self.engine = engine
        self.lanes = lanes
        batch = len(lanes)
        self.batch = batch
        cfg = engine.config or CoreConfig()
        self.cfg = cfg
        decs = [DecodedProgram.of(engine.instances[i].program)
                for i in lanes]
        self.decoded = decs[0]
        self.ops = self.decoded.ops
        self.n_ops = len(self.ops)
        latencies = cfg.latencies
        self.lat = [latencies[op.opclass] for op in self.ops]
        # Per-op immediates: a plain int when every lane agrees (the
        # common case), a per-lane int64 vector otherwise (seed- or
        # size-dependent ``li`` constants and memory offsets).  The
        # signature guarantees presence is uniform across the cohort.
        self.imms: list = []
        for j in range(self.n_ops):
            vals = [d.ops[j].imm for d in decs]
            first_imm = vals[0]
            if all(v == first_imm for v in vals):
                self.imms.append(first_imm)
            else:
                self.imms.append(np.array(vals, np.int64))

        # Config snapshot (mirrors Scheduler._snapshot_config).
        self.int_wb_hazard = cfg.model_int_wb_hazard
        self.int_wb_ports = cfg.int_wb_ports
        self.fp_wb_ports = cfg.fp_wb_ports
        self.queue_depth = cfg.fpss_queue_depth
        self.branch_penalty = cfg.taken_branch_penalty
        self.fp_response_latency = cfg.fp_response_latency
        self.l0_enabled = cfg.model_l0_icache
        self.l0_entries = cfg.l0_icache_entries

        # Vector state: one row/element per lane.
        self.iregs = np.zeros((batch, 32), np.int64)
        self.fregs = np.zeros((batch, 32), np.float64)
        self.int_ready = np.zeros((batch, 32), np.int64)
        self.fp_ready = np.zeros((batch, 32), np.int64)
        self.int_time = np.zeros(batch, np.int64)
        self.fp_time = np.zeros(batch, np.int64)
        self.pc = np.zeros(batch, np.int64)
        self.steps = np.zeros(batch, np.int64)
        self.l0_lo = np.full(batch, -1, np.int64)
        self.l0_hi = np.full(batch, -1, np.int64)
        self.active = np.ones(batch, bool)
        self.cd = {field: np.zeros(batch, np.int64)
                   for field in vars(Counters())}

        # Per-lane containers (deliberately scalar: sparse, smallish).
        self.mem_ready: list[dict[int, int]] = \
            [{} for _ in range(batch)]
        self.int_wb_busy: list[set[int]] = [set() for _ in range(batch)]
        self.fp_wb_busy: list[set[int]] = [set() for _ in range(batch)]
        self.fpss_queue: list[deque] = [deque() for _ in range(batch)]
        # Uniform-timing mode: while every lane has advanced through
        # the exact same stall/issue history (the normal case — the
        # cohort shares one program and memory layout; only *data*
        # differs), the timing side is tracked ONCE in these shared
        # structures and all timing arithmetic is scalar.  The first
        # event that can split timing across lanes (divergent branch,
        # non-uniform memory address, a per-lane fault, demotion)
        # materializes per-lane copies and clears the flag.
        self.uniform = True
        self.uni_mem: dict[int, int] = {}
        self.uni_int_wb: set[int] = set()
        self.uni_fp_wb: set[int] = set()
        self.uni_queue: deque = deque()
        self.region_open: list[dict] = [{} for _ in range(batch)]
        self.regions: list[dict] = [{} for _ in range(batch)]
        self.memories = [engine.instances[i].memory for i in lanes]

        for k, i in enumerate(lanes):
            engine._lane_of[i] = (self, k)

        #: True once lanes disagree on PC or one left the fleet; the
        #: run loop then selects min-PC groups instead of the
        #: all-lanes fast path.
        self.mixed = batch == 0
        self._all_lanes = list(range(batch))
        self.plans = [self._compile(op) for op in self.ops]

    # ------------------------------------------------------------------
    # run loops
    # ------------------------------------------------------------------
    def run(self) -> None:
        max_steps = self.engine.max_steps
        n_ops = self.n_ops
        plans = self.plans
        pc = self.pc
        steps = self.steps
        all_lanes = self._all_lanes
        while True:
            # Fast path: every lane live, all at the same PC — plans
            # operate on whole arrays, no index vectors anywhere.
            while not self.mixed:
                cur = int(pc[0])
                if cur >= n_ops:
                    for k in all_lanes:
                        self._finish(k)
                    return
                plan = plans[cur]
                if plan is None:
                    for k in all_lanes:
                        self._demote(k, cur)
                    return
                if int(steps[0]) + 1 > max_steps:
                    for k in all_lanes:
                        self._demote(k, cur)
                    return
                steps += 1
                plan(cur, None, all_lanes, True)
            # General path: min-PC grouping over the live lanes.
            act = np.flatnonzero(self.active)
            if act.size == 0:
                return
            pcs = pc[act]
            cur = int(pcs.min())
            g = act[pcs == cur]
            if g.size == self.batch:
                # Reconverged with every lane live: back to fast mode.
                self.mixed = False
                continue
            if cur >= n_ops:
                for k in g.tolist():
                    self._finish(k)
                continue
            plan = plans[cur]
            gl = g.tolist()
            if plan is None:
                for k in gl:
                    self._demote(k, cur)
                continue
            over = steps[g] + 1 > max_steps
            if over.any():
                for k in g[over].tolist():
                    self._demote(k, cur)
                g = g[~over]
                if g.size == 0:
                    continue
                gl = g.tolist()
            steps[g] += 1
            plan(cur, g, gl, False)

    # ------------------------------------------------------------------
    # lane lifecycle
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        """Fan the shared timing structures out to per-lane copies.

        Called the moment lane timing can diverge; afterwards the
        per-lane containers are authoritative (and independent — each
        lane gets its own copy, as if it had tracked them all along).
        """
        if not self.uniform:
            return
        self.uniform = False
        for k in range(self.batch):
            self.mem_ready[k] = dict(self.uni_mem)
            self.int_wb_busy[k] = set(self.uni_int_wb)
            self.fp_wb_busy[k] = set(self.uni_fp_wb)
            self.fpss_queue[k] = deque(self.uni_queue)

    def _fail(self, k: int, exc: Exception) -> None:
        """Record a per-lane fault; siblings keep running."""
        self._materialize()
        self.engine.errors[self.lanes[k]] = exc
        self.active[k] = False
        self.mixed = True

    def _finish(self, k: int) -> None:
        cycles = max(int(self.int_time[k]), int(self.fp_time[k]))
        self.engine.results[self.lanes[k]] = RunResult(
            cycles=cycles, counters=self._counters_of(k),
            regions=dict(self.regions[k]))
        self.active[k] = False
        self.mixed = True

    def _counters_of(self, k: int) -> Counters:
        return Counters(**{field: int(arr[k])
                           for field, arr in self.cd.items()})

    def flush_machine(self, k: int) -> Machine:
        """A Machine mirroring lane *k*'s architectural state."""
        instance = self.engine.instances[self.lanes[k]]
        machine = Machine(config=self.engine.config,
                          memory=instance.memory)
        machine.iregs[:] = [int(v) for v in self.iregs[k]]
        machine.fregs[:] = [float(v) for v in self.fregs[k]]
        return machine

    def _demote(self, k: int, cur: int) -> None:
        """Hand lane *k* to the scalar Scheduler, mid-run.

        The scheduler is rebuilt to the exact state a scalar run would
        hold at pc *cur*; ``drain()`` then finishes the lane with the
        golden-reference semantics (including raising the golden
        errors for edge ops the vector path does not model).
        """
        self._materialize()
        engine = self.engine
        i = self.lanes[k]
        instance = engine.instances[i]
        machine = self.flush_machine(k)
        sched = machine.sched
        sched.bind(instance.program, engine.max_steps)
        sched._pc = cur
        sched._steps = int(self.steps[k])
        sched.int_time = int(self.int_time[k])
        sched.fp_time = int(self.fp_time[k])
        sched.int_ready[:] = [int(v) for v in self.int_ready[k]]
        sched.fp_ready[:] = [int(v) for v in self.fp_ready[k]]
        sched.mem_ready = self.mem_ready[k]
        sched.int_wb_busy = self.int_wb_busy[k]
        sched.fp_wb_busy = self.fp_wb_busy[k]
        sched.fpss_queue = self.fpss_queue[k]
        sched._region_open = self.region_open[k]
        sched._regions = self.regions[k]
        cd = sched._cd
        for field, arr in self.cd.items():
            cd[field] = int(arr[k])
        sched.l0._lo = int(self.l0_lo[k])
        sched.l0._hi = int(self.l0_hi[k])
        sched.l0.hits = int(self.cd["icache_l0_hits"][k])
        sched.l0.misses = int(self.cd["icache_l0_misses"][k])
        engine._machines[i] = machine
        engine.demoted[i] = True
        self.active[k] = False
        self.mixed = True
        try:
            sched.drain()
        except Exception as exc:
            engine.errors[i] = exc
        else:
            engine.results[i] = sched.result()

    # ------------------------------------------------------------------
    # per-lane scalar helpers (addresses/probes diverge by lane)
    # ------------------------------------------------------------------
    def _trim_wb(self, k: int, busy: set) -> None:
        floor = min(int(self.int_time[k]), int(self.fp_time[k]))
        busy.intersection_update({t for t in busy if t >= floor})

    # ------------------------------------------------------------------
    # plan compilation: one closure per static instruction
    # ------------------------------------------------------------------
    def _compile(self, op):
        """The vector step for *op*, or None to demote lanes there."""
        if op.error is not None:
            return None
        kind = op.kind
        if kind == K_META:
            return self._plan_meta(op)
        if kind == K_INT:
            special = op.special
            if special == S_RET:
                return self._plan_int(op, mode="ret")
            if special == S_JUMP:
                if not op.jump_direct or op.target is None:
                    return None
                return self._plan_int(op, mode="jump")
            if special != S_HANDLER:
                # scfgwi / ssr.* / dma.* / cluster.barrier: edge ops.
                return None
            return self._plan_int(op)
        if kind == K_FP:
            return self._plan_fp(op)
        return None                              # K_FREP

    def _fetch(self, cur: int, ix) -> None:
        cd = self.cd
        if self.l0_enabled:
            hit = (self.l0_lo[ix] <= cur) & (cur <= self.l0_hi[ix])
            cd["icache_l0_hits"][ix] += hit
            cd["icache_l0_misses"][ix] += ~hit
        else:
            cd["icache_l0_misses"][ix] += 1

    def _fetch_uni(self, cur: int) -> None:
        """Fetch bookkeeping when the L0 window is lane-uniform."""
        cd = self.cd
        if self.l0_enabled and \
                int(self.l0_lo[0]) <= cur <= int(self.l0_hi[0]):
            cd["icache_l0_hits"] += 1
        else:
            cd["icache_l0_misses"] += 1

    def _plan_int(self, op, mode: str | None = None):
        mnem = op.mnemonic
        reads = op.int_read_idx
        writes = op.int_write_idx
        lat = self.lat[op.index]
        counter = op.counter
        operands = op.instr.operands
        imm = self.imms[op.index]
        imm_vec = imm if isinstance(imm, np.ndarray) else None
        target = op.target
        base_idx = op.mem_base_idx
        hazard = bool(writes) and self.int_wb_hazard
        ports = self.int_wb_ports
        penalty = self.branch_penalty
        entries = self.l0_entries
        l0_on = self.l0_enabled

        # Resolve the functional form; anything unknown demotes.
        fn = reader = writer = None
        dest = src = 0
        const_val = None
        if mode in ("ret", "jump"):
            pass
        elif op.is_branch:
            if target is None:
                return None
            fn = vo.VEC_BRANCH.get(mnem)
            if fn is not None:
                mode = "br2"
                a_idx = operands[0].index
                b_idx = operands[1].index
            else:
                fn = vo.VEC_BRANCHZ.get(mnem)
                if fn is None:
                    return None
                mode = "br1"
                a_idx = operands[0].index
        elif op.is_load:
            reader = vo.LOAD_READERS.get(mnem)
            if reader is None:
                return None
            mode = "load"
            dest = operands[0].index
        elif op.is_store:
            writer = vo.STORE_WRITERS.get(mnem)
            if writer is None:
                return None
            mode = "store"
            src = operands[0].index
        elif mnem == "nop":
            mode = "nop"
        elif mnem in vo.VEC_CONST:
            mode = "const"
            cfn = vo.VEC_CONST[mnem]
            if imm_vec is None:
                const_val = cfn(imm)
            else:
                const_val = np.array([cfn(int(v)) for v in imm_vec],
                                     np.int64)
            dest = operands[0].index
        elif mnem in vo.VEC_UNARY:
            mode = "unary"
            fn = vo.VEC_UNARY[mnem]
            dest = operands[0].index
            a_idx = operands[1].index
        elif mnem in vo.VEC_RR:
            mode = "rr"
            fn = vo.VEC_RR[mnem]
            dest = operands[0].index
            a_idx = operands[1].index
            b_idx = operands[2].index
        elif mnem in vo.VEC_RI:
            mode = "ri"
            fn = vo.VEC_RI[mnem]
            dest = operands[0].index
            a_idx = operands[1].index
        else:
            return None
        backward = target is not None and mode in ("br1", "br2", "jump")
        uses_imm = mode in ("ri", "load", "store")
        const_is_vec = mode == "const" and imm_vec is not None

        def plan(cur, g, gl, full):
            ix = _FULL if full else g
            uni = full and self.uniform
            off = None
            if uses_imm:
                off = imm if imm_vec is None \
                    else (imm_vec if full else imm_vec[g])
            cd = self.cd
            iregs = self.iregs
            if uni:
                self._fetch_uni(cur)
                start = base = int(self.int_time[0])
                if reads:
                    int_ready = self.int_ready
                    for r in reads:
                        t = int(int_ready[0, r])
                        if t > start:
                            start = t
                    if start > base:
                        cd["stall_raw_int"][ix] += start - base
            else:
                self._fetch(cur, ix)
                base = self.int_time[ix]
                start = base
                if reads:
                    int_ready = self.int_ready
                    for r in reads:
                        start = np.maximum(start, int_ready[ix, r])
                    cd["stall_raw_int"][ix] += start - base

            value = None
            if mode == "load":
                addr = (iregs[ix, base_idx] + off) & _MASK32
                if uni and not (addr == addr[0]).all():
                    self._materialize()
                    uni = False
                    start = np.full(self.batch, start, np.int64)
                if uni:
                    a0 = int(addr[0])
                    t = 0
                    ready_map = self.uni_mem
                    for key in range(a0 >> 2, (a0 + 7) >> 2):
                        v = ready_map.get(key, 0)
                        if v > t:
                            t = v
                    if t > start:
                        cd["stall_mem_raw"][ix] += t - start
                        start = t
                    values = [0] * self.batch
                    memories = self.memories
                    for k in range(self.batch):
                        try:
                            values[k] = reader(memories[k], a0)
                        except Exception as exc:
                            self._fail(k, exc)
                    value = np.array(values, np.int64)
                    if not self.uniform:     # a lane faulted mid-loop
                        uni = False
                        start = np.full(self.batch, start, np.int64)
                else:
                    addr_list = addr.tolist()
                    waits = [0] * len(gl)
                    values = [0] * len(gl)
                    mem_ready = self.mem_ready
                    memories = self.memories
                    for j, k in enumerate(gl):
                        a = addr_list[j]
                        ready_map = mem_ready[k]
                        t = 0
                        for key in range(a >> 2, (a + 7) >> 2):
                            v = ready_map.get(key, 0)
                            if v > t:
                                t = v
                        waits[j] = t
                        try:
                            values[j] = reader(memories[k], a)
                        except Exception as exc:
                            self._fail(k, exc)
                    t = np.array(waits, np.int64)
                    cd["stall_mem_raw"][ix] += np.maximum(t - start, 0)
                    start = np.maximum(start, t)
                    value = np.array(values, np.int64)

            if hazard:
                if uni:
                    wb = start + lat
                    busy = self.uni_int_wb
                    if ports == 1:
                        while wb in busy:
                            wb += 1
                    busy.add(wb)
                    if len(busy) > _WB_TRIM_THRESHOLD:
                        self._trim_wb(0, busy)
                    issue = wb - lat
                    if issue > start:
                        cd["stall_wb_port"][ix] += issue - start
                        start = issue
                else:
                    start_list = start.tolist()
                    wb_list = [0] * len(gl)
                    busy_sets = self.int_wb_busy
                    for j, k in enumerate(gl):
                        wb_at = start_list[j] + lat
                        busy = busy_sets[k]
                        if ports == 1:
                            while wb_at in busy:
                                wb_at += 1
                        busy.add(wb_at)
                        if len(busy) > _WB_TRIM_THRESHOLD:
                            self._trim_wb(k, busy)
                        wb_list[j] = wb_at
                    wb = np.array(wb_list, np.int64)
                    issue = wb - lat
                    cd["stall_wb_port"][ix] += \
                        np.maximum(issue - start, 0)
                    start = np.maximum(start, issue)
            else:
                wb = start + lat

            if mode == "ret":
                self.int_time[ix] = start + 1
                cd["int_issued"][ix] += 1
                self.pc[ix] = _HALT_PC
                return

            taken = None
            if mode == "rr":
                value = fn(iregs[ix, a_idx], iregs[ix, b_idx]) & _MASK32
            elif mode == "ri":
                value = fn(iregs[ix, a_idx], off) & _MASK32
            elif mode == "unary":
                value = fn(iregs[ix, a_idx]) & _MASK32
            elif mode == "const":
                value = const_val if not const_is_vec or full \
                    else const_val[g]
            elif mode == "br2":
                taken = fn(iregs[ix, a_idx], iregs[ix, b_idx])
            elif mode == "br1":
                taken = fn(iregs[ix, a_idx])

            if value is not None and dest:
                iregs[ix, dest] = value
            if writes:
                int_ready = self.int_ready
                for r in writes:
                    int_ready[ix, r] = wb
            if mode == "store":
                addr = (iregs[ix, base_idx] + off) & _MASK32
                if uni and not (addr == addr[0]).all():
                    self._materialize()
                    uni = False
                    start = np.full(self.batch, start, np.int64)
                if uni:
                    a0 = int(addr[0])
                    value_list = iregs[ix, src].tolist()
                    memories = self.memories
                    ok = []
                    for k in range(self.batch):
                        try:
                            writer(memories[k], a0, value_list[k])
                        except Exception as exc:
                            self._fail(k, exc)
                            continue
                        ok.append(k)
                    done = start + lat
                    span = range(a0 >> 2, (a0 + 7) >> 2)
                    if self.uniform:
                        ready_map = self.uni_mem
                        for key in span:
                            ready_map[key] = done
                    else:                # a lane faulted mid-loop
                        uni = False
                        for k in ok:
                            ready_map = self.mem_ready[k]
                            for key in span:
                                ready_map[key] = done
                else:
                    addr_list = addr.tolist()
                    value_list = iregs[ix, src].tolist()
                    start_list = start.tolist()
                    mem_ready = self.mem_ready
                    memories = self.memories
                    for j, k in enumerate(gl):
                        a = addr_list[j]
                        try:
                            writer(memories[k], a, value_list[j])
                        except Exception as exc:
                            self._fail(k, exc)
                            continue
                        done = start_list[j] + lat
                        ready_map = mem_ready[k]
                        for key in range(a >> 2, (a + 7) >> 2):
                            ready_map[key] = done

            self.int_time[ix] = start + 1
            cd["int_issued"][ix] += 1
            if counter is not None:
                cd[counter][ix] += 1

            if taken is not None:
                if full and taken.all():
                    taken_uniform = True
                elif full and not taken.any():
                    self.pc[ix] = cur + 1
                    return
                elif full:
                    taken_uniform = None
                    self._materialize()
                    self.mixed = True
                else:
                    taken_uniform = None
                if taken_uniform:
                    self.int_time[ix] += penalty
                    cd["stall_branch"][ix] += penalty
                    if l0_on and backward and target <= cur:
                        span = cur - target + 1
                        if 0 < span <= entries:
                            self.l0_lo[ix] = target
                            self.l0_hi[ix] = cur
                        else:
                            self.l0_lo[ix] = -1
                            self.l0_hi[ix] = -1
                    self.pc[ix] = target
                    return
                bump = np.where(taken, penalty, 0)
                self.int_time[ix] += bump
                cd["stall_branch"][ix] += bump
                if l0_on and backward and target <= cur:
                    span = cur - target + 1
                    lo_val, hi_val = ((target, cur)
                                      if 0 < span <= entries
                                      else (-1, -1))
                    self.l0_lo[ix] = np.where(taken, lo_val,
                                              self.l0_lo[ix])
                    self.l0_hi[ix] = np.where(taken, hi_val,
                                              self.l0_hi[ix])
                self.pc[ix] = np.where(taken, target, cur + 1)
                return
            if mode == "jump":
                self.int_time[ix] += penalty
                cd["stall_branch"][ix] += penalty
                if l0_on and target <= cur:
                    span = cur - target + 1
                    if 0 < span <= entries:
                        self.l0_lo[ix] = target
                        self.l0_hi[ix] = cur
                    else:
                        self.l0_lo[ix] = -1
                        self.l0_hi[ix] = -1
                self.pc[ix] = target
                return
            self.pc[ix] = cur + 1

        return plan

    def _plan_fp(self, op):
        fp_kind = op.fp_op
        mnem = op.mnemonic
        compute = None
        if fp_kind == F_COMPUTE:
            compute = vo.VEC_FP_COMPUTE.get(mnem)
            if compute is None:
                return None
        elif fp_kind == F_TO_INT:
            compute = vo.VEC_FP_TO_INT.get(mnem)
            if compute is None:
                return None
        elif fp_kind == F_LOAD:
            reader = vo.FP_LOAD_READERS[op.width]
        elif fp_kind == F_STORE:
            writer = vo.FP_STORE_WRITERS[op.width]
        else:
            return None                          # F_BAD
        gather = op.gather
        reads = op.int_read_idx
        lat = self.lat[op.index]
        counter = op.counter
        dest = op.dest_idx
        base_idx = op.mem_base_idx
        imm = self.imms[op.index]
        imm_vec = imm if isinstance(imm, np.ndarray) else None
        uses_imm = fp_kind in (F_LOAD, F_STORE)
        depth = self.queue_depth
        ports = self.fp_wb_ports
        fp_resp = self.fp_response_latency

        span_end = 8 + 3 if op.width == 8 else 4 + 3

        def plan(cur, g, gl, full):
            ix = _FULL if full else g
            uni = full and self.uniform
            off = None
            if uses_imm:
                off = imm if imm_vec is None \
                    else (imm_vec if full else imm_vec[g])
            cd = self.cd
            # -- dispatch on the integer timeline --------------------
            if uni:
                self._fetch_uni(cur)
                disp = int(self.int_time[0])
                queue = self.uni_queue
                while queue and queue[0] < disp:
                    queue.popleft()
                if len(queue) >= depth:
                    free_at = queue.popleft() + 1
                    if free_at > disp:
                        cd["stall_queue_full"][ix] += free_at - disp
                        disp = free_at
                if reads:
                    b0 = disp
                    int_ready = self.int_ready
                    for r in reads:
                        t = int(int_ready[0, r])
                        if t > disp:
                            disp = t
                    if disp > b0:
                        cd["stall_raw_int"][ix] += disp - b0
            else:
                self._fetch(cur, ix)
                disp_list = self.int_time[ix].tolist()
                stall_queue = cd["stall_queue_full"]
                queues = self.fpss_queue
                for j, k in enumerate(gl):
                    queue = queues[k]
                    d0 = disp_list[j]
                    while queue and queue[0] < d0:
                        queue.popleft()
                    if len(queue) >= depth:
                        free_at = queue.popleft() + 1
                        if free_at > d0:
                            stall_queue[k] += free_at - d0
                            disp_list[j] = free_at
                disp = np.array(disp_list, np.int64)
                if reads:
                    base = disp
                    int_ready = self.int_ready
                    for r in reads:
                        disp = np.maximum(disp, int_ready[ix, r])
                    cd["stall_raw_int"][ix] += disp - base
            self.int_time[ix] = disp + 1
            cd["fp_dispatched"][ix] += 1

            # -- FPSS issue (earliest = disp + 1, SSRs never armed) --
            values = []
            if uni:
                start = int(self.fp_time[0])
                if disp + 1 > start:
                    start = disp + 1
                stall = 0
                for is_fp, idx in gather:
                    if is_fp:
                        t = int(self.fp_ready[0, idx])
                        if t > start:
                            stall += t - start
                            start = t
                        values.append(self.fregs[ix, idx])
                    else:
                        values.append(self.iregs[ix, idx])
                if stall:
                    cd["fp_stall_raw"][ix] += stall
            else:
                start = np.maximum(self.fp_time[ix], disp + 1)
                for is_fp, idx in gather:
                    if is_fp:
                        t = self.fp_ready[ix, idx]
                        cd["fp_stall_raw"][ix] += \
                            np.maximum(t - start, 0)
                        start = np.maximum(start, t)
                        values.append(self.fregs[ix, idx])
                    else:
                        values.append(self.iregs[ix, idx])

            if fp_kind == F_COMPUTE:
                result = compute(*values)
                if uni:
                    wb = start + lat
                    busy = self.uni_fp_wb
                    if ports == 1:
                        while wb in busy:
                            wb += 1
                    busy.add(wb)
                    if len(busy) > _WB_TRIM_THRESHOLD:
                        self._trim_wb(0, busy)
                    issue = wb - lat
                    if issue > start:
                        cd["fp_stall_wb_port"][ix] += issue - start
                        start = issue
                else:
                    start_list = start.tolist()
                    wb_list = [0] * len(gl)
                    busy_sets = self.fp_wb_busy
                    for j, k in enumerate(gl):
                        wb_at = start_list[j] + lat
                        busy = busy_sets[k]
                        if ports == 1:
                            while wb_at in busy:
                                wb_at += 1
                        busy.add(wb_at)
                        if len(busy) > _WB_TRIM_THRESHOLD:
                            self._trim_wb(k, busy)
                        wb_list[j] = wb_at
                    wb = np.array(wb_list, np.int64)
                    issue = wb - lat
                    cd["fp_stall_wb_port"][ix] += \
                        np.maximum(issue - start, 0)
                    start = np.maximum(start, issue)
                self.fregs[ix, dest] = result
                self.fp_ready[ix, dest] = wb
            elif fp_kind == F_LOAD:
                addr = (self.iregs[ix, base_idx] + off) & _MASK32
                if uni and not (addr == addr[0]).all():
                    self._materialize()
                    uni = False
                    start = np.full(self.batch, start, np.int64)
                if uni:
                    a0 = int(addr[0])
                    ready_map = self.uni_mem
                    for key in range(a0 >> 2, (a0 + 11) >> 2):
                        v = ready_map.get(key, 0)
                        if v > start:
                            start = v
                    wb = start + lat
                    busy = self.uni_fp_wb
                    if ports == 1:
                        while wb in busy:
                            wb += 1
                    busy.add(wb)
                    if len(busy) > _WB_TRIM_THRESHOLD:
                        self._trim_wb(0, busy)
                    issue = wb - lat
                    if issue > start:
                        cd["fp_stall_wb_port"][ix] += issue - start
                        start = issue
                    values_out = [0.0] * self.batch
                    memories = self.memories
                    for k in range(self.batch):
                        try:
                            values_out[k] = reader(memories[k], a0)
                        except Exception as exc:
                            self._fail(k, exc)
                    self.fregs[ix, dest] = \
                        np.array(values_out, np.float64)
                    self.fp_ready[ix, dest] = wb
                    if not self.uniform:     # a lane faulted mid-loop
                        uni = False
                        start = np.full(self.batch, start, np.int64)
                else:
                    addr_list = addr.tolist()
                    start_list = start.tolist()
                    wb_list = [0] * len(gl)
                    values_out = [0.0] * len(gl)
                    stall_wb = cd["fp_stall_wb_port"]
                    mem_ready = self.mem_ready
                    busy_sets = self.fp_wb_busy
                    memories = self.memories
                    for j, k in enumerate(gl):
                        a = addr_list[j]
                        s = start_list[j]
                        ready_map = mem_ready[k]
                        for key in range(a >> 2, (a + 11) >> 2):
                            v = ready_map.get(key, 0)
                            if v > s:
                                s = v
                        busy = busy_sets[k]
                        wb_at = s + lat
                        if ports == 1:
                            while wb_at in busy:
                                wb_at += 1
                        busy.add(wb_at)
                        if len(busy) > _WB_TRIM_THRESHOLD:
                            self._trim_wb(k, busy)
                        issue = wb_at - lat
                        if issue > s:
                            stall_wb[k] += issue - s
                            s = issue
                        try:
                            values_out[j] = reader(memories[k], a)
                        except Exception as exc:
                            self._fail(k, exc)
                        wb_list[j] = wb_at
                        start_list[j] = s
                    start = np.array(start_list, np.int64)
                    wb = np.array(wb_list, np.int64)
                    self.fregs[ix, dest] = \
                        np.array(values_out, np.float64)
                    self.fp_ready[ix, dest] = wb
            elif fp_kind == F_STORE:
                addr = (self.iregs[ix, base_idx] + off) & _MASK32
                if uni and not (addr == addr[0]).all():
                    self._materialize()
                    uni = False
                    start = np.full(self.batch, start, np.int64)
                if uni:
                    a0 = int(addr[0])
                    value_list = values[0].tolist()
                    memories = self.memories
                    ok = []
                    for k in range(self.batch):
                        try:
                            writer(memories[k], a0, value_list[k])
                        except Exception as exc:
                            self._fail(k, exc)
                            continue
                        ok.append(k)
                    done = start + lat
                    span = range(a0 >> 2, (a0 + span_end) >> 2)
                    if self.uniform:
                        ready_map = self.uni_mem
                        for key in span:
                            ready_map[key] = done
                    else:                # a lane faulted mid-loop
                        uni = False
                        for k in ok:
                            ready_map = self.mem_ready[k]
                            for key in span:
                                ready_map[key] = done
                else:
                    addr_list = addr.tolist()
                    value_list = values[0].tolist()
                    start_list = start.tolist()
                    mem_ready = self.mem_ready
                    memories = self.memories
                    for j, k in enumerate(gl):
                        a = addr_list[j]
                        try:
                            writer(memories[k], a, value_list[j])
                        except Exception as exc:
                            self._fail(k, exc)
                            continue
                        done = start_list[j] + lat
                        ready_map = mem_ready[k]
                        for key in range(a >> 2, (a + span_end) >> 2):
                            ready_map[key] = done
            else:                                # F_TO_INT
                result = compute(*values)
                if dest:
                    self.iregs[ix, dest] = result & _MASK32
                self.int_ready[ix, dest] = start + lat + fp_resp

            self.fp_time[ix] = start + 1
            cd["fp_issued"][ix] += 1
            if counter is not None:
                cd[counter][ix] += 1
            if uni:
                self.uni_queue.append(start)
            else:
                queues = self.fpss_queue
                if isinstance(start, int):
                    for k in gl:
                        queues[k].append(start)
                else:
                    start_list = start.tolist()
                    for j, k in enumerate(gl):
                        queues[k].append(start_list[j])
            self.pc[ix] = cur + 1

        return plan

    def _plan_meta(self, op):
        label = op.instr.label or ""
        if label.endswith("_start"):
            name = label[:-len("_start")]
            opening = True
        elif label.endswith("_end"):
            name = label[:-len("_end")]
            opening = False
        else:
            return None           # scalar raises the bad-label error
        err = f"mark {label}: region never opened"

        def plan(cur, g, gl, full):
            ix = _FULL if full else g
            for k in gl:
                now = max(int(self.int_time[k]), int(self.fp_time[k]))
                if opening:
                    self.region_open[k][name] = \
                        (now, self._counters_of(k))
                    continue
                opened = self.region_open[k]
                if name not in opened:
                    self._fail(k, SimulationError(err))
                    continue
                start_time, start_counters = opened.pop(name)
                cycles = now - start_time
                delta = self._counters_of(k).delta(start_counters)
                regions = self.regions[k]
                if name in regions:
                    prev = regions[name]
                    merged = Counters(**{
                        f: getattr(prev.counters, f) + getattr(delta, f)
                        for f in vars(delta)
                    })
                    regions[name] = RegionMeasurement(
                        name, prev.cycles + cycles, merged)
                else:
                    regions[name] = RegionMeasurement(
                        name, cycles, delta)
            self.pc[ix] = cur + 1

        return plan
