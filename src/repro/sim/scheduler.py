"""Two-timeline issue scheduler over pre-decoded micro-ops.

The :class:`Scheduler` owns everything *timing*: the integer and FPSS
issue timelines, the per-register-file scoreboards, writeback-port
reservations, the core→FPSS dispatch queue, memory-RAW publication
times, region measurements and all performance counters.  Architectural
state (register files, memory, SSR movers) stays on the owning
:class:`~repro.sim.machine.Machine`, which the bound functional handlers
mutate.

The hot loop works exclusively on :class:`~repro.sim.decode.MicroOp`
records: no dict lookups, no operand-role walks, no ``instr.spec``
attribute chains — every per-instruction invariant was resolved at
decode time.  :meth:`bind` additionally snapshots the per-config
scalars (latencies by pc, port counts, queue depth, branch penalty) and
the architectural-state containers into flat attributes, so the
per-step code touches plain locals and list indexing only.  The
configuration and the machine's cluster hooks are treated as immutable
between ``bind`` and the end of the run (true everywhere in the repo).

The cycle-assignment rules are documented on
:class:`~repro.sim.machine.Machine`; this class is a performance
refactor of the original interpreter with bit-identical timing
(``tests/test_golden.py`` locks that in).
"""

from __future__ import annotations

from collections import deque

from ..isa.instructions import OpClass
from .counters import Counters, RegionMeasurement, RunResult
from .decode import (
    DecodedProgram,
    F_COMPUTE,
    F_LOAD,
    F_STORE,
    F_TO_INT,
    K_FP,
    K_FREP,
    K_INT,
    S_BARRIER,
    S_DMA_START,
    S_DMA_WAIT,
    S_HANDLER,
    S_JUMP,
    S_RET,
    S_SCFGWI,
    S_SSR_DIS,
    S_SSR_EN,
)
from .errors import SimulationError
from .icache import L0Cache
from ..obs.timeline import TraceEvent

_MASK32 = 0xFFFFFFFF
_HALT_PC = 1 << 60

#: Writeback-reservation sets are trimmed once they exceed this size.
_WB_TRIM_THRESHOLD = 8192


class Scheduler:
    """Issue-timing state machine for one core."""

    __slots__ = (
        "m", "cfg", "int_time", "fp_time", "int_ready", "fp_ready",
        "mem_ready", "int_wb_busy", "fp_wb_busy", "fpss_queue",
        "counters", "_cd", "l0", "_region_open", "_regions",
        "barrier_wait", "barrier_arrival", "_ops", "_n_ops", "_lat",
        "_pc", "_steps", "_max_steps",
        # config snapshot
        "_lat_fp_load", "_int_wb_hazard", "_int_wb_ports",
        "_fp_wb_ports", "_queue_depth", "_branch_penalty",
        "_ssr_fill_latency", "_fp_response_latency",
        # machine snapshot
        "_iregs", "_fregs", "_mem", "_ssrs", "_n_ssrs", "_tcdm",
        "_core_id", "_read_index", "_trace", "_obs", "_obs_scope",
    )

    def __init__(self, machine) -> None:
        self.m = machine
        cfg = machine.config
        self.cfg = cfg
        self.int_time = 0
        self.fp_time = 0
        self.int_ready = [0] * 32
        self.fp_ready = [0] * 32
        self.mem_ready: dict[int, int] = {}
        self.int_wb_busy: set[int] = set()
        self.fp_wb_busy: set[int] = set()
        self.fpss_queue: deque[int] = deque()
        self.counters = Counters()
        #: Counter storage; the hot loop bumps fields through this dict.
        self._cd = self.counters.__dict__
        self.l0 = L0Cache(cfg.l0_icache_entries,
                          enabled=cfg.model_l0_icache)
        self._region_open: dict[str, tuple[int, Counters]] = {}
        self._regions: dict[str, RegionMeasurement] = {}
        #: True while parked at a cluster barrier (cluster sims only).
        self.barrier_wait = False
        #: Time this core arrived at the barrier it is parked at.
        self.barrier_arrival = 0
        self._ops: list = []
        self._n_ops = 0
        self._lat: list[int] = []
        self._pc = 0
        self._steps = 0
        self._max_steps = 0
        self._snapshot_config()
        self._snapshot_machine()

    # ------------------------------------------------------------------
    def _snapshot_config(self) -> None:
        cfg = self.cfg
        self._lat_fp_load = cfg.latencies[OpClass.FP_LOAD]
        self._int_wb_hazard = cfg.model_int_wb_hazard
        self._int_wb_ports = cfg.int_wb_ports
        self._fp_wb_ports = cfg.fp_wb_ports
        self._queue_depth = cfg.fpss_queue_depth
        self._branch_penalty = cfg.taken_branch_penalty
        self._ssr_fill_latency = cfg.ssr_fill_latency
        self._fp_response_latency = cfg.fp_response_latency

    def _snapshot_machine(self) -> None:
        m = self.m
        self._iregs = m.iregs
        self._fregs = m.fregs
        self._mem = m.memory
        self._ssrs = m.ssrs
        self._n_ssrs = len(m.ssrs)
        self._tcdm = m.tcdm
        self._core_id = m.core_id
        self._read_index = m._read_index
        self._trace = m.trace
        self._obs = m.obs
        self._obs_scope = m.obs_scope

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current elapsed time over both issue timelines."""
        int_time = self.int_time
        fp_time = self.fp_time
        return int_time if int_time >= fp_time else fp_time

    @property
    def finished(self) -> bool:
        return self._pc >= self._n_ops

    # ------------------------------------------------------------------
    def bind(self, program, max_steps: int) -> None:
        """Prepare *program* for stepwise execution.

        Decoding is cached on the program; only the per-config latency
        table is (re)resolved here, one flat list indexed by pc.
        """
        decoded = DecodedProgram.of(program)
        self._ops = decoded.ops
        self._n_ops = len(decoded.ops)
        latencies = self.cfg.latencies
        self._lat = [latencies[op.opclass] for op in decoded.ops]
        self._pc = 0
        self._steps = 0
        self._max_steps = max_steps
        self.barrier_wait = False
        self._snapshot_config()
        self._snapshot_machine()

    def step(self) -> bool:
        """Execute one dynamic instruction; False once finished."""
        pc = self._pc
        if pc >= self._n_ops:
            return False
        op = self._ops[pc]
        self._steps += 1
        if self._steps > self._max_steps:
            raise SimulationError(
                f"exceeded max_steps={self._max_steps} at pc={pc} "
                f"({op.instr.render()})"
            )
        kind = op.kind
        if kind == K_INT:
            pc = self._step_int(op, pc)
        elif kind == K_FP:
            self._step_fp(op, pc)
            pc += 1
        elif kind == K_FREP:
            pc = self._exec_frep(op, pc)
        else:                                   # K_META
            self._exec_mark(op)
            pc += 1
        self._pc = pc
        return True

    def drain(self) -> None:
        """Step until the bound program finishes.

        Semantically ``while self.step(): pass``, written as one tight
        loop with pc/steps in locals — this is the standalone-run hot
        path (the cluster driver interleaves :meth:`step` instead).
        """
        ops = self._ops
        n_ops = self._n_ops
        max_steps = self._max_steps
        pc = self._pc
        steps = self._steps
        step_int = self._step_int
        step_fp = self._step_fp
        try:
            while pc < n_ops:
                op = ops[pc]
                steps += 1
                if steps > max_steps:
                    raise SimulationError(
                        f"exceeded max_steps={max_steps} at pc={pc} "
                        f"({op.instr.render()})"
                    )
                kind = op.kind
                if kind == K_INT:
                    pc = step_int(op, pc)
                elif kind == K_FP:
                    step_fp(op, pc)
                    pc += 1
                elif kind == K_FREP:
                    pc = self._exec_frep(op, pc)
                else:                           # K_META
                    self._exec_mark(op)
                    pc += 1
        finally:
            self._pc = pc
            self._steps = steps

    def result(self) -> RunResult:
        """Measurements of everything executed since construction."""
        return RunResult(cycles=self.now, counters=self.counters.copy(),
                         regions=dict(self._regions))

    # ------------------------------------------------------------------
    # memory RAW tracking (word-granule publication times)
    # ------------------------------------------------------------------
    def _mem_commit(self, addr: int, size: int, time: int) -> None:
        ready = self.mem_ready
        for key in range(addr >> 2, (addr + size + 3) >> 2):
            ready[key] = time

    def _mem_time(self, addr: int, size: int) -> int:
        ready = self.mem_ready
        t = 0
        for key in range(addr >> 2, (addr + size + 3) >> 2):
            v = ready.get(key, 0)
            if v > t:
                t = v
        return t

    def _trim_wb(self, busy: set[int]) -> None:
        """Cold path: bound the writeback-reservation set's size."""
        floor = min(self.int_time, self.fp_time)
        busy.intersection_update({t for t in busy if t >= floor})

    def _reserve_wb(self, busy: set[int], start: int, lat: int,
                    ports: int) -> tuple[int, int]:
        """Find the earliest issue ≥ *start* with a free writeback slot.

        Returns (issue, writeback) times; reserves the writeback cycle.
        With multiple ports the conflict set is per-cycle occupancy —
        modelled only for the single-port default, which is what the
        paper's core has.  (The step loop inlines this logic; the
        method remains for tests and subclasses.)
        """
        wb = start + lat
        if ports == 1:
            while wb in busy:
                wb += 1
        busy.add(wb)
        if len(busy) > _WB_TRIM_THRESHOLD:
            self._trim_wb(busy)
        return wb - lat, wb

    # ------------------------------------------------------------------
    # markers
    # ------------------------------------------------------------------
    def _exec_mark(self, op) -> None:
        label = op.instr.label or ""
        if label.endswith("_start"):
            name = label[:-len("_start")]
            self._region_open[name] = (self.now, self.counters.copy())
        elif label.endswith("_end"):
            name = label[:-len("_end")]
            if name not in self._region_open:
                raise SimulationError(f"mark {label}: region never opened")
            start_time, start_counters = self._region_open.pop(name)
            cycles = self.now - start_time
            delta = self.counters.delta(start_counters)
            if name in self._regions:
                prev = self._regions[name]
                merged = Counters(**{
                    k: getattr(prev.counters, k) + getattr(delta, k)
                    for k in vars(delta)
                })
                self._regions[name] = RegionMeasurement(
                    name, prev.cycles + cycles, merged
                )
            else:
                self._regions[name] = RegionMeasurement(name, cycles, delta)
        else:
            raise SimulationError(
                f"mark label must end in _start/_end: {label!r}"
            )

    # ------------------------------------------------------------------
    # asynchronous DMA (cluster bandwidth/latency model)
    # ------------------------------------------------------------------
    def _exec_dma_start(self, dst: int, src: int, length: int,
                        start: int) -> None:
        """Queue a tile transfer; publish the data at its completion.

        The copy is applied immediately (program order) so functional
        state never depends on transfer timing; consumers observe the
        modelled completion through the memory-RAW publication times,
        which is what makes double-buffered pipelines overlap compute
        with transfers.
        """
        m = self.m
        obs = self._obs
        flow = obs.next_flow() if obs is not None else None
        if obs is not None:
            obs.emit(self._obs_scope, "int", "dma.start", start, 1,
                     "dma", {"bytes": length}, flow, "s")
        if m.dma is not None:
            done = m.dma.start(m.core_id, dst, src, length,
                               now=start + 1)
            if obs is not None:
                dma_scope = getattr(m.dma, "obs_scope", None)
                if dma_scope is not None:
                    obs.emit(dma_scope, "dma", "dma.done", done, 0,
                             "dma", {"bytes": length}, flow, "f")
        else:
            done = start + 1
        self._mem.copy_within(dst, src, length)
        self._mem_commit(dst, length, done)
        self.counters.dma_bytes_moved += length
        self.counters.dma_transfers += 1

    # ------------------------------------------------------------------
    # integer core
    # ------------------------------------------------------------------
    def _fetch(self, pc: int) -> None:
        # Inlined L0Cache.fetch: this runs once per dispatched
        # instruction, so the extra call layer is worth shaving.
        l0 = self.l0
        if l0.enabled and l0._lo <= pc <= l0._hi:
            l0.hits += 1
            self._cd["icache_l0_hits"] += 1
        else:
            l0.misses += 1
            self._cd["icache_l0_misses"] += 1

    def _step_int(self, op, pc: int) -> int:
        cd = self._cd
        m = self.m
        iregs = self._iregs
        # Fetch (L0 loop-buffer check, inlined).
        l0 = self.l0
        if l0.enabled and l0._lo <= pc <= l0._hi:
            l0.hits += 1
            cd["icache_l0_hits"] += 1
        else:
            l0.misses += 1
            cd["icache_l0_misses"] += 1
        base = self.int_time
        start = base

        # Integer operand readiness.
        ready = self.int_ready
        reads = op.int_read_idx
        if reads:
            for r in reads:
                t = ready[r]
                if t > start:
                    start = t
            if start > base:
                cd["stall_raw_int"] += start - base

        # Loads wait for in-flight stores to the same words.
        is_load = op.is_load
        if is_load:
            addr = (iregs[op.mem_base_idx] + op.imm) & _MASK32
            t = self._mem_time(addr, 4)
            if t > start:
                cd["stall_mem_raw"] += t - start
                start = t

        # Banked-TCDM bank arbitration (cluster simulations only).
        tcdm = self._tcdm
        if tcdm is not None and (is_load or op.is_store):
            addr = (iregs[op.mem_base_idx] + op.imm) & _MASK32
            grant = tcdm.access(self._core_id, addr, 4, start)
            if grant > start:
                cd["stall_tcdm"] += grant - start
                start = grant

        lat = self._lat[pc]

        # Writeback-port structural hazard (single int-RF write port).
        writes = op.int_write_idx
        wb = start + lat
        if writes and self._int_wb_hazard:
            busy = self.int_wb_busy
            if self._int_wb_ports == 1:
                while wb in busy:
                    wb += 1
            busy.add(wb)
            if len(busy) > _WB_TRIM_THRESHOLD:
                self._trim_wb(busy)
            issue = wb - lat
            if issue > start:
                cd["stall_wb_port"] += issue - start
                start = issue

        # SSR/DMA/barrier control is handled in-line; everything else
        # has a bound functional handler.
        taken = None
        special = op.special
        if special == S_HANDLER:
            handler = op.handler
            if handler is None:
                raise SimulationError(op.error)
            taken = handler(m)
        elif special == S_SCFGWI:
            if op.aux1 >= self._n_ssrs:
                raise SimulationError(f"no such SSR: {op.aux1}")
            ssr = self._ssrs[op.aux1]
            if op.cfg_arm:
                # Re-arming a data mover requires the previous stream
                # to have drained; software guards the reconfiguration
                # with an FPU fence, so the write blocks until the FPSS
                # pipeline is idle.  This is the per-block SSR
                # programming / buffer-switching overhead behind
                # Fig. 3's block-size trade-off (and the exp kernel's
                # deviation in Fig. 2a).
                drain = max(ssr.last_pop_time + 1, self.fp_time)
                if drain > start:
                    cd["stall_ssr_sync"] += drain - start
                    start = drain
            ssr.write_config(op.aux0, iregs[op.aux2], now=start + 1)
        elif special == S_SSR_EN:
            m.ssr_enabled = True
        elif special == S_SSR_DIS:
            m.ssr_enabled = False
        elif special == S_DMA_START:
            self._exec_dma_start(iregs[op.aux0], iregs[op.aux1],
                                 iregs[op.aux2], start)
        elif special == S_DMA_WAIT:
            if m.dma is not None:
                t = m.dma.core_drain_time(self._core_id)
                if t > start:
                    obs = self._obs
                    if obs is not None:
                        obs.emit(self._obs_scope, "int", "dma.wait",
                                 start, t - start, "dma",
                                 {"stall": t - start})
                    cd["stall_dma"] += t - start
                    start = t
        elif special == S_BARRIER:
            cd["barriers"] += 1
            if m.cluster is not None:
                # Implicit FPU fence: the core arrives only once its FP
                # subsystem has drained.  The cluster driver parks this
                # core until every active core has arrived.
                self.barrier_arrival = max(start + 1, self.fp_time)
                self.barrier_wait = True
        elif special == S_RET:
            self.int_time = start + 1
            cd["int_issued"] += 1
            return _HALT_PC                 # halt: beyond any program end
        # S_JUMP: control transfer handled below.

        for r in writes:
            ready[r] = wb
        if op.is_store:
            addr = (iregs[op.mem_base_idx] + op.imm) & _MASK32
            self._mem_commit(addr, 4, start + lat)

        self.int_time = start + 1
        cd["int_issued"] += 1
        trace = self._trace
        if trace is not None:
            trace.append(TraceEvent("int", start, op.mnemonic, pc))
        obs = self._obs
        if obs is not None:
            obs.emit(self._obs_scope, "int", op.mnemonic, start, 1,
                     "issue", {"pc": pc})
        counter = op.counter
        if counter is not None:
            cd[counter] += 1

        if op.is_branch:
            if taken:
                penalty = self._branch_penalty
                self.int_time += penalty
                cd["stall_branch"] += penalty
                target = op.target
                if target is not None and target <= pc:
                    self.l0.backward_branch(pc, target)
                return target
            return pc + 1
        if special == S_JUMP:
            if op.jump_direct:
                penalty = self._branch_penalty
                self.int_time += penalty
                cd["stall_branch"] += penalty
                target = op.target
                if target is not None and target <= pc:
                    self.l0.backward_branch(pc, target)
                return target
            raise SimulationError(
                f"computed jumps are not supported: "
                f"{op.instr.render()!r}"
            )
        return pc + 1

    # ------------------------------------------------------------------
    # FP subsystem
    # ------------------------------------------------------------------
    def _step_fp(self, op, pc: int) -> None:
        """Dispatch one FP instruction through the core, then issue it."""
        cd = self._cd
        # Fetch (L0 loop-buffer check, inlined).
        l0 = self.l0
        if l0.enabled and l0._lo <= pc <= l0._hi:
            l0.hits += 1
            cd["icache_l0_hits"] += 1
        else:
            l0.misses += 1
            cd["icache_l0_misses"] += 1
        disp = self.int_time

        # Dispatch-queue backpressure: a slot frees the cycle after the
        # FPSS issues the oldest queued instruction.
        queue = self.fpss_queue
        while queue and queue[0] < disp:
            queue.popleft()
        if len(queue) >= self._queue_depth:
            free_at = queue.popleft() + 1
            if free_at > disp:
                cd["stall_queue_full"] += free_at - disp
                disp = free_at

        # Integer operands (addresses, conversion sources) are read at
        # dispatch time on the core.
        reads = op.int_read_idx
        if reads:
            base = disp
            ready = self.int_ready
            for r in reads:
                t = ready[r]
                if t > disp:
                    disp = t
            if disp > base:
                cd["stall_raw_int"] += disp - base

        self.int_time = disp + 1
        cd["fp_dispatched"] += 1
        trace = self._trace
        if trace is not None:
            trace.append(TraceEvent("int", disp, op.mnemonic, pc))
        obs = self._obs
        if obs is not None:
            obs.emit(self._obs_scope, "int", op.mnemonic, disp, 1,
                     "dispatch", {"pc": pc})

        queue.append(self._fpss_issue(op, disp + 1))

    def _fpss_issue(self, op, earliest: int,
                    sequencer: bool = False) -> int:
        """Issue *op* on the FPSS timeline and execute it.

        Shared between queue dispatch (first FREP iteration, plain FP
        instructions) and sequencer replay (*earliest* = 0).
        Returns the issue cycle.
        """
        cd = self._cd
        m = self.m
        fregs = self._fregs
        tcdm = self._tcdm
        start = self.fp_time
        if earliest > start:
            start = earliest

        # Gather source operand values; SSR-bound registers pop streams.
        values: list = []
        append = values.append
        ssr_on = m.ssr_enabled
        n_ssrs = self._n_ssrs
        fp_ready = self.fp_ready
        for is_fp, idx in op.gather:
            if is_fp:
                ssr = None
                if ssr_on and idx < n_ssrs:
                    candidate = self._ssrs[idx]
                    if candidate.armed and not candidate.is_write:
                        ssr = candidate
                if ssr is not None:
                    addr = ssr.peek_address(self._read_index)
                    avail = (ssr.arm_time + self._ssr_fill_latency
                             + ssr.seq)
                    produced = self._mem_time(addr, 8)
                    if produced:
                        t = produced + self._lat_fp_load
                        if t > avail:
                            avail = t
                    if avail > start:
                        cd["fp_stall_ssr"] += avail - start
                        start = avail
                    if tcdm is not None:
                        grant = tcdm.access(self._core_id, addr, 8,
                                            start)
                        if grant > start:
                            cd["fp_stall_tcdm"] += grant - start
                            start = grant
                    append(self._mem.read_f64(addr))
                    ssr.advance()
                    ssr.last_pop_time = start
                    cd["ssr_reads"] += 1
                    if ssr.indirect:
                        cd["ssr_index_fetches"] += 1
                else:
                    t = fp_ready[idx]
                    if t > start:
                        cd["fp_stall_raw"] += t - start
                        start = t
                    append(fregs[idx])
            else:
                append(self._iregs[idx])

        lat = self._lat[op.index]
        fp_op = op.fp_op

        if fp_op == F_COMPUTE:
            result = op.compute(*values)
            dest = op.dest_idx
            ssr = self._ssrs[dest] \
                if (ssr_on and dest < n_ssrs) else None
            if ssr is not None and ssr.armed and ssr.is_write:
                addr = ssr.peek_address(self._read_index)
                if tcdm is not None:
                    grant = tcdm.access(self._core_id, addr, 8, start)
                    if grant > start:
                        cd["fp_stall_tcdm"] += grant - start
                        start = grant
                self._mem.write_f64(addr, result)
                ssr.advance()
                ssr.last_pop_time = start
                cd["ssr_writes"] += 1
                self._mem_commit(addr, 8, start + lat)
            else:
                busy = self.fp_wb_busy
                wb = start + lat
                if self._fp_wb_ports == 1:
                    while wb in busy:
                        wb += 1
                busy.add(wb)
                if len(busy) > _WB_TRIM_THRESHOLD:
                    self._trim_wb(busy)
                issue = wb - lat
                if issue > start:
                    cd["fp_stall_wb_port"] += issue - start
                    start = issue
                fregs[dest] = result
                fp_ready[dest] = wb
        elif fp_op == F_LOAD:
            addr = (self._iregs[op.mem_base_idx] + op.imm) & _MASK32
            t = self._mem_time(addr, 8)
            if t > start:
                start = t
            if tcdm is not None:
                grant = tcdm.access(self._core_id, addr, op.width,
                                    start)
                if grant > start:
                    cd["fp_stall_tcdm"] += grant - start
                    start = grant
            busy = self.fp_wb_busy
            wb = start + lat
            if self._fp_wb_ports == 1:
                while wb in busy:
                    wb += 1
            busy.add(wb)
            if len(busy) > _WB_TRIM_THRESHOLD:
                self._trim_wb(busy)
            issue = wb - lat
            if issue > start:
                cd["fp_stall_wb_port"] += issue - start
                start = issue
            dest = op.dest_idx
            if op.width == 8:
                fregs[dest] = self._mem.read_f64(addr)
            else:
                fregs[dest] = self._mem.read_f32(addr)
            fp_ready[dest] = wb
        elif fp_op == F_STORE:
            addr = (self._iregs[op.mem_base_idx] + op.imm) & _MASK32
            value = values[0]
            width = op.width
            if tcdm is not None:
                grant = tcdm.access(self._core_id, addr, width, start)
                if grant > start:
                    cd["fp_stall_tcdm"] += grant - start
                    start = grant
            if width == 8:
                self._mem.write_f64(addr, value)
            else:
                self._mem.write_f32(addr, value)
            self._mem_commit(addr, width, start + lat)
        elif fp_op == F_TO_INT:
            result = op.compute(*values)
            dest = op.dest_idx
            if dest:
                self._iregs[dest] = result & _MASK32
            self.int_ready[dest] = (
                start + lat + self._fp_response_latency
            )
        else:                                   # F_BAD
            raise SimulationError(op.error)

        self.fp_time = start + 1
        cd["fp_issued"] += 1
        trace = self._trace
        if trace is not None:
            trace.append(TraceEvent("fp", start, op.mnemonic,
                                    None if sequencer else -1,
                                    sequencer))
        obs = self._obs
        if obs is not None:
            obs.emit(self._obs_scope, "fp", op.mnemonic, start, 1,
                     "issue", {"seq": True} if sequencer else None)
        counter = op.counter
        if counter is not None:
            cd[counter] += 1
        return start

    # ------------------------------------------------------------------
    # FREP
    # ------------------------------------------------------------------
    def _exec_frep(self, op, pc: int) -> int:
        """Execute an ``frep.o rs1, n`` pseudo-dual-issue loop.

        The body (next *n* instructions) is dispatched once by the
        integer core and captured by the sequencer; iterations 1..rs1
        are issued by the sequencer on the FP timeline only.
        """
        cd = self._cd
        n = op.frep_n
        if n <= 0:
            raise SimulationError("frep body must have ≥ 1 instruction")
        if n > self.cfg.frep_buffer_size:
            raise SimulationError(
                f"frep body of {n} instructions exceeds the "
                f"{self.cfg.frep_buffer_size}-entry sequencer buffer"
            )
        if op.frep_error is not None:
            raise SimulationError(op.frep_error)
        body = op.frep_body

        # The frep instruction itself occupies one integer issue slot.
        self._fetch(pc)
        start = self.int_time
        rs1 = op.aux0
        t = self.int_ready[rs1]
        if t > start:
            cd["stall_raw_int"] += t - start
            start = t
        reps = self._iregs[rs1] + 1
        self.int_time = start + 1
        cd["int_issued"] += 1
        cd["csr_ops"] += 1

        # Iteration 0: dispatched by the core through the queue.
        for bop in body:
            self._step_fp(bop, bop.index)
        # Iterations 1..reps-1: sequencer-issued, FP timeline only.
        fpss_issue = self._fpss_issue
        for _ in range(reps - 1):
            for bop in body:
                fpss_issue(bop, 0, True)
                cd["sequencer_issued"] += 1
        return pc + 1 + n
