"""L0 instruction loop-buffer model.

Snitch's frontend has a tiny L0 instruction cache that captures short
loops; when a loop body fits, subsequent iterations fetch from the L0
buffer at negligible energy.  Bodies larger than the buffer thrash it,
paying an L1 instruction fetch per instruction every iteration.

The paper's §III-B power discussion hinges on this: the *baseline*
``log``/``exp`` loop bodies exceed 64 instructions and thrash, while the
COPIFT integer loops fit, which is why COPIFT *reduces* I-fetch power on
those kernels.

The model tracks the most recent captured loop: a taken backward branch
whose span fits in the buffer captures ``[target, branch]``; fetches
inside the captured range hit.  This is deliberately simple — it matches
the fully-associative-loop-buffer behaviour for the single-loop-at-a-time
kernels evaluated here.
"""

from __future__ import annotations


class L0Cache:
    """Loop-buffer hit/miss tracker.

    Args:
        entries: Buffer capacity in instructions.
        enabled: When False every fetch misses (ablation mode).
    """

    def __init__(self, entries: int = 64, enabled: bool = True) -> None:
        self.entries = entries
        self.enabled = enabled
        self._lo = -1
        self._hi = -1
        self.hits = 0
        self.misses = 0

    def fetch(self, pc: int) -> bool:
        """Record a fetch of the instruction at index *pc*; True on hit."""
        if self.enabled and self._lo <= pc <= self._hi:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def backward_branch(self, branch_pc: int, target_pc: int) -> None:
        """Note a taken backward branch; capture the loop if it fits."""
        if not self.enabled:
            return
        span = branch_pc - target_pc + 1
        if 0 < span <= self.entries:
            self._lo = target_pc
            self._hi = branch_pc
        else:
            # A too-large loop continuously evicts the buffer.
            self._lo = -1
            self._hi = -1

    def invalidate(self) -> None:
        self._lo = -1
        self._hi = -1
