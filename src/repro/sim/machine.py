"""Cycle-level model of a Snitch-like core with FREP and SSRs.

The simulator executes programs functionally in program order while
tracking *two issue timelines* — the integer core's and the FP
subsystem's (FPSS).  Every dynamic instruction is assigned an issue cycle
from the resource and dependency constraints that bind it:

* program-order issue on its engine (``int_time`` / ``fp_time``),
* register operand readiness (scoreboards per register file),
* the core→FPSS dispatch-queue occupancy (bounds integer/FP thread skew),
* SSR stream data availability (prefetch pipeline + producer stores),
* RAW through memory (stores publish, loads wait),
* register-file writeback-port conflicts between unequal-latency ops,
* taken-branch bubbles.

Pseudo dual-issue arises naturally: the first iteration of an ``frep``
loop is dispatched by the integer core, the remaining iterations are
issued by the FPSS sequencer on the FP timeline while the integer
timeline advances through subsequent instructions.  Elapsed cycles are
``max`` over both timelines, so overlap is measured, not assumed.

This is the substitution for the paper's RTL/QuestaSim setup (see
DESIGN.md §2): every effect the evaluation discusses is modelled as a
first-class mechanism rather than calibrated afterwards.

Execution is split in three layers (one file each):

* :class:`~repro.sim.decode.DecodedProgram` — per-*static*-instruction
  resolution into flat micro-op records (bound handlers, operand
  indices, branch targets, FREP bodies), cached on the Program object
  so cluster cores and sweep reruns decode once;
* :class:`~repro.sim.scheduler.Scheduler` — the two issue timelines,
  scoreboards, writeback ports, dispatch queue, memory-RAW times,
  regions and counters: all *timing* state and the hot step loop;
* :class:`Machine` (this module) — architectural state (register files,
  memory, SSR movers) and the stable ``bind``/``step``/``result``/
  ``run`` API the cluster driver and all tooling program against.
"""

from __future__ import annotations

from .config import CoreConfig
from .counters import RunResult
from .errors import SimulationError
from .memory import Memory
from .scheduler import Scheduler
from .ssr import SSR
from ..obs.timeline import TraceEvent

__all__ = ["Machine", "SimulationError"]


class Machine:
    """Architectural state plus the two-timeline timing model."""

    def __init__(self, config: CoreConfig | None = None,
                 memory: Memory | None = None) -> None:
        self.config = config or CoreConfig()
        self.memory = memory or Memory()
        self.iregs: list[int] = [0] * 32
        self.fregs: list[float] = [0.0] * 32
        self.ssrs = [SSR(i) for i in range(self.config.ssr_count)]
        self.ssr_enabled = False
        #: Issue-event log; None (disabled) unless enable_trace() ran.
        self.trace: list[TraceEvent] | None = None
        #: Structured-event sink (repro.obs.ObsSink); None when off.
        self.obs = None
        #: Hierarchical scope this core emits under, e.g.
        #: ``soc/cluster0/core2`` (set by attach_obs).
        self.obs_scope = "core"
        # -- cluster hooks (all None/0 for a standalone core) -----------
        #: Core index within a cluster (bank-stagger offset, DMA owner).
        self.core_id = 0
        #: Banked-TCDM arbiter shared by the cluster, or None.
        self.tcdm = None
        #: Cluster DMA engine (bandwidth/latency model), or None.
        self.dma = None
        #: Owning ClusterMachine (barrier coordination), or None.
        self.cluster = None
        self.reset_timing()

    def enable_trace(self) -> list[TraceEvent]:
        """Record every issue event; returns the (live) event list."""
        self.trace = []
        self.sched._trace = self.trace
        return self.trace

    def attach_obs(self, sink, scope: str = "core") -> None:
        """Emit structured events into *sink* under *scope*.

        Pass ``None`` to detach.  Cluster/SoC machines call this on
        every core with the proper hierarchical scope; a standalone
        core defaults to plain ``core``.
        """
        self.obs = sink
        self.obs_scope = scope
        self.sched._obs = sink
        self.sched._obs_scope = scope

    # ------------------------------------------------------------------
    # architectural helpers
    # ------------------------------------------------------------------
    def write_ireg(self, reg, value: int) -> None:
        """Write an integer register, honouring the hardwired x0."""
        if reg.index != 0:
            self.iregs[reg.index] = value & 0xFFFFFFFF

    def _read_index(self, addr: int, size: int) -> int:
        if size == 2:
            return self.memory.read_u16(addr)
        if size == 4:
            return self.memory.read_u32(addr)
        raise SimulationError(f"unsupported ISSR index size {size}")

    # ------------------------------------------------------------------
    # timing state (owned by the Scheduler; delegated for compatibility)
    # ------------------------------------------------------------------
    def reset_timing(self) -> None:
        """Discard all timing state (register/memory values persist)."""
        self.sched = Scheduler(self)

    @property
    def int_time(self) -> int:
        return self.sched.int_time

    @int_time.setter
    def int_time(self, value: int) -> None:
        self.sched.int_time = value

    @property
    def fp_time(self) -> int:
        return self.sched.fp_time

    @fp_time.setter
    def fp_time(self, value: int) -> None:
        self.sched.fp_time = value

    @property
    def counters(self):
        return self.sched.counters

    @property
    def l0(self):
        return self.sched.l0

    @property
    def barrier_wait(self) -> bool:
        """True while parked at a cluster barrier (cluster sims only)."""
        return self.sched.barrier_wait

    @barrier_wait.setter
    def barrier_wait(self, value: bool) -> None:
        self.sched.barrier_wait = value

    @property
    def barrier_arrival(self) -> int:
        """Time this core arrived at the barrier it is parked at."""
        return self.sched.barrier_arrival

    @barrier_arrival.setter
    def barrier_arrival(self, value: int) -> None:
        self.sched.barrier_arrival = value

    @property
    def now(self) -> int:
        """Current elapsed time over both issue timelines."""
        return self.sched.now

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def bind(self, program, max_steps: int = 200_000_000) -> None:
        """Prepare *program* for stepwise execution (see :meth:`step`)."""
        self.sched.bind(program, max_steps)

    @property
    def finished(self) -> bool:
        return self.sched.finished

    def step(self) -> bool:
        """Execute one dynamic instruction of the bound program.

        Returns False once the program has finished.  An ``frep`` loop
        (all its sequenced iterations) counts as one step.  The cluster
        driver interleaves ``step()`` calls across cores; a standalone
        :meth:`run` just exhausts them.
        """
        return self.sched.step()

    def result(self) -> RunResult:
        """Measurements of everything executed since the last reset."""
        return self.sched.result()

    def run(self, program, max_steps: int = 200_000_000) -> RunResult:
        """Execute *program* to completion and return measurements."""
        sched = self.sched
        sched.bind(program, max_steps)
        sched.drain()
        return sched.result()
