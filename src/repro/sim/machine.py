"""Cycle-level model of a Snitch-like core with FREP and SSRs.

The simulator executes programs functionally in program order while
tracking *two issue timelines* — the integer core's and the FP
subsystem's (FPSS).  Every dynamic instruction is assigned an issue cycle
from the resource and dependency constraints that bind it:

* program-order issue on its engine (``int_time`` / ``fp_time``),
* register operand readiness (scoreboards per register file),
* the core→FPSS dispatch-queue occupancy (bounds integer/FP thread skew),
* SSR stream data availability (prefetch pipeline + producer stores),
* RAW through memory (stores publish, loads wait),
* register-file writeback-port conflicts between unequal-latency ops,
* taken-branch bubbles.

Pseudo dual-issue arises naturally: the first iteration of an ``frep``
loop is dispatched by the integer core, the remaining iterations are
issued by the FPSS sequencer on the FP timeline while the integer
timeline advances through subsequent instructions.  Elapsed cycles are
``max`` over both timelines, so overlap is measured, not assumed.

This is the substitution for the paper's RTL/QuestaSim setup (see
DESIGN.md §2): every effect the evaluation discusses is modelled as a
first-class mechanism rather than calibrated afterwards.
"""

from __future__ import annotations

from collections import deque

from ..isa.instructions import OpClass, Thread
from ..isa.program import Instruction, Program
from .config import CoreConfig
from .counters import Counters, RegionMeasurement, RunResult
from .exec_ops import FP_COMPUTE, FP_TO_INT, INT_HANDLERS
from .icache import L0Cache
from .memory import Memory
from .ssr import F_RPTR, F_WPTR, SSR, decode_cfg_imm
from .trace import TraceEvent


class SimulationError(Exception):
    """Illegal program behaviour detected by the machine model."""


_ACTIVITY_COUNTER = {
    OpClass.ALU: "int_alu_ops",
    OpClass.MUL: "int_mul_ops",
    OpClass.LOAD: "int_loads",
    OpClass.STORE: "int_stores",
    OpClass.BRANCH: "branches",
    OpClass.JUMP: "branches",
    OpClass.CSR: "csr_ops",
    OpClass.FREP: "csr_ops",
    OpClass.FP_ADD: "fp_adds",
    OpClass.FP_MUL: "fp_muls",
    OpClass.FP_FMA: "fp_fmas",
    OpClass.FP_DIV: "fp_divs",
    OpClass.FP_CMP: "fp_cmps",
    OpClass.FP_CVT: "fp_cvts",
    OpClass.FP_MV: "fp_mvs",
    OpClass.FP_LOAD: "fp_loads",
    OpClass.FP_STORE: "fp_stores",
}


class Machine:
    """Architectural state plus the two-timeline timing model."""

    def __init__(self, config: CoreConfig | None = None,
                 memory: Memory | None = None) -> None:
        self.config = config or CoreConfig()
        self.memory = memory or Memory()
        self.iregs: list[int] = [0] * 32
        self.fregs: list[float] = [0.0] * 32
        self.ssrs = [SSR(i) for i in range(self.config.ssr_count)]
        self.ssr_enabled = False
        #: Issue-event log; None (disabled) unless enable_trace() ran.
        self.trace: list[TraceEvent] | None = None
        # -- cluster hooks (all None/0 for a standalone core) -----------
        #: Core index within a cluster (bank-stagger offset, DMA owner).
        self.core_id = 0
        #: Banked-TCDM arbiter shared by the cluster, or None.
        self.tcdm = None
        #: Cluster DMA engine (bandwidth/latency model), or None.
        self.dma = None
        #: Owning ClusterMachine (barrier coordination), or None.
        self.cluster = None
        self.reset_timing()

    def enable_trace(self) -> list[TraceEvent]:
        """Record every issue event; returns the (live) event list."""
        self.trace = []
        return self.trace

    # ------------------------------------------------------------------
    # architectural helpers
    # ------------------------------------------------------------------
    def write_ireg(self, reg, value: int) -> None:
        """Write an integer register, honouring the hardwired x0."""
        if reg.index != 0:
            self.iregs[reg.index] = value & 0xFFFFFFFF

    def _read_index(self, addr: int, size: int) -> int:
        if size == 2:
            return self.memory.read_u16(addr)
        if size == 4:
            return self.memory.read_u32(addr)
        raise SimulationError(f"unsupported ISSR index size {size}")

    # ------------------------------------------------------------------
    # timing state
    # ------------------------------------------------------------------
    def reset_timing(self) -> None:
        self.int_time = 0
        self.fp_time = 0
        self.int_ready = [0] * 32
        self.fp_ready = [0] * 32
        self.mem_ready: dict[int, int] = {}
        self.int_wb_busy: set[int] = set()
        self.fp_wb_busy: set[int] = set()
        self.fpss_queue: deque[int] = deque()
        self.counters = Counters()
        self.l0 = L0Cache(self.config.l0_icache_entries,
                          enabled=self.config.model_l0_icache)
        self._region_open: dict[str, tuple[int, Counters]] = {}
        self._regions: dict[str, RegionMeasurement] = {}
        #: True while parked at a cluster barrier (cluster sims only).
        self.barrier_wait = False
        #: Time this core arrived at the barrier it is parked at.
        self.barrier_arrival = 0
        self._decoded: list[tuple[Instruction, int | None]] = []
        self._pc = 0
        self._steps = 0
        self._max_steps = 0

    @property
    def now(self) -> int:
        """Current elapsed time over both issue timelines."""
        return max(self.int_time, self.fp_time)

    # -- memory RAW tracking (word-granule publication times) -----------
    def _mem_commit(self, addr: int, size: int, time: int) -> None:
        ready = self.mem_ready
        for key in range(addr >> 2, (addr + size + 3) >> 2):
            ready[key] = time

    def _mem_time(self, addr: int, size: int) -> int:
        ready = self.mem_ready
        t = 0
        for key in range(addr >> 2, (addr + size + 3) >> 2):
            v = ready.get(key, 0)
            if v > t:
                t = v
        return t

    def _reserve_wb(self, busy: set[int], start: int, lat: int,
                    ports: int) -> tuple[int, int]:
        """Find the earliest issue ≥ *start* with a free writeback slot.

        Returns (issue, writeback) times; reserves the writeback cycle.
        With multiple ports the conflict set is per-cycle occupancy —
        modelled only for the single-port default, which is what the
        paper's core has.
        """
        wb = start + lat
        if ports == 1:
            while wb in busy:
                wb += 1
        busy.add(wb)
        if len(busy) > 8192:
            floor = min(self.int_time, self.fp_time)
            busy.intersection_update(
                {t for t in busy if t >= floor}
            )
        return wb - lat, wb

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def bind(self, program: Program,
             max_steps: int = 200_000_000) -> None:
        """Prepare *program* for stepwise execution (see :meth:`step`)."""
        decoded: list[tuple[Instruction, int | None]] = []
        for instr in program.instructions:
            target = None
            if instr.label is not None and instr.spec.opclass in (
                    OpClass.BRANCH, OpClass.JUMP):
                target = program.target(instr.label)
            decoded.append((instr, target))
        self._decoded = decoded
        self._pc = 0
        self._steps = 0
        self._max_steps = max_steps
        self.barrier_wait = False

    @property
    def finished(self) -> bool:
        return self._pc >= len(self._decoded)

    def step(self) -> bool:
        """Execute one dynamic instruction of the bound program.

        Returns False once the program has finished.  An ``frep`` loop
        (all its sequenced iterations) counts as one step.  The cluster
        driver interleaves ``step()`` calls across cores; a standalone
        :meth:`run` just exhausts them.
        """
        pc = self._pc
        decoded = self._decoded
        if pc >= len(decoded):
            return False
        instr, target = decoded[pc]
        opclass = instr.spec.opclass
        self._steps += 1
        if self._steps > self._max_steps:
            raise SimulationError(
                f"exceeded max_steps={self._max_steps} at pc={pc} "
                f"({instr.render()})"
            )
        if opclass is OpClass.META:
            self._exec_mark(instr)
            pc += 1
        elif opclass is OpClass.FREP:
            pc = self._exec_frep(instr, pc, decoded)
        elif instr.spec.thread is Thread.INT:
            pc = self._step_int(instr, target, pc)
        else:
            self._step_fp(instr, pc)
            pc += 1
        self._pc = pc
        return True

    def result(self) -> RunResult:
        """Measurements of everything executed since the last reset."""
        return RunResult(cycles=self.now, counters=self.counters.copy(),
                         regions=dict(self._regions))

    def run(self, program: Program,
            max_steps: int = 200_000_000) -> RunResult:
        """Execute *program* to completion and return measurements."""
        self.bind(program, max_steps)
        while self.step():
            pass
        return self.result()

    # -- TCDM bank arbitration (cluster timing hook) --------------------
    def _tcdm_access(self, addr: int, nbytes: int, start: int) -> int:
        """Earliest cycle ≥ *start* the banked TCDM grants this access."""
        return self.tcdm.access(self.core_id, addr, nbytes, start)

    # -- asynchronous DMA (cluster bandwidth/latency model) -------------
    def _exec_dma_start(self, dst: int, src: int, length: int,
                        start: int) -> None:
        """Queue a tile transfer; publish the data at its completion.

        The copy is applied immediately (program order) so functional
        state never depends on transfer timing; consumers observe the
        modelled completion through the memory-RAW publication times,
        which is what makes double-buffered pipelines overlap compute
        with transfers.
        """
        if self.dma is not None:
            done = self.dma.start(self.core_id, dst, src, length,
                                  now=start + 1)
        else:
            done = start + 1
        self.memory.copy_within(dst, src, length)
        self._mem_commit(dst, length, done)
        self.counters.dma_bytes_moved += length
        self.counters.dma_transfers += 1

    # ------------------------------------------------------------------
    # markers
    # ------------------------------------------------------------------
    def _exec_mark(self, instr: Instruction) -> None:
        label = instr.label or ""
        if label.endswith("_start"):
            name = label[:-len("_start")]
            self._region_open[name] = (self.now, self.counters.copy())
        elif label.endswith("_end"):
            name = label[:-len("_end")]
            if name not in self._region_open:
                raise SimulationError(f"mark {label}: region never opened")
            start_time, start_counters = self._region_open.pop(name)
            cycles = self.now - start_time
            delta = self.counters.delta(start_counters)
            if name in self._regions:
                prev = self._regions[name]
                merged = Counters(**{
                    k: getattr(prev.counters, k) + getattr(delta, k)
                    for k in vars(delta)
                })
                self._regions[name] = RegionMeasurement(
                    name, prev.cycles + cycles, merged
                )
            else:
                self._regions[name] = RegionMeasurement(name, cycles, delta)
        else:
            raise SimulationError(
                f"mark label must end in _start/_end: {label!r}"
            )

    # ------------------------------------------------------------------
    # integer core
    # ------------------------------------------------------------------
    def _fetch(self, pc: int) -> None:
        if self.l0.fetch(pc):
            self.counters.icache_l0_hits += 1
        else:
            self.counters.icache_l0_misses += 1

    def _step_int(self, instr: Instruction, target: int | None,
                  pc: int) -> int:
        cfg = self.config
        c = self.counters
        self._fetch(pc)
        opclass = instr.spec.opclass
        base = self.int_time
        start = base

        # Integer operand readiness.
        ready = self.int_ready
        for r in instr.int_reads:
            t = ready[r.index]
            if t > start:
                start = t
        if start > base:
            c.stall_raw_int += start - base

        # Loads wait for in-flight stores to the same words.
        if instr.spec.is_load:
            addr = (self.iregs[instr.mem_base.index] + instr.imm) \
                & 0xFFFFFFFF
            t = self._mem_time(addr, 4)
            if t > start:
                c.stall_mem_raw += t - start
                start = t

        # Banked-TCDM bank arbitration (cluster simulations only).
        if self.tcdm is not None and (instr.spec.is_load
                                      or instr.spec.is_store):
            addr = (self.iregs[instr.mem_base.index] + instr.imm) \
                & 0xFFFFFFFF
            grant = self._tcdm_access(addr, 4, start)
            if grant > start:
                c.stall_tcdm += grant - start
                start = grant

        lat = cfg.latencies[opclass]

        # Writeback-port structural hazard (single int-RF write port).
        if instr.int_writes and cfg.model_int_wb_hazard:
            issue, wb = self._reserve_wb(self.int_wb_busy, start, lat,
                                         cfg.int_wb_ports)
            if issue > start:
                c.stall_wb_port += issue - start
                start = issue
        else:
            wb = start + lat

        # SSR control instructions are handled here; everything else has
        # a functional handler.
        mnemonic = instr.mnemonic
        taken = None
        if mnemonic == "scfgwi":
            field_code, ssr_index = decode_cfg_imm(instr.imm)
            if ssr_index >= len(self.ssrs):
                raise SimulationError(f"no such SSR: {ssr_index}")
            ssr = self.ssrs[ssr_index]
            if field_code in (F_RPTR, F_WPTR):
                # Re-arming a data mover requires the previous stream
                # to have drained; software guards the reconfiguration
                # with an FPU fence, so the write blocks until the FPSS
                # pipeline is idle.  This is the per-block SSR
                # programming / buffer-switching overhead behind
                # Fig. 3's block-size trade-off (and the exp kernel's
                # deviation in Fig. 2a).
                drain = max(ssr.last_pop_time + 1, self.fp_time)
                if drain > start:
                    c.stall_ssr_sync += drain - start
                    start = drain
            value = self.iregs[instr.operands[0].index]
            ssr.write_config(field_code, value, now=start + 1)
        elif mnemonic == "ssr.enable":
            self.ssr_enabled = True
        elif mnemonic == "ssr.disable":
            self.ssr_enabled = False
        elif mnemonic == "dma.start":
            self._exec_dma_start(
                self.iregs[instr.operands[0].index],
                self.iregs[instr.operands[1].index],
                self.iregs[instr.operands[2].index],
                start,
            )
        elif mnemonic == "dma.wait":
            if self.dma is not None:
                t = self.dma.core_drain_time(self.core_id)
                if t > start:
                    c.stall_dma += t - start
                    start = t
        elif mnemonic == "cluster.barrier":
            c.barriers += 1
            if self.cluster is not None:
                # Implicit FPU fence: the core arrives only once its FP
                # subsystem has drained.  The cluster driver parks this
                # core until every active core has arrived.
                self.barrier_arrival = max(start + 1, self.fp_time)
                self.barrier_wait = True
        elif mnemonic == "ret":
            self.int_time = start + 1
            c.int_issued += 1
            return 1 << 60  # halt: beyond any program end
        elif opclass is OpClass.JUMP:
            pass  # control transfer handled below
        else:
            handler = INT_HANDLERS.get(mnemonic)
            if handler is None:
                raise SimulationError(
                    f"unsupported instruction {instr.render()!r}"
                )
            taken = handler(self, instr)

        for r in instr.int_writes:
            ready[r.index] = wb
        if instr.spec.is_store:
            addr = (self.iregs[instr.mem_base.index] + instr.imm) \
                & 0xFFFFFFFF
            self._mem_commit(addr, 4, start + lat)

        self.int_time = start + 1
        c.int_issued += 1
        if self.trace is not None:
            self.trace.append(TraceEvent("int", start, mnemonic, pc))
        counter = _ACTIVITY_COUNTER.get(opclass)
        if counter is not None:
            setattr(c, counter, getattr(c, counter) + 1)

        if opclass is OpClass.BRANCH:
            if taken:
                self.int_time += cfg.taken_branch_penalty
                c.stall_branch += cfg.taken_branch_penalty
                if target is not None and target <= pc:
                    self.l0.backward_branch(pc, target)
                return target
            return pc + 1
        if opclass is OpClass.JUMP:
            if mnemonic in ("j", "jal"):
                self.int_time += cfg.taken_branch_penalty
                c.stall_branch += cfg.taken_branch_penalty
                if target is not None and target <= pc:
                    self.l0.backward_branch(pc, target)
                return target
            raise SimulationError(
                f"computed jumps are not supported: {instr.render()!r}"
            )
        return pc + 1

    # ------------------------------------------------------------------
    # FP subsystem
    # ------------------------------------------------------------------
    def _step_fp(self, instr: Instruction, pc: int) -> None:
        """Dispatch one FP instruction through the core, then issue it."""
        cfg = self.config
        c = self.counters
        self._fetch(pc)
        disp = self.int_time

        # Dispatch-queue backpressure: a slot frees the cycle after the
        # FPSS issues the oldest queued instruction.
        queue = self.fpss_queue
        while queue and queue[0] < disp:
            queue.popleft()
        if len(queue) >= cfg.fpss_queue_depth:
            free_at = queue.popleft() + 1
            if free_at > disp:
                c.stall_queue_full += free_at - disp
                disp = free_at

        # Integer operands (addresses, conversion sources) are read at
        # dispatch time on the core.
        base = disp
        for r in instr.int_reads:
            t = self.int_ready[r.index]
            if t > disp:
                disp = t
        if disp > base:
            c.stall_raw_int += disp - base

        self.int_time = disp + 1
        c.fp_dispatched += 1
        if self.trace is not None:
            self.trace.append(TraceEvent("int", disp, instr.mnemonic,
                                         pc))

        issue = self._fpss_issue(instr, disp + 1)
        queue.append(issue)

    def _fpss_issue(self, instr: Instruction, earliest: int,
                    sequencer: bool = False) -> int:
        """Issue *instr* on the FPSS timeline and execute it.

        Shared between queue dispatch (first FREP iteration, plain FP
        instructions) and sequencer replay (*earliest* = 0).
        Returns the issue cycle.
        """
        cfg = self.config
        c = self.counters
        mem = self.memory
        start = self.fp_time
        if earliest > start:
            start = earliest

        # Gather source operand values; SSR-bound registers pop streams.
        values: list = []
        spec = instr.spec
        ssr_on = self.ssr_enabled
        for role, operand in zip(spec.roles, instr.operands):
            if role.startswith("frs"):
                idx = operand.index
                ssr = self.ssrs[idx] if (ssr_on and idx < len(self.ssrs)) \
                    else None
                if ssr is not None and ssr.armed and not ssr.is_write:
                    addr = ssr.peek_address(self._read_index)
                    avail = ssr.arm_time + cfg.ssr_fill_latency + ssr.seq
                    produced = self._mem_time(addr, 8)
                    if produced:
                        t = produced + cfg.latencies[OpClass.FP_LOAD]
                        if t > avail:
                            avail = t
                    if avail > start:
                        c.fp_stall_ssr += avail - start
                        start = avail
                    if self.tcdm is not None:
                        grant = self._tcdm_access(addr, 8, start)
                        if grant > start:
                            c.fp_stall_tcdm += grant - start
                            start = grant
                    values.append(mem.read_f64(addr))
                    ssr.advance()
                    ssr.last_pop_time = start
                    c.ssr_reads += 1
                    if ssr.indirect:
                        c.ssr_index_fetches += 1
                else:
                    t = self.fp_ready[idx]
                    if t > start:
                        c.fp_stall_raw += t - start
                        start = t
                    values.append(self.fregs[idx])
            elif role.startswith("rs") and role != spec.mem_base_role:
                values.append(self.iregs[operand.index])

        opclass = spec.opclass
        lat = cfg.latencies[opclass]
        mnemonic = instr.mnemonic

        if opclass is OpClass.FP_LOAD:
            addr = (self.iregs[instr.mem_base.index] + instr.imm) \
                & 0xFFFFFFFF
            t = self._mem_time(addr, 8)
            if t > start:
                start = t
            if self.tcdm is not None:
                width = 8 if mnemonic == "fld" else 4
                grant = self._tcdm_access(addr, width, start)
                if grant > start:
                    c.fp_stall_tcdm += grant - start
                    start = grant
            issue, wb = self._reserve_wb(self.fp_wb_busy, start, lat,
                                         cfg.fp_wb_ports)
            if issue > start:
                c.fp_stall_wb_port += issue - start
                start = issue
            if mnemonic == "fld":
                value = mem.read_f64(addr)
            else:
                value = mem.read_f32(addr)
            dest = instr.operands[0]
            self.fregs[dest.index] = value
            self.fp_ready[dest.index] = wb
        elif opclass is OpClass.FP_STORE:
            addr = (self.iregs[instr.mem_base.index] + instr.imm) \
                & 0xFFFFFFFF
            value = values[0]
            width = 8 if mnemonic == "fsd" else 4
            if self.tcdm is not None:
                grant = self._tcdm_access(addr, width, start)
                if grant > start:
                    c.fp_stall_tcdm += grant - start
                    start = grant
            if mnemonic == "fsd":
                mem.write_f64(addr, value)
            else:
                mem.write_f32(addr, value)
            self._mem_commit(addr, width, start + lat)
        elif instr.fp_writes:
            compute = FP_COMPUTE.get(mnemonic)
            if compute is None:
                raise SimulationError(
                    f"unsupported FP instruction {instr.render()!r}"
                )
            result = compute(*values)
            dest = instr.operands[0]
            idx = dest.index
            ssr = self.ssrs[idx] if (ssr_on and idx < len(self.ssrs)) \
                else None
            if ssr is not None and ssr.armed and ssr.is_write:
                addr = ssr.peek_address(self._read_index)
                if self.tcdm is not None:
                    grant = self._tcdm_access(addr, 8, start)
                    if grant > start:
                        c.fp_stall_tcdm += grant - start
                        start = grant
                mem.write_f64(addr, result)
                ssr.advance()
                ssr.last_pop_time = start
                c.ssr_writes += 1
                self._mem_commit(addr, 8, start + lat)
            else:
                issue, wb = self._reserve_wb(self.fp_wb_busy, start, lat,
                                             cfg.fp_wb_ports)
                if issue > start:
                    c.fp_stall_wb_port += issue - start
                    start = issue
                self.fregs[idx] = result
                self.fp_ready[idx] = wb
        elif instr.int_writes:
            to_int = FP_TO_INT.get(mnemonic)
            if to_int is None:
                raise SimulationError(
                    f"unsupported FP instruction {instr.render()!r}"
                )
            result = to_int(*values)
            dest = instr.operands[0]
            self.write_ireg(dest, result)
            self.int_ready[dest.index] = (
                start + lat + cfg.fp_response_latency
            )
        else:
            raise SimulationError(
                f"FP instruction with no destination: {instr.render()!r}"
            )

        self.fp_time = start + 1
        c.fp_issued += 1
        if self.trace is not None:
            self.trace.append(TraceEvent("fp", start, mnemonic,
                                         None if sequencer else -1,
                                         sequencer))
        counter = _ACTIVITY_COUNTER.get(opclass)
        if counter is not None:
            setattr(c, counter, getattr(c, counter) + 1)
        return start

    # ------------------------------------------------------------------
    # FREP
    # ------------------------------------------------------------------
    def _exec_frep(self, instr: Instruction, pc: int,
                   decoded: list) -> int:
        """Execute an ``frep.o rs1, n`` pseudo-dual-issue loop.

        The body (next *n* instructions) is dispatched once by the
        integer core and captured by the sequencer; iterations 1..rs1
        are issued by the sequencer on the FP timeline only.
        """
        cfg = self.config
        c = self.counters
        n = instr.imm
        if n <= 0:
            raise SimulationError("frep body must have ≥ 1 instruction")
        if n > cfg.frep_buffer_size:
            raise SimulationError(
                f"frep body of {n} instructions exceeds the "
                f"{cfg.frep_buffer_size}-entry sequencer buffer"
            )
        if pc + 1 + n > len(decoded):
            raise SimulationError("frep body runs past the program end")
        body = [decoded[pc + 1 + i][0] for i in range(n)]
        for binstr in body:
            if binstr.spec.thread is not Thread.FP:
                raise SimulationError(
                    f"non-FP instruction in frep body: "
                    f"{binstr.render()!r}"
                )
            if binstr.int_reads or binstr.int_writes:
                raise SimulationError(
                    f"frep body instruction touches the integer RF "
                    f"(use SSRs / the COPIFT custom extension): "
                    f"{binstr.render()!r}"
                )

        # The frep instruction itself occupies one integer issue slot.
        self._fetch(pc)
        start = self.int_time
        rs1 = instr.operands[0]
        t = self.int_ready[rs1.index]
        if t > start:
            c.stall_raw_int += t - start
            start = t
        reps = self.iregs[rs1.index] + 1
        self.int_time = start + 1
        c.int_issued += 1
        c.csr_ops += 1

        # Iteration 0: dispatched by the core through the queue.
        for i, binstr in enumerate(body):
            self._step_fp(binstr, pc + 1 + i)
        # Iterations 1..reps-1: sequencer-issued, FP timeline only.
        for _ in range(reps - 1):
            for binstr in body:
                self._fpss_issue(binstr, 0, sequencer=True)
                c.sequencer_issued += 1
        return pc + 1 + n
