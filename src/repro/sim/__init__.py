"""Simulator: Snitch-like core with FREP sequencer and SSR data movers.

Public surface:

* :class:`Machine` — functional + cycle-level execution of programs.
* :class:`CoreConfig` — microarchitecture parameters (ablation switches).
* :class:`Memory` / :class:`Allocator` — the TCDM scratchpad.
* :class:`RunResult` / :class:`RegionMeasurement` / :class:`Counters` —
  measurements.
* :mod:`repro.sim.ssr` — SSR configuration field codes and
  :func:`encode_cfg_imm` for building ``scfgwi`` immediates.
"""

from .config import CoreConfig, DEFAULT_LATENCIES
from .counters import Counters, RegionMeasurement, RunResult
from .decode import DecodedProgram, MicroOp
from .machine import Machine, SimulationError
from .memory import Allocator, Memory, MemoryError_
from .scheduler import Scheduler
from .ssr import SSR, SSRError, encode_cfg_imm, decode_cfg_imm
from ..obs.timeline import TraceEvent, dual_issue_cycles, \
    lane_utilization, render_timeline

__all__ = [
    "Allocator",
    "CoreConfig",
    "Counters",
    "DEFAULT_LATENCIES",
    "DecodedProgram",
    "Machine",
    "Memory",
    "MemoryError_",
    "MicroOp",
    "RegionMeasurement",
    "RunResult",
    "SSR",
    "SSRError",
    "Scheduler",
    "SimulationError",
    "TraceEvent",
    "decode_cfg_imm",
    "dual_issue_cycles",
    "encode_cfg_imm",
    "lane_utilization",
    "render_timeline",
]
