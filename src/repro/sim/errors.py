"""Simulator exception types (shared by decode, scheduler and machine)."""

from __future__ import annotations


class SimulationError(Exception):
    """Illegal program behaviour detected by the machine model."""
