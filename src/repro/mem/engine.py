"""Unified memory-traffic engine: one transfer model for the hierarchy.

Every DMA-style transfer in the repo — cluster-level input staging,
SoC-level link traffic, output write-back — runs through one
:class:`TransferEngine`: a bandwidth/latency/beat model with program-
order service (single physical engine, one outstanding burst at a time;
queueing a transfer while another is in flight is precisely what
double-buffering exploits).  The cluster's ``ClusterDma`` and the SoC's
``SocDmaChannel`` are thin *configurations* of this engine — they add
defaults and wiring, never timing logic.

The engine is parameterized by three hooks:

* ``arbiter`` — grants the transfer's data beats against a shared
  resource (the SoC interconnect's claim table); ``None`` means the
  uncontended schedule of one beat per cycle after the setup latency.
* ``on_complete`` — observes every queued :class:`Transfer` (the SoC
  channel tallies L2-side endpoints against the shared ``L2Memory``).
* an attached TCDM bank arbiter (:meth:`attach_tcdm`) — in write-back
  simulation mode every beat additionally claims its TCDM bank-cycles,
  so DMA traffic and core accesses contend for the same banks.

Transfers carry a per-stream :class:`Direction`: ``READ`` moves data
from the backing store into the TCDM (input staging), ``WRITE`` drains
TCDM data out (output write-back).  The direction is classified by the
transfer's endpoints against ``window_base`` — the start of the
simulated L2 window inside each core's flat memory image.

Completion times feed the cores' memory-RAW publication machinery, so
compute naturally overlaps in-flight transfers and stalls only when it
outruns them.  The engine also enforces the architectural TCDM
capacity: a transfer whose scratchpad-side footprint crosses
``tcdm_size`` raises :class:`~repro.sim.memory.MemoryError_` (the
model's equivalent of the interconnect's error response).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable

from ..sim.memory import MemoryError_
from .stats import StreamStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.tcdm import BankedTcdm

#: Simulated L2 window inside each core's memory image (the flat image
#: doubles as the global address space: TCDM low, L2 high).  Owned by
#: the traffic engine; ``repro.cluster.partition.L2_BASE`` re-exports
#: it for compatibility.
L2_WINDOW_BASE = 1 << 19

#: Bank-arbiter requestor id for DMA beats.  Distinct from every core
#: id (cores are >= 0), so a DMA beat conflicts with *any* core's
#: access to the same bank-cycle — including the transfer's own issuing
#: core, whose LSU port is a separate requestor from the DMA port.
DMA_REQUESTOR = -1

#: Word size the TCDM banks serve; transfers move whole words.
_WORD = 4


class Direction(Enum):
    """Which way a transfer moves data across the TCDM boundary."""

    #: Backing store (L2 window) -> TCDM: input staging.
    READ = "read"
    #: TCDM -> backing store: output write-back (drain).
    WRITE = "write"


@dataclass(frozen=True)
class Transfer:
    """Record of one queued transfer (for reports and tests)."""

    core_id: int
    dst: int
    src: int
    nbytes: int
    issue: int
    begin: int
    done: int
    direction: Direction = Direction.READ


class TransferEngine:
    """Bandwidth/latency/beat model of one shared transfer engine.

    Args:
        bandwidth: Sustained bytes per beat (one beat per cycle when
            uncontended).
        setup_latency: Fixed cycles per transfer before the first beat
            (descriptor fetch + interconnect traversal).
        tcdm_size: Architectural scratchpad capacity; transfer
            footprints below ``window_base`` must fit under it.
        window_base: Start of the simulated backing-store (L2) window;
            classifies each transfer's :class:`Direction` and its
            TCDM-side endpoint.
        stream_id: Identity handed to the beat ``arbiter`` (the SoC
            passes the owning cluster's id).
        arbiter: ``(stream_id, nbeats, start) -> done`` granting the
            data beats against a shared resource; ``None`` grants one
            beat per cycle unconditionally.
        extra_latency: Additional fixed cycles before the first beat
            (the SoC's L2 access latency).
        on_complete: Observer invoked with every queued
            :class:`Transfer` (endpoint accounting hooks).
    """

    def __init__(self, bandwidth: int = 8, setup_latency: int = 16,
                 tcdm_size: int | None = None,
                 window_base: int = L2_WINDOW_BASE,
                 stream_id: int = 0,
                 arbiter: Callable[[int, int, int], int] | None = None,
                 extra_latency: int = 0,
                 on_complete: Callable[[Transfer], None] | None = None
                 ) -> None:
        if bandwidth < 1:
            raise ValueError(f"bandwidth must be >= 1, got {bandwidth}")
        self.bandwidth = bandwidth
        self.setup_latency = setup_latency
        self.tcdm_size = tcdm_size
        self.window_base = window_base
        self.stream_id = stream_id
        self.arbiter = arbiter
        self.extra_latency = extra_latency
        self.on_complete = on_complete
        self.transfers: list[Transfer] = []
        self._free_at = 0
        self._core_done: dict[int, int] = {}
        self.bytes_moved = 0
        self.busy_cycles = 0
        #: Per-direction beat/transfer/stall tallies.
        self.stream_stats: dict[Direction, StreamStats] = {
            Direction.READ: StreamStats(),
            Direction.WRITE: StreamStats(),
        }
        self._direction_bytes: dict[Direction, int] = {
            Direction.READ: 0, Direction.WRITE: 0,
        }
        self._tcdm: "BankedTcdm | None" = None
        #: Structured-event sink (repro.obs.ObsSink); None when off.
        self.obs = None
        #: Scope transfer events are emitted under (the owning
        #: cluster), or None until attach_obs wires it.
        self.obs_scope = None

    def attach_obs(self, sink, scope: str) -> None:
        """Emit a slice per transfer into *sink* under *scope*."""
        self.obs = sink
        self.obs_scope = scope if sink is not None else None

    # ------------------------------------------------------------------
    # write-back simulation mode: beat-level TCDM bank claims
    # ------------------------------------------------------------------
    def attach_tcdm(self, tcdm: "BankedTcdm") -> None:
        """Route every beat's TCDM-side endpoint through *tcdm*.

        Once attached, each data beat claims the bank-cycles its
        scratchpad footprint touches (as requestor
        :data:`DMA_REQUESTOR`), so DMA traffic — staging reads and
        write-back drains alike — contends with core accesses in the
        same arbiter that already models core-vs-core conflicts.
        """
        self._tcdm = tcdm

    @property
    def tcdm_attached(self) -> bool:
        return self._tcdm is not None

    # ------------------------------------------------------------------
    def direction_of(self, dst: int, src: int) -> Direction:
        """Classify a transfer by its destination endpoint."""
        del src  # the destination alone decides: drains target the L2
        return Direction.WRITE if dst >= self.window_base \
            else Direction.READ

    def _check_tcdm_bounds(self, addr: int, nbytes: int) -> None:
        """Reject scratchpad-side footprints overrunning the TCDM."""
        if self.tcdm_size is None:
            return
        if addr < self.tcdm_size and addr + nbytes > self.tcdm_size:
            raise MemoryError_(
                f"DMA transfer of {nbytes} bytes at 0x{addr:x} overruns "
                f"the TCDM capacity of 0x{self.tcdm_size:x} bytes"
            )

    def _validate(self, dst: int, src: int, nbytes: int) -> None:
        if nbytes < 0:
            raise MemoryError_(f"negative DMA length {nbytes}")
        if nbytes == 0:
            raise MemoryError_(
                f"zero-length DMA transfer (dst=0x{dst:x}, "
                f"src=0x{src:x}): drop the dma.start instead of "
                f"queueing an empty descriptor"
            )
        if dst % _WORD or src % _WORD or nbytes % _WORD:
            raise MemoryError_(
                f"misaligned DMA transfer (dst=0x{dst:x}, "
                f"src=0x{src:x}, len={nbytes}): endpoints and length "
                f"must be multiples of the {_WORD}-byte TCDM word"
            )
        self._check_tcdm_bounds(dst, nbytes)
        self._check_tcdm_bounds(src, nbytes)

    def _claim_banks(self, core_id: int, addr: int, nbytes: int,
                     start: int) -> int:
        """Claim TCDM bank-cycles for every beat; returns the cycle the
        last beat's banks were granted."""
        tcdm = self._tcdm
        bandwidth = self.bandwidth
        t = start
        offset = 0
        while offset < nbytes:
            beat = min(bandwidth, nbytes - offset)
            t = tcdm.access(core_id, addr + offset, beat, t + 1,
                            requestor=DMA_REQUESTOR)
            offset += beat
        return t

    # ------------------------------------------------------------------
    def start(self, core_id: int, dst: int, src: int, nbytes: int,
              now: int) -> int:
        """Queue a transfer issued at *now*; returns its completion cycle."""
        self._validate(dst, src, nbytes)
        direction = self.direction_of(dst, src)
        begin = max(now, self._free_at)
        nbeats = -(-nbytes // self.bandwidth)
        first = begin + self.setup_latency + self.extra_latency
        if self.arbiter is not None:
            done = self.arbiter(self.stream_id, nbeats, first)
            # A transfer with beats cannot finish before its first
            # beat could land; a grant at or before the request cycle
            # means the arbiter is broken (e.g. returned its zero-beat
            # fast path for a real transfer).
            if done <= first:
                raise MemoryError_(
                    f"arbiter granted stream {self.stream_id} "
                    f"completion at cycle {done} for {nbeats} beats "
                    f"requested at cycle {first}: the first beat lands "
                    f"after the request, so done must be > {first}"
                )
        else:
            done = first + nbeats
        if self._tcdm is not None:
            tcdm_addr = src if direction is Direction.WRITE else dst
            if tcdm_addr < self.window_base:
                done = max(done, self._claim_banks(core_id, tcdm_addr,
                                                   nbytes, first))
        duration = done - begin
        self._free_at = done
        self.busy_cycles += duration
        self.bytes_moved += nbytes
        self._direction_bytes[direction] += nbytes
        stats = self.stream_stats[direction]
        stats.grants += nbeats
        stats.transfers += 1
        stats.stall_cycles += max(0, done - (first + nbeats))
        prev = self._core_done.get(core_id, 0)
        self._core_done[core_id] = max(prev, done)
        transfer = Transfer(
            core_id=core_id, dst=dst, src=src, nbytes=nbytes,
            issue=now, begin=begin, done=done, direction=direction,
        )
        self.transfers.append(transfer)
        obs = self.obs
        if obs is not None:
            obs.emit(self.obs_scope, "dma", "dma." + direction.value,
                     begin, duration, "dma",
                     {"core": core_id, "bytes": nbytes,
                      "beats": nbeats,
                      "stall": max(0, done - (first + nbeats))})
        if self.on_complete is not None:
            self.on_complete(transfer)
        return done

    # ------------------------------------------------------------------
    def core_drain_time(self, core_id: int) -> int:
        """Cycle when every transfer started by *core_id* has completed
        (the ``dma.wait`` fence)."""
        return self._core_done.get(core_id, 0)

    @property
    def drain_time(self) -> int:
        """Cycle when the whole engine goes idle."""
        return self._free_at

    @property
    def bytes_read(self) -> int:
        """Bytes staged into the TCDM (backing-store reads)."""
        return self._direction_bytes[Direction.READ]

    @property
    def bytes_written(self) -> int:
        """Bytes drained out of the TCDM (backing-store writes)."""
        return self._direction_bytes[Direction.WRITE]
