"""Shared arbitration statistics: one shape for banks, links, streams.

Every arbitrated resource in the hierarchy counts the same three
things: how many grants it issued (bank accesses, link beats), how many
transfer descriptors it served, and how many cycles arbitration added
versus the requester's own uncontended schedule.  Before this module
the cluster's ``BankStats`` and the SoC's ``LinkStats`` mirrored each
other field-for-field under different names; both are now views over
one :class:`StreamStats` dataclass, with the historical names kept as
read/write aliases (``accesses``/``conflict_cycles`` on banks,
``beats`` on links) so existing callers and payload producers keep
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


def stat_alias(field_name: str) -> property:
    """A read/write property forwarding to a :class:`StreamStats` field.

    Subclasses use this to keep their historical field names
    (``BankStats.accesses`` == ``StreamStats.grants``) without storing
    the value twice — the alias and the canonical field can never
    diverge because there is only one attribute underneath.
    """
    def fget(self: "StreamStats") -> int:
        return getattr(self, field_name)

    def fset(self: "StreamStats", value: int) -> None:
        setattr(self, field_name, value)

    return property(fget, fset, doc=f"Alias of ``{field_name}``.")


@dataclass
class StreamStats:
    """Activity of one arbitrated stream (a bank, a link, a direction).

    Attributes:
        grants: Units granted — bank accesses for the TCDM arbiter,
            data beats for the L2 link and the transfer engine.
        transfers: Transfer descriptors served (banks leave this 0;
            their "descriptor" is the individual access).
        stall_cycles: Cycles arbitration added versus the requester's
            uncontended schedule.
    """

    grants: int = 0
    transfers: int = 0
    stall_cycles: int = 0

    def field_names(self) -> tuple[str, ...]:
        """Canonical field names (for sync tests and serializers)."""
        return tuple(f.name for f in fields(self))


#: Historical spelling used while the stats shapes were being unified;
#: both names refer to the same class.
XferStats = StreamStats
