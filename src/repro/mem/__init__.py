"""Unified memory-traffic subsystem.

One transfer model for every level of the hierarchy:

* :class:`TransferEngine` — the bandwidth/latency/beat engine both
  :class:`~repro.cluster.dma.ClusterDma` and
  :class:`~repro.soc.machine.SocDmaChannel` are thin configurations
  of (beat arbitration and endpoint accounting are pluggable hooks).
* :class:`Direction` / :class:`Transfer` — per-stream READ (input
  staging) vs WRITE (output write-back) classification and the queued
  transfer record.
* :class:`StreamStats` (alias :data:`XferStats`) — the shared
  grants/transfers/stalls shape behind the cluster's ``BankStats``
  and the SoC's ``LinkStats``.
"""

from .engine import (
    DMA_REQUESTOR,
    L2_WINDOW_BASE,
    Direction,
    Transfer,
    TransferEngine,
)
from .stats import StreamStats, XferStats, stat_alias

__all__ = [
    "DMA_REQUESTOR",
    "Direction",
    "L2_WINDOW_BASE",
    "StreamStats",
    "Transfer",
    "TransferEngine",
    "XferStats",
    "stat_alias",
]
