"""Observability overhead benchmark: the disabled sink must be free.

Every emission site in the timing models is guarded by a single
``if obs is not None`` branch, so a run without a sink attached must
cost the same as one that never heard of observability.  This
benchmark measures three interleaved variants of the same kernel cell
(fresh instances each rep, best-of like ``test_sim_throughput``):

* ``default`` — ``KernelInstance.run(check=False)``, the path every
  artifact takes with observability off;
* ``knob_off`` — the same run through the explicit ``obs=None`` knob
  (exercises the plumbed-but-disabled path);
* ``enabled`` — a live :class:`repro.obs.ObsSink` collecting every
  event (informational; tracing is allowed to cost real time).

The guard asserts the knob-off path is within :data:`MAX_DISABLED_RATIO`
of the default path (one retry absorbs host noise).  Results merge
into ``BENCH_sim.json`` under an ``obs_overhead`` section so every PR
leaves an overhead trajectory next to the throughput numbers.
"""

from __future__ import annotations

import json
import os
import time

from repro.kernels.registry import kernel
from repro.obs import ObsSink

#: Problem size per rep: steady-state dominated, CI-friendly.
N = 2048
#: Repetitions per variant (best-of).
REPS = 3
#: Disabled-path budget: the obs=None knob may cost at most 2% over
#: the default path (the tentpole's "low-overhead" contract).
MAX_DISABLED_RATIO = 1.02

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_sim.json")


def _time_run(obs=None) -> float:
    instance = kernel("expf").build_copift(N)
    t0 = time.perf_counter()
    instance.run(check=False, obs=obs)
    return time.perf_counter() - t0


def measure() -> dict:
    """Interleaved best-of timings of the three variants.

    Interleaving (default, knob-off, enabled within each rep) spreads
    host-frequency drift evenly over the variants instead of letting
    it land on whichever ran last.
    """
    # Warm the interpreter so rep 1 is not measured colder.
    kernel("expf").build_copift(512, block=64).run(check=False)

    best = {"default": None, "knob_off": None, "enabled": None}
    events = 0
    for _ in range(REPS):
        for variant in best:
            if variant == "enabled":
                sink = ObsSink()
                dt = _time_run(obs=sink)
                events = len(sink)
            else:
                dt = _time_run(obs=None)
            if best[variant] is None or dt < best[variant]:
                best[variant] = dt
    return {
        "n": N,
        "reps": REPS,
        "kernel": "expf/copift",
        "seconds": {k: round(v, 4) for k, v in best.items()},
        "events_enabled": events,
        "disabled_ratio": round(best["knob_off"] / best["default"], 4),
        "enabled_ratio": round(best["enabled"] / best["default"], 4),
    }


class TestObsOverhead:
    def test_disabled_sink_is_free(self):
        payload = measure()
        # Up to two retries, keeping the best observed ratio: scheduler
        # hiccups on a loaded CI host must not fail the guard (the
        # contract is that the disabled path *can* run at parity); a
        # real regression reproduces across every attempt.
        for _ in range(2):
            if payload["disabled_ratio"] <= MAX_DISABLED_RATIO:
                break
            retry = measure()
            if retry["disabled_ratio"] < payload["disabled_ratio"]:
                payload = retry
        assert payload["disabled_ratio"] <= MAX_DISABLED_RATIO, payload

        assert payload["events_enabled"] > 0
        merged = {}
        if os.path.exists(BENCH_PATH):
            with open(BENCH_PATH) as handle:
                merged = json.load(handle)
        merged["obs_overhead"] = payload
        with open(BENCH_PATH, "w") as handle:
            json.dump(merged, handle, indent=1, sort_keys=True)
            handle.write("\n")
