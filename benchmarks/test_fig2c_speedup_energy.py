"""Figure 2c benchmark: speedup and energy improvement.

The headline results: paper geomean speedup 1.47x (peak 2.05x on exp)
and geomean energy improvement 1.37x (peak 1.93x on exp) — COPIFT wins
on *both* axes for *every* kernel.
"""

import pytest

from conftest import kernel_row
from repro.eval import fig2
from repro.kernels.registry import KERNELS

#: Paper Fig. 2c values (speedup, energy improvement).
PAPER = {
    "pi_xoshiro128p": (1.15, 1.12),
    "poly_xoshiro128p": (1.26, 1.22),
    "pi_lcg": (1.32, 1.17),
    "poly_lcg": (1.58, 1.34),
    "logf": (1.62, 1.61),
    "expf": (2.05, 1.93),
}


def test_render_fig2(benchmark, fig2_data):
    text = benchmark(fig2.render, fig2_data)
    assert "geomean speedup" in text


@pytest.mark.parametrize("name", list(KERNELS))
def test_copift_always_faster(fig2_data, name):
    assert kernel_row(fig2_data, name).measurement.speedup > 1.1


@pytest.mark.parametrize("name", list(KERNELS))
def test_copift_always_more_energy_efficient(fig2_data, name):
    """The paper's core claim: despite higher power, COPIFT wins on
    energy for every kernel."""
    assert kernel_row(fig2_data, name).measurement.energy_improvement \
        > 1.1


@pytest.mark.parametrize("name", list(KERNELS))
def test_speedup_tracks_paper(fig2_data, name):
    measured = kernel_row(fig2_data, name).measurement.speedup
    paper_speedup, _ = PAPER[name]
    assert measured == pytest.approx(paper_speedup, abs=0.35)


def test_geomean_speedup(fig2_data):
    """Paper: 1.47x."""
    assert fig2_data.geomean_speedup == pytest.approx(1.47, abs=0.12)


def test_geomean_energy_improvement(fig2_data):
    """Paper: 1.37x."""
    assert fig2_data.geomean_energy_improvement \
        == pytest.approx(1.37, abs=0.18)


def test_expf_is_peak_on_both_axes(fig2_data):
    speedups = {r.name: r.measurement.speedup for r in fig2_data.rows}
    energy = {r.name: r.measurement.energy_improvement
              for r in fig2_data.rows}
    assert max(speedups, key=speedups.get) == "expf"
    assert max(energy, key=energy.get) == "expf"


def test_speedup_never_exceeds_expectation_much(fig2_data):
    """S' is an optimistic bound; measurements sit at or below it."""
    for row in fig2_data.rows:
        assert row.measurement.speedup <= row.expected_speedup * 1.1, \
            row.name


def test_speedup_exceeds_two_possible(fig2_data):
    """Paper: 'speedups greater than two are possible' thanks to SSR
    load/store elision on top of dual-issue; ours approaches it on
    expf."""
    assert kernel_row(fig2_data, "expf").measurement.speedup > 1.6


def test_fig2c_all_shape_checks(benchmark, fig2_data):
    """Aggregate: validates the headline speedup/energy claims."""
    def check_all():
        for name in KERNELS:
            test_copift_always_faster(fig2_data, name)
            test_copift_always_more_energy_efficient(fig2_data, name)
            test_speedup_tracks_paper(fig2_data, name)
        test_geomean_speedup(fig2_data)
        test_geomean_energy_improvement(fig2_data)
        test_expf_is_peak_on_both_axes(fig2_data)
        test_speedup_never_exceeds_expectation_much(fig2_data)
        test_speedup_exceeds_two_possible(fig2_data)
        return (fig2_data.geomean_speedup,
                fig2_data.geomean_energy_improvement)

    speedup, energy = benchmark.pedantic(check_all, rounds=1,
                                         iterations=1)
    benchmark.extra_info["geomean_speedup"] = speedup
    benchmark.extra_info["geomean_energy_improvement"] = energy
