"""Simulator throughput benchmark: simulated instructions per second.

Measures how fast the execution core retires *dynamic* instructions for
all six Table-I kernels (both variants), and writes ``BENCH_sim.json``
at the repo root so every PR leaves a throughput trajectory.

Methodology: per (kernel, variant) cell the run is repeated
:data:`REPS` times on freshly built instances and the best (minimum)
wall-clock is kept — simulation is deterministic, so the minimum is the
least-noise estimate of the core's real rate.  The committed
``benchmarks/BASELINE_sim.json`` holds the same measurement taken on
the pre-micro-op interpreter (same host, same methodology); the report
includes the speedup against it.  Numbers are host-dependent — the
assertions here only guard sanity, not absolute rates (the CI
benchmarks job is non-blocking either way).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.kernels.registry import KERNELS

#: Problem size per cell: large enough to be steady-state dominated.
N = 2048
#: Repetitions per cell (best-of).
REPS = 3

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_sim.json")
BASELINE_PATH = os.path.join(_REPO_ROOT, "benchmarks",
                             "BASELINE_sim.json")


def _build(kernel_def, variant: str):
    if variant == "baseline":
        return kernel_def.build_baseline(N)
    return kernel_def.build_copift(N, block=kernel_def.default_block)


def measure() -> dict:
    """Best-of-REPS instructions-per-second for every kernel."""
    # Warm the interpreter (CPython 3.11+ specializes bytecode on the
    # first executions) so cell 1 is not measured colder than cell 12.
    next(iter(KERNELS.values())).build_copift(512, block=64) \
        .run(check=False)

    kernels = {}
    total_instr = 0
    total_time = 0.0
    for name, kernel_def in KERNELS.items():
        instrs = 0
        elapsed = 0.0
        for variant in ("baseline", "copift"):
            best = None
            issued = 0
            for _ in range(REPS):
                instance = _build(kernel_def, variant)
                t0 = time.perf_counter()
                result, _ = instance.run(check=False)
                dt = time.perf_counter() - t0
                issued = result.counters.total_issued
                if best is None or dt < best:
                    best = dt
            instrs += issued
            elapsed += best
        kernels[name] = {
            "instructions": instrs,
            "seconds": round(elapsed, 4),
            "instr_per_sec": round(instrs / elapsed, 1),
        }
        total_instr += instrs
        total_time += elapsed
    return {
        "n": N,
        "reps": REPS,
        "kernels": kernels,
        "total": {
            "instructions": total_instr,
            "seconds": round(total_time, 4),
            "instr_per_sec": round(total_instr / total_time, 1),
        },
    }


@pytest.fixture(scope="module")
def bench() -> dict:
    payload = measure()
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)
        payload["baseline"] = baseline
        payload["speedup_vs_baseline"] = round(
            payload["total"]["instr_per_sec"]
            / baseline["total"]["instr_per_sec"], 3)
    # The batch-engine benchmark merges its own section into the same
    # file (see test_batch_throughput.py); carry it across rewrites.
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as handle:
            prior = json.load(handle)
        if "batch_engine" in prior:
            payload["batch_engine"] = prior["batch_engine"]
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload


class TestSimThroughput:
    def test_all_kernels_measured(self, bench):
        assert sorted(bench["kernels"]) == sorted(KERNELS)

    def test_rates_positive(self, bench):
        for name, row in bench["kernels"].items():
            assert row["instr_per_sec"] > 0, name
            assert row["instructions"] > 0, name

    def test_bench_file_written(self, bench):
        with open(BENCH_PATH) as handle:
            on_disk = json.load(handle)
        assert on_disk["total"] == bench["total"]

    def test_deterministic_instruction_counts(self, bench):
        """Same cells, same dynamic instruction counts, every time."""
        for name, kernel_def in KERNELS.items():
            result, _ = _build(kernel_def, "copift").run(check=False)
            again, _ = _build(kernel_def, "copift").run(check=False)
            assert result.counters.total_issued \
                == again.counters.total_issued, name


if __name__ == "__main__":
    payload = measure()
    print(json.dumps(payload, indent=1, sort_keys=True))
