"""Serve-cache benchmark: what a warm store is actually worth.

Runs the same sweep (all six kernels, both variants, one core) twice
through an explicit :class:`repro.serve.RunStore` in a fresh temp
directory — once cold (every cell simulates and persists) and once
warm (every cell answered from disk) — and records the wall-clock
ratio.  The guard is deliberately loose: JSON parsing must beat
re-simulation by a wide margin on any host, so a warm run slower than
:data:`MAX_WARM_RATIO` of the cold run means the cache path regressed
(e.g. a lookup started re-simulating or re-hashing per record).

Results merge into ``BENCH_sim.json`` under a ``serve_cache`` section
so every PR leaves a speedup trajectory next to the throughput
numbers.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.api import Sweep, Workload
from repro.kernels.registry import KERNELS
from repro.serve import RunStore

#: Problem size per cell: steady-state dominated, CI-friendly.
N = 1024
#: A warm run may cost at most this fraction of the cold run.  Real
#: ratios are ~1-5%; 50% leaves room for loaded CI hosts while still
#: catching a cache path that quietly re-simulates.
MAX_WARM_RATIO = 0.5

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_sim.json")


def measure() -> dict:
    sweep = Sweep([Workload(name, variant, n=N)
                   for name in KERNELS
                   for variant in ("baseline", "copift")])
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as root:
        store = RunStore(root)
        t0 = time.perf_counter()
        cold = sweep.run(cache=store)
        cold_s = time.perf_counter() - t0
        assert store.stats.stores == len(cold)
        t0 = time.perf_counter()
        warm = sweep.run(cache=store)
        warm_s = time.perf_counter() - t0
        assert store.stats.hits == len(warm)
        assert [r.to_json() for r in warm] == [r.to_json()
                                               for r in cold]
    return {
        "n": N,
        "cells": len(cold),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_ratio": round(warm_s / cold_s, 4),
        "speedup": round(cold_s / warm_s, 1),
    }


class TestServeCache:
    def test_warm_run_is_cheap(self):
        payload = measure()
        if payload["warm_ratio"] > MAX_WARM_RATIO:
            # One retry absorbs host noise; a real regression repeats.
            payload = measure()
        assert payload["warm_ratio"] <= MAX_WARM_RATIO, payload

        merged = {}
        if os.path.exists(BENCH_PATH):
            with open(BENCH_PATH) as handle:
                merged = json.load(handle)
        merged["serve_cache"] = payload
        with open(BENCH_PATH, "w") as handle:
            json.dump(merged, handle, indent=1, sort_keys=True)
            handle.write("\n")
