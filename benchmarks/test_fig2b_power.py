"""Figure 2b benchmark: average power, baseline vs COPIFT.

The paper's power story (§III-B), asserted as shape:

* all kernels sit in the high-30s/low-40s mW band, dominated by
  constant power;
* vector kernels (exp/log) burn more baseline power than the Monte
  Carlo kernels (DMA active + more L1 traffic);
* power increases under COPIFT are small (paper max 1.17x, geomean
  1.07x) — far smaller than the IPC gains;
* for exp/log the increase is *tiny* because the COPIFT integer loops
  fit the L0 loop buffer that the baselines thrash.
"""

import pytest

from conftest import kernel_row
from repro.energy import EnergyModel
from repro.kernels.registry import KERNELS
from repro.sim.counters import Counters


def test_energy_model_evaluation(benchmark):
    """Times the energy-model reduction itself."""
    model = EnergyModel()
    counters = Counters(int_alu_ops=50_000, fp_fmas=20_000,
                        icache_l0_misses=60_000, ssr_reads=30_000)
    report = benchmark(model.report, counters, 100_000)
    assert report.power_mw > 0


@pytest.mark.parametrize("name", list(KERNELS))
def test_power_band(fig2_data, name):
    row = kernel_row(fig2_data, name)
    for variant in (row.measurement.baseline, row.measurement.copift):
        assert 33.0 <= variant.power_mw <= 50.0, (name, variant.variant)


@pytest.mark.parametrize("name", list(KERNELS))
def test_power_increase_is_modest(fig2_data, name):
    """Paper max: 1.17x."""
    row = kernel_row(fig2_data, name)
    assert row.measurement.power_increase <= 1.20, name


def test_geomean_power_increase(fig2_data):
    """Paper: 1.07x geomean."""
    assert fig2_data.geomean_power_increase <= 1.12


def test_vector_kernels_burn_more_base_power(fig2_data):
    """DMA + L1 traffic: exp/log baselines above every MC baseline."""
    base_power = {row.name: row.measurement.baseline.power_mw
                  for row in fig2_data.rows}
    mc_max = max(base_power[n] for n in
                 ("pi_lcg", "poly_lcg", "pi_xoshiro128p",
                  "poly_xoshiro128p"))
    assert base_power["expf"] > mc_max
    assert base_power["logf"] > mc_max


def test_exp_log_icache_relief(fig2_data):
    """exp/log power increases less than the LCG kernels despite
    larger IPC gains — the L0 capture effect (paper §III-B)."""
    increase = {row.name: row.measurement.power_increase
                for row in fig2_data.rows}
    assert increase["expf"] < increase["pi_lcg"] + 0.05
    assert increase["logf"] < increase["pi_lcg"] + 0.05


def test_constant_power_dominates(fig2_data):
    """'Dominated by constant components such as the clock network.'"""
    for row in fig2_data.rows:
        power = row.measurement.baseline.power
        assert power.constant_energy_pj > power.dynamic_energy_pj


def test_fig2b_all_shape_checks(benchmark, fig2_data):
    """Aggregate: validates every Fig. 2b power claim."""
    def check_all():
        for name in KERNELS:
            test_power_band(fig2_data, name)
            test_power_increase_is_modest(fig2_data, name)
        test_geomean_power_increase(fig2_data)
        test_vector_kernels_burn_more_base_power(fig2_data)
        test_exp_log_icache_relief(fig2_data)
        test_constant_power_dominates(fig2_data)
        return fig2_data.geomean_power_increase

    increase = benchmark.pedantic(check_all, rounds=1, iterations=1)
    benchmark.extra_info["geomean_power_increase"] = increase
