"""Figure 2a benchmark: steady-state IPC, baseline vs COPIFT.

Shape assertions against the paper:

* baseline IPCs land within ±0.08 of the paper's bars (they are all
  below 1.0 — single issue);
* every COPIFT variant exceeds 1.0 — sustained dual-issue;
* the geomean IPC gain is in the paper's neighbourhood (1.62x);
* IPC correlates with the I'-derived expectation (the dashed line).
"""

import pytest

from conftest import kernel_row
from repro.eval import measure_kernel
from repro.kernels.registry import KERNELS

#: Paper Fig. 2a bar values (baseline, COPIFT).
PAPER_IPC = {
    "pi_xoshiro128p": (0.96, 1.24),
    "poly_xoshiro128p": (0.96, 1.36),
    "pi_lcg": (0.86, 1.50),
    "poly_lcg": (0.89, 1.75),
    "logf": (0.92, 1.48),
    "expf": (0.92, 1.63),
}


def test_measure_one_kernel(benchmark):
    """Times one paired measurement (the unit of Fig. 2 work)."""
    result = benchmark.pedantic(
        measure_kernel, args=(KERNELS["expf"],),
        kwargs={"n": 1024}, rounds=1, iterations=1)
    assert result.copift.ipc > 1.0


@pytest.mark.parametrize("name", list(KERNELS))
def test_baseline_ipc_matches_paper(fig2_data, name):
    row = kernel_row(fig2_data, name)
    paper_base, _ = PAPER_IPC[name]
    assert row.measurement.baseline.ipc == pytest.approx(
        paper_base, abs=0.08)


@pytest.mark.parametrize("name", list(KERNELS))
def test_baseline_is_single_issue(fig2_data, name):
    assert kernel_row(fig2_data, name).measurement.baseline.ipc < 1.0


@pytest.mark.parametrize("name", list(KERNELS))
def test_copift_sustains_dual_issue(fig2_data, name):
    assert kernel_row(fig2_data, name).measurement.copift.ipc > 1.15


@pytest.mark.parametrize("name", list(KERNELS))
def test_copift_ipc_tracks_paper(fig2_data, name):
    row = kernel_row(fig2_data, name)
    _, paper_copift = PAPER_IPC[name]
    assert row.measurement.copift.ipc == pytest.approx(
        paper_copift, abs=0.55)


def test_geomean_ipc_gain(fig2_data):
    """Paper: 1.62x geomean IPC improvement."""
    assert 1.35 <= fig2_data.geomean_ipc_gain <= 1.80


def test_peak_ipc(fig2_data):
    """Paper: peak IPC 1.75; ours must demonstrably dual-issue."""
    assert fig2_data.peak_ipc >= 1.45


def test_ipc_correlates_with_expectation(fig2_data):
    """Measured COPIFT IPC never exceeds the I' expectation by much,
    and reaches a large fraction of it (the paper's dashed lines)."""
    for row in fig2_data.rows:
        measured = row.measurement.copift.ipc
        assert measured <= row.expected_ipc * 1.10, row.name
        assert measured >= row.expected_ipc * 0.60, row.name


def test_xoshiro_gains_smallest(fig2_data):
    """The most imbalanced kernel gains least (Eq. 3's prediction)."""
    gains = {row.name: row.measurement.ipc_gain
             for row in fig2_data.rows}
    assert gains["pi_xoshiro128p"] == min(gains.values())


def test_fig2a_all_shape_checks(benchmark, fig2_data):
    """Aggregate: regenerates and validates every Fig. 2a claim (the
    granular tests above give per-claim failures in non-benchmark
    runs)."""
    def check_all():
        for name in KERNELS:
            test_baseline_ipc_matches_paper(fig2_data, name)
            test_baseline_is_single_issue(fig2_data, name)
            test_copift_sustains_dual_issue(fig2_data, name)
            test_copift_ipc_tracks_paper(fig2_data, name)
        test_geomean_ipc_gain(fig2_data)
        test_peak_ipc(fig2_data)
        test_ipc_correlates_with_expectation(fig2_data)
        test_xoshiro_gains_smallest(fig2_data)
        return fig2_data.geomean_ipc_gain

    gain = benchmark.pedantic(check_all, rounds=1, iterations=1)
    benchmark.extra_info["geomean_ipc_gain"] = gain
