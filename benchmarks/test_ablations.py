"""Ablation benchmarks for the design points DESIGN.md calls out.

E6 — integer-RF writeback-port hazard (paper §III-A): removing the
single-write-port constraint recovers the LCG baselines' lost IPC and
eliminates their stalls; the xoshiro kernels are insensitive.

E7 — L0 loop buffer (paper §III-B): disabling the L0 model removes the
COPIFT exp/log I-fetch energy advantage.

E8 — SSR load/store elision: the COPIFT kernels execute zero FP
loads/stores; re-expressing their traffic as explicit accesses would
add back the full stream element count.

E9 — FPSS dispatch-queue depth: dual-issue needs the decoupling queue;
depth 1 strangles the overlap.
"""

import pytest

from repro.energy import EnergyModel
from repro.eval import measure_instance
from repro.kernels.registry import KERNELS
from repro.sim import CoreConfig


def _measure(name, variant, config=None, n=1024, block=64):
    kernel_def = KERNELS[name]
    if variant == "baseline":
        instance = kernel_def.build_baseline(n)
    else:
        instance = kernel_def.build_copift(n, block=block)
    return instance, measure_instance(instance, config=config,
                                      check=False)


class TestWritebackPortAblation:
    def test_lcg_baseline_recovers_without_hazard(self, benchmark):
        config = CoreConfig(model_int_wb_hazard=False)
        _, with_hazard = _measure("pi_lcg", "baseline")
        _, without = benchmark.pedantic(
            lambda: _measure("pi_lcg", "baseline", config=config),
            rounds=1, iterations=1)
        assert without.ipc > with_hazard.ipc + 0.04

    def test_xoshiro_insensitive(self):
        config = CoreConfig(model_int_wb_hazard=False)
        _, with_hazard = _measure("pi_xoshiro128p", "baseline")
        _, without = _measure("pi_xoshiro128p", "baseline",
                              config=config)
        assert abs(without.ipc - with_hazard.ipc) < 0.02

    def test_paper_explanation_poly_lcg(self):
        """§III-A: the LCG stalls 'balance out the execution times of
        the integer and FP threads in the poly_lcg kernel' — removing
        them must make the integer thread relatively faster."""
        config = CoreConfig(model_int_wb_hazard=False)
        _, with_hazard = _measure("poly_lcg", "copift")
        _, without = _measure("poly_lcg", "copift", config=config)
        assert without.cycles <= with_hazard.cycles


class TestL0CacheAblation:
    def test_copift_expf_loses_icache_advantage(self, benchmark):
        """With the L0 disabled, COPIFT expf pays full fetch energy and
        its power rises; the baseline (which thrashed anyway) moves
        much less."""
        config = CoreConfig(model_l0_icache=False)

        def run(variant, cfg):
            instance, measurement = _measure("expf", variant,
                                             config=cfg)
            return measurement

        cop_with = run("copift", None)
        cop_without = benchmark.pedantic(
            lambda: run("copift", config), rounds=1, iterations=1)
        base_with = run("baseline", None)
        base_without = run("baseline", config)
        cop_delta = cop_without.power_mw - cop_with.power_mw
        base_delta = base_without.power_mw - base_with.power_mw
        assert cop_delta > base_delta + 0.3

    def test_baseline_fetches_unaffected_functionally(self):
        config = CoreConfig(model_l0_icache=False)
        _, with_l0 = _measure("expf", "baseline")
        _, without = _measure("expf", "baseline", config=config)
        assert with_l0.cycles == without.cycles  # energy-only model


class TestSsrElisionAblation:
    @pytest.mark.parametrize("name", ["expf", "logf"])
    def test_copift_executes_no_fp_loadstores(self, name):
        kernel_def = KERNELS[name]
        instance = kernel_def.build_copift(1024, block=64)
        result, _ = instance.run(check=False)
        counters = result.region("main").counters
        assert counters.fp_loads == 0
        assert counters.fp_stores == 0
        assert counters.ssr_reads + counters.ssr_writes > 1024

    def test_baseline_pays_explicit_fp_loadstores(self):
        instance = KERNELS["expf"].build_baseline(1024)
        result, _ = instance.run(check=False)
        counters = result.region("main").counters
        # fld x, fsd ki, fld t, fsd y per element.
        assert counters.fp_loads + counters.fp_stores == 4 * 1024


class TestQueueDepthAblation:
    def test_shallow_queue_strangles_dual_issue(self, benchmark):
        deep = CoreConfig(fpss_queue_depth=8)
        shallow = CoreConfig(fpss_queue_depth=1)
        _, with_deep = _measure("expf", "copift", config=deep)
        _, with_shallow = benchmark.pedantic(
            lambda: _measure("expf", "copift", config=shallow),
            rounds=1, iterations=1)
        assert with_deep.ipc > with_shallow.ipc

    def test_baseline_less_sensitive(self):
        deep = CoreConfig(fpss_queue_depth=8)
        shallow = CoreConfig(fpss_queue_depth=2)
        _, with_deep = _measure("pi_xoshiro128p", "baseline",
                                config=deep)
        _, with_shallow = _measure("pi_xoshiro128p", "baseline",
                                   config=shallow)
        assert abs(with_deep.ipc - with_shallow.ipc) < 0.12
