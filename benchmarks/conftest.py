"""Shared benchmark fixtures.

The Figure-2 dataset (all six kernels, both variants) is expensive to
simulate, so it is computed once per session and shared by the
fig2a/fig2b/fig2c benchmark modules.
"""

import pytest

from repro.eval import fig2

#: Problem size for the shared Figure-2 dataset.  Large enough for
#: steady-state behaviour, small enough for CI.
FIG2_N = 2048


@pytest.fixture(scope="session")
def fig2_data():
    return fig2.generate(n=FIG2_N)


def kernel_row(data, name):
    for row in data.rows:
        if row.name == name:
            return row
    raise KeyError(name)
