"""Cluster-scaling regression benchmarks.

Asserts the headline property of the cluster layer: statically chunked
kernels scale near-linearly to 8 cores.  The Monte Carlo kernels are
embarrassingly parallel (no DMA, private PRNG streams) and must clear
>=3x at 8 cores by a wide margin; the DMA-double-buffered vector
kernels pay shared-DMA-bandwidth and bank-conflict costs but still
scale well past 3x.
"""

import pytest

from repro.cluster import ClusterConfig, partition_kernel
from repro.kernels.common import MAIN_REGION
from repro.kernels.registry import KERNELS, kernel

#: Problem size for the scaling measurements (total, split over cores).
SCALE_N = 4096

MC_KERNELS = ("pi_lcg", "poly_lcg", "pi_xoshiro128p",
              "poly_xoshiro128p")
VECTOR_KERNELS = ("expf", "logf")


def _speedup(name: str, variant: str, cores: int) -> float:
    kd = kernel(name)
    one = partition_kernel(kd, SCALE_N, 1, variant=variant) \
        .run(check=False)
    many = partition_kernel(kd, SCALE_N, cores, variant=variant) \
        .run(check=False)
    return one.region(MAIN_REGION).cycles / \
        many.region(MAIN_REGION).cycles


@pytest.mark.parametrize("name", MC_KERNELS)
@pytest.mark.parametrize("variant", ("baseline", "copift"))
def test_montecarlo_8core_speedup(name, variant):
    """Monte Carlo kernels: >=3x at 8 cores (measured: ~7-8x)."""
    speedup = _speedup(name, variant, 8)
    assert speedup >= 3.0, (name, variant, speedup)


@pytest.mark.parametrize("name", VECTOR_KERNELS)
@pytest.mark.parametrize("variant", ("baseline", "copift"))
def test_vector_dma_8core_speedup(name, variant):
    """DMA-double-buffered vector kernels: >=3x at 8 cores."""
    speedup = _speedup(name, variant, 8)
    assert speedup >= 3.0, (name, variant, speedup)


def test_scaling_is_monotone_for_pi_lcg():
    results = {
        cores: partition_kernel(kernel("pi_lcg"), SCALE_N, cores)
        .run(check=False).region(MAIN_REGION).cycles
        for cores in (1, 2, 4, 8)
    }
    assert results[1] > results[2] > results[4] > results[8]


def test_every_kernel_verifies_on_8_cores():
    """Functional correctness of all chunked kernels at full width."""
    for name, kd in KERNELS.items():
        for variant in ("baseline", "copift"):
            partition_kernel(kd, 1024, 8, variant=variant) \
                .run(check=True)


def test_bank_conflicts_bounded_at_8_cores():
    """Conflict stalls stay a small fraction of the makespan."""
    result = partition_kernel(kernel("expf"), SCALE_N, 8,
                              variant="copift").run(check=False)
    per_core = result.tcdm_conflict_cycles / 8
    assert per_core < 0.2 * result.cycles


def test_fewer_banks_conflict_more():
    """Shrinking the bank count must raise conflicts and the makespan
    -- the bank-conflict study knob."""
    kd = kernel("poly_lcg")
    wide = partition_kernel(kd, 2048, 4, variant="copift") \
        .run(config=ClusterConfig(n_cores=4, tcdm_banks=32),
             check=False)
    narrow = partition_kernel(kd, 2048, 4, variant="copift") \
        .run(config=ClusterConfig(n_cores=4, tcdm_banks=4),
             check=False)
    assert narrow.tcdm_conflict_cycles > wide.tcdm_conflict_cycles
    assert narrow.cycles >= wide.cycles