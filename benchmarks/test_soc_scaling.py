"""SoC-scaling regression benchmarks.

Asserts the headline property of the SoC layer: aggregate throughput
keeps growing past a single cluster even for the DMA-bound vector
kernels.  At 4x4 the four clusters demand twice the shared L2 link's
bandwidth, so those kernels *must* still clear >=2x over 1x4 (the link
serves two clusters' worth of beats per cycle) while the compute-bound
Monte Carlo kernels approach the ideal 4x.

Like ``test_sim_throughput.py`` the measured cells are written into
``BENCH_sim.json`` at the repo root (merged under a ``soc_scaling``
key, preserving the throughput section), so every PR leaves a scaling
trajectory next to the simulator-speed one.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.kernels.common import MAIN_REGION
from repro.kernels.registry import kernel
from repro.soc import partition_soc_kernel

#: Problem size for the scaling measurements (total, split over all
#: cores of the SoC).
SCALE_N = 4096

#: DMA-bandwidth-bound kernels (inputs staged from L2 through the
#: shared link) and compute-bound ones.
VECTOR_KERNELS = ("expf", "logf")
MC_KERNELS = ("pi_lcg", "poly_xoshiro128p")

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_sim.json")


def _cycles(name: str, variant: str, clusters: int, cores: int) -> int:
    workload = partition_soc_kernel(kernel(name), SCALE_N, clusters,
                                    cores, variant=variant)
    return workload.run(check=False).region(MAIN_REGION).cycles


def _speedup(name: str, variant: str) -> float:
    """Aggregate-throughput ratio of 4x4 over 1x4 (same total n, so
    the cycle ratio IS the throughput ratio)."""
    return _cycles(name, variant, 1, 4) / _cycles(name, variant, 4, 4)


@pytest.fixture(scope="module")
def bench() -> dict:
    cells = {}
    for name in (*VECTOR_KERNELS, *MC_KERNELS):
        for variant in ("baseline", "copift"):
            one = _cycles(name, variant, 1, 4)
            four = _cycles(name, variant, 4, 4)
            cells[f"{name}/{variant}"] = {
                "cycles_1x4": one,
                "cycles_4x4": four,
                "speedup_4x4": round(one / four, 3),
            }
    payload = {"n": SCALE_N, "cells": cells}
    merged = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as handle:
            merged = json.load(handle)
    merged["soc_scaling"] = payload
    with open(BENCH_PATH, "w") as handle:
        json.dump(merged, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload


@pytest.mark.parametrize("name", VECTOR_KERNELS)
@pytest.mark.parametrize("variant", ("baseline", "copift"))
def test_bandwidth_bound_4x4_speedup(bench, name, variant):
    """DMA-bound vector kernels: >=2x aggregate throughput at 4x4
    (the shared link serves 2 clusters' worth of beats/cycle)."""
    speedup = bench["cells"][f"{name}/{variant}"]["speedup_4x4"]
    assert speedup >= 2.0, (name, variant, speedup)


@pytest.mark.parametrize("name", MC_KERNELS)
def test_compute_bound_4x4_speedup(bench, name):
    """Compute-bound kernels barely notice the link: >=3x at 4x4."""
    for variant in ("baseline", "copift"):
        speedup = bench["cells"][f"{name}/{variant}"]["speedup_4x4"]
        assert speedup >= 3.0, (name, variant, speedup)


def test_scaling_is_monotone_in_clusters():
    results = {
        clusters: _cycles("expf", "copift", clusters, 4)
        for clusters in (1, 2, 4)
    }
    assert results[1] > results[2] > results[4]


def test_cells_written_to_bench_file(bench):
    with open(BENCH_PATH) as handle:
        on_disk = json.load(handle)
    assert on_disk["soc_scaling"]["cells"] == bench["cells"]
    # The simulator-throughput section survives the merge.
    assert "total" in on_disk or "kernels" in on_disk


# ---------------------------------------------------------------------------
# staged-vs-drain overlap (simulated output write-back)
# ---------------------------------------------------------------------------

def _drain_cells(clusters: int = 2, cores: int = 4) -> dict:
    """Write-back cost of the DMA-bound kernels on one SoC shape.

    ``overlap`` is the fraction of the drain's serial beat time hidden
    behind other work: 1.0 means write-back was free (fully overlapped
    with peers' compute / staging), 0.0 means every drain beat
    extended the makespan.
    """
    cells = {}
    for name in VECTOR_KERNELS:
        for variant in ("baseline", "copift"):
            off = partition_soc_kernel(
                kernel(name), SCALE_N, clusters, cores,
                variant=variant).run(check=False)
            on = partition_soc_kernel(
                kernel(name), SCALE_N, clusters, cores,
                variant=variant, writeback=True).run(check=False)
            drain_beats = on.dma_bytes_written // 8
            added = on.cycles - off.cycles
            cells[f"{name}/{variant}"] = {
                "cycles_off": off.cycles,
                "cycles_writeback": on.cycles,
                "drained_bytes": on.dma_bytes_written,
                "added_cycles": added,
                "overlap": round(1.0 - added / drain_beats, 3),
            }
    return cells


@pytest.fixture(scope="module")
def drain_bench() -> dict:
    payload = {"n": SCALE_N, "shape": "2x4",
               "cells": _drain_cells(2, 4)}
    merged = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as handle:
            merged = json.load(handle)
    merged["writeback_drain"] = payload
    with open(BENCH_PATH, "w") as handle:
        json.dump(merged, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload


@pytest.mark.parametrize("name", VECTOR_KERNELS)
def test_drain_bytes_fully_simulated(drain_bench, name):
    """Every output byte of the DMA-bound kernels moves through the
    engine in write-back mode (one FP64 per element)."""
    for variant in ("baseline", "copift"):
        cell = drain_bench["cells"][f"{name}/{variant}"]
        assert cell["drained_bytes"] == SCALE_N * 8, (name, variant)


@pytest.mark.parametrize("name", VECTOR_KERNELS)
def test_drain_partially_overlaps(drain_bench, name):
    """Chunked drains pipeline through the engine and overlap peers'
    work: the makespan grows by less than the drain's serial beat
    time (overlap > 0), but not for free (some cycles added)."""
    for variant in ("baseline", "copift"):
        cell = drain_bench["cells"][f"{name}/{variant}"]
        assert cell["added_cycles"] > 0, (name, variant)
        assert cell["overlap"] > 0.0, (name, variant, cell)


def test_drain_section_written_to_bench_file(drain_bench):
    with open(BENCH_PATH) as handle:
        on_disk = json.load(handle)
    assert on_disk["writeback_drain"]["cells"] == drain_bench["cells"]
    # The other sections survive the merge.
    assert "soc_scaling" in on_disk
