"""Table I benchmark: regenerate the kernel-characteristics table.

Asserts the *shape* the paper reports: exact instruction counts where
our kernels mirror the paper's code (expf is Fig. 1b verbatim), and
model-column agreement within the documented reconstruction tolerances
elsewhere (EXPERIMENTS.md discusses the per-kernel deltas).
"""

import pytest

from repro.eval import table1
from repro.kernels.registry import KERNELS


@pytest.fixture(scope="module")
def rows(request):
    return {row.name: row for row in table1.generate(n=1024)}


def test_regenerate_table1(benchmark):
    result = benchmark.pedantic(table1.generate, kwargs={"n": 512},
                                rounds=1, iterations=1)
    assert len(result) == 6


def test_expf_counts_exact(rows):
    """expf implements the paper's Fig. 1b listing instruction for
    instruction: the baseline mix must match Table I exactly."""
    measured = rows["expf"].measured
    assert measured.base.n_int == 43
    assert measured.base.n_fp == 52
    assert measured.copift.n_int in range(43, 49)   # + block overheads
    assert measured.copift.n_fp == 40               # paper: 36, see docs


def test_logf_fp_counts_exact(rows):
    measured = rows["logf"].measured
    assert measured.base.n_fp == 52
    assert measured.copift.n_fp == 36


@pytest.mark.parametrize("name", list(KERNELS))
def test_thread_imbalance_tracks_paper(rows, name):
    """TI drives the whole analysis (Eq. 3); ours must correlate."""
    row = rows[name]
    assert row.measured.thread_imbalance == pytest.approx(
        row.paper.thread_imbalance, abs=0.35)


@pytest.mark.parametrize("name", list(KERNELS))
def test_expected_speedup_tracks_paper(rows, name):
    row = rows[name]
    assert row.measured.s_prime == pytest.approx(
        row.paper.s_prime, abs=0.4)


def test_expf_has_highest_expected_speedup(rows):
    s_primes = {n: r.measured.s_prime for n, r in rows.items()}
    assert max(s_primes, key=s_primes.get) == "expf"


def test_xoshiro_most_integer_heavy(rows):
    """Table I ordering: the xoshiro kernels have the lowest TI."""
    tis = {n: r.measured.thread_imbalance for n, r in rows.items()}
    assert tis["pi_xoshiro128p"] == min(tis.values())


def test_max_block_ordering(rows):
    """More buffers -> smaller maximum block (expf < logf < MC)."""
    blocks = {n: r.measured.max_block for n, r in rows.items()}
    assert blocks["expf"] < blocks["logf"] < blocks["poly_lcg"]


def test_render_smoke(rows):
    text = table1.render(list(rows.values()))
    assert "Table I" in text


def test_table1_all_shape_checks(benchmark, rows):
    """Aggregate: validates all Table-I claims."""
    def check_all():
        test_expf_counts_exact(rows)
        test_logf_fp_counts_exact(rows)
        for name in KERNELS:
            test_thread_imbalance_tracks_paper(rows, name)
            test_expected_speedup_tracks_paper(rows, name)
        test_expf_has_highest_expected_speedup(rows)
        test_xoshiro_most_integer_heavy(rows)
        test_max_block_ordering(rows)
        test_render_smoke(rows)

    benchmark.pedantic(check_all, rounds=1, iterations=1)
