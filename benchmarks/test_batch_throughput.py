"""Batch-engine throughput benchmark: lockstep fleet vs scalar loop.

Measures the acceptance scenario of the vectorized batch engine: a
64-cell homogeneous sweep (one Monte Carlo kernel, 64 distinct PRNG
seeds — one cohort, per-lane immediates) run through
``Sweep(batch=64)`` versus the same cells on the scalar engine at
``jobs=1``.  The ``batch_engine`` section is merged into the repo-root
``BENCH_sim.json`` (alongside the scalar engine's trajectory) so every
PR records the speedup.

The speedup guard is **non-blocking** (xfail below the 3x floor):
rates are host-dependent and the tier-1 suite collects this directory,
so a slow shared runner must not fail the build.  The byte-identity of
the records, however, is a hard assertion — a batch engine that is
fast but wrong is worthless.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.api import Sweep, Workload

#: Homogeneous fleet: one kernel, 64 seeds, one lockstep cohort.
KERNEL = "pi_xoshiro128p"
CELLS = 64
N = 1024
#: Best-of repetitions (simulation is deterministic; the minimum is
#: the least-noise estimate).  The scalar side is ~6x the work, so it
#: gets fewer reps.
BATCH_REPS = 3
SCALAR_REPS = 2
#: Acceptance floor (target is 5x); below it the guard xfails.
FLOOR = 3.0

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_sim.json")


def _workloads() -> list[Workload]:
    return [Workload(KERNEL, "baseline", n=N, seed=seed)
            for seed in range(CELLS)]


def measure() -> dict:
    """Best-of wall-clock for the batch and scalar sweep executors."""
    workloads = _workloads()
    # Warm the interpreter and the numpy dispatch caches.
    Sweep(workloads[:2], batch=2).run(cache=False)

    batch_best = None
    batched = None
    for _ in range(BATCH_REPS):
        t0 = time.perf_counter()
        batched = Sweep(workloads, batch=CELLS).run(cache=False)
        dt = time.perf_counter() - t0
        if batch_best is None or dt < batch_best:
            batch_best = dt
    scalar_best = None
    scalar = None
    for _ in range(SCALAR_REPS):
        t0 = time.perf_counter()
        scalar = Sweep(workloads).run(cache=False)
        dt = time.perf_counter() - t0
        if scalar_best is None or dt < scalar_best:
            scalar_best = dt

    identical = all(
        json.dumps(s.to_json(), sort_keys=True)
        == json.dumps(b.to_json(), sort_keys=True)
        for s, b in zip(scalar, batched))
    instructions = int(sum(round(r.cycles * r.ipc) for r in scalar))
    return {
        "kernel": KERNEL,
        "cells": CELLS,
        "n": N,
        "identical": identical,
        "instructions": instructions,
        "scalar_seconds": round(scalar_best, 4),
        "batch_seconds": round(batch_best, 4),
        "scalar_instr_per_sec": round(instructions / scalar_best, 1),
        "batch_instr_per_sec": round(instructions / batch_best, 1),
        "speedup": round(scalar_best / batch_best, 3),
    }


@pytest.fixture(scope="module")
def bench() -> dict:
    section = measure()
    # Merge, never overwrite: BENCH_sim.json also carries the scalar
    # engine's trajectory (test_sim_throughput.py).
    data = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as handle:
            data = json.load(handle)
    data["batch_engine"] = section
    with open(BENCH_PATH, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return section


class TestBatchThroughput:
    def test_records_byte_identical(self, bench):
        assert bench["identical"] is True

    def test_section_written(self, bench):
        with open(BENCH_PATH) as handle:
            on_disk = json.load(handle)
        assert on_disk["batch_engine"] == bench

    def test_speedup_floor(self, bench):
        """Non-blocking guard: host-dependent, so xfail — the number
        still lands in BENCH_sim.json either way."""
        if bench["speedup"] < FLOOR:
            pytest.xfail(
                f"batch speedup {bench['speedup']}x below the "
                f"{FLOOR}x floor on this host")
        assert bench["speedup"] >= FLOOR


if __name__ == "__main__":
    print(json.dumps(measure(), indent=1, sort_keys=True))
