"""Streaming-traffic benchmark: the serving numbers PRs must not bend.

Runs the shipped two-class ``streamscale`` scenario at two offered
loads — 70% of estimated capacity (healthy operating point) and 110%
(past the knee, where QoS arbitration decides who eats the queueing)
— and records the sustained throughput at the knee plus each class's
p99 at 70% load into a ``streamscale`` section of ``BENCH_sim.json``.

The guards are the artifact's headline claims: under saturating load
the weighted-TDM arbiter must keep the latency-critical class's p99
measurably below the bulk class's, and the knee throughput must stay
positive — a scheduling regression that silently serializes the
clusters or inverts the weights fails here before it reaches the
artifact.
"""

from __future__ import annotations

import json
import os

from repro.eval.streamscale import generate

#: Arrival window per replication: long enough for stable percentiles,
#: short enough for PR CI.
DURATION = 120_000
#: Healthy load and past-the-knee load, as capacity fractions.
LOADS = (0.7, 1.1)
SEEDS = (1, 2)
#: The bulk class's p99 must exceed the critical class's by at least
#: this factor at the saturating load point (observed ~10-15x; 2x
#: catches an inverted or disconnected arbiter without flaking).
MIN_SEPARATION = 2.0

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_sim.json")


def measure() -> dict:
    payload = generate(loads=LOADS, duration=DURATION, seeds=SEEDS)
    healthy, knee = payload["points"]
    by_name = {c["name"]: c for c in healthy["classes"]}
    knee_by_name = {c["name"]: c for c in knee["classes"]}
    hi, lo = (p["name"] for p in payload["profiles"][:2])
    return {
        "policy": payload["policy"],
        "duration": DURATION,
        "seeds": list(SEEDS),
        "loads": list(LOADS),
        "knee_throughput_per_mcycle":
            round(knee["throughput"] * 1e6, 1),
        "knee_completed": knee["completed"],
        f"p99_{hi}_at_70pct": by_name[hi]["p99"],
        f"p99_{lo}_at_70pct": by_name[lo]["p99"],
        "knee_separation": round(
            knee_by_name[lo]["p99"]
            / max(knee_by_name[hi]["p99"], 1), 2),
    }


class TestStreamscale:
    def test_knee_numbers_and_qos_separation(self):
        payload = measure()
        assert payload["knee_throughput_per_mcycle"] > 0, payload
        assert payload["knee_separation"] >= MIN_SEPARATION, payload

        merged = {}
        if os.path.exists(BENCH_PATH):
            with open(BENCH_PATH) as handle:
                merged = json.load(handle)
        merged["streamscale"] = payload
        with open(BENCH_PATH, "w") as handle:
            json.dump(merged, handle, indent=1, sort_keys=True)
            handle.write("\n")
