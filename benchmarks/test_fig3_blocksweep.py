"""Figure 3 benchmark: poly_lcg IPC across problem and block sizes.

The paper's convergence claims, asserted on a scaled-down grid (the
full grid is available via ``python -m repro.eval fig3 --full``):

* IPC rises with problem size for every block size;
* small blocks converge to their asymptote at smaller problem sizes;
* the optimal block size does not shrink as the problem grows.
"""

import pytest

from repro.eval import fig3

BLOCKS = (32, 64, 128, 256)
PROBLEMS = (768, 1536, 3072, 6144, 12288)


@pytest.fixture(scope="module")
def sweep():
    return fig3.generate(block_sizes=BLOCKS, problem_sizes=PROBLEMS)


def test_regenerate_fig3_cell(benchmark):
    """Times one cell of the Fig. 3 grid."""
    data = benchmark.pedantic(
        fig3.generate,
        kwargs={"block_sizes": (64,), "problem_sizes": (1536,)},
        rounds=1, iterations=1)
    assert data.ipc[1536][64] > 1.0


@pytest.mark.parametrize("block", BLOCKS)
def test_ipc_rises_with_problem_size(sweep, block):
    series = [sweep.ipc[n][block] for n in PROBLEMS]
    assert series[-1] > series[0]
    # Monotone within measurement noise.
    for earlier, later in zip(series, series[1:]):
        assert later >= earlier - 0.02


def test_all_cells_dual_issue_at_scale(sweep):
    for n in PROBLEMS[2:]:
        for block in BLOCKS:
            assert sweep.ipc[n][block] > 1.0, (n, block)


def test_small_blocks_converge_earlier(sweep):
    """The '>99.5%' annotation moves right with block size."""
    converged = [sweep.converged_problem(block) for block in BLOCKS]
    assert converged[0] <= converged[-1]


def test_peak_block_never_shrinks(sweep):
    """The 'peak' annotation shifts toward larger blocks."""
    peaks = [sweep.peak_block(n) for n in PROBLEMS]
    assert peaks[-1] >= peaks[0]


def test_asymptote_matches_fig2_steady_state(sweep):
    """'The IPC converges to the steady-state IPC presented in
    Fig. 2a' — the largest-problem best-block IPC is the Fig. 2 value."""
    best = max(sweep.ipc[PROBLEMS[-1]].values())
    assert 1.15 <= best <= 1.8


def test_fig3_all_shape_checks(benchmark, sweep):
    """Aggregate: validates the Fig. 3 convergence claims."""
    def check_all():
        for block in BLOCKS:
            test_ipc_rises_with_problem_size(sweep, block)
        test_all_cells_dual_issue_at_scale(sweep)
        test_small_blocks_converge_earlier(sweep)
        test_peak_block_never_shrinks(sweep)
        test_asymptote_matches_fig2_steady_state(sweep)

    benchmark.pedantic(check_all, rounds=1, iterations=1)
