"""Shim for environments without PEP 660 support (old pip / no wheel).

All metadata lives in pyproject.toml; ``pip install -e .`` is the
supported path.  This file only enables ``python setup.py develop`` as
a fallback where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
