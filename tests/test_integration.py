"""Cross-cutting integration and invariant tests.

These check properties that span the whole stack: timing configuration
must never change functional results, counters must be internally
consistent, and the full kernel matrix must verify under non-default
microarchitectures.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.registry import KERNELS
from repro.sim import CoreConfig


#: A few deliberately weird-but-legal microarchitectures.
WEIRD_CONFIGS = [
    CoreConfig(fpss_queue_depth=1, taken_branch_penalty=3),
    CoreConfig(model_int_wb_hazard=False, model_l0_icache=False),
    CoreConfig(ssr_fill_latency=9, fp_response_latency=4),
]


@pytest.mark.parametrize("config_index",
                         range(len(WEIRD_CONFIGS)))
@pytest.mark.parametrize("name", list(KERNELS))
def test_timing_config_never_changes_results(name, config_index):
    """The timing model is observability only: any configuration must
    produce bit-identical architectural results (each kernel's verify()
    checks against its golden model)."""
    config = WEIRD_CONFIGS[config_index]
    kernel_def = KERNELS[name]
    kernel_def.build_baseline(128).run(config=config)
    kernel_def.build_copift(128, block=32 if name not in (
        "pi_lcg", "poly_lcg", "pi_xoshiro128p", "poly_xoshiro128p")
        else 32).run(config=config)


@pytest.mark.parametrize("name", list(KERNELS))
def test_counters_consistent(name):
    """fp_issued = dispatched + sequencer replays; instruction counts
    equal fetch counts on the integer side."""
    kernel_def = KERNELS[name]
    result, _ = kernel_def.build_copift(256, block=32).run(check=False)
    c = result.counters
    assert c.fp_issued == c.fp_dispatched + c.sequencer_issued
    fetches = c.icache_l0_hits + c.icache_l0_misses
    # Every int instruction and every FP dispatch consumed one fetch.
    assert fetches == c.int_issued + c.fp_dispatched


@pytest.mark.parametrize("name", list(KERNELS))
def test_region_nested_in_total(name):
    kernel_def = KERNELS[name]
    result, _ = kernel_def.build_baseline(128).run(check=False)
    region = result.region("main")
    assert region.cycles <= result.cycles
    assert region.counters.int_issued <= result.counters.int_issued


@pytest.mark.parametrize("name", list(KERNELS))
def test_activity_counts_cover_issues(name):
    """Per-class activity counters must sum to the issue counts."""
    kernel_def = KERNELS[name]
    result, _ = kernel_def.build_copift(256, block=32).run(check=False)
    c = result.counters
    int_activity = (c.int_alu_ops + c.int_mul_ops + c.int_loads
                    + c.int_stores + c.branches + c.csr_ops)
    fp_activity = (c.fp_adds + c.fp_muls + c.fp_fmas + c.fp_divs
                   + c.fp_cmps + c.fp_cvts + c.fp_mvs + c.fp_loads
                   + c.fp_stores)
    assert int_activity == c.int_issued
    assert fp_activity == c.fp_issued


def test_speedup_is_config_sensitive_but_bounded():
    """Dual-issue gains cannot exceed 2x from overlap alone; with SSR
    elision the end-to-end speedup stays below S' ~ 2.2 for expf."""
    kernel_def = KERNELS["expf"]
    base, _ = kernel_def.build_baseline(512).run(check=False)
    cop, _ = kernel_def.build_copift(512, block=64).run(check=False)
    speedup = base.region("main").cycles / cop.region("main").cycles
    assert 1.0 < speedup < 2.3


@settings(max_examples=10, deadline=None)
@given(queue=st.integers(min_value=1, max_value=32),
       penalty=st.integers(min_value=0, max_value=4))
def test_pi_lcg_hits_invariant_under_timing(queue, penalty):
    """Property: hit counts are timing-invariant (run verifies)."""
    config = CoreConfig(fpss_queue_depth=queue,
                        taken_branch_penalty=penalty)
    KERNELS["pi_lcg"].build_baseline(64).run(config=config)


def test_frep_buffer_too_small_fails_loudly():
    """Every COPIFT kernel needs the 16-entry sequencer buffer; an
    8-entry machine must reject the poly kernels (14-instr bodies)."""
    from repro.sim import SimulationError
    config = CoreConfig(frep_buffer_size=8)
    with pytest.raises(SimulationError, match="sequencer buffer"):
        KERNELS["poly_lcg"].build_copift(128, block=32).run(
            config=config)


def test_all_kernels_scale_with_n():
    """Cycles grow linearly in N (no superlinear artifacts)."""
    for name, kernel_def in KERNELS.items():
        small, _ = kernel_def.build_baseline(128).run(check=False)
        large, _ = kernel_def.build_baseline(512).run(check=False)
        ratio = large.region("main").cycles / small.region("main").cycles
        assert 3.6 <= ratio <= 4.4, name
