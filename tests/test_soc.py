"""SoC subsystem tests: interconnect arbitration, shared L2, per-cluster
DMA channels, cluster-then-core partitioning and the SocBackend.

Locks the layering invariant the subsystem promises — a 1-cluster SoC
with an uncontended interconnect is cycle-identical to the equivalent
bare ``ClusterMachine`` for all six kernels — plus the contention
behaviour that makes multiple clusters interesting: a shared link
narrower than the aggregate DMA demand stretches transfers, shows up
in per-link stall stats, and disappears with the contention model off.
"""

import numpy as np
import pytest

from repro.cluster import ClusterDma, partition_kernel
from repro.kernels.common import MAIN_REGION
from repro.kernels.registry import KERNELS, kernel
from repro.sim import MemoryError_
from repro.soc import (
    L2Memory,
    SocConfig,
    SocDmaChannel,
    SocInterconnect,
    SocMachine,
    SocWorkload,
    partition_soc_kernel,
)


class TestSocConfig:
    def test_defaults_valid(self):
        config = SocConfig()
        assert config.n_clusters == 2
        assert config.cluster.n_cores == 8

    @pytest.mark.parametrize("kwargs", [
        {"n_clusters": 0},
        {"link_beats_per_cycle": 0},
        {"max_beats_per_cluster": 0},
        {"l2_latency": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SocConfig(**kwargs)


class TestSocInterconnect:
    def test_uncontended_one_beat_per_cycle(self):
        link = SocInterconnect(n_clusters=2)
        assert link.transfer(0, nbeats=4, start=100) == 104
        assert link.stats[0].beats == 4
        assert link.stats[0].stall_cycles == 0

    def test_zero_beats_is_free(self):
        link = SocInterconnect(n_clusters=1)
        assert link.transfer(0, nbeats=0, start=7) == 7

    def test_contention_stretches_the_later_transfer(self):
        # Three clusters demanding 1 beat/cycle on a 2-beat link: the
        # third transfer over the same window must stretch.
        link = SocInterconnect(n_clusters=3, link_beats_per_cycle=2)
        assert link.transfer(0, nbeats=8, start=0) == 8
        assert link.transfer(1, nbeats=8, start=0) == 8
        third = link.transfer(2, nbeats=8, start=0)
        assert third > 8
        assert link.stats[2].stall_cycles == third - 8
        assert link.total_stall_cycles == link.stats[2].stall_cycles

    def test_per_cluster_cap_limits_burst_width(self):
        # cap=2 on a 4-beat link: one cluster's burst moves 2
        # beats/cycle, leaving room for a peer in every cycle.
        link = SocInterconnect(n_clusters=2, link_beats_per_cycle=4,
                               max_beats_per_cluster=2)
        assert link.transfer(0, nbeats=8, start=0) == 4
        assert link.transfer(1, nbeats=8, start=0) == 4
        assert link.total_stall_cycles == 0

    def test_fairness_cap_prevents_starvation(self):
        # Cluster 0 books a long window; cluster 1's beats must slot
        # into the same cycles (cap 1 < link 2), not queue behind.
        link = SocInterconnect(n_clusters=2, link_beats_per_cycle=2,
                               max_beats_per_cluster=1)
        link.transfer(0, nbeats=64, start=0)
        assert link.transfer(1, nbeats=4, start=0) == 4
        assert link.stats[1].stall_cycles == 0

    def test_disabled_is_ideal(self):
        link = SocInterconnect(n_clusters=2, enabled=False)
        assert link.transfer(0, nbeats=16, start=0) == 16
        assert link.transfer(1, nbeats=16, start=0) == 16
        assert link.total_stall_cycles == 0
        assert link.total_beats == 32

    def test_stall_rate(self):
        link = SocInterconnect(n_clusters=2, link_beats_per_cycle=1)
        assert link.stall_rate() == 0.0
        link.transfer(0, nbeats=4, start=0)
        link.transfer(1, nbeats=4, start=0)
        assert link.stall_rate() > 0.0


class TestL2Memory:
    def test_alloc_and_stage(self):
        l2 = L2Memory(size=1 << 12)
        data = np.arange(16, dtype=np.float64)
        addr = l2.stage("x", data)
        assert l2.region_bytes("x") == data.tobytes()
        assert l2.regions["x"] == (addr, data.nbytes)
        assert l2.used >= data.nbytes

    def test_duplicate_region_rejected(self):
        l2 = L2Memory(size=1 << 12)
        l2.alloc("x", 64)
        with pytest.raises(ValueError, match="already allocated"):
            l2.alloc("x", 64)

    def test_capacity_enforced(self):
        l2 = L2Memory(size=256)
        l2.alloc("a", 200)
        with pytest.raises(MemoryError_, match="does not fit"):
            l2.alloc("b", 100)

    def test_traffic_accounting(self):
        l2 = L2Memory()
        l2.note_read(512)
        l2.note_write(128)
        assert l2.bytes_read == 512
        assert l2.bytes_written == 128
        assert l2.bytes_touched == 640
        assert (l2.reads, l2.writes) == (1, 1)


class TestSocDmaChannel:
    def test_uncontended_matches_cluster_dma(self):
        """Same transfer schedule => same completion times as the
        standalone engine (the invariant's DMA leg)."""
        plain = ClusterDma(bandwidth=8, setup_latency=16)
        channel = SocDmaChannel(
            cluster_id=0, interconnect=SocInterconnect(n_clusters=1),
            bandwidth=8, setup_latency=16)
        for core, dst, src, nbytes, now in [
                (0, 0x1000, 0x80000, 64, 100),
                (1, 0x2000, 0x81000, 512, 110),
                (0, 0x3000, 0x82000, 8, 400)]:
            assert plain.start(core, dst, src, nbytes, now) \
                == channel.start(core, dst, src, nbytes, now)
        assert channel.bytes_moved == plain.bytes_moved

    def test_l2_traffic_counted(self):
        from repro.cluster.partition import L2_BASE

        l2 = L2Memory()
        channel = SocDmaChannel(
            cluster_id=0, interconnect=SocInterconnect(n_clusters=1),
            l2=l2, bandwidth=8, setup_latency=16)
        channel.start(0, 0x1000, L2_BASE, 256, now=0)     # L2 -> TCDM
        channel.start(0, L2_BASE + 0x400, 0x1000, 64, now=0)
        assert l2.bytes_read == 256
        assert l2.bytes_written == 64

    def test_l2_latency_delays_completion(self):
        link = SocInterconnect(n_clusters=1)
        fast = SocDmaChannel(cluster_id=0, interconnect=link,
                             bandwidth=8, setup_latency=16)
        slow = SocDmaChannel(cluster_id=0, interconnect=link,
                             l2_latency=20, bandwidth=8,
                             setup_latency=16)
        assert slow.start(0, 0x0, 0x80000, 64, now=0) \
            == fast.start(0, 0x0, 0x80000, 64, now=0) + 20


class TestOneClusterInvariant:
    """A 1-cluster SoC (default, uncontended interconnect) must be
    cycle-identical to the equivalent bare ClusterMachine — the
    acceptance invariant, asserted for all six kernels."""

    @pytest.mark.parametrize("name", sorted(KERNELS))
    @pytest.mark.parametrize("variant", ("baseline", "copift"))
    def test_cycle_identical_to_cluster(self, name, variant):
        kd = kernel(name)
        cluster_result = partition_kernel(kd, 512, 4, variant=variant)\
            .run(check=True)
        soc_result = partition_soc_kernel(kd, 512, 1, 4,
                                          variant=variant)\
            .run(check=True)
        assert soc_result.cycles == cluster_result.cycles
        assert vars(soc_result.counters) \
            == vars(cluster_result.counters)
        assert soc_result.region(MAIN_REGION).cycles \
            == cluster_result.region(MAIN_REGION).cycles
        assert soc_result.dma_bytes == cluster_result.dma_bytes
        assert soc_result.barrier_count \
            == cluster_result.barrier_count
        assert sum(soc_result.link_stall_cycles) == 0


class TestSocPartition:
    def test_cluster_then_core_chunks(self):
        w = partition_soc_kernel(kernel("pi_lcg"), 1024, 2, 4)
        assert w.n_clusters == 2 and w.n_cores == 4
        assert len(w.cluster_workloads) == 2
        assert len(w.instances) == 8
        assert all(i.n == 128 for i in w.instances)

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError, match="chunk evenly"):
            partition_soc_kernel(kernel("pi_lcg"), 1000, 3, 4)
        with pytest.raises(ValueError, match="n_clusters"):
            partition_soc_kernel(kernel("pi_lcg"), 512, 0, 4)
        with pytest.raises(ValueError, match="n_cores"):
            partition_soc_kernel(kernel("pi_lcg"), 512, 2, 0)

    def test_seeds_globally_unique(self):
        """Mirror cores of different clusters must not share PRNG
        streams (the cross-cluster seed bug this layer must avoid)."""
        w = partition_soc_kernel(kernel("pi_lcg"), 1024, 2, 2)
        images = [bytes(i.memory.data) for i in w.instances]
        programs = [repr(i.program.instructions) for i in w.instances]
        distinct = {(img, prog)
                    for img, prog in zip(images, programs)}
        assert len(distinct) == 4

    def test_one_cluster_matches_cluster_partition(self):
        """C=1 builds byte-identical instances to partition_kernel."""
        soc = partition_soc_kernel(kernel("expf"), 512, 1, 4,
                                   variant="copift")
        flat = partition_kernel(kernel("expf"), 512, 4,
                                variant="copift")
        for a, b in zip(soc.instances, flat.instances):
            assert bytes(a.memory.data) == bytes(b.memory.data)
            assert repr(a.program.instructions) \
                == repr(b.program.instructions)

    def test_staged_inputs_live_in_shared_l2(self):
        w = partition_soc_kernel(kernel("expf"), 512, 2, 2)
        # run(check=True) verifies every core's results AND that the
        # TCDM contents match the shared L2 copy byte for byte.
        result = w.run(check=True)
        assert result.l2_bytes_read == 512 * 8
        assert result.dma_bytes == 512 * 8

    def test_l2_overflow_rejected(self):
        w = partition_soc_kernel(kernel("expf"), 512, 2, 2)
        tiny = SocConfig(l2_size=1 << 10)
        with pytest.raises(MemoryError_, match="does not fit"):
            w.run(config=tiny, check=False)


class TestSocWriteback:
    """Output write-back across the SoC: drains hit the interconnect
    and land in the shared L2 as the authoritative result copy."""

    def test_drained_bytes_reach_the_shared_l2(self):
        w = partition_soc_kernel(kernel("expf"), 512, 2, 2,
                                 writeback=True)
        assert w.writeback
        # run(check=True) also verifies the shared-L2 drain regions
        # hold the computed outputs byte for byte.
        result = w.run(check=True)
        assert result.l2_bytes_read == 512 * 8
        assert result.l2_bytes_written == 512 * 8
        assert result.dma_bytes_written == 512 * 8
        assert result.dma_bytes == 2 * 512 * 8

    def test_drain_beats_cross_the_interconnect(self):
        on = partition_soc_kernel(kernel("expf"), 1024, 2, 2,
                                  writeback=True).run(check=False)
        off = partition_soc_kernel(kernel("expf"), 1024, 2, 2)\
            .run(check=False)
        # Drains double the link traffic (8 bytes/beat each way).
        assert sum(on.link_beats) == 2 * sum(off.link_beats)
        assert on.cycles > off.cycles

    def test_drain_regions_capacity_enforced_up_front(self):
        w = partition_soc_kernel(kernel("expf"), 512, 2, 2,
                                 writeback=True)
        # Inputs alone fit; inputs + drain regions do not.
        tiny = SocConfig(l2_size=512 * 8 + 64)
        with pytest.raises(MemoryError_, match="does not fit"):
            w.run(config=tiny, check=False)

    def test_writeback_off_soc_unchanged(self):
        base = partition_soc_kernel(kernel("logf"), 512, 2, 2)
        explicit = partition_soc_kernel(kernel("logf"), 512, 2, 2,
                                        writeback=False)
        assert base.run(check=False).cycles \
            == explicit.run(check=False).cycles


class TestSocContention:
    def _run(self, n_clusters, **config_kwargs):
        w = partition_soc_kernel(kernel("expf"), 4096, n_clusters, 4,
                                 variant="copift")
        return w.run(config=SocConfig(**config_kwargs), check=True)

    def test_four_clusters_contend_on_the_link(self):
        result = self._run(4)
        assert sum(result.link_stall_cycles) > 0

    def test_contention_off_removes_stalls(self):
        contended = self._run(4)
        ideal = self._run(4, model_contention=False)
        assert sum(ideal.link_stall_cycles) == 0
        assert ideal.cycles <= contended.cycles

    def test_wider_link_reduces_stalls(self):
        narrow = self._run(4, link_beats_per_cycle=1)
        wide = self._run(4, link_beats_per_cycle=4)
        assert sum(wide.link_stall_cycles) \
            < sum(narrow.link_stall_cycles)
        assert wide.cycles <= narrow.cycles

    def test_l2_latency_slows_staged_kernels(self):
        base = self._run(2)
        slow = self._run(2, l2_latency=64)
        assert slow.cycles >= base.cycles
        assert slow.dma_busy_cycles > base.dma_busy_cycles

    def test_two_clusters_do_not_contend_at_default_link(self):
        result = self._run(2)
        assert sum(result.link_stall_cycles) == 0


class TestSocMachineGuards:
    def test_too_many_clusters_rejected(self):
        soc = SocMachine(SocConfig(n_clusters=1))
        soc.add_cluster()
        with pytest.raises(ValueError, match="configured for 1"):
            soc.add_cluster()

    def test_empty_soc_rejected(self):
        with pytest.raises(ValueError, match="no clusters"):
            SocMachine().run()

    def test_region_missing_raises(self):
        w = partition_soc_kernel(kernel("pi_lcg"), 512, 2, 2)
        result = w.run(check=False)
        with pytest.raises(KeyError, match="nosuch"):
            result.region("nosuch")


class TestSocWorkloadShape:
    def test_dataclass_fields(self):
        w = partition_soc_kernel(kernel("logf"), 512, 2, 2,
                                 variant="copift")
        assert isinstance(w, SocWorkload)
        assert w.block is not None
        assert w.n == 512
        assert w.name == "logf"
