"""Tests for the automated two-phase COPIFT transformer + dither kernel."""

import numpy as np
import pytest

from repro.copift.frep_mapping import FrepBodyError
from repro.copift.transform import TwoPhaseSpec, generate_two_phase
from repro.sim import Allocator, Machine, Memory
from repro.kernels.dither import (
    build_baseline,
    build_copift,
    reference_dither,
)


def _identity_spec(**overrides) -> TwoPhaseSpec:
    """Minimal spec: int phase writes i, FP phase copies it out."""

    def emit_setup(b):
        b.li("s0", 0)  # element counter

    def emit_int_element(b, u):
        b.sw("s0", 8 * u, "a7")
        b.addi("s0", "s0", 1)

    def emit_fp_body(b):
        b.cfcvt_d_wu("fa0", "ft0")
        b.fmv_d("ft2", "fa0")

    kwargs = dict(
        name="ident",
        emit_setup=emit_setup,
        emit_int_element=emit_int_element,
        emit_fp_body=emit_fp_body,
        pops_per_element=1,
        pushes_per_element=1,
        unroll=4,
    )
    kwargs.update(overrides)
    return TwoPhaseSpec(**kwargs)


class TestGenerator:
    def test_identity_pipeline(self):
        memory = Memory()
        alloc = Allocator(memory)
        build = generate_two_phase(_identity_spec(), n=64, block=16,
                                   alloc=alloc)
        machine = Machine(memory=memory)
        machine.run(build.program)
        out = memory.read_array(build.output_addr, np.float64, 64)
        np.testing.assert_array_equal(out, np.arange(64, dtype=float))

    def test_region_marked(self):
        memory = Memory()
        alloc = Allocator(memory)
        build = generate_two_phase(_identity_spec(), n=32, block=16,
                                   alloc=alloc)
        machine = Machine(memory=memory)
        result = machine.run(build.program)
        assert "main" in result.regions

    def test_dual_issue_emerges(self):
        memory = Memory()
        alloc = Allocator(memory)
        build = generate_two_phase(_identity_spec(), n=256, block=32,
                                   alloc=alloc)
        machine = Machine(memory=memory)
        result = machine.run(build.program)
        assert result.counters.sequencer_issued > 0
        # 2 FP ops + ~3 int ops per element overlap:
        assert result.region("main").ipc > 1.0

    def test_validates_pop_count(self):
        spec = _identity_spec(pops_per_element=2)
        with pytest.raises(FrepBodyError, match="pops ft0 1"):
            generate_two_phase(spec, 32, 16, Allocator(Memory()))

    def test_validates_push_count(self):
        spec = _identity_spec(pushes_per_element=2)
        with pytest.raises(FrepBodyError, match="pushes ft2 1"):
            generate_two_phase(spec, 32, 16, Allocator(Memory()))

    def test_validates_body_legality(self):
        def bad_body(b):
            b.fld("fa0", 0, "a1")
            b.fmv_d("ft2", "fa0")
            b.fmv_d("fa1", "ft0")

        spec = _identity_spec(emit_fp_body=bad_body)
        with pytest.raises(FrepBodyError, match="illegal"):
            generate_two_phase(spec, 32, 16, Allocator(Memory()))

    def test_validates_sizes(self):
        with pytest.raises(ValueError, match="multiple of block"):
            generate_two_phase(_identity_spec(), 40, 16,
                               Allocator(Memory()))
        with pytest.raises(ValueError, match="unroll"):
            generate_two_phase(_identity_spec(), 60, 30,
                               Allocator(Memory()))
        with pytest.raises(ValueError, match="2 blocks"):
            generate_two_phase(_identity_spec(), 16, 16,
                               Allocator(Memory()))

    def test_no_output_stream_mode(self):
        """pushes_per_element=0: accumulate-only kernels."""

        def body(b):
            b.cfcvt_d_wu("fa0", "ft0")
            b.fadd_d("fs1", "fs1", "fa0")

        def finalize(b):
            b.li("t0", 0x800)
            b.fsd("fs1", 0, "t0")

        spec = _identity_spec(emit_fp_body=body,
                              pushes_per_element=0,
                              emit_finalize=finalize)
        memory = Memory()
        alloc = Allocator(memory, base=0x1000)
        build = generate_two_phase(spec, 64, 16, alloc)
        assert build.output_addr is None
        machine = Machine(memory=memory)
        machine.run(build.program)
        assert memory.read_f64(0x800) == sum(range(64))


class TestDitherKernel:
    def test_copift_correct(self):
        build_copift(256, block=32).run()

    def test_baseline_correct(self):
        build_baseline(256).run()

    def test_copift_faster_than_baseline(self):
        base, _ = build_baseline(1024).run()
        cop, _ = build_copift(1024, block=64).run()
        assert base.region("main").cycles \
            > 1.1 * cop.region("main").cycles

    def test_generated_code_dual_issues(self):
        result, _ = build_copift(1024, block=64)[1] if False else \
            build_copift(1024, block=64).run()
        assert result.region("main").ipc > 1.0

    def test_amplitude_parameter(self):
        instance = build_copift(128, block=32, amplitude=2.0)
        _, machine = instance.run()
        out = machine.memory.read_array(instance.notes["out_addr"],
                                        np.float64, 128)
        assert np.all(np.abs(out) <= 1.0)
        assert np.abs(out).max() > 0.5

    def test_reference_distribution(self):
        d = reference_dither(4096, seed=1, amplitude=1.0)
        assert abs(d.mean()) < 0.02
        assert np.all((-0.5 <= d) & (d < 0.5))
