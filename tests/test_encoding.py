"""Binary-encoding tests, including the custom-1 opcode allocation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import ProgramBuilder, make_instruction
from repro.isa.encoding import (
    CUSTOM_0,
    CUSTOM_1,
    EncodingError,
    OP_FP,
    decode,
    encode,
    encode_program,
)
from repro.isa.instructions import COPIFT_REENCODINGS
from repro.isa.registers import FP_ABI_NAMES, INT_ABI_NAMES


class TestKnownEncodings:
    """Spot checks against hand-assembled RV32 words."""

    def test_add(self):
        # add a0, a1, a2 = 0x00C58533
        word = encode(make_instruction("add", "a0", "a1", "a2"))
        assert word == 0x00C58533

    def test_addi(self):
        # addi a0, a0, 1 = 0x00150513
        word = encode(make_instruction("addi", "a0", "a0", 1))
        assert word == 0x00150513

    def test_lw(self):
        # lw a0, 4(sp) = 0x00412503
        word = encode(make_instruction("lw", "a0", 4, "sp"))
        assert word == 0x00412503

    def test_sw(self):
        # sw a0, 8(sp) = 0x00A12423
        word = encode(make_instruction("sw", "a0", 8, "sp"))
        assert word == 0x00A12423

    def test_mul(self):
        # mul a0, a1, a2 = 0x02C58533
        word = encode(make_instruction("mul", "a0", "a1", "a2"))
        assert word == 0x02C58533

    def test_fld(self):
        # fld fa0, 0(a1) = 0x0005B507
        word = encode(make_instruction("fld", "fa0", 0, "a1"))
        assert word == 0x0005B507

    def test_imm_range_checked(self):
        with pytest.raises(EncodingError, match="12 bits"):
            encode(make_instruction("addi", "a0", "a0", 5000))

    def test_meta_not_encodable(self):
        with pytest.raises(EncodingError):
            encode(make_instruction("li", "a0", 7))


class TestCustom1Allocation:
    """Paper §II-B: copy the original encodings into custom-1."""

    @pytest.mark.parametrize("original,custom",
                             sorted(COPIFT_REENCODINGS.items()))
    def test_opcode_moved_funct_preserved(self, original, custom):
        from repro.isa import spec as get_spec

        def build(mnemonic):
            s = get_spec(mnemonic)
            return make_instruction(
                mnemonic,
                *[("fa0" if r in ("frd",) else
                   "a0" if r == "rd" else
                   "fa1" if r == "frs1" else
                   "a1" if r == "rs1" else "fa2")
                  for r in s.roles])

        orig_word = encode(build(original))
        custom_word = encode(build(custom))
        assert orig_word & 0x7F == OP_FP
        assert custom_word & 0x7F == CUSTOM_1
        # funct7 and funct3 fields are copied verbatim.
        assert orig_word >> 25 == custom_word >> 25
        assert (orig_word >> 12) & 0x7 == (custom_word >> 12) & 0x7

    def test_custom_instructions_roundtrip(self):
        for custom in COPIFT_REENCODINGS.values():
            from repro.isa import spec as get_spec
            s = get_spec(custom)
            operands = ["fa0", "fa1", "fa2"][:len(s.roles)]
            instr = make_instruction(custom, *operands)
            decoded = decode(encode(instr))
            assert decoded.mnemonic == custom
            assert decoded.operands == instr.operands


class TestSnitchExtensions:
    def test_frep_encoding(self):
        word = encode(make_instruction("frep.o", "t0", 10))
        assert word & 0x7F == CUSTOM_0
        decoded = decode(word)
        assert decoded.mnemonic == "frep.o"
        assert decoded.imm == 10

    def test_scfgwi_roundtrip(self):
        instr = make_instruction("scfgwi", "t1", 0xA2)
        decoded = decode(encode(instr))
        assert decoded.mnemonic == "scfgwi"
        assert decoded.imm == 0xA2

    def test_ssr_toggle_roundtrip(self):
        for m in ("ssr.enable", "ssr.disable"):
            assert decode(encode(make_instruction(m))).mnemonic == m

    def test_dma_copy_roundtrip(self):
        instr = make_instruction("dma.copy", "a0", "a1", "a2")
        decoded = decode(encode(instr))
        assert decoded.mnemonic == "dma.copy"
        assert decoded.operands == instr.operands


class TestProgramEncoding:
    def test_branch_displacement(self):
        b = ProgramBuilder()
        b.label("loop")
        b.addi("a0", "a0", -1)
        b.bnez("a0", "loop") if False else b.bne("a0", "zero", "loop")
        words = encode_program(b.build())
        # bne at index 1 branching to index 0: displacement -4.
        word = words[1]
        imm12 = (word >> 31) & 1
        imm11 = (word >> 7) & 1
        imm10_5 = (word >> 25) & 0x3F
        imm4_1 = (word >> 8) & 0xF
        displacement = (imm12 << 12 | imm11 << 11 | imm10_5 << 5
                        | imm4_1 << 1)
        if displacement >= 1 << 12:
            displacement -= 1 << 13
        assert displacement == -4

    def test_whole_kernel_body_encodes(self, fig1b_program):
        words = encode_program(fig1b_program)
        assert len(words) == len(fig1b_program)
        assert all(0 <= w < (1 << 32) for w in words)


# ---------------------------------------------------------------------------
# Property: encode -> decode round trip
# ---------------------------------------------------------------------------

_RT_RR = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
          "slt", "sltu", "mul", "mulh", "mulhu", "div", "remu"]
_RT_RI = ["addi", "andi", "ori", "xori", "slti"]
_RT_FP = ["fadd.d", "fsub.d", "fmul.d", "fsgnj.d", "fmin.d"]
_RT_FMA = ["fmadd.d", "fmsub.d", "fnmadd.d", "fnmsub.d"]

_IREG = st.sampled_from(INT_ABI_NAMES)
_FREG = st.sampled_from(FP_ABI_NAMES)


@settings(max_examples=200)
@given(st.data())
def test_encode_decode_roundtrip(data):
    kind = data.draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        instr = make_instruction(data.draw(st.sampled_from(_RT_RR)),
                                 data.draw(_IREG), data.draw(_IREG),
                                 data.draw(_IREG))
    elif kind == 1:
        instr = make_instruction(
            data.draw(st.sampled_from(_RT_RI)), data.draw(_IREG),
            data.draw(_IREG),
            data.draw(st.integers(min_value=-2048, max_value=2047)))
    elif kind == 2:
        mnemonic = data.draw(st.sampled_from(["lw", "sw", "fld", "fsd"]))
        reg = data.draw(_FREG) if mnemonic in ("fld", "fsd") \
            else data.draw(_IREG)
        instr = make_instruction(
            mnemonic, reg,
            data.draw(st.integers(min_value=-2048, max_value=2047)),
            data.draw(_IREG))
    elif kind == 3:
        instr = make_instruction(data.draw(st.sampled_from(_RT_FP)),
                                 data.draw(_FREG), data.draw(_FREG),
                                 data.draw(_FREG))
    elif kind == 4:
        instr = make_instruction(data.draw(st.sampled_from(_RT_FMA)),
                                 data.draw(_FREG), data.draw(_FREG),
                                 data.draw(_FREG), data.draw(_FREG))
    else:
        from repro.isa import spec as get_spec
        mnemonic = data.draw(st.sampled_from(
            ["fcvt.d.w", "fcvt.w.d", "flt.d", "fclass.d"]))
        operands = []
        for role in get_spec(mnemonic).roles:
            if role.startswith("f"):
                operands.append(data.draw(_FREG))
            else:
                operands.append(data.draw(_IREG))
        instr = make_instruction(mnemonic, *operands)

    decoded = decode(encode(instr))
    assert decoded.mnemonic == instr.mnemonic
    assert decoded.operands == instr.operands
