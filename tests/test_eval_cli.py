"""CLI tests: artifact routing, --out for every artifact, --json."""

import json

import pytest

from repro.eval import clusterscale
from repro.eval.__main__ import main
from repro.eval.io import clusterscale_payload, write_output


class TestClusterScaleArtifact:
    @pytest.fixture(scope="class")
    def data(self):
        return clusterscale.generate(n=512, cores=(1, 2))

    def test_all_kernels_both_variants(self, data):
        names = {(r.name, r.variant) for r in data.rows}
        assert len(names) == 12

    def test_one_core_column_matches_single_machine(self, data):
        from repro.eval import measure_kernel
        from repro.kernels.registry import kernel

        row = data.row("pi_lcg", "baseline")
        m = measure_kernel(kernel("pi_lcg"), n=512)
        assert row.point(1).cycles == m.baseline.cycles

    def test_speedup_positive_and_bounded(self, data):
        for row in data.rows:
            p = row.point(2)
            assert 1.0 < p.speedup < 2.05, (row.name, row.variant)
            assert p.efficiency == pytest.approx(p.speedup / 2)

    def test_render_lists_everything(self, data):
        text = clusterscale.render(data)
        assert "Cluster scaling" in text
        for row in data.rows:
            assert row.name in text

    def test_payload_round_trips_through_json(self, data):
        payload = clusterscale_payload(data)
        parsed = json.loads(json.dumps(payload))
        assert parsed["cores"] == [1, 2]
        assert len(parsed["rows"]) == 12


class TestOutRouting:
    def test_clusterscale_out(self, tmp_path):
        out = tmp_path / "cs.txt"
        assert main(["clusterscale", "--n", "512", "--cores", "1,2",
                     "--out", str(out)]) == 0
        assert "Cluster scaling" in out.read_text()

    def test_clusterscale_json(self, tmp_path):
        out = tmp_path / "cs.json"
        assert main(["clusterscale", "--n", "512", "--cores", "1,2",
                     "--json", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["n"] == 512

    def test_table1_out(self, tmp_path):
        out = tmp_path / "t1.txt"
        assert main(["table1", "--n", "256", "--out", str(out)]) == 0
        assert "Table I" in out.read_text()

    def test_write_output_stdout(self, capsys):
        write_output("hello", {"k": 1}, out=None, as_json=False)
        assert capsys.readouterr().out == "hello\n"
        write_output("hello", {"k": 1}, out=None, as_json=True)
        assert json.loads(capsys.readouterr().out) == {"k": 1}

    def test_bad_cores_rejected(self):
        with pytest.raises(SystemExit):
            main(["clusterscale", "--cores", "zero"])
