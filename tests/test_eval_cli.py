"""CLI tests: artifact routing, --out/--json, --jobs validation and
the process-parallel shard runner's determinism guarantee."""

import json

import pytest

from repro.api import artifacts
from repro.eval import clusterscale, fig3, socscale, table1
from repro.eval.__main__ import main
from repro.eval.io import (
    clusterscale_payload,
    socscale_payload,
    table1_payload,
    write_output,
)
from repro.eval.parallel import (
    default_jobs,
    run_sharded,
    shard_evenly,
    validate_jobs,
)


class TestClusterScaleArtifact:
    @pytest.fixture(scope="class")
    def data(self):
        return clusterscale.generate(n=512, cores=(1, 2))

    def test_all_kernels_both_variants(self, data):
        names = {(r.name, r.variant) for r in data.rows}
        assert len(names) == 12

    def test_one_core_column_matches_single_machine(self, data):
        from repro.eval import measure_kernel
        from repro.kernels.registry import kernel

        row = data.row("pi_lcg", "baseline")
        m = measure_kernel(kernel("pi_lcg"), n=512)
        assert row.point(1).cycles == m.baseline.cycles

    def test_speedup_positive_and_bounded(self, data):
        for row in data.rows:
            p = row.point(2)
            assert 1.0 < p.speedup < 2.05, (row.name, row.variant)
            assert p.efficiency == pytest.approx(p.speedup / 2)

    def test_render_lists_everything(self, data):
        text = clusterscale.render(data)
        assert "Cluster scaling" in text
        for row in data.rows:
            assert row.name in text

    def test_payload_round_trips_through_json(self, data):
        payload = clusterscale_payload(data)
        parsed = json.loads(json.dumps(payload))
        assert parsed["cores"] == [1, 2]
        assert len(parsed["rows"]) == 12


class TestSocScaleArtifact:
    @pytest.fixture(scope="class")
    def data(self):
        return socscale.generate(n=512, shapes=((1, 2), (2, 2)))

    def test_all_kernels_both_variants(self, data):
        names = {(r.name, r.variant) for r in data.rows}
        assert len(names) == 12

    def test_one_cluster_column_matches_bare_cluster(self, data):
        base = clusterscale.generate(n=512, cores=(1, 2))
        for row in data.rows:
            point = row.point(1, 2)
            assert point.cycles \
                == base.row(row.name, row.variant).point(2).cycles, \
                (row.name, row.variant)

    def test_speedup_positive_and_bounded(self, data):
        for row in data.rows:
            p = row.point(2, 2)
            assert 1.0 < p.speedup < 2.05, (row.name, row.variant)
            assert p.efficiency == pytest.approx(p.speedup / 2)

    def test_render_lists_everything(self, data):
        text = socscale.render(data)
        assert "SoC scaling" in text
        assert "1x2/2x2" in text
        for row in data.rows:
            assert row.name in text

    def test_payload_round_trips_through_json(self, data):
        payload = socscale_payload(data)
        parsed = json.loads(json.dumps(payload))
        assert parsed["shapes"] == [[1, 2], [2, 2]]
        assert len(parsed["rows"]) == 12

    def test_parse_shapes(self):
        assert socscale.parse_shapes("1x4,2x8") == ((1, 4), (2, 8))
        import argparse
        for bad in ("", "2", "2x", "0x4", "axb"):
            with pytest.raises(argparse.ArgumentTypeError):
                socscale.parse_shapes(bad)


class TestOutRouting:
    def test_clusterscale_out(self, tmp_path):
        out = tmp_path / "cs.txt"
        assert main(["clusterscale", "--n", "512", "--cores", "1,2",
                     "--out", str(out)]) == 0
        assert "Cluster scaling" in out.read_text()

    def test_clusterscale_json(self, tmp_path):
        out = tmp_path / "cs.json"
        assert main(["clusterscale", "--n", "512", "--cores", "1,2",
                     "--json", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["n"] == 512

    def test_table1_out(self, tmp_path):
        out = tmp_path / "t1.txt"
        assert main(["table1", "--n", "256", "--out", str(out)]) == 0
        assert "Table I" in out.read_text()

    def test_write_output_stdout(self, capsys):
        write_output("hello", {"k": 1}, out=None, as_json=False)
        assert capsys.readouterr().out == "hello\n"
        write_output("hello", {"k": 1}, out=None, as_json=True)
        assert json.loads(capsys.readouterr().out) == {"k": 1}

    def test_bad_cores_rejected(self):
        with pytest.raises(SystemExit):
            main(["clusterscale", "--cores", "zero"])


class TestArgumentValidation:
    """Bad invocations exit with a one-line message, never a traceback."""

    def test_unknown_artifact_clear_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig9"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown artifact 'fig9'" in err
        assert "clusterscale" in err     # the available list is shown

    def test_unknown_artifact_suggests_all_names(self, capsys):
        with pytest.raises(SystemExit):
            main(["bogus"])
        err = capsys.readouterr().err
        for name in ("table1", "fig2", "fig3", "all", "report"):
            assert name in err

    def test_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["clusterscale", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_jobs_negative_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3", "--jobs", "-2"])
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_jobs_on_unsharded_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--jobs", "2"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs applies to sharded sweeps only" in err
        assert "'table1'" in err

    def test_jobs_on_report_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["report", "--jobs", "2"])
        assert "sharded sweeps only" in capsys.readouterr().err

    def test_extra_flag_on_wrong_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--clusters", "1x4"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--clusters applies to artifact 'socscale' only" in err
        assert "'table1'" in err

    def test_bad_extra_flag_value_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["socscale", "--clusters", "0x4"])
        assert ">= 1x1" in capsys.readouterr().err

    def test_jobs_one_accepted_everywhere(self, tmp_path):
        # --jobs 1 is the sequential default and is valid for any
        # artifact, sharded or not.
        out = tmp_path / "t1.txt"
        assert main(["table1", "--n", "256", "--jobs", "1",
                     "--out", str(out)]) == 0


class TestArtifactRegistry:
    """The CLI is a generic dispatcher over the artifact registry."""

    def test_list_enumerates_registry_with_help(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for spec in artifacts.specs():
            assert spec.name in out
            assert spec.help in out

    def test_list_shows_aliases(self, capsys):
        main(["--list"])
        out = capsys.readouterr().out
        assert "fig2a" in out

    def test_missing_artifact_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])
        assert "artifact name is required" in capsys.readouterr().err

    def test_report_order_is_explicit(self):
        assert artifacts.names() == [
            "table1", "fig2", "fig3", "clusterscale", "socscale",
            "streamscale", "all", "report",
        ]
        assert artifacts.bundle_names() == [
            "table1", "fig2", "fig3", "clusterscale", "socscale",
            "streamscale",
        ]
        assert artifacts.sharded_names() == [
            "fig3", "clusterscale", "socscale", "streamscale", "all",
        ]

    def test_alias_resolves_to_canonical(self):
        assert artifacts.get("fig2a").name == "fig2"

    def test_list_shows_extra_flags(self, capsys):
        main(["--list"])
        out = capsys.readouterr().out
        assert "--clusters" in out
        assert "--writeback" in out

    def test_list_json_is_machine_readable(self, capsys):
        """--list --json dumps the registry: names, help, flags,
        sharding — everything a tool needs to drive the CLI."""
        assert main(["--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {a["name"]: a for a in payload["artifacts"]}
        assert list(by_name) == artifacts.names()
        for spec in artifacts.specs():
            entry = by_name[spec.name]
            assert entry["help"] == spec.help
            assert entry["sharded"] == spec.sharded
            assert entry["aliases"] == list(spec.aliases)
            assert [f["name"] for f in entry["flags"]] \
                == [f.name for f in spec.flags]
        soc_flags = {f["name"]: f for f in by_name["socscale"]["flags"]}
        assert soc_flags["--writeback"]["default"] is False
        assert soc_flags["--clusters"]["metavar"]

    def test_list_json_honours_out(self, tmp_path):
        out = tmp_path / "registry.json"
        assert main(["--list", "--json", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert {a["name"] for a in payload["artifacts"]} \
            == set(artifacts.names())

    def test_writeback_flag_shared_by_both_scaling_artifacts(self):
        owners = {spec.name for flag, spec in artifacts.extra_flags()
                  if flag.name == "--writeback"}
        assert owners == {"clusterscale", "socscale"}

    def test_writeback_on_wrong_artifact_lists_all_owners(self,
                                                          capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--writeback", "on"])
        err = capsys.readouterr().err
        assert "--writeback applies to artifacts" in err
        assert "'clusterscale'" in err and "'socscale'" in err

    def test_writeback_value_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["clusterscale", "--writeback", "maybe"])
        assert "on|off" in capsys.readouterr().err

    def test_writeback_cli_round_trip(self, tmp_path):
        out = tmp_path / "wb.json"
        assert main(["clusterscale", "--n", "256", "--cores", "1,2",
                     "--writeback", "on", "--json",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["writeback"] is True
        expf = next(r for r in payload["rows"]
                    if r["kernel"] == "expf"
                    and r["variant"] == "baseline")
        assert all(p["dma_bytes_written"] == 256 * 8
                   for p in expf["points"])

    def test_writeback_off_payload_has_no_extra_keys(self, tmp_path):
        """The default payload must stay byte-compatible with the
        pre-write-back goldens: no writeback marker, no per-direction
        fields."""
        out = tmp_path / "off.json"
        assert main(["clusterscale", "--n", "256", "--cores", "1,2",
                     "--json", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "writeback" not in payload
        point = payload["rows"][0]["points"][0]
        assert "dma_bytes_written" not in point

    def test_extra_flag_registration_guards(self):
        from repro.api.artifacts import ExtraFlag

        with pytest.raises(ValueError, match="start with '--'"):
            ExtraFlag("clusters")
        with pytest.raises(ValueError, match="shared eval flag"):
            ExtraFlag("--jobs")
        with pytest.raises(ValueError, match="already registered"):
            artifacts.artifact(
                "dup-flag-artifact",
                flags=(ExtraFlag("--clusters"),))(lambda req: None)
        assert "dup-flag-artifact" not in artifacts.REGISTRY

    def test_extra_flag_dest_collision_rejected(self):
        """Distinct spellings sharing an argparse dest ('--a-b' vs
        '--a_b') must collide — the dispatcher routes by dest."""
        from repro.api.artifacts import ExtraFlag

        artifacts.artifact(
            "tmp-dest-owner",
            flags=(ExtraFlag("--tmp-dest"),))(lambda req: None)
        try:
            with pytest.raises(ValueError, match="already registered"):
                artifacts.artifact(
                    "tmp-dest-clash",
                    flags=(ExtraFlag("--tmp_dest"),))(lambda req: None)
            assert "tmp-dest-clash" not in artifacts.REGISTRY
        finally:
            del artifacts.REGISTRY["tmp-dest-owner"]

    def test_extra_flags_enumerate_with_owner(self):
        owners = {flag.name: spec.name
                  for flag, spec in artifacts.extra_flags()}
        assert owners["--clusters"] == "socscale"

    def test_all_combines_bundle_in_report_order(self, monkeypatch,
                                                 tmp_path):
        from repro.api.artifacts import ArtifactResult, ArtifactSpec

        def fake(name, order):
            return ArtifactSpec(
                name=name, order=order,
                func=lambda req, name=name: ArtifactResult(
                    name, f"text-{name}", {"k": name}),
            )

        registry = {"b": fake("b", 2), "a": fake("a", 1),
                    "all": artifacts.REGISTRY["all"]}
        monkeypatch.setattr(artifacts, "REGISTRY", registry)
        out = tmp_path / "all.json"
        assert main(["all", "--json", "--out", str(out)]) == 0
        assert json.loads(out.read_text()) \
            == {"a": {"k": "a"}, "b": {"k": "b"}}
        txt = tmp_path / "all.txt"
        assert main(["all", "--out", str(txt)]) == 0
        assert txt.read_text() == "text-a\n\ntext-b\n"


class TestPayloadIdentity:
    """CLI output must match the module-level generate/render path
    (whose values are locked by tests/test_golden.py)."""

    def test_table1_cli_matches_module(self, tmp_path):
        out = tmp_path / "t1.json"
        assert main(["table1", "--n", "256", "--json",
                     "--out", str(out)]) == 0
        expected = {"n": 256, **table1_payload(table1.generate(n=256))}
        assert json.loads(out.read_text()) \
            == json.loads(json.dumps(expected))

    def test_clusterscale_cli_matches_module(self, tmp_path):
        out = tmp_path / "cs.json"
        assert main(["clusterscale", "--n", "512", "--cores", "1,2",
                     "--json", "--out", str(out)]) == 0
        expected = clusterscale_payload(
            clusterscale.generate(n=512, cores=(1, 2)))
        assert json.loads(out.read_text()) \
            == json.loads(json.dumps(expected))

    def test_fig2_alias_routes_to_fig2(self, tmp_path):
        out = tmp_path / "f2.txt"
        assert main(["fig2a", "--n", "256", "--out", str(out)]) == 0
        assert "Figure 2a" in out.read_text()


class TestTable1Clamp:
    """The n-clamp warns on stderr and the payload carries the
    effective size (it used to clamp silently)."""

    def test_clamp_warns_and_surfaces_n(self, monkeypatch, tmp_path,
                                        capsys):
        monkeypatch.setattr(table1, "MAX_MEASURE_N", 256)
        out = tmp_path / "t1.json"
        assert main(["table1", "--n", "512", "--json",
                     "--out", str(out)]) == 0
        err = capsys.readouterr().err
        assert "clamping n=512 to 256" in err
        assert json.loads(out.read_text())["n"] == 256

    def test_no_warning_below_threshold(self, tmp_path, capsys):
        out = tmp_path / "t1.json"
        assert main(["table1", "--n", "256", "--json",
                     "--out", str(out)]) == 0
        assert "clamping" not in capsys.readouterr().err
        assert json.loads(out.read_text())["n"] == 256

    def test_default_run_never_warns(self, monkeypatch, tmp_path,
                                     capsys):
        # With no --n at all, table1 measures at its own default and
        # must not warn about a size the user never chose.
        monkeypatch.setattr(table1, "MAX_MEASURE_N", 256)
        out = tmp_path / "t1.json"
        assert main(["table1", "--json", "--out", str(out)]) == 0
        assert "clamping" not in capsys.readouterr().err
        assert json.loads(out.read_text())["n"] == 256


def _square(x):
    return x * x


class TestShardRunner:
    def test_inline_matches_pool(self):
        cells = list(range(20))
        assert run_sharded(_square, cells, jobs=1) \
            == run_sharded(_square, cells, jobs=3)

    def test_order_preserved(self):
        cells = [5, 3, 1, 4]
        assert run_sharded(_square, cells, jobs=2) == [25, 9, 1, 16]

    def test_empty_cells(self):
        assert run_sharded(_square, [], jobs=4) == []

    def test_invalid_jobs(self):
        with pytest.raises(ValueError, match="jobs must be"):
            run_sharded(_square, [1], jobs=0)
        with pytest.raises(ValueError, match="jobs must be"):
            validate_jobs(True)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_shard_evenly(self):
        shards = shard_evenly(range(7), 3)
        assert sorted(x for s in shards for x in s) == list(range(7))
        assert max(len(s) for s in shards) \
            - min(len(s) for s in shards) <= 1
        with pytest.raises(ValueError):
            shard_evenly([1], 0)


class TestJobsDeterminism:
    """--jobs N must not change a single byte of any payload."""

    def test_clusterscale_payload_identical(self):
        seq = clusterscale_payload(
            clusterscale.generate(n=512, cores=(1, 2), jobs=1))
        par = clusterscale_payload(
            clusterscale.generate(n=512, cores=(1, 2), jobs=2))
        assert json.dumps(seq, sort_keys=True) \
            == json.dumps(par, sort_keys=True)

    def test_fig3_grid_identical(self):
        kwargs = dict(block_sizes=(32, 48), problem_sizes=(768,))
        seq = fig3.generate(jobs=1, **kwargs)
        par = fig3.generate(jobs=2, **kwargs)
        assert seq.ipc == par.ipc

    def test_cli_jobs_flag_round_trip(self, tmp_path):
        out1 = tmp_path / "j1.json"
        out2 = tmp_path / "j2.json"
        base = ["clusterscale", "--n", "512", "--cores", "1,2",
                "--json"]
        assert main([*base, "--jobs", "1", "--out", str(out1)]) == 0
        assert main([*base, "--jobs", "2", "--out", str(out2)]) == 0
        assert out1.read_text() == out2.read_text()

    def test_socscale_cli_bit_identical_for_every_jobs(self, tmp_path):
        """Acceptance: `python -m repro.eval socscale --jobs N` output
        is bit-identical for every N (tested at 1/2/8)."""
        outputs = []
        for jobs in (1, 2, 8):
            out = tmp_path / f"soc-j{jobs}.json"
            assert main(["socscale", "--n", "512",
                         "--clusters", "1x2,2x2", "--json",
                         "--jobs", str(jobs), "--out", str(out)]) == 0
            outputs.append(out.read_text())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_socscale_payload_identical(self):
        seq = socscale_payload(socscale.generate(
            n=512, shapes=((1, 2), (2, 2)), jobs=1))
        par = socscale_payload(socscale.generate(
            n=512, shapes=((1, 2), (2, 2)), jobs=3))
        assert json.dumps(seq, sort_keys=True) \
            == json.dumps(par, sort_keys=True)


class TestCacheCLI:
    """The dispatcher's cache surface: flag validation, one-line
    errors, the warm-run acceptance criterion and --list --json."""

    def test_no_cache_and_cache_dir_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig2", "--no-cache", "--cache-dir", "/tmp/x"])
        err = capsys.readouterr().err
        assert "mutually exclusive" in err
        assert "/tmp/x" in err

    def test_cache_dir_at_a_file_names_the_path(self, tmp_path,
                                                capsys):
        rogue = tmp_path / "rogue"
        rogue.write_text("not a directory")
        assert main(["fig2", "--n", "256",
                     "--cache-dir", str(rogue)]) == 2
        err = capsys.readouterr().err
        assert str(rogue) in err
        assert "not a directory" in err

    def test_serve_rejects_artifact_mode_flags(self, capsys):
        for extra in (["fig2"], ["--list"], ["--json"],
                      ["--out", "x.json"], ["--profile"]):
            with pytest.raises(SystemExit):
                main(["--serve", *extra])
            assert "--serve" in capsys.readouterr().err

    def test_warm_run_is_all_hits_and_byte_identical(self, tmp_path,
                                                     monkeypatch,
                                                     capsys):
        """Acceptance: a warm re-run performs zero simulations (hit
        count == cell count) and emits byte-identical payloads to an
        uncached run."""
        import repro.api.sweep as sweep_mod
        simulated = []
        real = sweep_mod._run_batch

        def counting(batch):
            simulated.extend(batch)
            return real(batch)

        monkeypatch.setattr(sweep_mod, "_run_batch", counting)
        cache = tmp_path / "cache"
        bare, cold, warm = (tmp_path / "bare.json",
                            tmp_path / "cold.json",
                            tmp_path / "warm.json")
        base = ["fig2", "--n", "256", "--json"]
        assert main([*base, "--no-cache", "--out", str(bare)]) == 0
        cells = len(simulated)
        assert cells == 12   # 6 kernels x 2 variants
        assert main([*base, "--cache-dir", str(cache),
                     "--out", str(cold)]) == 0
        assert len(simulated) == 2 * cells
        capsys.readouterr()
        assert main([*base, "--cache-dir", str(cache),
                     "--out", str(warm)]) == 0
        assert len(simulated) == 2 * cells   # zero new simulations
        err = capsys.readouterr().err
        assert f"cache: {cells} hits, 0 misses" in err
        assert bare.read_bytes() == cold.read_bytes() \
            == warm.read_bytes()
        sidecar = json.loads((cache / "stats.json").read_text())
        assert sidecar["hits"] == cells
        assert sidecar["stores"] == cells

    def test_golden_edit_invalidates_the_cache(self, tmp_path,
                                               monkeypatch):
        """Acceptance: a changed timing fingerprint invalidates every
        affected key (the old generation is never consulted)."""
        import repro.api.fingerprint as fp_mod
        cache = tmp_path / "cache"
        out = tmp_path / "out.json"
        base = ["fig2", "--n", "256", "--json", "--out", str(out),
                "--cache-dir", str(cache)]
        monkeypatch.setattr(fp_mod, "timing_fingerprint",
                            lambda golden_path=None: "aaaa" * 16)
        monkeypatch.setattr("repro.serve.store.timing_fingerprint",
                            fp_mod.timing_fingerprint)
        assert main(base) == 0
        from repro.serve import RunStore
        old = RunStore(cache, fingerprint="aaaa" * 16)
        assert old.describe()["entries"] == 12
        monkeypatch.setattr(fp_mod, "timing_fingerprint",
                            lambda golden_path=None: "bbbb" * 16)
        monkeypatch.setattr("repro.serve.store.timing_fingerprint",
                            fp_mod.timing_fingerprint)
        new = RunStore(cache, fingerprint="bbbb" * 16)
        assert new.describe()["entries"] == 0
        assert new.describe()["stale_entries"] == 12

    def test_list_json_reports_cache_state(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["--list", "--json",
                     "--cache-dir", str(cache)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["enabled"] is True
        assert payload["cache"]["dir"] == str(cache)
        assert payload["cache"]["entries"] == 0
        assert len(payload["cache"]["fingerprint"]) == 64
        assert main(["--list", "--json", "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"enabled": False}
