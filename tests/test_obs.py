"""Observability layer tests: event collection, Chrome-trace export,
determinism, cycle-attribution profiles and the metrics registry."""

import dataclasses
import json

import pytest

from repro.api import (
    SCHEMA_VERSION,
    ClusterBackend,
    CoreBackend,
    RunRecord,
    SocBackend,
    Workload,
)
from repro.eval.__main__ import main
from repro.kernels.registry import KERNELS
from repro.obs import (
    METRIC_KINDS,
    Histogram,
    MetricsRegistry,
    ObsSink,
    ProfileNode,
    TraceEvent,
    chrome_trace,
    render_profile,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Metric
from repro.sim.counters import Counters


def _observed_run(backend, workload):
    sink = ObsSink()
    record = backend.run(workload, check=False, obs=sink)
    return sink, record


class TestEventCollection:
    @pytest.fixture(scope="class")
    def core_run(self):
        return _observed_run(CoreBackend(),
                             Workload("expf", "copift", n=256))

    def test_core_scopes_and_lanes(self, core_run):
        sink, _ = core_run
        assert sink.scopes() == ["core"]
        assert sink.lanes("core") == ["fp", "int"]

    def test_disabled_by_default(self):
        record = CoreBackend().run(Workload("expf", "copift", n=256))
        assert record.profile is None

    def test_obs_true_embeds_profile_without_sink(self):
        record = CoreBackend().run(Workload("expf", "copift", n=256),
                                   obs=True)
        assert record.profile is not None

    def test_cluster_hierarchy_scopes(self):
        sink, _ = _observed_run(
            ClusterBackend(cores=4),
            Workload("expf", "copift", n=512))
        scopes = sink.scopes()
        assert "cluster0" in scopes
        assert [f"cluster0/core{k}" for k in range(4)] == \
            [s for s in scopes if "/" in s]
        # The cluster scope owns the shared lanes: banks, dma, barrier.
        cluster_lanes = sink.lanes("cluster0")
        assert "dma" in cluster_lanes
        assert any(lane.startswith("bank") for lane in cluster_lanes)

    def test_soc_hierarchy_scopes(self):
        sink, _ = _observed_run(
            SocBackend(clusters=2, cores=2, writeback=True),
            Workload("expf", "copift", n=512))
        scopes = sink.scopes()
        assert "soc" in scopes
        assert "soc/cluster0" in scopes and "soc/cluster1" in scopes
        assert "soc/cluster1/core1" in scopes
        soc_lanes = sink.lanes("soc")
        assert "l2" in soc_lanes
        assert any(lane.startswith("link") for lane in soc_lanes)


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def soc_trace(self):
        sink, record = _observed_run(
            SocBackend(clusters=2, cores=2),
            Workload("expf", "copift", n=512))
        return chrome_trace(sink), sink, record

    def test_validates(self, soc_trace):
        data, sink, _ = soc_trace
        assert validate_chrome_trace(data) >= len(sink)

    def test_every_scope_is_a_named_process(self, soc_trace):
        data, sink, _ = soc_trace
        names = {e["args"]["name"] for e in data["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == set(sink.scopes())

    def test_dma_flow_arrows_pair_up(self, soc_trace):
        data, _, _ = soc_trace
        starts = [e for e in data["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in data["traceEvents"] if e["ph"] == "f"]
        assert starts, "expected dma.start flow arrows"
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        assert all(e.get("bp") == "e" for e in finishes)

    def test_write_is_byte_deterministic(self, tmp_path):
        paths = []
        for i in range(2):
            sink, _ = _observed_run(
                ClusterBackend(cores=2),
                Workload("pi_lcg", "copift", n=256))
            path = tmp_path / f"run{i}.json"
            write_chrome_trace(sink, path)
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1}]})


class TestValidateCli:
    def test_ok(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        sink, _ = _observed_run(CoreBackend(),
                                Workload("logf", "copift", n=256))
        path = tmp_path / "t.json"
        write_chrome_trace(sink, path)
        assert obs_main(["validate", str(path)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_invalid_file(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": []}')
        assert obs_main(["validate", str(path)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_usage(self, capsys):
        from repro.obs.__main__ import main as obs_main

        assert obs_main([]) == 2


class TestCliJobsDeterminism:
    def test_socscale_trace_stable_across_jobs(self, tmp_path):
        """The observed cell runs inline, so --trace bytes cannot
        depend on the sweep's sharding."""
        blobs = []
        for jobs in (1, 2, 8):
            path = tmp_path / f"jobs{jobs}.json"
            main(["socscale", "--n", "128", "--clusters", "1x2",
                  "--jobs", str(jobs), "--trace", str(path),
                  "--out", str(tmp_path / f"out{jobs}.txt")])
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1] == blobs[2]
        assert validate_chrome_trace(json.loads(blobs[0])) > 0


def _leaves(node):
    if not node.children:
        return [node]
    return [leaf for child in node.children
            for leaf in _leaves(child)]


class TestProfileExactness:
    BACKENDS = (
        CoreBackend(),
        ClusterBackend(cores=4),
        SocBackend(clusters=2, cores=4, writeback=True),
    )

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_bucket_sums_equal_region_cycles(self, kernel):
        """Golden agreement: on every backend, every leaf's buckets sum
        *exactly* to its region cycles, and the root matches the
        record's makespan — attribution never loses or invents a
        cycle."""
        for backend in self.BACKENDS:
            record = backend.run(Workload(kernel, "copift", n=512),
                                 obs=True)
            node = ProfileNode.from_json(record.profile)
            assert node.cycles == record.cycles, backend.spec
            for leaf in _leaves(node):
                assert leaf.bucket_sum() == leaf.cycles, \
                    (backend.spec, leaf.scope)

    def test_render_mentions_buckets(self):
        record = CoreBackend().run(Workload("expf", "copift", n=512),
                                   obs=True)
        text = render_profile(ProfileNode.from_json(record.profile))
        assert "issue.int" in text
        assert "drain" in text
        assert "100.0%" in text


class TestStallFieldSync:
    def test_int_stall_fields_match_dataclass(self):
        introspected = [f.name for f in dataclasses.fields(Counters)
                        if f.name.startswith("stall_")]
        assert list(Counters.int_stall_fields()) == introspected

    def test_fp_stall_fields_match_dataclass(self):
        introspected = [f.name for f in dataclasses.fields(Counters)
                        if f.name.startswith("fp_stall_")]
        assert list(Counters.fp_stall_fields()) == introspected

    def test_total_stalls_sums_every_field(self):
        c = Counters()
        for i, name in enumerate(Counters.stall_fields(), start=1):
            setattr(c, name, i)
        n = len(Counters.stall_fields())
        assert c.total_stalls() == n * (n + 1) // 2


class TestMetricsRegistry:
    def test_default_collect_core(self):
        record = CoreBackend().run(Workload("expf", "copift", n=256))
        metrics = MetricsRegistry.default().collect(record)
        assert metrics["cycles"] == record.cycles
        assert metrics["ipc"] == record.ipc
        # Core runs have no cluster/SoC detail: those keys are absent,
        # not zero.
        assert "tcdm.conflict_cycles" not in metrics

    def test_default_collect_cluster(self):
        record = ClusterBackend(cores=2).run(
            Workload("expf", "copift", n=256))
        metrics = MetricsRegistry.default().collect(record)
        assert metrics["dma.bytes"] == record.cluster.dma_bytes
        assert metrics["tcdm.conflict_cycles"] == \
            record.cluster.tcdm_conflict_cycles

    def test_duplicate_rejected(self):
        registry = MetricsRegistry.default()
        with pytest.raises(ValueError):
            registry.register(registry.metrics[0])

    def test_render_lists_units(self):
        record = CoreBackend().run(Workload("expf", "copift", n=256))
        text = MetricsRegistry.default().render(record)
        assert "insn/cycle" in text
        assert "cycles" in text


class TestHistogram:
    def test_exact_percentiles_under_the_cap(self):
        hist = Histogram()
        for value in range(1, 101):       # 1..100, shuffled order
            hist.record((value * 37) % 101)
        assert hist.exact
        assert hist.count == 100
        assert hist.p50 == 50             # nearest rank: ceil(.5*100)
        assert hist.p95 == 95
        assert hist.p99 == 99
        assert hist.percentile(1.0) == hist.max == 100
        assert hist.min == 1

    def test_nearest_rank_has_no_float_error(self):
        # ceil(0.95 * 40) must be 38, not 39: 0.95 is inexact in
        # binary, so a naive ceil picks up the representation error.
        hist = Histogram()
        for value in range(1, 41):
            hist.record(value)
        assert hist.p95 == 38

    def test_bucket_edges_are_powers_of_two(self):
        assert Histogram.bucket_edge(0) == 0
        assert Histogram.bucket_edge(1) == 2
        assert Histogram.bucket_edge(2) == 4
        assert Histogram.bucket_edge(3) == 4
        assert Histogram.bucket_edge(4) == 8
        assert Histogram.bucket_edge(1023) == 1024

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Histogram().record(-1)
        with pytest.raises(ValueError, match="quantile"):
            Histogram().percentile(0.0)

    def test_empty_histogram_yields_none(self):
        hist = Histogram()
        assert hist.p50 is None
        assert hist.mean is None
        assert hist.min is None and hist.max is None

    def test_beyond_the_cap_degrades_to_bucket_edges(self):
        hist = Histogram(sample_cap=8)
        for value in range(1, 17):
            hist.record(value)
        assert not hist.exact
        assert hist.count == 16
        # The rank-8 sample is 8; it lands in the (4, 16]-ish
        # power-of-two bucket whose upper edge is 16 — conservative,
        # never below the true percentile.
        assert hist.p50 == 16
        # The tail falls past every bucket boundary the rank reaches
        # conservatively: a bucket edge >= the true percentile.
        assert hist.p99 >= 16
        assert hist.max == 16             # scalars stay exact

    def test_merge_pools_counts_and_samples(self):
        left, right = Histogram(), Histogram()
        for value in (1, 2, 3):
            left.record(value)
        for value in (10, 20, 30):
            right.record(value)
        left.merge(right)
        assert left.count == 6
        assert left.sum == 66
        assert left.min == 1 and left.max == 30
        assert left.exact
        assert left.p50 == 3
        assert sum(left.buckets.values()) == 6

    def test_merge_respects_the_cap(self):
        left, right = Histogram(sample_cap=4), Histogram(sample_cap=4)
        for value in (1, 2, 3):
            left.record(value)
        for value in (4, 5, 6):
            right.record(value)
        left.merge(right)
        assert left.count == 6
        assert not left.exact             # only 4 samples retained

    def test_to_json_is_stable(self):
        hist = Histogram()
        for value in (3, 1, 7):
            hist.record(value)
        blob = hist.to_json()
        assert blob["count"] == 3
        assert blob["sum"] == 11
        assert blob["exact"] is True
        assert blob["buckets"] == [[2, 1], [4, 1], [8, 1]]


class TestMetricKinds:
    def test_kinds_are_closed(self):
        assert METRIC_KINDS == ("counter", "gauge", "histogram")
        with pytest.raises(ValueError, match="unknown kind"):
            Metric("bad", "x", "help", lambda r: 0, kind="summary")

    def test_collect_flattens_histogram_metrics(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.record(value)
        registry = MetricsRegistry()
        registry.register_many([
            Metric("reqs", "requests", "arrivals",
                   lambda r: 42, kind="counter"),
            Metric("latency", "cycles", "per-request latency",
                   lambda r: hist, kind="histogram"),
        ])
        out = registry.collect(object())
        assert out["reqs"] == 42
        assert out["latency.count"] == 100
        assert out["latency.p50"] == 50
        assert out["latency.p99"] == 99
        assert "latency" not in out       # flattened, not nested

    def test_render_resolves_flattened_units(self):
        hist = Histogram()
        hist.record(7)
        registry = MetricsRegistry()
        registry.register(Metric("latency", "cycles", "latency",
                                 lambda r: hist, kind="histogram"))
        text = registry.render(object())
        count_row = next(line for line in text.splitlines()
                         if line.startswith("latency.count"))
        p50_row = next(line for line in text.splitlines()
                       if line.startswith("latency.p50"))
        assert count_row.endswith("samples")
        assert p50_row.endswith("cycles")

    def test_empty_histogram_metric_is_skipped(self):
        registry = MetricsRegistry()
        registry.register(Metric("latency", "cycles", "latency",
                                 lambda r: None, kind="histogram"))
        assert registry.collect(object()) == {}


class TestTimelineRendering:
    def test_trailing_gap_elided(self):
        events = [TraceEvent("int", 0, "addi")]
        text = render_timeline(events, start=0, end=50)
        assert text.rstrip().endswith("...")

    def test_show_pc(self):
        events = [TraceEvent("int", 0, "addi", pc=12)]
        text = render_timeline(events, show_pc=True)
        assert "#12" in text
        assert "#" not in render_timeline(events)

    def test_wide_mnemonic_marked_not_misaligned(self):
        events = [
            TraceEvent("int", 0, "a.very.long.mnemonic.indeed"),
            TraceEvent("fp", 0, "fmadd.d"),
        ]
        text = render_timeline(events, width=10)
        row = next(line for line in text.splitlines()
                   if "fmadd.d" in line)
        assert "~" in row
        assert "a.very.long.mnemonic.indeed" not in row


class TestSchemaV4:
    def test_profile_round_trips(self):
        record = CoreBackend().run(Workload("expf", "copift", n=256),
                                   obs=True)
        data = json.loads(json.dumps(record.to_json()))
        assert data["schema"] == SCHEMA_VERSION
        back = RunRecord.from_json(data)
        assert back.profile == record.profile
        node = ProfileNode.from_json(back.profile)
        assert node.bucket_sum() == node.cycles

    def test_unobserved_record_has_null_profile(self):
        record = CoreBackend().run(Workload("expf", "copift", n=256))
        assert record.to_json()["profile"] is None

    def test_v3_payload_rejected_with_hint(self):
        record = CoreBackend().run(Workload("expf", "copift", n=256))
        stale = record.to_json()
        stale["schema"] = 3
        with pytest.raises(ValueError, match="observability"):
            RunRecord.from_json(stale)


class TestProfileNode:
    def test_json_round_trip(self):
        node = ProfileNode(
            scope="soc", cycles=100,
            children=[ProfileNode(scope="soc/cluster0", cycles=100,
                                  buckets={"issue.int": 60,
                                           "drain": 40},
                                  overlap={"raw": 7})])
        back = ProfileNode.from_json(node.to_json())
        assert back == node
        assert back.children[0].bucket_sum() == 100

    def test_core_profile_drain_is_residual(self):
        sink, record = _observed_run(
            CoreBackend(), Workload("poly_lcg", "copift", n=256))
        node = ProfileNode.from_json(record.profile)
        assert node.bucket_sum() == record.cycles
        assert "drain" in node.buckets
