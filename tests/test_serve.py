"""The serve layer: timing fingerprint, content-addressed store,
cache-aware sweeps, the coalescing async service, and the wire
protocol.  Simulations here run tiny cells (``pi_lcg`` at small n) or
injected fake runners — the layer under test is the caching, not the
simulator."""

import asyncio
import dataclasses
import json
import os
import shutil

import pytest

from repro.api import CoreBackend, Sweep, Workload, timing_fingerprint
from repro.api.backend import ClusterBackend
from repro.api.fingerprint import default_golden_path
from repro.cluster import ClusterConfig
from repro.serve import (
    CacheError,
    EvalService,
    ProtocolError,
    RunStore,
    cache_key,
    decode_request,
    encode_response,
    use_store,
)
from repro.serve.protocol import serve_session
from repro.serve.store import backend_state


def _cell(n=256, variant="baseline", kernel="pi_lcg"):
    return Workload(kernel, variant, n=n), CoreBackend()


def _record_for(workload, backend):
    return backend.run(workload, check=False)


class TestFingerprint:
    """Satellite: stability across runs, sensitivity to golden edits."""

    def test_stable_across_calls(self):
        assert timing_fingerprint() == timing_fingerprint()

    def test_content_addressed_not_path_addressed(self, tmp_path):
        # A byte-identical copy elsewhere names the same model.
        golden = default_golden_path()
        assert golden is not None, "repo checkout must have goldens"
        copy = tmp_path / "golden.json"
        shutil.copyfile(golden, copy)
        assert timing_fingerprint(str(copy)) == timing_fingerprint()

    def test_sensitive_to_golden_edits(self, tmp_path):
        golden = default_golden_path()
        copy = tmp_path / "golden.json"
        data = json.loads(open(golden, encoding="utf-8").read())
        before = timing_fingerprint(str(golden))
        copy.write_text(json.dumps(data) + "\n# timing changed\n")
        assert timing_fingerprint(str(copy)) != before

    def test_edit_detected_within_process(self, tmp_path):
        # The memo is keyed on (path, mtime, size): rewriting the same
        # file mid-process must yield the new digest, not a stale one.
        copy = tmp_path / "golden.json"
        copy.write_text("revision one\n")
        first = timing_fingerprint(str(copy))
        copy.write_text("revision two -- longer on purpose\n")
        assert timing_fingerprint(str(copy)) != first

    def test_missing_golden_named_in_error(self, tmp_path):
        missing = tmp_path / "nope" / "golden.json"
        with pytest.raises(FileNotFoundError, match="golden"):
            timing_fingerprint(str(missing))


class TestCacheKey:
    def test_deterministic(self):
        w, b = _cell()
        assert cache_key(w, b) == cache_key(w, b)

    def test_every_workload_field_is_load_bearing(self):
        w, b = _cell()
        base = cache_key(w, b)
        for changed in (
            Workload("poly_lcg", "baseline", n=256),
            Workload("pi_lcg", "copift", n=256),
            Workload("pi_lcg", "baseline", n=512),
            Workload("pi_lcg", "baseline", n=256, seed=7),
        ):
            assert cache_key(changed, b) != base

    def test_backend_distinguishes(self):
        w, _ = _cell()
        assert cache_key(w, CoreBackend()) \
            != cache_key(w, ClusterBackend(cores=2))

    def test_default_config_normalized(self):
        # None config means "the default instance"; both spellings run
        # the identical machine and must share one cache entry.
        w, _ = _cell()
        assert cache_key(w, ClusterBackend(cores=4)) \
            == cache_key(w, ClusterBackend(cores=4,
                                           config=ClusterConfig()))

    def test_unknown_backend_uncacheable(self):
        class WeirdBackend:
            spec = "weird"

        w, _ = _cell()
        assert backend_state(WeirdBackend()) is None
        assert cache_key(w, WeirdBackend()) is None

    def test_fingerprint_is_part_of_the_key(self):
        w, b = _cell()
        assert cache_key(w, b, fingerprint="aaaa" * 16) \
            != cache_key(w, b, fingerprint="bbbb" * 16)


class TestRunStore:
    def test_round_trip_is_byte_identical(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        w, b = _cell(n=64)
        record = _record_for(w, b)
        store.save(w, b, record)
        cached = store.lookup(w, b)
        assert cached == record
        assert json.dumps(cached.to_json(), sort_keys=True) \
            == json.dumps(record.to_json(), sort_keys=True)
        assert store.stats.stores == 1
        assert store.stats.hits == 1

    def test_miss_counted(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        assert store.lookup(*_cell()) is None
        assert store.stats.misses == 1

    def test_torn_temp_file_ignored_and_recomputed(self, tmp_path):
        # Satellite: crash safety.  A writer that died mid-write leaves
        # only a *.tmp.* file; lookups ignore it (miss -> recompute)
        # and the recomputed entry commits fine next to the litter.
        store = RunStore(tmp_path / "cache")
        w, b = _cell(n=64)
        key = store.key_for(w, b)
        os.makedirs(store.generation_dir)
        torn = store.entry_path(key) + ".tmp.999.0"
        with open(torn, "w", encoding="utf-8") as handle:
            handle.write('{"kernel": "pi_lcg", "var')  # torn mid-write
        assert store.lookup(w, b) is None
        assert store.stats.misses == 1
        record = _record_for(w, b)
        store.save(w, b, record)
        assert store.lookup(w, b) == record
        assert os.path.exists(torn)  # litter is harmless, not fatal

    def test_corrupt_committed_entry_names_the_file(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        w, b = _cell(n=64)
        key = store.key_for(w, b)
        os.makedirs(store.generation_dir)
        path = store.entry_path(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        with pytest.raises(CacheError) as excinfo:
            store.lookup(w, b)
        assert path in str(excinfo.value)
        assert "--no-cache" in str(excinfo.value)

    def test_identity_mismatch_is_loud(self, tmp_path):
        # An entry whose payload describes a different cell than its
        # key means store corruption; returning it would be a wrong
        # result, so it must raise instead.
        store = RunStore(tmp_path / "cache")
        w, b = _cell(n=64)
        other = Workload("pi_lcg", "baseline", n=32)
        store.put(store.key_for(w, b), _record_for(other, b))
        with pytest.raises(CacheError, match="n=64"):
            store.lookup(w, b)

    def test_root_must_be_a_directory(self, tmp_path):
        rogue = tmp_path / "cache"
        rogue.write_text("not a dir")
        with pytest.raises(CacheError) as excinfo:
            RunStore(rogue)
        assert str(rogue) in str(excinfo.value)

    def test_generation_partitions_by_fingerprint(self, tmp_path):
        w, b = _cell(n=64)
        record = _record_for(w, b)
        old = RunStore(tmp_path / "cache", fingerprint="aaaa" * 16)
        old.save(w, b, record)
        new = RunStore(tmp_path / "cache", fingerprint="bbbb" * 16)
        # A timing change means old entries are never consulted.
        assert new.lookup(w, b) is None
        described = new.describe()
        assert described["entries"] == 0
        assert described["stale_entries"] == 1

    def test_flush_stats_accumulates_and_zeroes(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        w, b = _cell(n=64)
        store.save(w, b, _record_for(w, b))
        store.lookup(w, b)
        merged = store.flush_stats()
        assert merged["stores"] == 1
        assert merged["hits"] == 1
        assert store.stats.hits == 0
        store.lookup(w, b)
        assert store.flush_stats()["hits"] == 2

    def test_uncacheable_save_is_a_noop(self, tmp_path):
        class WeirdBackend:
            spec = "weird"

        store = RunStore(tmp_path / "cache")
        w, b = _cell(n=64)
        store.save(w, WeirdBackend(), _record_for(w, b))
        assert store.stats.stores == 0


class TestSweepCache:
    def _sweep(self):
        workloads = [Workload("pi_lcg", v, n=256)
                     for v in ("baseline", "copift")]
        return Sweep(workloads, backends=("core",))

    def _counting(self, monkeypatch):
        """Count cells that actually reach the simulation batch."""
        import repro.api.sweep as sweep_mod
        simulated = []
        real = sweep_mod._run_batch

        def counting(batch):
            simulated.extend(batch)
            return real(batch)

        monkeypatch.setattr(sweep_mod, "_run_batch", counting)
        return simulated

    def test_warm_run_simulates_nothing(self, tmp_path, monkeypatch):
        simulated = self._counting(monkeypatch)
        store = RunStore(tmp_path / "cache")
        sweep = self._sweep()
        cold = sweep.run(cache=store)
        assert len(simulated) == 2
        assert store.stats.to_json() == {
            "hits": 0, "misses": 2, "stores": 2, "deduped": 0}
        store.stats = type(store.stats)()
        warm = sweep.run(cache=store)
        assert len(simulated) == 2  # unchanged: zero new simulations
        assert store.stats.hits == len(sweep.cells())
        assert [json.dumps(r.to_json(), sort_keys=True) for r in warm] \
            == [json.dumps(r.to_json(), sort_keys=True) for r in cold]

    def test_cached_equals_uncached(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        sweep = self._sweep()
        sweep.run(cache=store)
        warm = sweep.run(cache=store)
        bare = sweep.run(cache=False)
        assert [json.dumps(r.to_json(), sort_keys=True) for r in warm] \
            == [json.dumps(r.to_json(), sort_keys=True) for r in bare]

    def test_in_sweep_dedupe_fans_out_one_record(self, tmp_path,
                                                 monkeypatch):
        # Satellite: identical cells inside one sweep simulate once;
        # followers receive the very same object, so the fan-out is
        # byte-identical by construction.
        simulated = self._counting(monkeypatch)
        w = Workload("pi_lcg", n=256)
        sweep = Sweep([w, w, w], backends=("core",))
        store = RunStore(tmp_path / "cache")
        records = sweep.run(cache=store)
        assert len(simulated) == 1
        assert records[1] is records[0]
        assert records[2] is records[0]
        assert store.stats.deduped == 2

    def test_dedupe_without_store(self, monkeypatch):
        simulated = self._counting(monkeypatch)
        w = Workload("pi_lcg", n=256)
        assert Sweep([w, w], backends=("core",)).run()[0] is not None
        assert len(simulated) == 1

    def test_no_cache_by_default(self, tmp_path, monkeypatch):
        # Library sweeps must not touch any store unless one is
        # activated; only the eval CLI turns caching on by default.
        simulated = self._counting(monkeypatch)
        sweep = self._sweep()
        sweep.run()
        sweep.run()
        assert len(simulated) == 4

    def test_ambient_activation(self, tmp_path, monkeypatch):
        simulated = self._counting(monkeypatch)
        store = RunStore(tmp_path / "cache")
        sweep = self._sweep()
        with use_store(store):
            sweep.run()
            sweep.run()
        assert len(simulated) == 2
        with use_store(store):
            with use_store(None):   # the --no-cache escape hatch
                sweep.run()
        assert len(simulated) == 4

    def test_check_bypasses_persistent_store(self, tmp_path,
                                             monkeypatch):
        # A cached record cannot attest a fresh output verification.
        simulated = self._counting(monkeypatch)
        store = RunStore(tmp_path / "cache")
        sweep = self._sweep()
        sweep.run(cache=store)
        sweep.run(cache=store, check=True)
        assert len(simulated) == 4
        assert store.stats.hits == 0

    def test_jobs_parallel_path_saves_too(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        workloads = [Workload("pi_lcg", v, n=n)
                     for v in ("baseline", "copift")
                     for n in (128, 256)]
        sweep = Sweep(workloads, backends=("core",))
        cold = sweep.run(jobs=2, cache=store)
        assert store.stats.stores == 4
        store.stats = type(store.stats)()
        warm = sweep.run(jobs=2, cache=store)
        assert store.stats.hits == 4
        assert [json.dumps(r.to_json(), sort_keys=True) for r in warm] \
            == [json.dumps(r.to_json(), sort_keys=True) for r in cold]


class _CountingRunner:
    """Injected simulation: counts calls, tracks concurrency, yields
    control so coalescing windows actually open."""

    def __init__(self, delay=0.005):
        self.calls = []
        self.active = 0
        self.peak = 0
        self.delay = delay

    async def __call__(self, workload, backend):
        self.calls.append((workload, backend.spec))
        self.active += 1
        self.peak = max(self.peak, self.active)
        try:
            await asyncio.sleep(self.delay)
        finally:
            self.active -= 1
        base = _RECORD_CACHE.get((workload.kernel, workload.variant))
        if base is None:
            base = backend.run(workload, check=False)
            _RECORD_CACHE[(workload.kernel, workload.variant)] = base
        return dataclasses.replace(base, n=workload.n,
                                   seed=workload.seed)


_RECORD_CACHE: dict = {}


class TestEvalService:
    def test_single_flight_stress(self, tmp_path):
        # Satellite: many concurrent clients over a mixed hot/cold key
        # set -> exactly one simulation per unique cold cell.
        runner = _CountingRunner()
        store = RunStore(tmp_path / "cache")
        hot = Workload("pi_lcg", n=64)
        store.save(hot, CoreBackend(),
                   _record_for(hot, CoreBackend()))
        cold = [Workload("pi_lcg", n=n) for n in (96, 128, 192)]

        async def drive():
            service = EvalService(store=store, runner=runner)
            requests = ([(hot, CoreBackend())] * 10
                        + [(w, CoreBackend()) for w in cold] * 8)
            results = await asyncio.gather(*[
                service.evaluate(w, b) for w, b in requests])
            await service.close()
            return service, results

        service, results = asyncio.run(drive())
        statuses = [status for _, status in results]
        assert len(runner.calls) == len(cold)   # single-flight
        assert statuses.count("hit") == 10
        assert statuses.count("miss") == len(cold)
        assert statuses.count("coalesced") == len(cold) * 7
        assert service.stats.requests == len(results)
        # Coalesced waiters got the miss's record object verbatim.
        by_n = {}
        for (record, _), (w, _) in zip(results, ([(hot, None)] * 10
                                                 + [(w, None)
                                                    for w in cold] * 8)):
            by_n.setdefault(w.n, []).append(record)
        for n, records in by_n.items():
            if n != 64:
                assert all(r is records[0] for r in records)

    def test_warm_service_hits_store(self, tmp_path):
        runner = _CountingRunner()
        store = RunStore(tmp_path / "cache")
        w, b = _cell(n=64)

        async def drive():
            service = EvalService(store=store, runner=runner)
            first = await service.evaluate(w, b)
            second = await service.evaluate(w, b)
            await service.close()
            return first, second

        (rec1, status1), (rec2, status2) = asyncio.run(drive())
        assert (status1, status2) == ("miss", "hit")
        assert len(runner.calls) == 1
        assert json.dumps(rec1.to_json(), sort_keys=True) \
            == json.dumps(rec2.to_json(), sort_keys=True)

    def test_backpressure_bounds_admitted_recomputes(self, tmp_path):
        runner = _CountingRunner(delay=0.01)

        async def drive():
            service = EvalService(runner=runner, max_pending=2)
            cells = [(Workload("pi_lcg", n=32 * (i + 1)),
                      CoreBackend()) for i in range(8)]
            await asyncio.gather(*[
                service.evaluate(w, b) for w, b in cells])
            await service.close()
            return service

        service = asyncio.run(drive())
        assert runner.peak <= 2
        assert service.stats.peak_in_flight <= 2
        assert service.stats.misses == 8

    def test_failed_simulation_does_not_poison_the_key(self):
        attempts = []

        async def flaky(workload, backend):
            attempts.append(workload.n)
            if len(attempts) == 1:
                raise RuntimeError("simulator exploded")
            return backend.run(workload, check=False)

        async def drive():
            service = EvalService(runner=flaky)
            w, b = _cell(n=64)
            with pytest.raises(RuntimeError, match="exploded"):
                await service.evaluate(w, b)
            record, status = await service.evaluate(w, b)
            await service.close()
            return record, status

        record, status = asyncio.run(drive())
        assert status == "miss"
        assert len(attempts) == 2
        assert record.n == 64

    def test_stats_json_uses_metric_names(self, tmp_path):
        store = RunStore(tmp_path / "cache")

        async def drive():
            service = EvalService(store=store,
                                  runner=_CountingRunner())
            await service.evaluate(*_cell(n=64))
            await service.evaluate(*_cell(n=64))
            await service.close()
            return service.stats_json()

        stats = asyncio.run(drive())
        assert stats["serve.requests"] == 2
        assert stats["serve.misses"] == 1
        assert stats["serve.hits"] == 1
        assert stats["store"]["dir"] == store.root

    def test_stats_json_includes_flushed_cumulative_totals(
            self, tmp_path):
        # Another process's counters live only in the cumulative
        # sidecar; the stats reply must surface them, not just this
        # session's in-memory counters.
        other = RunStore(tmp_path / "cache")
        w, b = _cell(n=64)
        other.save(w, b, _record_for(w, b))
        other.lookup(w, b)
        other.flush_stats()

        store = RunStore(tmp_path / "cache")

        async def drive():
            service = EvalService(store=store,
                                  runner=_CountingRunner())
            await service.evaluate(*_cell(n=64))
            # Snapshot while serving (close() flushes + zeroes the
            # session counters), as the protocol's stats op does.
            snapshot = service.stats_json()
            await service.close()
            return snapshot

        stats = asyncio.run(drive())["store"]
        # Session view: this process only saw a store hit.
        assert stats["hits"] == 1
        assert stats["stores"] == 0
        # Store-wide view folded in from describe().
        assert stats["entries"] == 1
        assert stats["generation"] == store.generation
        assert stats["cumulative"]["stores"] == 1
        assert stats["cumulative"]["hits"] == 1

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="jobs"):
            EvalService(jobs=0)
        with pytest.raises(ValueError, match="max_pending"):
            EvalService(max_pending=0)


class TestProtocol:
    def test_decode_run_request(self):
        request = decode_request(json.dumps({
            "id": 7, "op": "run",
            "workload": {"kernel": "pi_lcg", "n": 128},
            "backend": "cluster:2"}))
        assert request.id == 7
        assert request.workload == Workload("pi_lcg", n=128)
        assert request.backend.spec == "cluster:2"

    def test_decode_errors_are_one_line(self):
        for line, fragment in [
            ("not json", "not valid JSON"),
            ("[1, 2]", "JSON object"),
            ('{"op": "explode"}', "unknown op"),
            ('{"op": "run"}', "'workload' object"),
            ('{"op": "run", "workload": {"kernel": "pi_lcg", '
             '"frobnicate": 1}}', "unknown workload keys"),
            ('{"op": "run", "workload": {"kernel": "nope"}}',
             "unknown kernel"),
        ]:
            with pytest.raises(ProtocolError) as excinfo:
                decode_request(line)
            message = str(excinfo.value)
            assert fragment in message
            assert "\n" not in message

    def test_bad_request_keeps_its_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request('{"id": 42, "op": "run", '
                           '"workload": {"kernel": "nope"}}')
        assert excinfo.value.request_id == 42

    def test_encode_echoes_id(self):
        line = encode_response(3, status="hit", record={})
        assert json.loads(line) == {"id": 3, "ok": True,
                                    "status": "hit", "record": {}}

    def _session(self, lines, store=None):
        async def feed():
            for line in lines:
                yield line

        responses = []

        async def drive():
            service = EvalService(store=store,
                                  runner=_CountingRunner())
            handled = await serve_session(service, feed(),
                                          responses.append)
            await service.close()
            return handled

        handled = asyncio.run(drive())
        return handled, [json.loads(line) for line in responses]

    def test_session_end_to_end(self, tmp_path):
        run = json.dumps({"id": 1, "op": "run",
                          "workload": {"kernel": "pi_lcg", "n": 64}})
        rerun = json.dumps({"id": 2, "op": "run",
                            "workload": {"kernel": "pi_lcg", "n": 64}})
        responses = []

        async def feed():
            yield json.dumps({"id": 0, "op": "ping"})
            yield run
            yield rerun
            yield "   \n"   # blank lines are ignored, not errors
            # A real pipelining client: ask for stats only once both
            # run responses have landed (responses arrive in
            # completion order, so stats would otherwise overtake the
            # still-simulating runs).
            while len(responses) < 3:
                await asyncio.sleep(0.001)
            yield json.dumps({"id": 3, "op": "stats"})
            yield json.dumps({"id": 4, "op": "shutdown"})
            yield run   # after shutdown: never read

        async def drive():
            service = EvalService(store=RunStore(tmp_path / "cache"),
                                  runner=_CountingRunner())
            handled = await serve_session(service, feed(),
                                          responses.append)
            await service.close()
            return handled

        handled = asyncio.run(drive())
        assert handled == 5
        by_id = {r["id"]: r for r in map(json.loads, responses)}
        assert by_id[0]["pong"] is True
        assert by_id[1]["ok"] and by_id[2]["ok"]
        # Concurrent identical runs: one miss, one coalesced, and the
        # record payloads are byte-identical.
        assert sorted([by_id[1]["status"], by_id[2]["status"]]) \
            == ["coalesced", "miss"]
        assert json.dumps(by_id[1]["record"], sort_keys=True) \
            == json.dumps(by_id[2]["record"], sort_keys=True)
        assert by_id[3]["stats"]["serve.requests"] == 2
        assert by_id[4]["shutdown"] is True

    def test_malformed_line_keeps_session_alive(self):
        handled, responses = self._session([
            "garbage",
            json.dumps({"id": 9, "op": "run",
                        "workload": {"kernel": "nope"}}),
            json.dumps({"id": 1, "op": "ping"}),
        ])
        assert handled == 3
        assert responses[0]["ok"] is False
        assert "not valid JSON" in responses[0]["error"]
        by_id = {r["id"]: r for r in responses}
        assert by_id[9]["ok"] is False
        assert "unknown kernel" in by_id[9]["error"]
        assert by_id[1]["pong"] is True

    def test_runner_crash_is_a_per_request_error(self):
        async def broken(workload, backend):
            raise OSError("pool went away")

        responses = []

        async def drive():
            service = EvalService(runner=broken)
            await serve_session(
                service,
                _aiter([json.dumps({"id": 5, "op": "run",
                                    "workload": {"kernel": "pi_lcg",
                                                 "n": 64}}),
                        json.dumps({"id": 6, "op": "ping"})]),
                responses.append)
            await service.close()

        asyncio.run(drive())
        by_id = {json.loads(r)["id"]: json.loads(r) for r in responses}
        assert by_id[5]["ok"] is False
        assert by_id[5]["error"] == "OSError: pool went away"
        assert by_id[6]["pong"] is True


async def _aiter(lines):
    for line in lines:
        yield line
