"""Energy-model tests: arithmetic, breakdowns, and the paper's effects."""

import pytest

from repro.energy import EnergyModel, EnergyParams
from repro.sim.counters import Counters


def _counters(**kwargs) -> Counters:
    c = Counters()
    for key, value in kwargs.items():
        setattr(c, key, value)
    return c


class TestArithmetic:
    def test_power_is_energy_over_time(self):
        model = EnergyModel(EnergyParams(constant_mw=10.0,
                                         dma_idle_mw=0.0))
        report = model.report(_counters(int_alu_ops=1000), cycles=1000)
        expected_dynamic = 1000 * model.params.int_alu_pj
        assert report.dynamic_energy_pj == pytest.approx(expected_dynamic)
        assert report.power_mw == pytest.approx(
            10.0 + expected_dynamic / 1000)

    def test_zero_cycles(self):
        model = EnergyModel()
        report = model.report(Counters(), cycles=0)
        assert report.power_mw == 0.0

    def test_breakdown_sums_to_dynamic(self):
        model = EnergyModel()
        c = _counters(int_alu_ops=10, fp_fmas=5, ssr_reads=3,
                      icache_l0_misses=7, int_loads=2)
        report = model.report(c, cycles=100)
        assert sum(report.breakdown_pj.values()) \
            == pytest.approx(report.dynamic_energy_pj)

    def test_energy_units(self):
        model = EnergyModel(EnergyParams(constant_mw=1.0,
                                         dma_idle_mw=0.0))
        report = model.report(Counters(), cycles=1_000_000)
        assert report.energy_uj == pytest.approx(1.0)  # 1 mW x 1 ms


class TestPaperEffects:
    def test_dma_active_raises_power(self):
        model = EnergyModel()
        idle = model.report(Counters(), cycles=1000, dma_active=False)
        active = model.report(Counters(), cycles=1000, dma_active=True)
        assert active.power_mw > idle.power_mw

    def test_dma_bytes_counted_only_when_active(self):
        model = EnergyModel()
        active = model.report(Counters(), cycles=1000, dma_active=True,
                              dma_bytes=10_000)
        inactive = model.report(Counters(), cycles=1000,
                                dma_active=False, dma_bytes=10_000)
        assert active.breakdown_pj["dma"] > 0
        assert inactive.breakdown_pj["dma"] == 0

    def test_l0_miss_costs_order_of_magnitude_more(self):
        p = EnergyParams()
        assert p.icache_miss_pj > 8 * p.icache_hit_pj

    def test_sequencer_issue_cheaper_than_a_miss(self):
        p = EnergyParams()
        assert p.sequencer_issue_pj <= p.icache_hit_pj
        assert p.sequencer_issue_pj < p.icache_miss_pj / 5

    def test_icache_thrashing_dominates(self):
        """The §III-B effect: a thrashing loop pays more I-fetch energy
        than a captured one, all else equal."""
        model = EnergyModel()
        thrash = model.report(
            _counters(icache_l0_misses=10_000), cycles=10_000)
        captured = model.report(
            _counters(icache_l0_hits=10_000), cycles=10_000)
        assert thrash.dynamic_energy_pj > 5 * captured.dynamic_energy_pj

    def test_constant_power_dominates_typical_activity(self):
        """'Power consumption is dominated by constant components.'"""
        model = EnergyModel()
        c = _counters(int_alu_ops=700, int_loads=150, fp_fmas=300,
                      icache_l0_hits=1000)
        report = model.report(c, cycles=1000)
        assert report.constant_energy_pj > report.dynamic_energy_pj
