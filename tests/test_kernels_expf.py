"""expf kernel tests: functional correctness, Table-I counts, structure."""

import numpy as np
import pytest

from repro.kernels.expf import (
    build_baseline,
    build_copift,
    exp_table,
    N_TABLE,
)


class TestTable:
    def test_entries_reconstruct_powers(self):
        """T[j] + (j << 47) must be the bits of 2^(j/32)."""
        table = exp_table()
        for j in range(N_TABLE):
            bits = (int(table[j]) + (j << 47)) & 0xFFFFFFFFFFFFFFFF
            value = np.uint64(bits).view(np.float64)
            assert value == pytest.approx(2.0 ** (j / N_TABLE),
                                          rel=1e-15)


class TestBaseline:
    def test_correct_results(self):
        instance = build_baseline(64)
        instance.run()  # verify() raises on mismatch

    def test_table1_instruction_counts(self):
        """Paper Table I: 43 integer + 52 FP per 4-element iteration."""
        instance = build_baseline(128)
        result, _ = instance.run()
        region = result.region("main")
        assert region.counters.int_issued * 4 / 128 == 43
        assert region.counters.fp_issued * 4 / 128 == 52

    def test_single_issue_ipc_below_one(self):
        instance = build_baseline(256)
        result, _ = instance.run()
        assert result.region("main").ipc < 1.0

    def test_requires_multiple_of_4(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            build_baseline(10)

    def test_negative_and_positive_inputs(self):
        instance = build_baseline(64, seed=123)
        instance.run()


class TestCopift:
    def test_correct_results(self):
        build_copift(256, block=32).run()

    def test_correct_results_various_blocks(self):
        for block in (16, 32, 64):
            build_copift(192 * 2, block=block).run()

    def test_dual_issue_ipc_above_one(self):
        instance = build_copift(512, block=64)
        result, _ = instance.run()
        assert result.region("main").ipc > 1.2

    def test_faster_than_baseline(self):
        base_result, _ = build_baseline(512).run()
        cop_result, _ = build_copift(512, block=64).run()
        speedup = (base_result.region("main").cycles
                   / cop_result.region("main").cycles)
        assert speedup > 1.5

    def test_sequencer_carries_most_fp_work(self):
        instance = build_copift(512, block=64)
        result, _ = instance.run()
        c = result.region("main").counters
        assert c.sequencer_issued > 0.9 * c.fp_issued

    def test_integer_loop_fits_l0(self):
        """The §III-B power effect requires the COPIFT integer loop to
        fit the 64-entry L0 buffer — fetches must mostly hit."""
        instance = build_copift(512, block=64)
        result, _ = instance.run()
        c = result.region("main").counters
        assert c.icache_l0_hits > 2 * c.icache_l0_misses

    def test_baseline_thrashes_l0(self):
        """The 95-instruction baseline body cannot be captured."""
        result, _ = build_baseline(256).run()
        c = result.region("main").counters
        assert c.icache_l0_hits == 0

    def test_block_constraints(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            build_copift(128, block=30)
        with pytest.raises(ValueError, match="multiple of block"):
            build_copift(100, block=32)
        with pytest.raises(ValueError, match="3 blocks"):
            build_copift(64, block=32)

    def test_ssr_traffic_replaces_fp_loadstores(self):
        instance = build_copift(512, block=64)
        result, _ = instance.run()
        c = result.region("main").counters
        assert c.fp_loads == 0
        assert c.fp_stores == 0
        # x + t reads, ki + w + y writes, w reads.
        assert c.ssr_reads >= 2 * 512
        assert c.ssr_writes >= 3 * 512

    def test_deterministic(self):
        r1, _ = build_copift(256, block=32).run()
        r2, _ = build_copift(256, block=32).run()
        assert r1.cycles == r2.cycles
