"""Assembler tests, including a property-based render/parse round trip."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import AsmSyntaxError, parse
from repro.isa.instructions import OpClass, SPECS
from repro.isa.program import ProgramBuilder
from repro.isa.registers import FP_ABI_NAMES, INT_ABI_NAMES


class TestParse:
    def test_basic_block(self):
        p = parse("""
            # exponential inner loop
            fld     fa3, 0(a3)
            fmul.d  fa3, ft3, fa3   # z
            addi    a3, a3, 8
        """)
        assert [i.mnemonic for i in p] == ["fld", "fmul.d", "addi"]
        assert p[0].imm == 0
        assert p[2].imm == 8

    def test_labels_and_branches(self):
        p = parse("""
        loop:
            addi a0, a0, -1
            bnez a0, loop
        """)
        assert p.target("loop") == 0
        assert p[1].label == "loop"

    def test_hex_immediates(self):
        p = parse("andi a1, a0, 0x1f")
        assert p[0].imm == 31

    def test_negative_memory_offset(self):
        p = parse("lw a0, -4(sp)")
        assert p[0].imm == -4

    def test_numeric_register_names(self):
        p = parse("add x10, x11, x12")
        assert p[0].int_writes[0].name == "a0"

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError, match="unknown mnemonic"):
            parse("frobnicate a0, a1")

    def test_bad_operand_count(self):
        with pytest.raises(AsmSyntaxError):
            parse("add a0, a1")

    def test_malformed_memory_operand(self):
        with pytest.raises(AsmSyntaxError, match="memory"):
            parse("lw a0, a1")

    def test_undefined_label(self):
        with pytest.raises(AsmSyntaxError, match="undefined label"):
            parse("j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AsmSyntaxError, match="defined twice"):
            parse("x:\nx:\nnop")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AsmSyntaxError, match="line 3"):
            parse("nop\nnop\nbogus a0")


# ---------------------------------------------------------------------------
# Property: render -> parse is the identity on generated programs.
# ---------------------------------------------------------------------------

_INT_REG_NAMES = st.sampled_from(INT_ABI_NAMES)
_FP_REG_NAMES = st.sampled_from(FP_ABI_NAMES)
_IMM = st.integers(min_value=-2048, max_value=2047)

_ROUNDTRIP_MNEMONICS = sorted(
    m for m, s in SPECS.items()
    if s.opclass not in (OpClass.BRANCH, OpClass.JUMP, OpClass.META)
)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(_ROUNDTRIP_MNEMONICS))
    spec = SPECS[mnemonic]
    b = ProgramBuilder()
    operands = []
    for role in spec.roles:
        if role == "imm":
            operands.append(draw(_IMM))
        elif role.startswith("f"):
            operands.append(draw(_FP_REG_NAMES))
        else:
            operands.append(draw(_INT_REG_NAMES))
    return b.emit(mnemonic, *operands)


@given(st.lists(instructions(), min_size=1, max_size=20))
def test_render_parse_roundtrip(instrs):
    b = ProgramBuilder()
    for i in instrs:
        b.append(i)
    original = b.build()
    reparsed = parse(original.render())
    assert len(reparsed) == len(original)
    for a, c in zip(original, reparsed):
        assert a.mnemonic == c.mnemonic
        assert a.operands == c.operands
